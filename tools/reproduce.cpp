#include "tools/reproduce.hpp"

#include <iostream>
#include <sstream>

#include "bench/harness.hpp"
#include "exp/supervisor.hpp"
#include "util/atomic_file.hpp"

namespace peerscope::tools {

namespace {

using namespace peerscope::bench;

std::string md(double v, int precision = 1) {
  return util::TextTable::num(v, precision);
}

std::string md_opt(const std::optional<double>& v) {
  return v ? md(*v) : std::string{"–"};
}

std::string md_paper(double v) {
  return v < 0 ? std::string{"–"} : md(v);
}

/// Dash row fragment for an application whose run produced no data:
/// `cells` dash cells joined in table syntax.
std::string missing_cells(int cells) {
  std::string out;
  for (int i = 0; i < cells; ++i) out += " – |";
  return out;
}

}  // namespace

int reproduce(const ReproduceOptions& options) {
  const net::AsTopology topo = net::make_reference_topology();
  BenchConfig cfg;
  cfg.seconds = options.seconds;
  cfg.seed = options.seed;

  // Specs [0..2] are the paper's three applications (report row order),
  // [3] the PPLive-Popular panel for Figure 2.
  std::vector<exp::RunSpec> specs;
  for (auto profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants(), p2p::SystemProfile::pplive_popular()}) {
    exp::RunSpec spec;
    spec.profile = std::move(profile);
    spec.seed = cfg.seed;
    spec.duration = util::SimTime::seconds(cfg.seconds);
    specs.push_back(std::move(spec));
  }

  exp::SupervisorConfig supervision;
  supervision.retries = options.retries;
  supervision.deadline_s = options.deadline_s;
  supervision.resume = options.resume;
  supervision.journal =
      options.output.parent_path() / "experiment.journal";

  std::cerr << "reproduce: running PPLive, SopCast, TVAnts, "
               "PPLive-Popular ("
            << cfg.seconds << " s each, seed " << cfg.seed
            << (options.resume ? ", resuming" : "") << ")...\n";
  util::ThreadPool pool;
  const auto outcome = supervise_runs(topo, specs, pool, supervision);
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    const auto& run = outcome.runs[i];
    std::cerr << "reproduce: " << specs[i].profile.name << ": "
              << exp::to_string(run.state);
    if (run.attempts > 1) std::cerr << " (" << run.attempts << " attempts)";
    if (!run.error.empty()) std::cerr << " — " << run.error;
    std::cerr << '\n';
  }
  if (outcome.succeeded() == 0) {
    std::cerr << "reproduce: no run produced results; no report written\n";
    return 1;
  }

  const auto* main_runs = outcome.runs.data();  // [0..2]
  const auto& popular_run = outcome.runs[3];
  const auto app_name = [&](std::size_t i) {
    return specs[i].profile.name;
  };

  std::ostringstream out;
  out << "# PeerScope reproduction report\n\n"
      << "Paper: *Network Awareness of P2P Live Streaming Applications* "
         "(IPDPS 2009).\n"
      << "Configuration: " << cfg.seconds << " simulated seconds, seed "
      << cfg.seed << ", Table I testbed, reference topology. Counts are "
      << "scaled (see DESIGN.md §6); percentages and ratios compare "
      << "directly.\n";

  if (!outcome.complete()) {
    out << "\n> **Partial results.** ";
    for (const auto& run : outcome.runs) {
      if (run.ok()) continue;
      out << run.spec << " " << exp::to_string(run.state)
          << (run.error.empty() ? std::string{}
                                : " (" + run.error + ")")
          << "; ";
    }
    out << "affected rows are dashed below.\n";
  }

  // ------------------------------------------------------------ Table II
  out << "\n## Table II — experiment summary\n\n"
      << "| App | src | RX kbps (mean/max) | TX kbps (mean/max) | peers "
         "(mean/max) | contrib RX | contrib TX | observed |\n"
      << "|---|---|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& paper = kPaperTable2[i];
    out << "| " << paper.app << " | paper | " << md(paper.rx_mean, 0) << " / "
        << md(paper.rx_max, 0) << " | " << md(paper.tx_mean, 0) << " / "
        << md(paper.tx_max, 0) << " | " << md(paper.peers_mean, 0) << " / "
        << md(paper.peers_max, 0) << " | " << md(paper.contrib_rx_mean, 0)
        << " | " << md(paper.contrib_tx_mean, 0) << " | "
        << md(paper.observed_total, 0) << " |\n";
    if (!main_runs[i].ok()) {
      out << "| | ours |" << missing_cells(6) << '\n';
      continue;
    }
    const auto s = aware::summarize(main_runs[i].result->observations);
    out << "| | ours | " << md(s.rx_kbps_mean, 0) << " / "
        << md(s.rx_kbps_max, 0) << " | " << md(s.tx_kbps_mean, 0) << " / "
        << md(s.tx_kbps_max, 0) << " | " << md(s.all_peers_mean, 0) << " / "
        << md(static_cast<double>(s.all_peers_max), 0) << " | "
        << md(s.contrib_rx_mean, 0) << " | " << md(s.contrib_tx_mean, 0)
        << " | " << md(static_cast<double>(s.observed_total), 0) << " |\n";
  }

  // ----------------------------------------------------------- Table III
  out << "\n## Table III — self-induced bias\n\n"
      << "| App | src | contrib peer % | contrib bytes % | all peer % | "
         "all bytes % |\n|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& paper = kPaperTable3[i];
    out << "| " << paper.app << " | paper | " << md(paper.contrib_peer_pct, 2)
        << " | " << md(paper.contrib_bytes_pct, 2) << " | "
        << md(paper.all_peer_pct, 2) << " | " << md(paper.all_bytes_pct, 2)
        << " |\n";
    if (!main_runs[i].ok()) {
      out << "| | ours |" << missing_cells(4) << '\n';
      continue;
    }
    const auto bias = aware::self_bias(main_runs[i].result->observations);
    out << "| | ours | " << md(bias.contributors_peer_pct, 2) << " | "
        << md(bias.contributors_bytes_pct, 2) << " | "
        << md(bias.all_peers_peer_pct, 2) << " | "
        << md(bias.all_peers_bytes_pct, 2) << " |\n";
  }

  // ------------------------------------------------------------ Table IV
  out << "\n## Table IV — network awareness\n\n"
      << "| Net | App | src | B′D | P′D | BD | PD | B′U | P′U | BU | PU |\n"
      << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  std::vector<std::optional<std::vector<aware::AwarenessRow>>> tables;
  for (std::size_t i = 0; i < 3; ++i) {
    if (main_runs[i].ok()) {
      tables.emplace_back(
          aware::awareness_table(main_runs[i].result->observations));
    } else {
      tables.emplace_back(std::nullopt);
    }
  }
  for (std::size_t entry = 0; entry < std::size(kPaperTable4); ++entry) {
    const auto& paper = kPaperTable4[entry];
    out << "| " << paper.metric << " | " << paper.app << " | paper | "
        << md_paper(paper.bpd) << " | " << md_paper(paper.ppd) << " | "
        << md_paper(paper.bd) << " | " << md_paper(paper.pd) << " | "
        << md_paper(paper.bpu) << " | " << md_paper(paper.ppu) << " | "
        << md_paper(paper.bu) << " | " << md_paper(paper.pu) << " |\n";
    const auto& table = tables[entry % 3];
    if (!table) {
      out << "| | | ours |" << missing_cells(8) << '\n';
      continue;
    }
    const auto& measured = (*table)[entry / 3];
    out << "| | | ours | " << md_opt(measured.download.b_prime_pct) << " | "
        << md_opt(measured.download.p_prime_pct) << " | "
        << md_opt(measured.download.b_pct) << " | "
        << md_opt(measured.download.p_pct) << " | "
        << md_opt(measured.upload.b_prime_pct) << " | "
        << md_opt(measured.upload.p_prime_pct) << " | "
        << md_opt(measured.upload.b_pct) << " | "
        << md_opt(measured.upload.p_pct) << " |\n";
  }

  // ------------------------------------------------------------ Figure 1
  out << "\n## Figure 1 — geographical breakdown (percent)\n\n"
      << "| App | CC | peers | RX bytes | TX bytes |\n|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < 3; ++i) {
    if (!main_runs[i].ok()) {
      out << "| " << app_name(i) << " |" << missing_cells(4) << '\n';
      continue;
    }
    const auto& observations = main_runs[i].result->observations;
    for (const auto& share : aware::geo_breakdown(observations)) {
      out << "| " << observations.app << " | "
          << (share.cc.known() ? share.cc.to_string() : std::string{"*"})
          << " | " << md(share.peer_pct) << " | " << md(share.rx_bytes_pct)
          << " | " << md(share.tx_bytes_pct) << " |\n";
    }
  }

  // ------------------------------------------------------------ Figure 2
  out << "\n## Figure 2 — intra/inter-AS probe traffic ratio R\n\n"
      << "Same-subnet pairs excluded per §IV-B; the with-LAN column shows "
         "the raw diagonal dominance.\n\n"
      << "| App | paper R | ours R | ours incl. LAN pairs |\n"
      << "|---|---|---|---|\n";
  const char* fig2_apps[] = {"PPLive", "SopCast", "TVAnts"};
  const double fig2_paper[] = {0.98, 0.2, 1.93};
  for (std::size_t i = 0; i < 3; ++i) {
    if (!main_runs[i].ok()) {
      out << "| " << fig2_apps[i] << " | " << md(fig2_paper[i], 2) << " |"
          << missing_cells(2) << '\n';
      continue;
    }
    const auto matrix =
        aware::as_traffic_matrix(main_runs[i].result->observations);
    out << "| " << fig2_apps[i] << " | " << md(fig2_paper[i], 2) << " | "
        << md(matrix.intra_inter_ratio, 2) << " | "
        << md(matrix.intra_inter_ratio_with_lan, 2) << " |\n";
  }
  if (popular_run.ok()) {
    const auto matrix =
        aware::as_traffic_matrix(popular_run.result->observations);
    out << "| PPLive-Popular | (strongest locality) | "
        << md(matrix.intra_inter_ratio, 2) << " | "
        << md(matrix.intra_inter_ratio_with_lan, 2) << " |\n";
  } else {
    out << "| PPLive-Popular | (strongest locality) |" << missing_cells(2)
        << '\n';
  }

  out << "\n---\nGenerated by `peerscope reproduce`. Every number above is "
         "deterministic for the given seed.\n";

  try {
    util::write_file_atomic(options.output, out.str());
  } catch (const std::exception& error) {
    std::cerr << "reproduce: cannot write " << options.output << ": "
              << error.what() << '\n';
    return 1;
  }
  std::cerr << "reproduce: wrote " << options.output << '\n';
  return outcome.complete() ? 0 : kExitPartialSuccess;
}

}  // namespace peerscope::tools
