#include "tools/reproduce.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/harness.hpp"

namespace peerscope::tools {

namespace {

using namespace peerscope::bench;

std::string md(double v, int precision = 1) {
  return util::TextTable::num(v, precision);
}

std::string md_opt(const std::optional<double>& v) {
  return v ? md(*v) : std::string{"–"};
}

std::string md_paper(double v) {
  return v < 0 ? std::string{"–"} : md(v);
}

}  // namespace

int reproduce(const ReproduceOptions& options) {
  const net::AsTopology topo = net::make_reference_topology();
  BenchConfig cfg;
  cfg.seconds = options.seconds;
  cfg.seed = options.seed;

  std::cerr << "reproduce: running PPLive, SopCast, TVAnts ("
            << cfg.seconds << " s each, seed " << cfg.seed << ")...\n";
  const auto results = run_three_apps(topo, cfg);
  std::cerr << "reproduce: running PPLive-Popular (Fig. 2 panel)...\n";
  exp::RunSpec popular;
  popular.profile = p2p::SystemProfile::pplive_popular();
  popular.seed = cfg.seed;
  popular.duration = util::SimTime::seconds(cfg.seconds);
  const auto popular_result = exp::run_experiment(topo, popular);

  std::ostringstream out;
  out << "# PeerScope reproduction report\n\n"
      << "Paper: *Network Awareness of P2P Live Streaming Applications* "
         "(IPDPS 2009).\n"
      << "Configuration: " << cfg.seconds << " simulated seconds, seed "
      << cfg.seed << ", Table I testbed, reference topology. Counts are "
      << "scaled (see DESIGN.md §6); percentages and ratios compare "
      << "directly.\n";

  // ------------------------------------------------------------ Table II
  out << "\n## Table II — experiment summary\n\n"
      << "| App | src | RX kbps (mean/max) | TX kbps (mean/max) | peers "
         "(mean/max) | contrib RX | contrib TX | observed |\n"
      << "|---|---|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& paper = kPaperTable2[i];
    const auto s = aware::summarize(results[i].observations);
    out << "| " << paper.app << " | paper | " << md(paper.rx_mean, 0) << " / "
        << md(paper.rx_max, 0) << " | " << md(paper.tx_mean, 0) << " / "
        << md(paper.tx_max, 0) << " | " << md(paper.peers_mean, 0) << " / "
        << md(paper.peers_max, 0) << " | " << md(paper.contrib_rx_mean, 0)
        << " | " << md(paper.contrib_tx_mean, 0) << " | "
        << md(paper.observed_total, 0) << " |\n";
    out << "| | ours | " << md(s.rx_kbps_mean, 0) << " / "
        << md(s.rx_kbps_max, 0) << " | " << md(s.tx_kbps_mean, 0) << " / "
        << md(s.tx_kbps_max, 0) << " | " << md(s.all_peers_mean, 0) << " / "
        << md(static_cast<double>(s.all_peers_max), 0) << " | "
        << md(s.contrib_rx_mean, 0) << " | " << md(s.contrib_tx_mean, 0)
        << " | " << md(static_cast<double>(s.observed_total), 0) << " |\n";
  }

  // ----------------------------------------------------------- Table III
  out << "\n## Table III — self-induced bias\n\n"
      << "| App | src | contrib peer % | contrib bytes % | all peer % | "
         "all bytes % |\n|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& paper = kPaperTable3[i];
    const auto bias = aware::self_bias(results[i].observations);
    out << "| " << paper.app << " | paper | " << md(paper.contrib_peer_pct, 2)
        << " | " << md(paper.contrib_bytes_pct, 2) << " | "
        << md(paper.all_peer_pct, 2) << " | " << md(paper.all_bytes_pct, 2)
        << " |\n";
    out << "| | ours | " << md(bias.contributors_peer_pct, 2) << " | "
        << md(bias.contributors_bytes_pct, 2) << " | "
        << md(bias.all_peers_peer_pct, 2) << " | "
        << md(bias.all_peers_bytes_pct, 2) << " |\n";
  }

  // ------------------------------------------------------------ Table IV
  out << "\n## Table IV — network awareness\n\n"
      << "| Net | App | src | B′D | P′D | BD | PD | B′U | P′U | BU | PU |\n"
      << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  std::vector<std::vector<aware::AwarenessRow>> tables;
  for (const auto& result : results) {
    tables.push_back(aware::awareness_table(result.observations));
  }
  for (std::size_t entry = 0; entry < std::size(kPaperTable4); ++entry) {
    const auto& paper = kPaperTable4[entry];
    const auto& measured = tables[entry % 3][entry / 3];
    out << "| " << paper.metric << " | " << paper.app << " | paper | "
        << md_paper(paper.bpd) << " | " << md_paper(paper.ppd) << " | "
        << md_paper(paper.bd) << " | " << md_paper(paper.pd) << " | "
        << md_paper(paper.bpu) << " | " << md_paper(paper.ppu) << " | "
        << md_paper(paper.bu) << " | " << md_paper(paper.pu) << " |\n";
    out << "| | | ours | " << md_opt(measured.download.b_prime_pct) << " | "
        << md_opt(measured.download.p_prime_pct) << " | "
        << md_opt(measured.download.b_pct) << " | "
        << md_opt(measured.download.p_pct) << " | "
        << md_opt(measured.upload.b_prime_pct) << " | "
        << md_opt(measured.upload.p_prime_pct) << " | "
        << md_opt(measured.upload.b_pct) << " | "
        << md_opt(measured.upload.p_pct) << " |\n";
  }

  // ------------------------------------------------------------ Figure 1
  out << "\n## Figure 1 — geographical breakdown (percent)\n\n"
      << "| App | CC | peers | RX bytes | TX bytes |\n|---|---|---|---|---|\n";
  for (const auto& result : results) {
    for (const auto& share : aware::geo_breakdown(result.observations)) {
      out << "| " << result.observations.app << " | "
          << (share.cc.known() ? share.cc.to_string() : std::string{"*"})
          << " | " << md(share.peer_pct) << " | " << md(share.rx_bytes_pct)
          << " | " << md(share.tx_bytes_pct) << " |\n";
    }
  }

  // ------------------------------------------------------------ Figure 2
  out << "\n## Figure 2 — intra/inter-AS probe traffic ratio R\n\n"
      << "Same-subnet pairs excluded per §IV-B; the with-LAN column shows "
         "the raw diagonal dominance.\n\n"
      << "| App | paper R | ours R | ours incl. LAN pairs |\n"
      << "|---|---|---|---|\n";
  const char* fig2_apps[] = {"PPLive", "SopCast", "TVAnts"};
  const double fig2_paper[] = {0.98, 0.2, 1.93};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto matrix = aware::as_traffic_matrix(results[i].observations);
    out << "| " << fig2_apps[i] << " | " << md(fig2_paper[i], 2) << " | "
        << md(matrix.intra_inter_ratio, 2) << " | "
        << md(matrix.intra_inter_ratio_with_lan, 2) << " |\n";
  }
  {
    const auto matrix =
        aware::as_traffic_matrix(popular_result.observations);
    out << "| PPLive-Popular | (strongest locality) | "
        << md(matrix.intra_inter_ratio, 2) << " | "
        << md(matrix.intra_inter_ratio_with_lan, 2) << " |\n";
  }

  out << "\n---\nGenerated by `peerscope reproduce`. Every number above is "
         "deterministic for the given seed.\n";

  std::ofstream file(options.output, std::ios::trunc);
  if (!file) {
    std::cerr << "reproduce: cannot write " << options.output << '\n';
    return 1;
  }
  file << out.str();
  std::cerr << "reproduce: wrote " << options.output << '\n';
  return 0;
}

}  // namespace peerscope::tools
