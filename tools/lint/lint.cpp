#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <system_error>
#include <map>
#include <memory>
#include <optional>
#include <regex>
#include <sstream>
#include <tuple>
#include <utility>

namespace peerscope::lint {
namespace {

namespace fs = std::filesystem;

// Directories walked under the root, and the source extensions that
// count. tests/lint/fixtures/ is excluded: its files violate rules on
// purpose so the fixture suite can assert the diagnostics.
constexpr std::array<std::string_view, 5> kWalkDirs = {
    "src", "tools", "bench", "tests", "examples"};
constexpr std::array<std::string_view, 4> kSourceExts = {".cpp", ".hpp",
                                                         ".h", ".cc"};
constexpr std::string_view kFixtureDir = "tests/lint/fixtures";

constexpr std::string_view kMetricRegistryPath = "src/obs/metric_names.def";
constexpr std::string_view kTraceRegistryPath = "src/obs/trace_names.def";
constexpr std::string_view kSchemaRegistryPath =
    "src/obs/schema_versions.def";
// Optional exit-code registry (`<value> <name>` per line): when the
// file exists, every kExit* constant in tools/ must be pinned there
// and every entry must name a live constant. Absent file = sub-check
// skipped, so miniature fixture roots without one keep the original
// uniqueness + README semantics.
constexpr std::string_view kExitCodeRegistryPath = "tools/exit_codes.def";
// Optional layer DAG (`<layer>: <dep> <dep>...` per line): when the
// file exists, every `#include "<layer>/..."` in src/ must point at a
// declared dependency of the including file's own layer. Absent file
// = rule silently skipped (same contract as exit_codes.def), so
// fixture roots opt in by checking one in.
constexpr std::string_view kLayersPath = "tools/layers.def";

// The files allowed raw file I/O: the implementation of
// util::write_file_atomic and the fault-injection shim whose hooks
// (util::io::write_some/read_file/...) everything else routes through.
constexpr std::array<std::string_view, 2> kRawIoAllowlist = {
    "src/util/atomic_file.cpp", "src/util/io_faults.cpp"};

[[nodiscard]] bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return std::find(kSourceExts.begin(), kSourceExts.end(), ext) !=
         kSourceExts.end();
}

[[nodiscard]] bool is_header(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h";
}

[[nodiscard]] std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// The trimmed text of the 1-based `line` in `source` (empty when out
/// of range) — the line-content half of a finding fingerprint.
[[nodiscard]] std::string_view line_text(std::string_view source,
                                         std::size_t line) {
  std::size_t pos = 0;
  for (std::size_t n = 1; n < line; ++n) {
    pos = source.find('\n', pos);
    if (pos == std::string_view::npos) return {};
    ++pos;
  }
  std::size_t eol = source.find('\n', pos);
  if (eol == std::string_view::npos) eol = source.size();
  std::string_view text = source.substr(pos, eol - pos);
  while (!text.empty() &&
         (std::isspace(static_cast<unsigned char>(text.front())) != 0)) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (std::isspace(static_cast<unsigned char>(text.back())) != 0)) {
    text.remove_suffix(1);
  }
  return text;
}

/// Byte offset -> 1-based line number lookup.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<std::size_t>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

/// Shared lexer for code_view / no_comment_view: walks the source once
/// and blanks comment contents, plus string/char contents when
/// `keep_strings` is false. Delimiters (//, /*, quotes) are blanked
/// too so a half-kept token can never straddle a region boundary.
std::string make_view(std::string_view source, bool keep_strings) {
  std::string out{source};
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // )delim" terminator for raw strings
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"') {
          std::size_t j = i + 2;
          while (j < out.size() && out[j] != '(') ++j;
          raw_delim = ")";
          raw_delim.append(out, i + 2, j - (i + 2));
          raw_delim += '"';
          state = State::kRawString;
          if (!keep_strings) {
            for (std::size_t k = i; k <= j && k < out.size(); ++k) {
              if (out[k] != '\n') out[k] = ' ';
            }
          }
          i = j;
        } else if (c == '"') {
          state = State::kString;
          if (!keep_strings) out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          if (!keep_strings) out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          if (!keep_strings) {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == quote) {
          if (!keep_strings) out[i] = ' ';
          state = State::kCode;
        } else if (!keep_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case State::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          if (!keep_strings) {
            for (std::size_t k = i; k < i + raw_delim.size(); ++k) {
              out[k] = ' ';
            }
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (!keep_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// --- suppressions -----------------------------------------------------

struct Suppressions {
  /// rule -> lines on which it is allowed.
  std::map<std::string, std::set<std::size_t>, std::less<>> lines;
  /// rules allowed for the whole file.
  std::set<std::string, std::less<>> whole_file;

  [[nodiscard]] bool covers(std::string_view rule,
                            std::size_t line) const {
    if (whole_file.count(std::string{rule}) != 0) return true;
    const auto it = lines.find(rule);
    return it != lines.end() && it->second.count(line) != 0;
  }
};

/// Parses `// peerscope-lint: allow(r1, r2)` / `allow-file(...)`
/// markers from the raw source. A line-level allow on a line whose
/// code part is blank applies to the next line.
Suppressions parse_suppressions(std::string_view source) {
  static const std::regex marker{
      R"(peerscope-lint:\s*(allow|allow-file)\(([^)]*)\))"};
  Suppressions out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    ++line_no;
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string line{source.substr(pos, eol - pos)};
    std::smatch match;
    if (std::regex_search(line, match, marker)) {
      const bool file_wide = match[1] == "allow-file";
      // Everything before the comment marker decides whether this is
      // an own-line annotation (applies to the next line) or trails
      // code (applies to this line).
      const std::size_t comment = line.find("//");
      const bool own_line =
          comment != std::string::npos &&
          line.find_first_not_of(" \t") == comment;
      std::string rules = match[2];
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream split{rules};
      std::string rule;
      while (split >> rule) {
        if (file_wide) {
          out.whole_file.insert(rule);
        } else {
          out.lines[rule].insert(own_line ? line_no + 1 : line_no);
        }
      }
    }
    pos = eol + 1;
  }
  return out;
}

/// Lines covered by a `// lint: ordered` marker (the
/// nondeterministic-iteration opt-out: "this loop's effects are
/// order-independent, or the consumer sorts"). Same placement rule as
/// allow(): trailing a statement covers that line, on a line of its
/// own covers the next.
std::set<std::size_t> parse_ordered_lines(std::string_view source) {
  static const std::regex marker{R"(//\s*lint:\s*ordered\b)"};
  std::set<std::size_t> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    ++line_no;
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string line{source.substr(pos, eol - pos)};
    std::smatch match;
    if (std::regex_search(line, match, marker)) {
      const bool own_line =
          line.find_first_not_of(" \t") ==
          static_cast<std::size_t>(match.position(0));
      out.insert(own_line ? line_no + 1 : line_no);
    }
    pos = eol + 1;
  }
  return out;
}

// --- registries -------------------------------------------------------

struct RegistryEntry {
  std::string kind;
  std::string name;
  std::size_t line = 0;
  /// Static prefix before the first `<placeholder>`; empty when the
  /// entry is exact.
  std::string dynamic_prefix;
  bool used = false;
};

struct Registry {
  fs::path file;
  std::vector<RegistryEntry> entries;

  [[nodiscard]] RegistryEntry* find_exact(std::string_view name) {
    for (auto& entry : entries) {
      if (entry.dynamic_prefix.empty() && entry.name == name) {
        return &entry;
      }
    }
    return nullptr;
  }
};

/// Parses a `<kind> <name>` registry file; unknown kinds are config
/// errors (a typo there would silently un-check names).
std::optional<Registry> load_registry(
    const fs::path& path, const std::set<std::string>& kinds,
    std::vector<std::string>& errors) {
  const auto content = read_file(path);
  if (!content) {
    errors.push_back("cannot read registry " + path.string());
    return std::nullopt;
  }
  Registry out;
  out.file = path;
  std::istringstream in{*content};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields{line};
    std::string kind;
    std::string name;
    if (!(fields >> kind)) continue;  // blank line
    if (!(fields >> name) || kinds.count(kind) == 0) {
      errors.push_back(path.string() + ":" + std::to_string(line_no) +
                       ": malformed registry line");
      continue;
    }
    RegistryEntry entry;
    entry.kind = kind;
    entry.name = name;
    entry.line = line_no;
    const std::size_t angle = name.find('<');
    if (angle != std::string::npos) {
      entry.dynamic_prefix = name.substr(0, angle);
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

// --- per-file context -------------------------------------------------

struct FileContext {
  fs::path path;          // absolute (or as walked)
  std::string rel;        // root-relative, '/'-separated
  std::string source;     // raw bytes
  std::string code;       // code_view
  std::string no_comment; // no_comment_view
  LineIndex lines;
  Suppressions suppressions;

  FileContext(fs::path p, std::string rel_path, std::string src)
      : path(std::move(p)),
        rel(std::move(rel_path)),
        source(std::move(src)),
        code(code_view(source)),
        no_comment(no_comment_view(source)),
        lines(source),
        suppressions(parse_suppressions(source)) {}
};

class Linter {
 public:
  explicit Linter(const Options& options) : options_(options) {}

  LintResult run() {
    if (!init_rules()) return std::move(result_);
    load_registries();
    load_layers();
    collect_files();
    collect_unordered_names();
    for (const auto& file : files_) scan_file(*file);
    finish_registries();
    check_exit_codes();
    if (enabled(kRuleBuildArtifacts) && options_.check_tracked) {
      append(check_tracked_paths(tracked_files()));
    }
    apply_baseline();
    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool enabled(std::string_view rule) const {
    return options_.rules.empty() ||
           options_.rules.count(rule) != 0;
  }

  bool init_rules() {
    const auto known = rule_names();
    for (const auto& rule : options_.rules) {
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        result_.errors.push_back("unknown rule: " + rule);
      }
    }
    return result_.errors.empty();
  }

  void load_registries() {
    if (enabled(kRuleMetricNames)) {
      metric_registry_ =
          load_registry(options_.root / kMetricRegistryPath,
                        {"counter", "gauge", "histogram", "span"},
                        result_.errors);
      trace_registry_ = load_registry(options_.root / kTraceRegistryPath,
                                      {"instant", "counter"},
                                      result_.errors);
    }
    if (enabled(kRuleSchemaVersions)) {
      schema_registry_ = load_registry(
          options_.root / kSchemaRegistryPath, {"schema"}, result_.errors);
    }
  }

  void collect_files() {
    for (const auto dir : kWalkDirs) {
      const fs::path base = options_.root / dir;
      if (!fs::is_directory(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file() || !is_source_file(entry.path())) {
          continue;
        }
        const std::string rel =
            fs::relative(entry.path(), options_.root).generic_string();
        if (rel.rfind(kFixtureDir, 0) == 0) continue;
        auto content = read_file(entry.path());
        if (!content) {
          result_.errors.push_back("cannot read " + rel);
          continue;
        }
        files_.push_back(std::make_unique<FileContext>(
            entry.path(), rel, std::move(*content)));
      }
    }
    std::sort(files_.begin(), files_.end(),
              [](const auto& a, const auto& b) { return a->rel < b->rel; });
  }

  [[nodiscard]] std::string rel_of(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, options_.root, ec);
    if (ec || rel.empty()) return path.generic_string();
    return rel.generic_string();
  }

  void report(const FileContext& file, std::size_t offset,
              std::string_view rule, std::string message) {
    const std::size_t line = file.lines.line_of(offset);
    if (file.suppressions.covers(rule, line)) return;
    const std::string_view key =
        line != 0 ? line_text(file.source, line)
                  : std::string_view{message};
    std::string print = fingerprint(rule, file.rel, key);
    result_.findings.push_back({file.path, line, std::string{rule},
                                std::move(message), std::move(print)});
  }

  void append(std::vector<Finding> extra) {
    for (auto& finding : extra) {
      if (finding.fingerprint.empty()) {
        finding.fingerprint = fingerprint(
            finding.rule, finding.file.generic_string(), finding.message);
      }
      result_.findings.push_back(std::move(finding));
    }
  }

  void scan_file(const FileContext& file) {
    if (enabled(kRuleRawIo)) check_raw_io(file);
    if (enabled(kRuleMetricNames) && metric_registry_) {
      check_metric_names(file);
    }
    if (enabled(kRuleMetricNames) && trace_registry_) {
      check_trace_names(file);
    }
    if (enabled(kRuleSchemaVersions) && schema_registry_) {
      check_schemas(file);
    }
    if (enabled(kRuleHeaderHygiene) && is_header(file.path)) {
      check_header_hygiene(file);
    }
    if (enabled(kRuleEngineHotPath)) check_engine_hot_path(file);
    if (enabled(kRuleIteration)) check_iteration(file);
    if (enabled(kRuleRng)) check_rng(file);
    if (enabled(kRuleLocks)) check_locks(file);
    if (enabled(kRuleLayering) && layers_) check_layering(file);
  }

  // (1) no-raw-artifact-io: every write-capable file-open primitive in
  // the code view, outside the util::write_file_atomic implementation
  // and the util::io fault shim. Within src/ the rule also covers the
  // read side: every reader must route through util::io::read_file so
  // the storage fault-injection layer sees all file I/O.
  void check_raw_io(const FileContext& file) {
    if (std::find(kRawIoAllowlist.begin(), kRawIoAllowlist.end(),
                  file.rel) != kRawIoAllowlist.end()) {
      return;
    }
    struct Token {
      const char* pattern;
      const char* what;
    };
    static const std::array<Token, 5> kTokens = {{
        {R"(std::ofstream\b)", "std::ofstream"},
        {R"(std::fstream\b)", "std::fstream"},
        {R"(\bfopen\s*\()", "fopen()"},
        {R"(::open\s*\()", "open(2)"},
        {R"(::creat\s*\()", "creat(2)"},
    }};
    for (const auto& token : kTokens) {
      const std::regex re{token.pattern};
      for (auto it = std::cregex_iterator{file.code.data(),
                                          file.code.data() +
                                              file.code.size(),
                                          re};
           it != std::cregex_iterator{}; ++it) {
        const auto offset = static_cast<std::size_t>(it->position(0));
        // `foo::open(` is a member/namespace call, not the syscall.
        if (token.what == std::string_view{"open(2)"} && offset > 0) {
          const char prev = file.code[offset - 1];
          if ((std::isalnum(static_cast<unsigned char>(prev)) != 0) ||
              prev == '_' || prev == ':' || prev == '>' || prev == '.') {
            continue;
          }
        }
        report(file, offset, kRuleRawIo,
               std::string{token.what} +
                   " bypasses util::write_file_atomic; route artifact "
                   "writes through it (or suppress in tests)");
      }
    }
    // Read-side tokens, src/-only: tools and tests may slurp however
    // they like, but library code must stay fault-injectable.
    if (file.rel.rfind("src/", 0) != 0) return;
    static const std::regex kReadRe{R"(std::ifstream\b)"};
    for (auto it = std::cregex_iterator{file.code.data(),
                                        file.code.data() +
                                            file.code.size(),
                                        kReadRe};
         it != std::cregex_iterator{}; ++it) {
      report(file, static_cast<std::size_t>(it->position(0)), kRuleRawIo,
             "std::ifstream bypasses the util::io fault shim; route "
             "src/ reads through util::io::read_file (or suppress with "
             "an allow annotation)");
    }
  }

  // (2) metric-name-registry: every literal handed to the obs API must
  // be registered with the right kind, and (checked in
  // finish_registries) every registered name must be used.
  void check_metric_names(const FileContext& file) {
    struct Api {
      const char* pattern;
      const char* kind;
    };
    static const std::array<Api, 6> kApis = {{
        {R"rx(obs::counter\s*\(\s*"([^"]*)")rx", "counter"},
        {R"rx(PEERSCOPE_METRIC_(?:ADD|INC)\s*\(\s*"([^"]*)")rx",
         "counter"},
        {R"rx(obs::histogram\s*\(\s*"([^"]*)")rx", "histogram"},
        {R"rx(obs::set_gauge\s*\(\s*"([^"]*)")rx", "gauge"},
        {R"rx(PEERSCOPE_SPAN\s*\(\s*"([^"]*)")rx", "span"},
        {R"rx(\bSpan\s+(?:[A-Za-z_]\w*\s*)?\{\s*"([^"]*)")rx", "span"},
    }};
    const std::string& text = file.no_comment;
    for (const auto& api : kApis) {
      const std::regex re{api.pattern};
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), re};
           it != std::cregex_iterator{}; ++it) {
        const auto offset = static_cast<std::size_t>(it->position(0));
        const std::string name = (*it)[1].str();
        // A literal followed by `+` is the static prefix of a
        // runtime-built name and must match a dynamic registry entry.
        std::size_t after = static_cast<std::size_t>(it->position(0)) +
                            static_cast<std::size_t>(it->length(0));
        while (after < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[after])) !=
                0)) {
          ++after;
        }
        const bool concatenated = after < text.size() && text[after] == '+';
        resolve_metric(file, offset, name, api.kind, concatenated);
      }
    }
  }

  // Trace event names go through the same rule with their own
  // registry: the timeline's vocabulary is as much a public schema as
  // the metrics keys (DESIGN.md §12). Span begin/end names are the
  // span paths already pinned by metric_names.def, so only the
  // instant/counter hooks are scanned here.
  void check_trace_names(const FileContext& file) {
    struct Api {
      const char* pattern;
      const char* kind;
    };
    static const std::array<Api, 4> kApis = {{
        {R"rx(obs::trace_instant\s*\(\s*"([^"]*)")rx", "instant"},
        {R"rx(PEERSCOPE_TRACE_INSTANT\s*\(\s*"([^"]*)")rx", "instant"},
        {R"rx(obs::trace_counter\s*\(\s*"([^"]*)")rx", "counter"},
        {R"rx(PEERSCOPE_TRACE_COUNTER\s*\(\s*"([^"]*)")rx", "counter"},
    }};
    const std::string& text = file.no_comment;
    for (const auto& api : kApis) {
      const std::regex re{api.pattern};
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), re};
           it != std::cregex_iterator{}; ++it) {
        const auto offset = static_cast<std::size_t>(it->position(0));
        const std::string name = (*it)[1].str();
        std::size_t after = static_cast<std::size_t>(it->position(0)) +
                            static_cast<std::size_t>(it->length(0));
        while (after < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[after])) !=
                0)) {
          ++after;
        }
        const bool concatenated = after < text.size() && text[after] == '+';
        resolve_name(*trace_registry_, kTraceRegistryPath, file, offset,
                     name, api.kind, concatenated);
      }
    }
  }

  void resolve_metric(const FileContext& file, std::size_t offset,
                      const std::string& name, std::string_view kind,
                      bool concatenated) {
    resolve_name(*metric_registry_, kMetricRegistryPath, file, offset, name,
                 kind, concatenated);
  }

  void resolve_name(Registry& reg, std::string_view registry_path,
                    const FileContext& file, std::size_t offset,
                    const std::string& name, std::string_view kind,
                    bool concatenated) {
    if (RegistryEntry* exact = reg.find_exact(name)) {
      if (exact->kind != kind) {
        report(file, offset, kRuleMetricNames,
               "\"" + name + "\" used as " + std::string{kind} +
                   " but registered as " + exact->kind + " in " +
                   std::string{registry_path});
        return;
      }
      exact->used = true;
      return;
    }
    for (auto& entry : reg.entries) {
      if (entry.dynamic_prefix.empty() || entry.kind != kind) continue;
      const bool prefix_match =
          concatenated ? name == entry.dynamic_prefix
                       : name.rfind(entry.dynamic_prefix, 0) == 0;
      if (prefix_match) {
        entry.used = true;
        return;
      }
    }
    report(file, offset, kRuleMetricNames,
           std::string{kind} + " \"" + name + "\" is not in " +
               std::string{registry_path} +
               "; register it (or suppress in tests)");
  }

  // (3) schema-version-consistency: any peerscope.<thing>/<n> literal
  // must match the schema registry exactly — a bumped writer with an
  // un-bumped reader (or vice versa) fails here.
  void check_schemas(const FileContext& file) {
    static const std::regex re{
        R"(peerscope\.[A-Za-z0-9_]+(?:\.[A-Za-z0-9_]+)*/[0-9]+)"};
    const std::string& text = file.no_comment;
    for (auto it = std::cregex_iterator{text.data(),
                                        text.data() + text.size(), re};
         it != std::cregex_iterator{}; ++it) {
      const auto offset = static_cast<std::size_t>(it->position(0));
      const std::string literal = it->str();
      if (RegistryEntry* entry = schema_registry_->find_exact(literal)) {
        entry->used = true;
        continue;
      }
      report(file, offset, kRuleSchemaVersions,
             "schema string \"" + literal + "\" is not in " +
                 std::string{kSchemaRegistryPath} +
                 "; bump the registry in the same commit");
    }
  }

  // (5) header hygiene: #pragma once present, no using-namespace.
  void check_header_hygiene(const FileContext& file) {
    static const std::regex pragma{R"(#\s*pragma\s+once)"};
    static const std::regex using_ns{R"(\busing\s+namespace\b)"};
    if (!std::regex_search(file.code, pragma)) {
      report(file, 0, kRuleHeaderHygiene,
             "header is missing #pragma once");
    }
    for (auto it = std::cregex_iterator{file.code.data(),
                                        file.code.data() +
                                            file.code.size(),
                                        using_ns};
         it != std::cregex_iterator{}; ++it) {
      report(file, static_cast<std::size_t>(it->position(0)),
             kRuleHeaderHygiene,
             "using-namespace in a header leaks into every includer");
    }
  }

  // (7) engine-hot-path: src/sim and src/p2p are the per-event hot
  // loop; the calendar queue + slab event pool (DESIGN.md §14) exist
  // so nothing there schedules through std::priority_queue or
  // allocates per event. The compiler happily accepts both, so the
  // regression is only visible as a bench slope — this rule catches it
  // at review time instead. Legit one-time construction sites carry an
  // allow(engine-hot-path) annotation; placement news must use the
  // qualified `::new (ptr)` form, which is recognised and skipped.
  void check_engine_hot_path(const FileContext& file) {
    if (file.rel.rfind("src/sim/", 0) != 0 &&
        file.rel.rfind("src/p2p/", 0) != 0) {
      return;
    }
    struct Token {
      const char* pattern;
      const char* message;
    };
    static const std::array<Token, 4> kTokens = {{
        {R"(std::priority_queue\b)",
         "std::priority_queue in an engine hot path; schedule through "
         "sim::CalendarQueue (DESIGN.md section 14)"},
        {R"(std::make_unique\b)",
         "per-event heap allocation (std::make_unique) in an engine hot "
         "path; use the slab event pool, or annotate a one-time "
         "construction site with allow(engine-hot-path)"},
        {R"(std::make_shared\b)",
         "per-event heap allocation (std::make_shared) in an engine hot "
         "path; use the slab event pool, or annotate a one-time "
         "construction site with allow(engine-hot-path)"},
        {R"(\bnew\b)",
         "per-event heap allocation (new) in an engine hot path; use "
         "the slab event pool, write placement news as `::new (ptr)`, "
         "or annotate a one-time construction site with "
         "allow(engine-hot-path)"},
    }};
    const std::string& text = file.code;
    for (const auto& token : kTokens) {
      const std::regex re{token.pattern};
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), re};
           it != std::cregex_iterator{}; ++it) {
        const auto offset = static_cast<std::size_t>(it->position(0));
        if (token.pattern == std::string_view{R"(\bnew\b)"}) {
          std::size_t before = offset;
          while (before > 0 &&
                 (std::isspace(static_cast<unsigned char>(
                      text[before - 1])) != 0)) {
            --before;
          }
          const char prev = before > 0 ? text[before - 1] : '\0';
          // `#include <new>` names the header, not an allocation.
          if (prev == '<') continue;
          std::size_t after =
              offset + static_cast<std::size_t>(it->length(0));
          while (after < text.size() &&
                 (std::isspace(static_cast<unsigned char>(text[after])) !=
                  0)) {
            ++after;
          }
          // `::new (ptr) T` is placement construction into storage the
          // pool already owns — the pattern the pool itself relies on.
          if (prev == ':' && after < text.size() && text[after] == '(') {
            continue;
          }
        }
        report(file, offset, kRuleEngineHotPath, token.message);
      }
    }
  }

  // (8) nondeterministic-iteration, src/ only: a range-for whose range
  // expression mentions an identifier declared anywhere in src/ with
  // an unordered container type. Hash iteration order varies across
  // libstdc++ versions and (for pointer keys) across runs, so any such
  // loop whose effects are order-sensitive breaks the §5.6 determinism
  // contract. Loops that are genuinely order-independent (or sort
  // before consuming) carry `// lint: ordered` on or above the `for`.
  void collect_unordered_names() {
    if (!enabled(kRuleIteration)) return;
    static const std::regex decl{
        R"(std::unordered_(?:map|set|multimap|multiset)\s*<)"};
    for (const auto& file : files_) {
      if (file->rel.rfind("src/", 0) != 0) continue;
      const std::string& text = file->code;
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), decl};
           it != std::cregex_iterator{}; ++it) {
        // Balance the template argument list, then take the declared
        // (or accessor) identifier after it.
        std::size_t j = static_cast<std::size_t>(it->position(0)) +
                        static_cast<std::size_t>(it->length(0));
        int depth = 1;
        while (j < text.size() && depth > 0) {
          if (text[j] == '<') ++depth;
          if (text[j] == '>') --depth;
          ++j;
        }
        while (j < text.size() &&
               ((std::isspace(static_cast<unsigned char>(text[j])) != 0) ||
                text[j] == '&' || text[j] == '*')) {
          ++j;
        }
        std::size_t end = j;
        while (end < text.size() &&
               ((std::isalnum(static_cast<unsigned char>(text[end])) !=
                 0) ||
                text[end] == '_')) {
          ++end;
        }
        if (end > j &&
            (std::isdigit(static_cast<unsigned char>(text[j])) == 0)) {
          unordered_names_.insert(text.substr(j, end - j));
        }
      }
    }
  }

  void check_iteration(const FileContext& file) {
    if (file.rel.rfind("src/", 0) != 0 || unordered_names_.empty()) {
      return;
    }
    const std::set<std::size_t> ordered = parse_ordered_lines(file.source);
    static const std::regex for_head{R"(\bfor\s*\()"};
    static const std::regex ident{R"([A-Za-z_]\w*)"};
    const std::string& text = file.code;
    for (auto it = std::cregex_iterator{text.data(),
                                        text.data() + text.size(),
                                        for_head};
         it != std::cregex_iterator{}; ++it) {
      const auto offset = static_cast<std::size_t>(it->position(0));
      std::size_t open = offset + static_cast<std::size_t>(it->length(0));
      // Find the matching close paren and the top-level range `:`
      // (skipping `::`), if any.
      int depth = 1;
      std::size_t colon = std::string::npos;
      std::size_t close = open;
      for (std::size_t j = open; j < text.size() && depth > 0; ++j) {
        const char c = text[j];
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (depth == 0) {
          close = j;
          break;
        }
        if (c == ':' && depth == 1 && colon == std::string::npos) {
          const char prev = j > 0 ? text[j - 1] : '\0';
          const char next = j + 1 < text.size() ? text[j + 1] : '\0';
          if (prev != ':' && next != ':') colon = j;
        }
      }
      if (colon == std::string::npos || close <= colon) continue;
      const std::string range{text.substr(colon + 1, close - colon - 1)};
      for (auto id = std::sregex_iterator{range.begin(), range.end(),
                                          ident};
           id != std::sregex_iterator{}; ++id) {
        const std::string name = id->str();
        if (unordered_names_.count(name) == 0) continue;
        if (ordered.count(file.lines.line_of(offset)) != 0) break;
        report(file, offset, kRuleIteration,
               "range-for over unordered container `" + name +
                   "` has no deterministic order; iterate a sorted "
                   "copy, or annotate `// lint: ordered` when the "
                   "loop's effects are order-independent");
        break;
      }
    }
  }

  // (9) rng-discipline, everywhere except src/util/ (which implements
  // the seed-derived stream splitter everything else must use):
  // ambient entropy and wall-clock seeding make replay impossible.
  void check_rng(const FileContext& file) {
    if (file.rel.rfind("src/util/", 0) == 0) return;
    struct Token {
      const char* pattern;
      const char* message;
    };
    static const std::array<Token, 4> kTokens = {{
        {R"(\b(?:std::)?s?rand\s*\()",
         "C rand()/srand() is a hidden global stream; derive a "
         "util::rng stream from the run seed instead"},
        {R"(\bstd::random_device\b)",
         "std::random_device is ambient entropy and unreplayable; "
         "derive streams from the run seed (util::rng)"},
        {R"(\b(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\))",
         "wall-clock seeding breaks fixed-seed replay; derive streams "
         "from the run seed (util::rng)"},
        {R"(\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|)"
         R"(ranlux24(?:_base)?|ranlux48(?:_base)?|knuth_b)\s+)"
         R"([A-Za-z_]\w*\s*(?:;|\{\s*\}|\(\s*\)))",
         "default-constructed random engine hides its seed; seed "
         "explicitly from the run seed (util::rng)"},
    }};
    const std::string& text = file.code;
    for (const auto& token : kTokens) {
      const std::regex re{token.pattern};
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), re};
           it != std::cregex_iterator{}; ++it) {
        report(file, static_cast<std::size_t>(it->position(0)), kRuleRng,
               token.message);
      }
    }
  }

  // (10) lock-annotation, src/ + tools/ + bench/: raw std lock types
  // are invisible to clang's -Wthread-safety analysis, so all
  // production locking goes through the annotated util::Mutex wrapper.
  // Tests are exempt (they drive scenarios, not guarded state);
  // src/util/mutex.hpp is the one allowed definition site.
  void check_locks(const FileContext& file) {
    const bool in_scope = file.rel.rfind("src/", 0) == 0 ||
                          file.rel.rfind("tools/", 0) == 0 ||
                          file.rel.rfind("bench/", 0) == 0;
    if (!in_scope || file.rel == "src/util/mutex.hpp") return;
    static const std::regex re{
        R"(\bstd::(?:mutex|recursive_mutex|timed_mutex|)"
        R"(recursive_timed_mutex|shared_mutex|shared_timed_mutex|)"
        R"(lock_guard|unique_lock|scoped_lock|)"
        R"(condition_variable(?:_any)?)\b)"};
    const std::string& text = file.code;
    for (auto it = std::cregex_iterator{text.data(),
                                        text.data() + text.size(), re};
         it != std::cregex_iterator{}; ++it) {
      report(file, static_cast<std::size_t>(it->position(0)), kRuleLocks,
             it->str() + " is invisible to clang thread-safety "
                         "analysis; use util::Mutex / util::MutexLock / "
                         "util::CondVar (util/mutex.hpp), or annotate "
                         "unavoidable std interop with "
                         "allow(lock-annotation)");
    }
  }

  // (11) module-layering, src/ only: `#include "<layer>/..."` edges
  // must stay inside the DAG pinned in tools/layers.def, so a
  // convenience include can never quietly invert a layer boundary.
  void load_layers() {
    if (!enabled(kRuleLayering)) return;
    const fs::path path = options_.root / kLayersPath;
    const auto content = read_file(path);
    if (!content) return;  // opt-in file; absent = rule skipped
    std::map<std::string, std::set<std::string, std::less<>>,
             std::less<>>
        layers;
    std::istringstream in{*content};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) {
        result_.errors.push_back(
            path.generic_string() + ":" + std::to_string(line_no) +
            ": malformed layer line (want `<layer>: <dep>...`)");
        continue;
      }
      std::istringstream name_in{line.substr(0, colon)};
      std::string name;
      name_in >> name;
      std::istringstream deps{line.substr(colon + 1)};
      auto& into = layers[name];
      std::string dep;
      while (deps >> dep) into.insert(dep);
    }
    layers_ = std::move(layers);
  }

  void check_layering(const FileContext& file) {
    if (file.rel.rfind("src/", 0) != 0) return;
    const std::size_t slash = file.rel.find('/', 4);
    if (slash == std::string::npos) return;  // file directly in src/
    const std::string layer = file.rel.substr(4, slash - 4);
    const auto self = layers_->find(layer);
    if (self == layers_->end()) {
      if (layers_missing_.insert(layer).second) {
        result_.errors.push_back(
            "src/" + layer + "/ is not declared in " +
            std::string{kLayersPath} + "; add the layer and its "
            "dependencies");
      }
      return;
    }
    static const std::regex include{
        R"re(#\s*include\s*"([A-Za-z0-9_]+)/[^"]*")re"};
    const std::string& text = file.no_comment;
    for (auto it = std::cregex_iterator{text.data(),
                                        text.data() + text.size(),
                                        include};
         it != std::cregex_iterator{}; ++it) {
      const std::string target = (*it)[1].str();
      if (target == layer || layers_->count(target) == 0) continue;
      if (self->second.count(target) != 0) continue;
      report(file, static_cast<std::size_t>(it->position(0)),
             kRuleLayering,
             "include of \"" + target + "/...\" from layer `" + layer +
                 "` violates " + std::string{kLayersPath} +
                 "; declare the dependency there or invert the edge");
    }
  }

  // --- baseline -------------------------------------------------------

  // Accepted-debt ledger: findings whose fingerprint is listed are
  // suppressed (counted, not printed); entries that match nothing are
  // stale and become findings themselves, so the ledger ratchets
  // toward empty instead of fossilising.
  void apply_baseline() {
    if (options_.baseline.empty()) return;
    const auto content = read_file(options_.baseline);
    if (!content) {
      result_.errors.push_back("cannot read baseline " +
                               options_.baseline.generic_string());
      return;
    }
    struct Entry {
      std::size_t line = 0;
      std::string print;
      std::string rule;
      std::string path;
      bool used = false;
    };
    std::vector<Entry> entries;
    std::istringstream in{*content};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream fields{line};
      Entry entry;
      entry.line = line_no;
      if (!(fields >> entry.print)) continue;  // blank line
      if (!(fields >> entry.rule >> entry.path) ||
          entry.print.size() != 16 ||
          entry.print.find_first_not_of("0123456789abcdef") !=
              std::string::npos) {
        result_.errors.push_back(
            options_.baseline.generic_string() + ":" +
            std::to_string(line_no) +
            ": malformed baseline line (want `<fingerprint16> <rule> "
            "<path>`)");
        continue;
      }
      entries.push_back(std::move(entry));
    }
    std::vector<Finding> kept;
    kept.reserve(result_.findings.size());
    for (auto& finding : result_.findings) {
      bool suppressed = false;
      for (auto& entry : entries) {
        if (entry.print == finding.fingerprint) {
          entry.used = true;
          suppressed = true;
        }
      }
      if (suppressed) {
        ++result_.baseline_suppressed;
      } else {
        kept.push_back(std::move(finding));
      }
    }
    result_.findings = std::move(kept);
    const std::string rel = rel_of(options_.baseline);
    for (const auto& entry : entries) {
      if (entry.used) continue;
      result_.findings.push_back(
          {options_.baseline, entry.line, entry.rule,
           "baseline entry " + entry.print + " (" + entry.path +
               ") no longer matches any finding; delete the stale line",
           fingerprint(entry.rule, rel, "stale:" + entry.print)});
    }
  }

  // Registry entries nothing referenced: dead metrics/schemas drift
  // out of docs silently, so they are findings too.
  void finish_registries() {
    const auto flag_unused = [&](std::optional<Registry>& registry,
                                 std::string_view rule,
                                 std::string_view what) {
      if (!registry) return;
      for (const auto& entry : registry->entries) {
        if (entry.used) continue;
        result_.findings.push_back(
            {registry->file, entry.line, std::string{rule},
             std::string{what} + " \"" + entry.name +
                 "\" is registered but never used; delete the entry "
                 "or wire the instrumentation",
             fingerprint(rule, rel_of(registry->file),
                         entry.kind + " " + entry.name)});
      }
    };
    if (enabled(kRuleMetricNames)) {
      flag_unused(metric_registry_, kRuleMetricNames, "metric");
      flag_unused(trace_registry_, kRuleMetricNames, "trace event");
    }
    if (enabled(kRuleSchemaVersions)) {
      flag_unused(schema_registry_, kRuleSchemaVersions, "schema");
    }
  }

  // (4) exit-code-uniqueness: kExit* constants in tools/ must be
  // pairwise distinct and every value must appear (backticked) in the
  // README exit-code documentation.
  void check_exit_codes() {
    if (!enabled(kRuleExitCodes)) return;
    struct ExitCode {
      const FileContext* file;
      std::size_t offset;
      std::string name;
      int value;
    };
    static const std::regex re{
        R"(constexpr\s+int\s+(kExit\w*)\s*=\s*([0-9]+)\s*;)"};
    std::vector<ExitCode> codes;
    for (const auto& file : files_) {
      if (file->rel.rfind("tools/", 0) != 0) continue;
      const std::string& text = file->no_comment;
      for (auto it = std::cregex_iterator{text.data(),
                                          text.data() + text.size(), re};
           it != std::cregex_iterator{}; ++it) {
        codes.push_back({file.get(),
                         static_cast<std::size_t>(it->position(0)),
                         (*it)[1].str(), std::stoi((*it)[2].str())});
      }
    }
    for (std::size_t i = 0; i < codes.size(); ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (codes[i].value == codes[j].value &&
            codes[i].name != codes[j].name) {
          report(*codes[i].file, codes[i].offset, kRuleExitCodes,
                 codes[i].name + " reuses exit code " +
                     std::to_string(codes[i].value) + " already taken "
                     "by " + codes[j].name);
        }
      }
    }
    const auto readme = read_file(options_.root / "README.md");
    std::set<int> documented;
    if (readme) {
      static const std::regex doc{R"(`([0-9]{1,3})`)"};
      for (auto it = std::sregex_iterator{readme->begin(),
                                          readme->end(), doc};
           it != std::sregex_iterator{}; ++it) {
        documented.insert(std::stoi((*it)[1].str()));
      }
    }
    for (const auto& code : codes) {
      if (documented.count(code.value) != 0) continue;
      report(*code.file, code.offset, kRuleExitCodes,
             code.name + " = " + std::to_string(code.value) +
                 " is not documented in the README exit-code table");
    }

    // Registry sub-check (tools/exit_codes.def, optional): names and
    // values are pinned both ways, so adding a code — the discovery
    // "degraded" status being the motivating case — forces the
    // registry (and through it the docs review) in the same commit.
    const fs::path registry_path = options_.root / kExitCodeRegistryPath;
    const auto registry_text = read_file(registry_path);
    if (!registry_text) return;
    struct RegistryCode {
      std::size_t line;
      std::string name;
      int value;
      bool used = false;
    };
    std::vector<RegistryCode> registered;
    std::size_t line_no = 0;
    std::istringstream lines{*registry_text};
    for (std::string line; std::getline(lines, line);) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream fields{line};
      int value = 0;
      std::string name;
      if (!(fields >> value >> name)) continue;
      registered.push_back({line_no, name, value});
    }
    for (const auto& code : codes) {
      bool found = false;
      for (auto& entry : registered) {
        if (entry.name != code.name) continue;
        entry.used = true;
        found = true;
        if (entry.value != code.value) {
          report(*code.file, code.offset, kRuleExitCodes,
                 code.name + " = " + std::to_string(code.value) +
                     " disagrees with " +
                     std::string{kExitCodeRegistryPath} + " (" +
                     std::to_string(entry.value) + ")");
        }
      }
      if (!found) {
        report(*code.file, code.offset, kRuleExitCodes,
               code.name + " is not registered in " +
                   std::string{kExitCodeRegistryPath} +
                   "; add it in the same commit");
      }
    }
    for (const auto& entry : registered) {
      if (entry.used) continue;
      result_.findings.push_back(
          {registry_path, entry.line, std::string{kRuleExitCodes},
           "exit code \"" + entry.name +
               "\" is registered but no tools/ constant defines it; "
               "delete the entry or restore the constant",
           fingerprint(kRuleExitCodes, rel_of(registry_path),
                       entry.name)});
    }
  }

  // (6) committed build artifacts: what `git ls-files` says is
  // tracked, filtered by check_tracked_paths. Best effort — outside a
  // git checkout the rule is silently skipped.
  [[nodiscard]] std::vector<std::string> tracked_files() const {
    const std::string cmd = "git -C \"" + options_.root.string() +
                            "\" ls-files 2>/dev/null";
    const std::unique_ptr<std::FILE, int (*)(std::FILE*)> pipe{
        ::popen(cmd.c_str(), "r"), ::pclose};
    std::vector<std::string> out;
    if (!pipe) return out;
    std::string line;
    int c = 0;
    while ((c = std::fgetc(pipe.get())) != EOF) {
      if (c == '\n') {
        if (!line.empty()) out.push_back(std::move(line));
        line.clear();
      } else {
        line.push_back(static_cast<char>(c));
      }
    }
    if (!line.empty()) out.push_back(std::move(line));
    return out;
  }

  Options options_;
  LintResult result_;
  std::vector<std::unique_ptr<FileContext>> files_;
  std::optional<Registry> metric_registry_;
  std::optional<Registry> trace_registry_;
  std::optional<Registry> schema_registry_;
  /// Identifiers declared anywhere in src/ with an unordered container
  /// type (members, locals, params, accessor names).
  std::set<std::string, std::less<>> unordered_names_;
  /// tools/layers.def: layer -> allowed dependency layers. nullopt =
  /// no file, rule skipped.
  std::optional<std::map<std::string, std::set<std::string, std::less<>>,
                         std::less<>>>
      layers_;
  std::set<std::string, std::less<>> layers_missing_;
};

}  // namespace

std::vector<std::string_view> rule_names() {
  return {kRuleRawIo,         kRuleMetricNames,   kRuleSchemaVersions,
          kRuleExitCodes,     kRuleHeaderHygiene, kRuleBuildArtifacts,
          kRuleEngineHotPath, kRuleIteration,     kRuleRng,
          kRuleLocks,         kRuleLayering};
}

std::string_view rule_description(std::string_view rule) {
  if (rule == kRuleRawIo) {
    return "artifact writes route through util::write_file_atomic and "
           "src/ reads through the util::io fault shim";
  }
  if (rule == kRuleMetricNames) {
    return "metric and trace-event name literals match src/obs/"
           "metric_names.def / trace_names.def, both directions";
  }
  if (rule == kRuleSchemaVersions) {
    return "peerscope.<thing>/<n> schema strings match "
           "src/obs/schema_versions.def exactly";
  }
  if (rule == kRuleExitCodes) {
    return "kExit* constants in tools/ stay unique, README-documented, "
           "and pinned in tools/exit_codes.def";
  }
  if (rule == kRuleHeaderHygiene) {
    return "headers carry #pragma once and never using-namespace";
  }
  if (rule == kRuleBuildArtifacts) {
    return "build trees, objects, and generated databases are never "
           "committed";
  }
  if (rule == kRuleEngineHotPath) {
    return "no std::priority_queue or per-event heap allocation in "
           "src/sim and src/p2p (DESIGN.md section 14)";
  }
  if (rule == kRuleIteration) {
    return "range-for over an unordered container in src/ needs a "
           "`// lint: ordered` order-independence annotation";
  }
  if (rule == kRuleRng) {
    return "no rand()/std::random_device/wall-clock seeding or "
           "default-constructed engines outside src/util";
  }
  if (rule == kRuleLocks) {
    return "raw std lock types bypass the annotated util::Mutex "
           "wrapper that clang thread-safety analysis checks";
  }
  if (rule == kRuleLayering) {
    return "src/ #include edges stay inside the layer DAG pinned in "
           "tools/layers.def";
  }
  return {};
}

std::string fingerprint(std::string_view rule, std::string_view rel_path,
                        std::string_view key) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::string_view text) {
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;  // FNV prime
    }
    hash *= 1099511628211ull;  // NUL separator (xor with 0 is a no-op)
  };
  mix(rule);
  mix(rel_path);
  mix(key);
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = "0123456789abcdef"[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::string to_string(const Finding& finding) {
  std::string out = finding.file.generic_string();
  if (finding.line != 0) {
    out += ":" + std::to_string(finding.line);
  }
  out += ": [" + finding.rule + "] " + finding.message;
  return out;
}

std::string code_view(std::string_view source) {
  return make_view(source, /*keep_strings=*/false);
}

std::string no_comment_view(std::string_view source) {
  return make_view(source, /*keep_strings=*/true);
}

std::vector<Finding> check_tracked_paths(
    const std::vector<std::string>& tracked) {
  std::vector<Finding> out;
  // build/ and build-<variant>/ only — a directory that merely starts
  // with "build" (builders/) is not a build tree.
  static const std::regex build_dir{R"(^build(-[^/]*)?/)"};
  for (const auto& path : tracked) {
    std::string why;
    const std::size_t slash = path.rfind('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (std::regex_search(path, build_dir)) {
      why = "build tree is committed; add it to .gitignore and "
            "git rm -r --cached it";
    } else if (path.size() >= 2 &&
               (path.compare(path.size() - 2, 2, ".o") == 0 ||
                path.compare(path.size() - 2, 2, ".a") == 0)) {
      why = "compiled object/archive is committed";
    } else if (base == "compile_commands.json") {
      why = "generated compile database is committed";
    } else if (base == "core") {
      why = "core dump is committed";
    }
    if (!why.empty()) {
      std::string print = fingerprint(kRuleBuildArtifacts, path, why);
      out.push_back({path, 0, std::string{kRuleBuildArtifacts},
                     std::move(why), std::move(print)});
    }
  }
  return out;
}

LintResult run(const Options& options) { return Linter{options}.run(); }

namespace {

[[nodiscard]] std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const LintResult& result,
                     const std::filesystem::path& root) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"peerscope-lint\",\n"
      "          \"rules\": [\n";
  const auto rules = rule_names();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i]) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rule_description(rules[i])) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& finding = result.findings[i];
    std::error_code ec;
    std::filesystem::path rel =
        std::filesystem::relative(finding.file, root, ec);
    if (ec || rel.empty()) rel = finding.file;
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(finding.rule) +
           "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" +
           json_escape(finding.message) + "\"},\n";
    out += "          \"partialFingerprints\": {\"peerscopeLint/v1\": \"" +
           json_escape(finding.fingerprint) + "\"},\n";
    out += "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(rel.generic_string()) + "\"}";
    if (finding.line != 0) {
      out += ", \"region\": {\"startLine\": " +
             std::to_string(finding.line) + "}";
    }
    out += "}}]\n";
    out += i + 1 < result.findings.size() ? "        },\n"
                                          : "        }\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace peerscope::lint
