// peerscope-lint: the project-invariant static analysis pass.
//
// PRs 1–3 established repo-wide contracts that the compiler cannot
// see: artifact writes go through util::write_file_atomic, metric and
// span names match src/obs/metric_names.def and trace event names
// match src/obs/trace_names.def (both directions, both under the
// metric-name-registry rule), `peerscope.<thing>/<n>` schema strings
// match src/obs/schema_versions.def, CLI exit codes stay unique and
// documented, and headers follow the house hygiene rules. This library walks the tree and enforces each contract as a
// named, suppressible rule (DESIGN.md §11); `tools/peerscope_lint.cpp`
// is the CLI, `tests/lint/` the fixture suite, and the `lint` ctest
// label runs both over the real tree.
//
// Suppression syntax, checked per rule name:
//   // peerscope-lint: allow(<rule>[, <rule>...])       one line
//   // peerscope-lint: allow-file(<rule>[, <rule>...])  whole file
// An `allow` on a line with no code applies to the next line instead.
#pragma once

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace peerscope::lint {

// Rule identifiers (the names accepted by allow(...) and --rule).
inline constexpr std::string_view kRuleRawIo = "no-raw-artifact-io";
inline constexpr std::string_view kRuleMetricNames = "metric-name-registry";
inline constexpr std::string_view kRuleSchemaVersions =
    "schema-version-consistency";
inline constexpr std::string_view kRuleExitCodes = "exit-code-uniqueness";
inline constexpr std::string_view kRuleHeaderHygiene = "header-hygiene";
inline constexpr std::string_view kRuleBuildArtifacts =
    "no-committed-build-artifacts";
inline constexpr std::string_view kRuleEngineHotPath = "engine-hot-path";
inline constexpr std::string_view kRuleIteration =
    "nondeterministic-iteration";
inline constexpr std::string_view kRuleRng = "rng-discipline";
inline constexpr std::string_view kRuleLocks = "lock-annotation";
inline constexpr std::string_view kRuleLayering = "module-layering";

/// All rule names, in reporting order.
[[nodiscard]] std::vector<std::string_view> rule_names();

/// One-line summary of what a rule enforces (for --list-rules and the
/// SARIF rule table). Unknown names get an empty view.
[[nodiscard]] std::string_view rule_description(std::string_view rule);

/// One diagnostic. `line` is 1-based; 0 means the finding is about the
/// file (or tree) as a whole rather than a specific line.
struct Finding {
  std::filesystem::path file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// Stable identity for baselining: FNV-1a 64 of
  /// rule NUL rel-path NUL trimmed-line-text, as 16 lowercase hex
  /// digits. Line-number independent, so edits elsewhere in the file
  /// never stale a baseline entry; two identical offending lines in
  /// one file share a fingerprint (one entry suppresses both).
  std::string fingerprint;
};

/// "file:line: [rule] message" — the format CI greps and humans click.
[[nodiscard]] std::string to_string(const Finding& finding);

struct Options {
  /// Repository root; registries and README.md are resolved under it.
  std::filesystem::path root;
  /// Rules to run; empty means all. Unknown names are config errors.
  std::set<std::string, std::less<>> rules;
  /// Gates the git-backed no-committed-build-artifacts rule (tests
  /// drive check_tracked_paths directly instead).
  bool check_tracked = true;
  /// Baseline file (`<fingerprint> <rule> <path>` per line, `#`
  /// comments). Matching findings are suppressed and counted in
  /// baseline_suppressed; entries that match nothing become stale-entry
  /// findings so the baseline can only shrink. Empty = no baseline.
  std::filesystem::path baseline;
};

struct LintResult {
  std::vector<Finding> findings;
  /// Configuration problems (missing registry, unknown rule): the tree
  /// was not fully checked and the caller should exit 2, not 1.
  std::vector<std::string> errors;
  /// Findings swallowed by Options::baseline (not in `findings`).
  std::size_t baseline_suppressed = 0;
};

/// Walks src/, tools/, bench/, tests/, examples/ under options.root
/// (skipping tests/lint/fixtures/, which violate rules on purpose) and
/// returns every unsuppressed finding, sorted by file then line.
[[nodiscard]] LintResult run(const Options& options);

// --- building blocks, exposed for the fixture tests ---

/// `source` with comment and string/char-literal *contents* blanked to
/// spaces (newlines kept, so line numbers survive). Token scans run on
/// this view, which is why a banned token inside a string or comment —
/// including this linter's own rule table — never fires.
[[nodiscard]] std::string code_view(std::string_view source);

/// Like code_view but keeps string literals: the view the metric-name
/// and schema scanners use, so names in comments don't count as uses.
[[nodiscard]] std::string no_comment_view(std::string_view source);

/// The no-committed-build-artifacts core: flags tracked paths under
/// build*/ plus object/archive/ccdb droppings. `tracked` is one
/// repo-relative path per entry (what `git ls-files` prints).
[[nodiscard]] std::vector<Finding> check_tracked_paths(
    const std::vector<std::string>& tracked);

/// The Finding::fingerprint hash, exposed so tests (and baseline
/// tooling) can compute expected values: FNV-1a 64 over
/// `rule NUL rel_path NUL key`, rendered as 16 lowercase hex digits.
/// `key` is the trimmed offending line for line findings, the message
/// for file-level ones.
[[nodiscard]] std::string fingerprint(std::string_view rule,
                                      std::string_view rel_path,
                                      std::string_view key);

/// SARIF 2.1.0 rendering of a completed run: one run, the full rule
/// table (id + shortDescription), one result per finding with
/// level "error", the fingerprint under partialFingerprints, and
/// file URIs relative to `root`. Line-0 findings omit the region.
[[nodiscard]] std::string to_sarif(const LintResult& result,
                                   const std::filesystem::path& root);

}  // namespace peerscope::lint
