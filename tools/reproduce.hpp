// `peerscope reproduce`: one command that reruns every experiment and
// writes a self-contained markdown report with paper-vs-measured rows
// for all tables and figures — the repository's headline artifact.
#pragma once

#include <cstdint>
#include <filesystem>

namespace peerscope::tools {

struct ReproduceOptions {
  std::filesystem::path output = "REPORT.md";
  std::int64_t seconds = 300;
  std::uint64_t seed = 42;
};

/// Returns the process exit code.
int reproduce(const ReproduceOptions& options);

}  // namespace peerscope::tools
