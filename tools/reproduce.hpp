// `peerscope reproduce`: one command that reruns every experiment and
// writes a self-contained markdown report with paper-vs-measured rows
// for all tables and figures — the repository's headline artifact.
//
// Runs are supervised (exp/supervisor.hpp): a failing or timed-out
// application no longer aborts the whole reproduction — the report
// aggregates whatever succeeded, marks the missing rows, and the
// process exits with kExitPartialSuccess. Completed runs are journaled
// next to the output file so `--resume` after a crash skips them and
// still produces a byte-identical report.
#pragma once

#include <cstdint>
#include <filesystem>

namespace peerscope::tools {

/// Some applications produced results, at least one did not. Distinct
/// from 1 (nothing usable / runtime error) so CI and scripts can keep
/// a partial report while still flagging the gap.
inline constexpr int kExitPartialSuccess = 5;

struct ReproduceOptions {
  std::filesystem::path output = "REPORT.md";
  std::int64_t seconds = 300;
  std::uint64_t seed = 42;
  /// Extra attempts per failing run (exp::SupervisorConfig::retries).
  int retries = 0;
  /// Per-attempt wall-clock deadline in seconds; 0 disables.
  double deadline_s = 0.0;
  /// Replay the journal next to `output` and skip finished runs.
  bool resume = false;
};

/// Returns the process exit code: 0 all runs ok, kExitPartialSuccess
/// when only some applications produced results, 1 when none did.
int reproduce(const ReproduceOptions& options);

}  // namespace peerscope::tools
