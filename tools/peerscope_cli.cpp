// peerscope — command-line front end.
//
//   peerscope testbed
//       Print the Table I testbed.
//   peerscope run --app <name> [--seed N] [--duration S] --out DIR
//                 [--pcap] [--csv]
//       Run one experiment, store per-probe traces plus the experiment
//       metadata sidecar needed for offline analysis.
//   peerscope analyze DIR
//       Reload stored traces + metadata and print the full analysis
//       (summary, self-bias, awareness table) — the paper's pipeline
//       applied to on-disk captures.
//   peerscope report --app <name> [--seed N] [--duration S]
//       Run and analyse in one step without storing traces.
//   peerscope reproduce [--out FILE] [--seed N] [--duration S]
//       Rerun every experiment and write a markdown report with
//       paper-vs-measured rows for all tables and figures.
//
// Apps: pplive | sopcast | tvants | pplive-popular | napawine-proto

#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "aware/observation.hpp"
#include "aware/report.hpp"
#include "exp/metadata.hpp"
#include "exp/runner.hpp"
#include "exp/testbed.hpp"
#include "net/topology.hpp"
#include "p2p/swarm.hpp"
#include "tools/reproduce.hpp"
#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "util/table.hpp"

using namespace peerscope;

namespace {

int usage() {
  std::cerr <<
      R"(usage:
  peerscope testbed
  peerscope run --app <name> [--seed N] [--duration S] --out DIR [--pcap] [--csv]
  peerscope analyze DIR
  peerscope report --app <name> [--seed N] [--duration S]
  peerscope reproduce [--out FILE] [--seed N] [--duration S]

apps: pplive | sopcast | tvants | pplive-popular | napawine-proto
)";
  return 2;
}

std::optional<p2p::SystemProfile> profile_by_name(const std::string& name) {
  if (name == "pplive") return p2p::SystemProfile::pplive();
  if (name == "sopcast") return p2p::SystemProfile::sopcast();
  if (name == "tvants") return p2p::SystemProfile::tvants();
  if (name == "pplive-popular") return p2p::SystemProfile::pplive_popular();
  if (name == "napawine-proto") {
    return p2p::SystemProfile::napawine_prototype();
  }
  return std::nullopt;
}

struct RunArgs {
  p2p::SystemProfile profile;
  std::uint64_t seed = 42;
  std::int64_t duration_s = 120;
  std::filesystem::path out;
  bool pcap = false;
  bool csv = false;
};

std::optional<RunArgs> parse_run_args(int argc, char** argv, int first) {
  RunArgs args;
  bool have_app = false;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--app") {
      const char* name = value();
      if (!name) return std::nullopt;
      const auto profile = profile_by_name(name);
      if (!profile) {
        std::cerr << "unknown app: " << name << '\n';
        return std::nullopt;
      }
      args.profile = *profile;
      have_app = true;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--duration") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.duration_s = std::atoll(v);
      if (args.duration_s <= 0) return std::nullopt;
    } else if (flag == "--out") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.out = v;
    } else if (flag == "--pcap") {
      args.pcap = true;
    } else if (flag == "--csv") {
      args.csv = true;
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  if (!have_app) {
    std::cerr << "--app is required\n";
    return std::nullopt;
  }
  return args;
}

void print_analysis(const aware::ExperimentObservations& data) {
  const auto summary = aware::summarize(data);
  util::TextTable overview{{"metric", "mean", "max"}};
  overview.add_row({"stream RX [kbps]",
                    util::TextTable::num(summary.rx_kbps_mean, 0),
                    util::TextTable::num(summary.rx_kbps_max, 0)});
  overview.add_row({"stream TX [kbps]",
                    util::TextTable::num(summary.tx_kbps_mean, 0),
                    util::TextTable::num(summary.tx_kbps_max, 0)});
  overview.add_row({"peers / probe",
                    util::TextTable::num(summary.all_peers_mean, 0),
                    util::TextTable::count(summary.all_peers_max)});
  overview.add_row({"RX contributors / probe",
                    util::TextTable::num(summary.contrib_rx_mean, 0),
                    util::TextTable::count(summary.contrib_rx_max)});
  overview.add_row(
      {"observed peers", util::TextTable::count(summary.observed_total), ""});
  std::cout << '\n' << data.app << " overview:\n" << overview.render();

  const auto bias = aware::self_bias(data);
  std::cout << "\nself-induced bias (contributors): peers "
            << util::TextTable::num(bias.contributors_peer_pct) << "%, bytes "
            << util::TextTable::num(bias.contributors_bytes_pct) << "%\n";

  const auto rows = aware::awareness_table(data);
  util::TextTable awareness{
      {"net", "B'D%", "P'D%", "BD%", "PD%", "B'U%", "P'U%", "BU%", "PU%"}};
  const auto cell = [](const std::optional<double>& v) {
    return v ? util::TextTable::num(*v) : std::string{"-"};
  };
  for (const auto& row : rows) {
    awareness.add_row({aware::to_string(row.metric),
                       cell(row.download.b_prime_pct),
                       cell(row.download.p_prime_pct),
                       cell(row.download.b_pct), cell(row.download.p_pct),
                       cell(row.upload.b_prime_pct),
                       cell(row.upload.p_prime_pct), cell(row.upload.b_pct),
                       cell(row.upload.p_pct)});
  }
  std::cout << "\nnetwork awareness:\n" << awareness.render();
}

int cmd_testbed() {
  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();
  util::TextTable table{{"Host", "Site", "CC", "AS", "Access", "Nat", "FW"}};
  for (const auto& row : testbed.rows(topo)) {
    table.add_row({row.hosts, row.site, row.country, row.as_label,
                   row.access, row.nat ? "Y" : "-",
                   row.firewall ? "Y" : "-"});
  }
  std::cout << table.render();
  return 0;
}

int cmd_run(const RunArgs& args) {
  if (args.out.empty()) {
    std::cerr << "--out is required for run\n";
    return 2;
  }
  std::filesystem::create_directories(args.out);

  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();
  p2p::SwarmConfig config;
  config.profile = args.profile;
  config.seed = args.seed;
  config.duration = util::SimTime::seconds(args.duration_s);
  config.keep_records = true;

  std::cerr << "running " << config.profile.name << " (seed " << args.seed
            << ", " << args.duration_s << " s)...\n";
  p2p::Swarm swarm{topo, testbed.probes(), config};
  swarm.run();

  const auto& population = swarm.population();
  exp::ExperimentMetadata meta;
  meta.app = config.profile.name;
  meta.duration = config.duration;
  meta.announcements = population.registry().dump();

  std::uint64_t packets = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const auto& info = population.peer(population.probe_ids()[i]);
    const auto label = population.probe_specs()[i].label();
    meta.probes.push_back({info.ep.addr, info.ep.as, info.ep.country,
                           info.access.is_high_bandwidth(), label});
    auto records = swarm.sink(i).records();
    std::sort(records.begin(), records.end(), trace::record_before);
    trace::write_trace(
        args.out / exp::ExperimentMetadata::trace_filename(label),
        swarm.sink(i).probe(), records);
    if (args.pcap) {
      trace::write_pcap(args.out / (label + ".pcap"), swarm.sink(i).probe(),
                        records);
    }
    if (args.csv) {
      trace::write_trace_csv(args.out / (label + ".csv"),
                             swarm.sink(i).probe(), records);
    }
    packets += records.size();
  }
  write_metadata(args.out / "experiment.meta", meta);
  std::cerr << "wrote " << swarm.probe_count() << " traces ("
            << util::TextTable::count(packets) << " packets) + metadata to "
            << args.out << '\n';
  return 0;
}

int cmd_analyze(const std::filesystem::path& dir) {
  const auto meta = exp::read_metadata(dir / "experiment.meta");
  const auto registry = meta.build_registry();
  const auto napa = meta.napa_set();

  aware::ExperimentObservations data;
  data.app = meta.app;
  data.duration = meta.duration;
  data.probes = meta.probes;
  for (const auto& probe : meta.probes) {
    const auto file = trace::read_trace(
        dir / exp::ExperimentMetadata::trace_filename(probe.label));
    data.per_probe.push_back(aware::extract_observations(
        trace::FlowTable::from_records(file.probe, file.records), registry,
        napa));
  }
  print_analysis(data);
  return 0;
}

int cmd_report(const RunArgs& args) {
  const net::AsTopology topo = net::make_reference_topology();
  exp::RunSpec spec;
  spec.profile = args.profile;
  spec.seed = args.seed;
  spec.duration = util::SimTime::seconds(args.duration_s);
  std::cerr << "running " << spec.profile.name << " (seed " << args.seed
            << ", " << args.duration_s << " s)...\n";
  const auto result = exp::run_experiment(topo, spec);
  print_analysis(result.observations);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "testbed") return cmd_testbed();
    if (command == "run") {
      const auto args = parse_run_args(argc, argv, 2);
      return args ? cmd_run(*args) : usage();
    }
    if (command == "analyze") {
      if (argc != 3) return usage();
      return cmd_analyze(argv[2]);
    }
    if (command == "report") {
      const auto args = parse_run_args(argc, argv, 2);
      return args ? cmd_report(*args) : usage();
    }
    if (command == "reproduce") {
      tools::ReproduceOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (flag == "--out" && value) {
          options.output = value;
          ++i;
        } else if (flag == "--seed" && value) {
          options.seed = std::strtoull(value, nullptr, 10);
          ++i;
        } else if (flag == "--duration" && value) {
          options.seconds = std::atoll(value);
          ++i;
        } else {
          return usage();
        }
      }
      return tools::reproduce(options);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return usage();
}
