// peerscope — command-line front end.
//
//   peerscope testbed
//       Print the Table I testbed.
//   peerscope run --app <name> [--seed N] [--duration S] --out DIR
//                 [--trace-format classic|binary] [--pcap] [--csv]
//                 [supervision flags] [fault flags]
//       Run one experiment, store per-probe traces plus the experiment
//       metadata sidecar needed for offline analysis. Injected faults
//       are recorded in the sidecar. The run is supervised: failures
//       are retried per --retries, --deadline cuts off an overlong
//       simulation, and completion is journaled in
//       DIR/experiment.journal so --resume skips an already-finished
//       run after a crash.
//   peerscope analyze DIR [--salvage]
//       Reload stored traces + metadata and print the full analysis
//       (summary, self-bias, awareness table) — the paper's pipeline
//       applied to on-disk captures. --salvage recovers what it can
//       from corrupt/truncated traces instead of aborting. A missing,
//       empty, or un-analyzable capture directory exits with code 6.
//   peerscope report --app <name> [--seed N] [--duration S]
//                    [supervision flags] [fault flags]
//       Run and analyse in one step without storing traces.
//   peerscope reproduce [--out FILE] [--seed N] [--duration S]
//                       [supervision flags]
//       Rerun every experiment and write a markdown report with
//       paper-vs-measured rows for all tables and figures. Supervised:
//       an application that fails or times out is marked in the report
//       instead of aborting the batch, and the process exits 5
//       (partial success). The journal lands next to the report file;
//       --resume skips finished applications and the resumed report is
//       byte-identical to an uninterrupted one.
//
// Supervision flags (run/report/reproduce; all default to off):
//   --retries N       extra attempts after a failed run (not after a
//                     deadline timeout), exponential backoff + jitter
//   --deadline S      per-attempt wall-clock deadline in seconds,
//                     enforced cooperatively between simulation events
//   --resume          replay the journal; skip runs whose results are
//                     already durably recorded (run/reproduce only)
//
// Fault flags (run/report; all default to off):
//   --loss P          per-packet loss probability (0..1)
//   --loss-burst N    mean loss burst length in packets (Gilbert–Elliott)
//   --reorder P       capture reordering probability
//   --dup P           capture duplication probability
//   --outage R        transient link outages per second (per receiver)
//   --outage-ms MS    outage duration
//   --churn S         mean probe online session (s); probes crash/rejoin
//   --bg-churn S      mean background-peer online session (s)
//   --nat-fail P      P(contact to NAT'd/firewalled peer fails)
//
// Discovery flags (run/report; all default to off — the legacy inline
// tracker path stays byte-identical without them):
//   --discovery B         primary backend: tracker | dht | gossip
//   --fallback B          failover backend after consecutive primary
//                         failures (requires --discovery)
//   --tracker-outage-at S tracker hard-outage start (s into the run)
//   --tracker-outage-for S  tracker hard-outage duration (s)
//   --rejoin-deadline S   re-join SLO: any probe whose discovery
//                         re-join exceeds S seconds degrades the run
//                         to exit code 8 (flight recorder dumped)
//   --nat-matrix F        arm the NAT traversal matrix; F = fraction
//                         of NAT'd peers that are symmetric (0..1)
//   --flash-crowd N       channel-zap flash crowd of N arrivals
//   --flash-crowd-at S    flash-crowd instant (default 1/3 into run)
//   --zap-reuse P         known-peer fraction kept across the zap
//   --session-tail A      Pareto shape for heavy-tailed sessions
//                         (> 1 arms it; 0 keeps exponential draws)
//
// Apps: pplive | sopcast | tvants | pplive-popular | napawine-proto
//
// Global flags (any command):
//   --metrics PATH    write the observability sidecar (metrics.json) to
//                     PATH at exit; e.g. `--metrics traces/metrics.json`
//                     next to experiment.meta. Without the flag no
//                     registry is installed and instrumentation is
//                     no-op (DESIGN.md §9).
//   --trace PATH      record a structured event timeline and write it
//                     as Chrome-trace-compatible trace.json at exit
//                     (schema peerscope.trace/1, DESIGN.md §12); read
//                     it with `peerscope trace-summary`, about:tracing,
//                     or ui.perfetto.dev. Without the flag no recorder
//                     is installed and the hooks are no-op.
//   --io-faults SPEC  install a deterministic storage fault schedule
//                     (DESIGN.md §15 grammar, e.g.
//                     "enospc@4096:trace.bin,fsync-fail#2"); every
//                     file peerscope reads or writes routes through
//                     the injectable shim. Also via env
//                     PEERSCOPE_IO_FAULTS (flag wins). A malformed
//                     schedule exits 4.
//   --io-faults-seed N  seed for fault offsets the schedule leaves
//                     unset (env PEERSCOPE_IO_FAULTS_SEED).
//
// run --trace-format: `classic` (default) writes the fixed-record
// PSCT format; `binary` writes the checksummed record-framed PSBT
// format (per-record CRC-32C + sync markers, DESIGN.md §15). analyze
// sniffs each trace's magic, so mixed captures load fine either way.
//
// trace-summary: `peerscope trace-summary PATH [--top N]
// [--deterministic]` profiles a trace.json — per-span-path self/total
// wall time, sorted by self time ("--top N" rows, default 20), plus a
// counter-event section (totals and last values per counter name);
// --deterministic prints the canonical reproducible rendering
// instead (what CI diffs across fixed-seed runs).
//
// watch: `peerscope watch STATUS.json [--once] [--interval-ms N]`
// tails the atomically-rewritten status file a supervised run
// publishes via --watch-status: per-run supervisor state, attempts,
// events/s, sim time, and ETA. Re-renders until the batch phase turns
// "done" (--once prints a single snapshot). Reads are torn-free
// because every status rewrite is an atomic rename.
//
// timeline: `peerscope timeline SERIES.psts [--csv] [--deterministic]
// [--salvage]` renders a PSTS time-series sidecar (written via the
// global --series flag) as markdown (default), long-form CSV, or the
// canonical deterministic rendering CI diffs across pool sizes.
// --salvage recovers every interval outside damaged regions instead
// of aborting on a corrupt file (exit 7).
//
// Supervised runs accept declarative SLOs (DESIGN.md §17): an
// events/s floor (--slo-events-floor), a sim-time stall window
// (--slo-stall), and a discovery rejoin-latency p99 ceiling
// (--slo-rejoin-p99-ms). A watchdog thread polls live progress and a
// sustained violation cancels the run, dumps the flight recorder
// (journaled runs), and exits 10.
//
// bench-diff: `peerscope bench-diff COMMITTED FRESH [--budget-pct P]`
// diffs a fresh PEERSCOPE_BENCH_JSON document against the committed
// bench/trajectory/BENCH_<name>.json snapshot. A wall-time increase
// or events/sec drop beyond the budget (default 15%) exits 9 — the
// CI perf gate, overridable only via the documented
// `perf-regression-ok` PR label.
//
// bench-trajectory: `peerscope bench-trajectory PATH...` renders
// bench snapshots (files, or a directory holding BENCH_*.json) as a
// markdown table — what CI appends to $GITHUB_STEP_SUMMARY.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error,
//             3 unknown application, 4 invalid flag value,
//             5 partial success (some supervised runs produced no
//               result; the report marks them), 6 bad capture
//               directory (analyze), 7 bad trace file
//               (trace-summary: unreadable, wrong schema, or no
//               salvageable events), 8 degraded (the run completed
//               but a discovery re-join missed --rejoin-deadline),
//             9 bench regression (bench-diff: past --budget-pct).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "aware/observation.hpp"
#include "aware/report.hpp"
#include "bench_gate.hpp"
#include "exp/capture.hpp"
#include "exp/metadata.hpp"
#include "exp/runner.hpp"
#include "exp/supervisor.hpp"
#include "exp/testbed.hpp"
#include "net/topology.hpp"
#include "exp/journal.hpp"
#include "exp/status.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_summary.hpp"
#include "obs/watchdog.hpp"
#include "p2p/swarm.hpp"
#include "tools/reproduce.hpp"
#include "trace/binary_format.hpp"
#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "util/io_faults.hpp"
#include "util/table.hpp"

using namespace peerscope;

namespace {

// Exit codes (documented in the header comment): every argument-error
// path prints the usage text and returns a distinct nonzero code so
// scripts can tell "you typed it wrong" (2) from "no such app" (3)
// from "value out of range" (4); 1 is reserved for runtime failures.
constexpr int kExitUsage = 2;
constexpr int kExitUnknownApp = 3;
constexpr int kExitBadValue = 4;
constexpr int kExitPartial = tools::kExitPartialSuccess;  // 5
constexpr int kExitBadCapture = 6;
constexpr int kExitBadTrace = 7;
// A run that finished the simulation but missed its discovery re-join
// SLO (exp::DiscoveryDegraded): distinct from 1 so the CI outage smoke
// can tell "degraded as designed" from a genuine crash.
constexpr int kExitDegraded = 8;
// bench-diff found a wall-time or events/sec regression past the
// budget: distinct from 1 so the CI bench gate (and its
// deliberate-regression dry run) can assert "the gate fired" rather
// than "something crashed".
constexpr int kExitBenchRegression = 9;
// The SLO watchdog cancelled a run after a sustained violation of a
// declared objective (events/s floor, sim-time stall, rejoin p99
// ceiling): distinct from 1 and from 8 so the CI watch smoke can
// assert "the watchdog fired" rather than "something crashed".
constexpr int kExitSloViolation = 10;

int usage(int code = kExitUsage) {
  std::cerr <<
      R"(usage:
  peerscope testbed
  peerscope run --app <name> [--seed N] [--duration S] --out DIR [--trace-format classic|binary] [--pcap] [--csv] [supervision] [fault flags]
  peerscope analyze DIR [--salvage]
  peerscope report --app <name> [--seed N] [--duration S] [supervision] [fault flags]
  peerscope reproduce [--out FILE] [--seed N] [--duration S] [supervision]
  peerscope trace-summary PATH [--top N] [--deterministic]
  peerscope watch STATUS.json [--once] [--interval-ms N]
  peerscope timeline SERIES.psts [--csv] [--deterministic] [--salvage]
  peerscope bench-diff COMMITTED FRESH [--budget-pct P]
  peerscope bench-trajectory PATH...

supervision: --retries N  --deadline S  --resume
             --watch-status PATH  (publish live status.json for `watch`)
             --slo-events-floor X  --slo-stall S  --slo-rejoin-p99-ms M
             (declarative SLOs; sustained violation cancels -> exit 10)
fault flags: --loss P  --loss-burst N  --reorder P  --dup P
             --outage R  --outage-ms MS  --churn S  --bg-churn S  --nat-fail P
discovery:   --discovery <tracker|dht|gossip>  --fallback <tracker|dht|gossip>
             --tracker-outage-at S  --tracker-outage-for S
             --rejoin-deadline S  --nat-matrix F  --flash-crowd N
             --flash-crowd-at S  --zap-reuse P  --session-tail A
global flags: --metrics PATH   (write metrics.json sidecar at exit)
              --trace PATH     (write trace.json event timeline at exit)
              --series PATH    (write the PSTS time-series sidecar at
                                exit; read it with `peerscope timeline`)
              --series-interval S  (sampling grid in sim seconds,
                                default 10; requires --series)
              --io-faults SPEC [--io-faults-seed N]
                               (inject storage faults, DESIGN.md §15)

exit codes: 0 ok, 1 runtime error, 2 usage, 3 unknown app, 4 bad value,
            5 partial success, 6 bad capture directory, 7 bad trace file,
            8 degraded (discovery re-join missed --rejoin-deadline),
            9 bench regression (bench-diff past --budget-pct),
            10 SLO violation (watchdog cancelled a supervised run)

apps: pplive | sopcast | tvants | pplive-popular | napawine-proto
)";
  return code;
}

std::optional<p2p::SystemProfile> profile_by_name(const std::string& name) {
  if (name == "pplive") return p2p::SystemProfile::pplive();
  if (name == "sopcast") return p2p::SystemProfile::sopcast();
  if (name == "tvants") return p2p::SystemProfile::tvants();
  if (name == "pplive-popular") return p2p::SystemProfile::pplive_popular();
  if (name == "napawine-proto") {
    return p2p::SystemProfile::napawine_prototype();
  }
  return std::nullopt;
}

struct RunArgs {
  p2p::SystemProfile profile;
  std::uint64_t seed = 42;
  std::int64_t duration_s = 120;
  std::filesystem::path out;
  bool binary_trace = false;
  bool pcap = false;
  bool csv = false;
  int retries = 0;
  double deadline_s = 0.0;
  bool resume = false;
  // Declarative SLOs + live status publishing (DESIGN.md §17).
  obs::SloSpec slo;
  std::filesystem::path status_path;
  sim::ImpairmentSpec impairment;
  p2p::ChurnSpec churn;
  p2p::DiscoverySpec discovery;
};

/// Strict numeric parse: the whole token must be a number in
/// [lo, hi]. nullopt (-> exit 4) otherwise — a mistyped probability
/// must not silently become 0.
std::optional<double> parse_double(const char* text, double lo, double hi) {
  if (!text || !*text) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < lo || v > hi) return std::nullopt;
  return v;
}

util::SimTime seconds_to_simtime(double s) {
  return util::SimTime::nanos(static_cast<std::int64_t>(s * 1e9));
}

/// Parses run/report arguments. On failure returns nullopt with `err`
/// set to the exit code the caller should pass to usage().
std::optional<RunArgs> parse_run_args(int argc, char** argv, int first,
                                      int& err) {
  RunArgs args;
  bool have_app = false;
  err = kExitUsage;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Numeric fault knobs share one code path: flag -> (target, range).
    auto numeric = [&](double lo, double hi,
                       double& target) -> bool {
      const char* v = value();
      if (!v) {
        std::cerr << flag << " needs a value\n";
        err = kExitUsage;
        return false;
      }
      const auto parsed = parse_double(v, lo, hi);
      if (!parsed) {
        std::cerr << "invalid value for " << flag << ": " << v << '\n';
        err = kExitBadValue;
        return false;
      }
      target = *parsed;
      return true;
    };
    if (flag == "--app") {
      const char* name = value();
      if (!name) {
        std::cerr << "--app needs a value\n";
        return std::nullopt;
      }
      const auto profile = profile_by_name(name);
      if (!profile) {
        std::cerr << "unknown app: " << name << '\n';
        err = kExitUnknownApp;
        return std::nullopt;
      }
      args.profile = *profile;
      have_app = true;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) {
        std::cerr << "--seed needs a value\n";
        return std::nullopt;
      }
      char* end = nullptr;
      args.seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::cerr << "invalid value for --seed: " << v << '\n';
        err = kExitBadValue;
        return std::nullopt;
      }
    } else if (flag == "--duration") {
      const char* v = value();
      if (!v) {
        std::cerr << "--duration needs a value\n";
        return std::nullopt;
      }
      args.duration_s = std::atoll(v);
      if (args.duration_s <= 0) {
        std::cerr << "invalid value for --duration: " << v << '\n';
        err = kExitBadValue;
        return std::nullopt;
      }
    } else if (flag == "--out") {
      const char* v = value();
      if (!v) {
        std::cerr << "--out needs a value\n";
        return std::nullopt;
      }
      args.out = v;
    } else if (flag == "--trace-format") {
      const char* v = value();
      if (!v) {
        std::cerr << "--trace-format needs a value\n";
        return std::nullopt;
      }
      const std::string format = v;
      if (format != "classic" && format != "binary") {
        std::cerr << "invalid value for --trace-format: " << v
                  << " (expected classic | binary)\n";
        err = kExitBadValue;
        return std::nullopt;
      }
      args.binary_trace = format == "binary";
    } else if (flag == "--pcap") {
      args.pcap = true;
    } else if (flag == "--csv") {
      args.csv = true;
    } else if (flag == "--retries") {
      const char* v = value();
      if (!v) {
        std::cerr << "--retries needs a value\n";
        return std::nullopt;
      }
      const auto parsed = parse_double(v, 0, 100);
      if (!parsed || *parsed != static_cast<int>(*parsed)) {
        std::cerr << "invalid value for --retries: " << v << '\n';
        err = kExitBadValue;
        return std::nullopt;
      }
      args.retries = static_cast<int>(*parsed);
    } else if (flag == "--deadline") {
      double s = 0;
      if (!numeric(0.0, 86'400.0, s)) return std::nullopt;
      args.deadline_s = s;
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--watch-status") {
      const char* v = value();
      if (!v) {
        std::cerr << "--watch-status needs a value\n";
        return std::nullopt;
      }
      args.status_path = v;
    } else if (flag == "--slo-events-floor") {
      if (!numeric(0.0, 1e18, args.slo.events_per_s_floor)) {
        return std::nullopt;
      }
    } else if (flag == "--slo-stall") {
      if (!numeric(0.0, 86'400.0, args.slo.stall_window_s)) {
        return std::nullopt;
      }
    } else if (flag == "--slo-rejoin-p99-ms") {
      double ms = 0;
      if (!numeric(0.0, 1e9, ms)) return std::nullopt;
      args.slo.rejoin_p99_ceiling_ns = static_cast<std::int64_t>(ms * 1e6);
    } else if (flag == "--loss") {
      if (!numeric(0.0, 0.95, args.impairment.loss_rate)) return std::nullopt;
    } else if (flag == "--loss-burst") {
      if (!numeric(1.0, 1e6, args.impairment.loss_burst)) return std::nullopt;
    } else if (flag == "--reorder") {
      if (!numeric(0.0, 1.0, args.impairment.reorder_rate)) {
        return std::nullopt;
      }
    } else if (flag == "--dup") {
      if (!numeric(0.0, 1.0, args.impairment.duplicate_rate)) {
        return std::nullopt;
      }
    } else if (flag == "--outage") {
      if (!numeric(0.0, 1e3, args.impairment.outage_per_s)) {
        return std::nullopt;
      }
    } else if (flag == "--outage-ms") {
      double ms = 0;
      if (!numeric(0.0, 60'000.0, ms)) return std::nullopt;
      args.impairment.outage_duration =
          util::SimTime::nanos(static_cast<std::int64_t>(ms * 1e6));
    } else if (flag == "--churn") {
      if (!numeric(0.0, 1e9, args.churn.probe_session_s)) return std::nullopt;
    } else if (flag == "--bg-churn") {
      if (!numeric(0.0, 1e9, args.churn.bg_session_s)) return std::nullopt;
    } else if (flag == "--nat-fail") {
      double p = 0;
      if (!numeric(0.0, 1.0, p)) return std::nullopt;
      args.churn.nat_connect_failure = p;
      args.churn.firewall_connect_failure = p;
    } else if (flag == "--discovery" || flag == "--fallback") {
      const char* name = value();
      if (!name) {
        std::cerr << flag << " needs a value\n";
        return std::nullopt;
      }
      const auto kind = p2p::parse_backend_kind(name);
      if (!kind) {
        std::cerr << "invalid value for " << flag << ": " << name
                  << " (expected tracker | dht | gossip)\n";
        err = kExitBadValue;
        return std::nullopt;
      }
      (flag == "--discovery" ? args.discovery.primary
                             : args.discovery.fallback) = *kind;
    } else if (flag == "--tracker-outage-at") {
      double s = 0;
      if (!numeric(0.0, 1e6, s)) return std::nullopt;
      args.discovery.tracker_outage_start = seconds_to_simtime(s);
    } else if (flag == "--tracker-outage-for") {
      double s = 0;
      if (!numeric(0.0, 1e6, s)) return std::nullopt;
      args.discovery.tracker_outage_duration = seconds_to_simtime(s);
    } else if (flag == "--rejoin-deadline") {
      double s = 0;
      if (!numeric(0.0, 1e6, s)) return std::nullopt;
      args.discovery.rejoin_deadline = seconds_to_simtime(s);
    } else if (flag == "--nat-matrix") {
      double f = 0;
      if (!numeric(0.0, 1.0, f)) return std::nullopt;
      args.discovery.nat.enabled = true;
      args.discovery.nat.symmetric_fraction = f;
    } else if (flag == "--flash-crowd") {
      double n = 0;
      if (!numeric(1.0, 1e6, n)) return std::nullopt;
      args.discovery.flash_crowd_arrivals = static_cast<int>(n);
    } else if (flag == "--flash-crowd-at") {
      double s = 0;
      if (!numeric(0.0, 1e6, s)) return std::nullopt;
      args.discovery.flash_crowd_at = seconds_to_simtime(s);
    } else if (flag == "--zap-reuse") {
      if (!numeric(0.0, 1.0, args.discovery.zap_reuse)) return std::nullopt;
    } else if (flag == "--session-tail") {
      if (!numeric(0.0, 50.0, args.discovery.session_tail_alpha)) {
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown flag: " << flag << '\n';
      return std::nullopt;
    }
  }
  if (!have_app) {
    std::cerr << "--app is required\n";
    return std::nullopt;
  }
  if (args.discovery.fallback != p2p::DiscoveryBackendKind::kNone &&
      args.discovery.primary == p2p::DiscoveryBackendKind::kNone) {
    std::cerr << "--fallback requires --discovery\n";
    return std::nullopt;
  }
  if (args.discovery.flash_crowd_arrivals > 0 &&
      args.discovery.flash_crowd_at <= util::SimTime::zero()) {
    // Default zap instant: a third into the run — late enough for
    // every probe to be bootstrapped, early enough to observe the
    // re-join settle.
    args.discovery.flash_crowd_at =
        util::SimTime::seconds(args.duration_s / 3);
  }
  return args;
}

void print_analysis(const aware::ExperimentObservations& data) {
  const auto summary = aware::summarize(data);
  util::TextTable overview{{"metric", "mean", "max"}};
  overview.add_row({"stream RX [kbps]",
                    util::TextTable::num(summary.rx_kbps_mean, 0),
                    util::TextTable::num(summary.rx_kbps_max, 0)});
  overview.add_row({"stream TX [kbps]",
                    util::TextTable::num(summary.tx_kbps_mean, 0),
                    util::TextTable::num(summary.tx_kbps_max, 0)});
  overview.add_row({"peers / probe",
                    util::TextTable::num(summary.all_peers_mean, 0),
                    util::TextTable::count(summary.all_peers_max)});
  overview.add_row({"RX contributors / probe",
                    util::TextTable::num(summary.contrib_rx_mean, 0),
                    util::TextTable::count(summary.contrib_rx_max)});
  overview.add_row(
      {"observed peers", util::TextTable::count(summary.observed_total), ""});
  std::cout << '\n' << data.app << " overview:\n" << overview.render();

  const auto bias = aware::self_bias(data);
  std::cout << "\nself-induced bias (contributors): peers "
            << util::TextTable::num(bias.contributors_peer_pct) << "%, bytes "
            << util::TextTable::num(bias.contributors_bytes_pct) << "%\n";

  const auto rows = aware::awareness_table(data);
  util::TextTable awareness{
      {"net", "B'D%", "P'D%", "BD%", "PD%", "B'U%", "P'U%", "BU%", "PU%"}};
  const auto cell = [](const std::optional<double>& v) {
    return v ? util::TextTable::num(*v) : std::string{"-"};
  };
  for (const auto& row : rows) {
    awareness.add_row({aware::to_string(row.metric),
                       cell(row.download.b_prime_pct),
                       cell(row.download.p_prime_pct),
                       cell(row.download.b_pct), cell(row.download.p_pct),
                       cell(row.upload.b_prime_pct),
                       cell(row.upload.p_prime_pct), cell(row.upload.b_pct),
                       cell(row.upload.p_pct)});
  }
  std::cout << "\nnetwork awareness:\n" << awareness.render();
}

int cmd_testbed() {
  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();
  util::TextTable table{{"Host", "Site", "CC", "AS", "Access", "Nat", "FW"}};
  for (const auto& row : testbed.rows(topo)) {
    table.add_row({row.hosts, row.site, row.country, row.as_label,
                   row.access, row.nat ? "Y" : "-",
                   row.firewall ? "Y" : "-"});
  }
  std::cout << table.render();
  return 0;
}

void print_fault_counters(const p2p::Swarm::Counters& counters) {
  std::cerr << "faults: " << counters.timeouts << " timeouts, "
            << counters.chunks_retried << " retries, "
            << counters.contact_failures << " failed contacts, "
            << counters.probe_crashes << " probe crashes, "
            << counters.partners_blacklisted << " partners blacklisted\n";
}

void print_discovery_counters(const p2p::DiscoveryCounters& d) {
  std::cerr << "discovery: " << d.joins_ok << " joins, " << d.join_retries
            << " retries, " << d.failovers << " failovers, " << d.recoveries
            << " recoveries, " << d.tracker_failures
            << " tracker failures, " << d.dht_lookups << " DHT lookups, "
            << d.gossip_exchanges << " gossip exchanges\n";
  if (d.nat_direct + d.nat_relayed + d.nat_blocked > 0) {
    std::cerr << "nat: " << d.nat_direct << " direct, " << d.nat_relayed
              << " relayed, " << d.nat_blocked << " blocked\n";
  }
}

/// Maps a supervised failure to the CLI exit code: a run the SLO
/// watchdog cancelled (the supervisor's "slo violation: ..." prefix)
/// is 10, a run that finished but missed its re-join SLO
/// (exp::DiscoveryDegraded's message prefix) is "degraded" (8),
/// anything else is a runtime error (1).
int failure_exit_code(const std::string& error) {
  if (error.rfind("slo violation", 0) == 0) return kExitSloViolation;
  return error.rfind("discovery degraded", 0) == 0 ? kExitDegraded : 1;
}

int cmd_run(const RunArgs& args) {
  if (args.out.empty()) {
    std::cerr << "--out is required for run\n";
    return usage(kExitUsage);
  }
  std::filesystem::create_directories(args.out);

  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();

  exp::RunSpec spec;
  spec.profile = args.profile;
  spec.seed = args.seed;
  spec.duration = util::SimTime::seconds(args.duration_s);
  spec.keep_records = true;
  spec.impairment = args.impairment;
  spec.churn = args.churn;
  spec.discovery = args.discovery;

  exp::SupervisorConfig supervision;
  supervision.retries = args.retries;
  supervision.deadline_s = args.deadline_s;
  supervision.resume = args.resume;
  supervision.journal = args.out / "experiment.journal";
  supervision.slo = args.slo;
  supervision.status_path = args.status_path;
  // Capture-producing run body: each attempt simulates, exports every
  // trace atomically, then writes the metadata sidecar last — so a
  // directory containing experiment.meta is always analyzable. The
  // returned RunResult lands in the journal blob, which is what lets
  // --resume skip a finished run outright.
  supervision.run_fn = [&args, &testbed](const net::AsTopology& t,
                                         const exp::RunSpec& s) {
    p2p::SwarmConfig config;
    config.profile = s.profile;
    config.seed = s.seed;
    config.duration = s.duration;
    config.keep_records = true;
    config.impairment = s.impairment;
    config.churn = s.churn;
    config.discovery = s.discovery;
    config.cancel = s.cancel;
    // Mirror run_experiment: series rows key on the stable journal
    // identity, and the progress sink is live only while the swarm
    // may still advance it (the watchdog must not judge a dead
    // attempt's frozen counters).
    config.series_key = exp::spec_id(s);
    config.progress = s.progress;
    struct ProgressGuard {
      obs::RunProgress* progress;
      explicit ProgressGuard(obs::RunProgress* p) : progress(p) {
        if (progress != nullptr) {
          progress->active.store(true, std::memory_order_release);
        }
      }
      ~ProgressGuard() {
        if (progress != nullptr) {
          progress->active.store(false, std::memory_order_release);
        }
      }
    } progress_guard{s.progress};

    p2p::Swarm swarm{t, testbed.probes(), config};
    swarm.run();
    if (s.discovery.rejoin_deadline > util::SimTime::zero()) {
      const auto report = swarm.discovery_report();
      if (report.rejoins_missed > 0) {
        throw exp::DiscoveryDegraded(report.rejoins_missed);
      }
    }

    const auto& population = swarm.population();
    exp::ExperimentMetadata meta;
    meta.app = config.profile.name;
    meta.duration = config.duration;
    meta.announcements = population.registry().dump();
    meta.impairment = s.impairment;
    meta.churn = s.churn;

    std::uint64_t packets = 0;
    for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
      const auto& info = population.peer(population.probe_ids()[i]);
      const auto label = population.probe_specs()[i].label();
      meta.probes.push_back({info.ep.addr, info.ep.as, info.ep.country,
                             info.access.is_high_bandwidth(), label});
      auto records = swarm.sink(i).records();
      std::sort(records.begin(), records.end(), trace::record_before);
      // Same filename either way: analyze sniffs the magic, so a
      // capture directory can mix classic and binary traces.
      const auto trace_path =
          args.out / exp::ExperimentMetadata::trace_filename(label);
      if (args.binary_trace) {
        trace::write_trace_binary(trace_path, swarm.sink(i).probe(),
                                  records);
      } else {
        trace::write_trace(trace_path, swarm.sink(i).probe(), records);
      }
      if (args.pcap) {
        trace::write_pcap(args.out / (label + ".pcap"),
                          swarm.sink(i).probe(), records);
      }
      if (args.csv) {
        trace::write_trace_csv(args.out / (label + ".csv"),
                               swarm.sink(i).probe(), records);
      }
      packets += records.size();
    }
    write_metadata(args.out / "experiment.meta", meta);
    std::cerr << "wrote " << swarm.probe_count() << " traces ("
              << util::TextTable::count(packets)
              << " packets) + metadata to " << args.out << '\n';

    exp::RunResult result;
    result.observations = exp::extract_observations(swarm);
    result.counters = swarm.counters();
    return result;
  };

  std::cerr << "running " << args.profile.name << " (seed " << args.seed
            << ", " << args.duration_s << " s)...\n";
  util::ThreadPool pool{1};
  const auto outcome = exp::supervise_runs(
      topo, std::span<const exp::RunSpec>{&spec, 1}, pool, supervision);
  const auto& run = outcome.runs.front();
  if (run.state == exp::RunState::kSkipped) {
    std::cerr << "resume: " << run.spec
              << " already complete, nothing to do\n";
    return 0;
  }
  if (!run.ok()) {
    std::cerr << "run " << exp::to_string(run.state) << " after "
              << run.attempts << " attempt(s): " << run.error << '\n';
    return failure_exit_code(run.error);
  }
  if (run.attempts > 1) {
    std::cerr << "run succeeded on attempt " << run.attempts << '\n';
  }
  if (args.impairment.enabled() || args.churn.enabled()) {
    print_fault_counters(run.result->counters);
  }
  if (args.discovery.enabled()) {
    print_discovery_counters(run.result->counters.discovery);
  }
  return 0;
}

int cmd_analyze(const std::filesystem::path& dir, bool salvage) {
  exp::CaptureLoad load;
  try {
    load = exp::load_capture(dir, salvage);
  } catch (const exp::CaptureError& error) {
    // Every "this is not an analyzable capture" condition lands here:
    // distinct exit code so scripts can tell a bad directory (6) from
    // a genuine runtime failure (1).
    std::cerr << "analyze: " << error.what() << '\n';
    return kExitBadCapture;
  }
  for (const auto& note : load.notes) std::cerr << note << '\n';
  if (salvage && !load.clean()) {
    std::cerr << "salvage: analysis continues on the recovered records\n";
  }
  print_analysis(load.data);
  return 0;
}

int cmd_report(const RunArgs& args) {
  const net::AsTopology topo = net::make_reference_topology();
  exp::RunSpec spec;
  spec.profile = args.profile;
  spec.seed = args.seed;
  spec.duration = util::SimTime::seconds(args.duration_s);
  spec.impairment = args.impairment;
  spec.churn = args.churn;
  spec.discovery = args.discovery;
  std::cerr << "running " << spec.profile.name << " (seed " << args.seed
            << ", " << args.duration_s << " s)...\n";

  // Supervised but unjournaled: report stores nothing, so there is
  // nothing to resume — but --retries/--deadline/SLOs still apply.
  exp::SupervisorConfig supervision;
  supervision.retries = args.retries;
  supervision.deadline_s = args.deadline_s;
  supervision.slo = args.slo;
  supervision.status_path = args.status_path;
  util::ThreadPool pool{1};
  const auto outcome = exp::supervise_runs(
      topo, std::span<const exp::RunSpec>{&spec, 1}, pool, supervision);
  const auto& run = outcome.runs.front();
  if (!run.ok()) {
    std::cerr << "run " << exp::to_string(run.state) << " after "
              << run.attempts << " attempt(s): " << run.error << '\n';
    return failure_exit_code(run.error);
  }
  print_analysis(run.result->observations);
  if (args.impairment.enabled() || args.churn.enabled()) {
    print_fault_counters(run.result->counters);
  }
  if (args.discovery.enabled()) {
    print_discovery_counters(run.result->counters.discovery);
  }
  return 0;
}

// Profiles a trace.json written by --trace / PEERSCOPE_BENCH_TRACE:
// per-span-path self/total wall-time attribution, hottest first. Torn
// lines are salvaged with a note; an unreadable file, a foreign
// schema, or a trace with nothing salvageable is kExitBadTrace.
int cmd_trace_summary(const std::filesystem::path& path, std::size_t top_n,
                      bool deterministic) {
  obs::TraceFile file;
  try {
    file = obs::read_trace_file(path);
  } catch (const std::exception& error) {
    std::cerr << "trace-summary: " << error.what() << '\n';
    return kExitBadTrace;
  }
  if (file.skipped_lines > 0) {
    std::cerr << "trace-summary: salvage: skipped " << file.skipped_lines
              << " torn/unparseable line(s)\n";
  }
  if (file.events.empty()) {
    std::cerr << "trace-summary: no salvageable events in " << path.string()
              << '\n';
    return kExitBadTrace;
  }
  if (deterministic) {
    std::cout << obs::deterministic_rendering(file);
    return 0;
  }
  const auto rows = obs::attribute_spans(file.events);
  const auto counters = obs::attribute_counters(file.events);
  std::cout << "trace: " << file.events.size() << " events, " << rows.size()
            << " span paths, " << counters.size()
            << " counters, dropped " << file.dropped << "\n\n";
  std::cout << obs::render_trace_summary(rows, top_n);
  if (!counters.empty()) {
    std::cout << "\ncounters:\n"
              << obs::render_counter_summary(counters, top_n);
  }
  return 0;
}

/// One rendered snapshot of a status.json document: the per-run table
/// `peerscope watch` repaints.
std::string render_status(const exp::StatusView& view) {
  util::TextTable table{
      {"run", "state", "att", "events", "sim s", "events/s", "eta s"}};
  for (const auto& run : view.runs) {
    table.add_row({run.spec, run.state, std::to_string(run.attempts),
                   util::TextTable::count(run.events),
                   util::TextTable::num(run.sim_time_s, 1),
                   util::TextTable::num(run.events_per_s, 0),
                   run.eta_s >= 0 ? util::TextTable::num(run.eta_s, 0)
                                  : std::string{"-"}});
  }
  return "phase: " + view.phase + '\n' + table.render();
}

// Tails the atomically-rewritten status.json a supervised run
// publishes via --watch-status. Every rewrite is a rename, so a read
// never observes a torn document; a transiently missing file (watch
// started before the run) is retried, not fatal. Exits when the batch
// phase turns "done", or immediately with --once.
int cmd_watch(const std::filesystem::path& path, bool once,
              std::chrono::milliseconds interval) {
  bool seen = false;
  for (;;) {
    const auto text = util::io::read_file(path);
    std::optional<exp::StatusView> view;
    if (text.has_value()) view = exp::parse_status(*text);
    if (view.has_value()) {
      seen = true;
      std::cout << render_status(*view) << std::flush;
      if (view->phase == "done") return 0;
    } else if (once || seen) {
      // Gone or unparseable after we saw it once: the writer is not
      // coming back (or the file was never a status document).
      std::cerr << "watch: cannot read status from " << path.string()
                << '\n';
      return 1;
    }
    if (once) return 0;
    std::this_thread::sleep_for(interval);
  }
}

// Renders a PSTS time-series sidecar (--series). Default markdown;
// --csv for the long form, --deterministic for the canonical
// rendering CI diffs across pool sizes. Strict by default — a corrupt
// file is kExitBadTrace, mirroring trace-summary — while --salvage
// recovers every interval outside damaged regions with drop
// accounting on stderr.
int cmd_timeline(const std::filesystem::path& path, bool csv,
                 bool deterministic, bool salvage) {
  obs::SeriesSnapshot snapshot;
  try {
    if (salvage) {
      obs::SeriesSalvageReport report;
      snapshot = obs::read_series_salvage(path, &report);
      if (report.framing.records_dropped > 0 ||
          report.payloads_skipped > 0) {
        std::cerr << "timeline: salvage: dropped "
                  << report.framing.records_dropped << " damaged record(s), "
                  << report.payloads_skipped << " unparseable payload(s)\n";
      }
    } else {
      snapshot = obs::read_series(path);
    }
  } catch (const std::exception& error) {
    std::cerr << "timeline: " << error.what() << '\n';
    return kExitBadTrace;
  }
  if (snapshot.runs.empty()) {
    std::cerr << "timeline: no intervals in " << path.string() << '\n';
    return kExitBadTrace;
  }
  if (deterministic) {
    std::cout << obs::deterministic_series(snapshot);
  } else if (csv) {
    std::cout << obs::render_series_csv(snapshot);
  } else {
    std::cout << obs::render_series_markdown(snapshot);
  }
  return 0;
}

// The CI perf gate: fresh bench JSON vs the committed trajectory
// snapshot. Within budget -> 0, regression -> kExitBenchRegression,
// unreadable/foreign input -> 1.
int cmd_bench_diff(const std::filesystem::path& committed,
                   const std::filesystem::path& fresh, double budget_pct) {
  tools::BenchSnapshot base;
  tools::BenchSnapshot now;
  try {
    base = tools::read_bench_snapshot(committed);
    now = tools::read_bench_snapshot(fresh);
  } catch (const std::exception& error) {
    std::cerr << "bench-diff: " << error.what() << '\n';
    return 1;
  }
  if (base.bench != now.bench) {
    std::cerr << "bench-diff: snapshot mismatch: \"" << base.bench
              << "\" vs \"" << now.bench << "\"\n";
    return 1;
  }
  std::cout << tools::render_bench_diff(base, now, budget_pct);
  return tools::diff_snapshots(base, now).regressed(budget_pct)
             ? kExitBenchRegression
             : 0;
}

// Markdown table over snapshot files (a directory argument expands to
// its BENCH_*.json files, sorted by name): the $GITHUB_STEP_SUMMARY
// payload.
int cmd_bench_trajectory(const std::vector<std::filesystem::path>& paths) {
  std::vector<std::filesystem::path> files;
  for (const auto& path : paths) {
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<tools::BenchSnapshot> rows;
  rows.reserve(files.size());
  try {
    for (const auto& file : files) {
      rows.push_back(tools::read_bench_snapshot(file));
    }
  } catch (const std::exception& error) {
    std::cerr << "bench-trajectory: " << error.what() << '\n';
    return 1;
  }
  if (rows.empty()) {
    std::cerr << "bench-trajectory: no BENCH_*.json snapshots found\n";
    return 1;
  }
  std::cout << tools::render_trajectory_markdown(rows);
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage(kExitUsage);
  const std::string command = argv[1];
  try {
    if (command == "testbed") return cmd_testbed();
    if (command == "run" || command == "report") {
      int err = kExitUsage;
      const auto args = parse_run_args(argc, argv, 2, err);
      if (!args) return usage(err);
      return command == "run" ? cmd_run(*args) : cmd_report(*args);
    }
    if (command == "analyze") {
      std::filesystem::path dir;
      bool salvage = false;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--salvage") {
          salvage = true;
        } else if (!arg.empty() && arg[0] != '-' && dir.empty()) {
          dir = arg;
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (dir.empty()) {
        std::cerr << "analyze needs a directory\n";
        return usage(kExitUsage);
      }
      return cmd_analyze(dir, salvage);
    }
    if (command == "reproduce") {
      tools::ReproduceOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (flag == "--out" && value) {
          options.output = value;
          ++i;
        } else if (flag == "--seed" && value) {
          options.seed = std::strtoull(value, nullptr, 10);
          ++i;
        } else if (flag == "--duration" && value) {
          options.seconds = std::atoll(value);
          if (options.seconds <= 0) {
            std::cerr << "invalid value for --duration: " << value << '\n';
            return usage(kExitBadValue);
          }
          ++i;
        } else if (flag == "--retries" && value) {
          const auto parsed = parse_double(value, 0, 100);
          if (!parsed || *parsed != static_cast<int>(*parsed)) {
            std::cerr << "invalid value for --retries: " << value << '\n';
            return usage(kExitBadValue);
          }
          options.retries = static_cast<int>(*parsed);
          ++i;
        } else if (flag == "--deadline" && value) {
          const auto parsed = parse_double(value, 0.0, 86'400.0);
          if (!parsed) {
            std::cerr << "invalid value for --deadline: " << value << '\n';
            return usage(kExitBadValue);
          }
          options.deadline_s = *parsed;
          ++i;
        } else if (flag == "--resume") {
          options.resume = true;
        } else {
          std::cerr << "unknown flag: " << flag << '\n';
          return usage(kExitUsage);
        }
      }
      return tools::reproduce(options);
    }
    if (command == "trace-summary") {
      std::filesystem::path path;
      std::size_t top_n = 20;
      bool deterministic = false;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--top" && value) {
          const auto parsed = parse_double(value, 1, 10'000);
          if (!parsed || *parsed != static_cast<int>(*parsed)) {
            std::cerr << "invalid value for --top: " << value << '\n';
            return usage(kExitBadValue);
          }
          top_n = static_cast<std::size_t>(*parsed);
          ++i;
        } else if (arg == "--deterministic") {
          deterministic = true;
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
          path = arg;
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (path.empty()) {
        std::cerr << "trace-summary needs a trace.json path\n";
        return usage(kExitUsage);
      }
      return cmd_trace_summary(path, top_n, deterministic);
    }
    if (command == "watch") {
      std::filesystem::path path;
      bool once = false;
      auto interval = std::chrono::milliseconds{500};
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--once") {
          once = true;
        } else if (arg == "--interval-ms" && value) {
          const auto parsed = parse_double(value, 10, 60'000);
          if (!parsed) {
            std::cerr << "invalid value for --interval-ms: " << value
                      << '\n';
            return usage(kExitBadValue);
          }
          interval = std::chrono::milliseconds{static_cast<int>(*parsed)};
          ++i;
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
          path = arg;
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (path.empty()) {
        std::cerr << "watch needs a status.json path\n";
        return usage(kExitUsage);
      }
      return cmd_watch(path, once, interval);
    }
    if (command == "timeline") {
      std::filesystem::path path;
      bool csv = false;
      bool deterministic = false;
      bool salvage = false;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
          csv = true;
        } else if (arg == "--deterministic") {
          deterministic = true;
        } else if (arg == "--salvage") {
          salvage = true;
        } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
          path = arg;
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (path.empty()) {
        std::cerr << "timeline needs a series sidecar path\n";
        return usage(kExitUsage);
      }
      return cmd_timeline(path, csv, deterministic, salvage);
    }
    if (command == "bench-diff") {
      std::vector<std::filesystem::path> paths;
      double budget_pct = 15.0;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--budget-pct" && value) {
          const auto parsed = parse_double(value, 0.0, 1'000.0);
          if (!parsed) {
            std::cerr << "invalid value for --budget-pct: " << value << '\n';
            return usage(kExitBadValue);
          }
          budget_pct = *parsed;
          ++i;
        } else if (!arg.empty() && arg[0] != '-') {
          paths.emplace_back(arg);
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (paths.size() != 2) {
        std::cerr << "bench-diff needs COMMITTED and FRESH paths\n";
        return usage(kExitUsage);
      }
      return cmd_bench_diff(paths[0], paths[1], budget_pct);
    }
    if (command == "bench-trajectory") {
      std::vector<std::filesystem::path> paths;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] != '-') {
          paths.emplace_back(arg);
        } else {
          std::cerr << "unknown flag: " << arg << '\n';
          return usage(kExitUsage);
        }
      }
      if (paths.empty()) {
        std::cerr << "bench-trajectory needs at least one path\n";
        return usage(kExitUsage);
      }
      return cmd_bench_trajectory(paths);
    }
    std::cerr << "unknown command: " << command << '\n';
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return usage(kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  // Global --metrics flag, extracted before dispatch so subcommand
  // parsers never see it. When present, a registry covers the whole
  // invocation and the full sidecar is written at exit — even after a
  // runtime error, so a failing run still leaves its partial counters.
  std::filesystem::path metrics_path;
  std::filesystem::path trace_path;
  std::filesystem::path series_path;
  double series_interval_s = 10.0;
  // Storage fault injection: flag wins over env so a chaos sweep can
  // set a baseline schedule and individual cells can override it.
  const char* faults_env = std::getenv("PEERSCOPE_IO_FAULTS");
  const char* faults_seed_env = std::getenv("PEERSCOPE_IO_FAULTS_SEED");
  std::string fault_spec = faults_env ? faults_env : "";
  std::string fault_seed_text = faults_seed_env ? faults_seed_env : "";
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--metrics needs a value\n";
        return usage(kExitUsage);
      }
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs a value\n";
        return usage(kExitUsage);
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--series") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--series needs a value\n";
        return usage(kExitUsage);
      }
      series_path = argv[++i];
    } else if (std::strcmp(argv[i], "--series-interval") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--series-interval needs a value\n";
        return usage(kExitUsage);
      }
      const auto parsed = parse_double(argv[++i], 0.001, 1e6);
      if (!parsed) {
        std::cerr << "invalid value for --series-interval: " << argv[i]
                  << '\n';
        return kExitBadValue;
      }
      series_interval_s = *parsed;
    } else if (std::strcmp(argv[i], "--io-faults") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--io-faults needs a value\n";
        return usage(kExitUsage);
      }
      fault_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--io-faults-seed") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--io-faults-seed needs a value\n";
        return usage(kExitUsage);
      }
      fault_seed_text = argv[++i];
    } else {
      filtered.push_back(argv[i]);
    }
  }

  if (!fault_spec.empty()) {
    std::uint64_t fault_seed = 0;
    if (!fault_seed_text.empty()) {
      char* end = nullptr;
      fault_seed = std::strtoull(fault_seed_text.c_str(), &end, 10);
      if (end == fault_seed_text.c_str() || *end != '\0') {
        std::cerr << "invalid value for --io-faults-seed: "
                  << fault_seed_text << '\n';
        return kExitBadValue;
      }
    }
    try {
      util::io::install_faults(
          util::io::FaultPlan::parse(fault_spec, fault_seed));
    } catch (const std::invalid_argument& error) {
      std::cerr << error.what() << '\n';
      return kExitBadValue;
    }
    std::cerr << "io-faults: schedule armed (" << fault_spec << ")\n";
  }

  obs::MetricsRegistry registry;
  if (!metrics_path.empty()) obs::install(&registry);
  obs::TraceRecorder recorder;
  if (!trace_path.empty()) obs::install_tracer(&recorder);
  obs::TimeseriesRecorder series{seconds_to_simtime(series_interval_s)};
  if (!series_path.empty()) obs::install_series(&series);
  int code = dispatch(static_cast<int>(filtered.size()), filtered.data());
  if (!series_path.empty()) {
    // Like the other sidecars: written even after a runtime error —
    // the intervals up to the failure are the post-mortem timeline.
    obs::install_series(nullptr);
    try {
      obs::write_series(series_path, series.snapshot());
      std::cerr << "series: wrote " << series_path.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "series: " << error.what() << '\n';
      if (code == 0) code = 1;
    }
  }
  if (!trace_path.empty()) {
    // Like the metrics sidecar: written even after a runtime error —
    // the failed invocation is exactly the one worth profiling.
    obs::install_tracer(nullptr);
    try {
      obs::write_trace_json(trace_path, recorder.snapshot());
      std::cerr << "trace: wrote " << trace_path.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "trace: " << error.what() << '\n';
      if (code == 0) code = 1;
    }
  }
  if (!metrics_path.empty()) {
    obs::install(nullptr);
    try {
      obs::write_metrics_json(metrics_path, registry.snapshot());
      std::cerr << "metrics: wrote " << metrics_path.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "metrics: " << error.what() << '\n';
      return code == 0 ? 1 : code;
    }
  }
  return code;
}
