// Bench perf-trajectory gate (DESIGN.md §14): the library behind the
// `peerscope bench-diff` and `peerscope bench-trajectory` subcommands.
//
// CI commits one canonical peerscope.bench/2 snapshot per bench under
// bench/trajectory/BENCH_<name>.json. On every PR the bench smoke
// reruns each bench with PEERSCOPE_BENCH_JSON and diffs the fresh
// numbers against the committed snapshot: a wall-time increase or an
// events/sec drop beyond the budget (15% by default) fails the job
// with exit code 9, which only the documented `perf-regression-ok`
// label overrides. `bench-trajectory` renders the committed snapshots
// as a markdown table for $GITHUB_STEP_SUMMARY so the perf history is
// visible on every run, not just failing ones.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace peerscope::tools {

/// One `phases` row: per-span-path wall-time attribution as computed
/// by obs::attribute_spans (self = total minus nested children).
struct BenchPhase {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// One bench JSON document (schema peerscope.bench/2; /1 files parse
/// too, with an empty phase list).
struct BenchSnapshot {
  std::string schema;
  std::string bench;
  double wall_s = 0.0;
  std::uint64_t events_executed = 0;
  double events_per_s = 0.0;
  std::uint64_t peak_rss_kb = 0;
  std::vector<BenchPhase> phases;
};

/// Parses the exact dialect bench::BenchJsonSession writes. Throws
/// std::runtime_error on malformed input or a foreign schema.
[[nodiscard]] BenchSnapshot parse_bench_snapshot(const std::string& text);

/// read + parse; throws std::runtime_error (with the path in the
/// message) when the file is unreadable.
[[nodiscard]] BenchSnapshot read_bench_snapshot(
    const std::filesystem::path& path);

/// Headline deltas, in percent of the baseline. Positive wall_pct
/// means the fresh run is slower; negative events_pct means it
/// executes fewer events per second. A zero baseline value disarms
/// that half of the gate (delta reported as 0).
struct BenchDelta {
  double wall_pct = 0.0;
  double events_pct = 0.0;

  [[nodiscard]] bool regressed(double budget_pct) const {
    return wall_pct > budget_pct || events_pct < -budget_pct;
  }
};

[[nodiscard]] BenchDelta diff_snapshots(const BenchSnapshot& baseline,
                                        const BenchSnapshot& fresh);

/// Human-readable diff: headline metrics plus per-phase self-time
/// deltas for phases present in both snapshots, and the verdict line
/// CI greps ("within budget" / "REGRESSION").
[[nodiscard]] std::string render_bench_diff(const BenchSnapshot& baseline,
                                            const BenchSnapshot& fresh,
                                            double budget_pct);

/// Markdown table over committed snapshots (one row per bench), for
/// $GITHUB_STEP_SUMMARY.
[[nodiscard]] std::string render_trajectory_markdown(
    const std::vector<BenchSnapshot>& rows);

}  // namespace peerscope::tools
