// peerscope_lint — command-line front end for the project-invariant
// static analysis pass (tools/lint/lint.hpp, DESIGN.md §11).
//
//   peerscope_lint [--root DIR] [--rule NAME]... [--list-rules]
//                  [--no-git]
//
// Walks src/, tools/, bench/, tests/ and examples/ under the root and
// prints one `file:line: [rule] message` diagnostic per violation.
// --rule restricts the run to the named rule(s); --no-git skips the
// git-backed committed-build-artifact check (for tarball checkouts).
//
// Exit codes are deliberately plain literals, not kExit* constants:
// this binary's codes (0 clean, 1 findings, 2 usage/config error) are
// a different namespace from the `peerscope` CLI table that the
// exit-code-uniqueness rule audits.

#include <cstring>
#include <iostream>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  peerscope::lint::Options options;
  options.root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--root") {
      const char* dir = value();
      if (dir == nullptr) {
        std::cerr << "--root needs a value\n";
        return 2;
      }
      options.root = dir;
    } else if (flag == "--rule") {
      const char* rule = value();
      if (rule == nullptr) {
        std::cerr << "--rule needs a value\n";
        return 2;
      }
      options.rules.insert(rule);
    } else if (flag == "--no-git") {
      options.check_tracked = false;
    } else if (flag == "--list-rules") {
      for (const auto rule : peerscope::lint::rule_names()) {
        std::cout << rule << '\n';
      }
      return 0;
    } else {
      std::cerr << "unknown flag: " << flag << '\n'
                << "usage: peerscope_lint [--root DIR] [--rule NAME]... "
                   "[--list-rules] [--no-git]\n";
      return 2;
    }
  }

  const peerscope::lint::LintResult result = peerscope::lint::run(options);
  for (const auto& error : result.errors) {
    std::cerr << "peerscope_lint: " << error << '\n';
  }
  for (const auto& finding : result.findings) {
    std::cout << peerscope::lint::to_string(finding) << '\n';
  }
  if (!result.errors.empty()) return 2;
  if (!result.findings.empty()) {
    std::cerr << result.findings.size() << " lint finding(s)\n";
    return 1;
  }
  std::cerr << "peerscope_lint: clean\n";
  return 0;
}
