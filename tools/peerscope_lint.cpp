// peerscope_lint — command-line front end for the project-invariant
// static analysis pass (tools/lint/lint.hpp, DESIGN.md §11, §16).
//
//   peerscope_lint [--root DIR] [--rule NAME]... [--list-rules]
//                  [--no-git] [--sarif FILE] [--fingerprints]
//                  [--baseline FILE | --no-baseline]
//
// Walks src/, tools/, bench/, tests/ and examples/ under the root and
// prints one `file:line: [rule] message` diagnostic per violation.
// --rule restricts the run to the named rule(s); --no-git skips the
// git-backed committed-build-artifact check (for tarball checkouts).
// --sarif additionally writes the findings as SARIF 2.1.0 (the format
// CI uploads so code hosts can annotate diffs); --fingerprints prints
// each finding's baseline fingerprint in front of it. The baseline
// defaults to <root>/tools/lint_baseline.txt when that file exists;
// --baseline points elsewhere and --no-baseline disables it.
//
// Exit codes are deliberately plain literals, not kExit* constants:
// this binary's codes (0 clean, 1 findings, 2 usage/config error) are
// a different namespace from the `peerscope` CLI table that the
// exit-code-uniqueness rule audits.

#include <cstring>
#include <filesystem>
#include <fstream>  // peerscope-lint: allow-file(no-raw-artifact-io)
#include <iostream>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  peerscope::lint::Options options;
  options.root = ".";
  std::string sarif_path;
  std::string baseline_path;
  bool no_baseline = false;
  bool fingerprints = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--root") {
      const char* dir = value();
      if (dir == nullptr) {
        std::cerr << "--root needs a value\n";
        return 2;
      }
      options.root = dir;
    } else if (flag == "--rule") {
      const char* rule = value();
      if (rule == nullptr) {
        std::cerr << "--rule needs a value\n";
        return 2;
      }
      options.rules.insert(rule);
    } else if (flag == "--sarif") {
      const char* path = value();
      if (path == nullptr) {
        std::cerr << "--sarif needs a value\n";
        return 2;
      }
      sarif_path = path;
    } else if (flag == "--baseline") {
      const char* path = value();
      if (path == nullptr) {
        std::cerr << "--baseline needs a value\n";
        return 2;
      }
      baseline_path = path;
    } else if (flag == "--no-baseline") {
      no_baseline = true;
    } else if (flag == "--fingerprints") {
      fingerprints = true;
    } else if (flag == "--no-git") {
      options.check_tracked = false;
    } else if (flag == "--list-rules") {
      for (const auto rule : peerscope::lint::rule_names()) {
        std::cout << rule << "\n    "
                  << peerscope::lint::rule_description(rule) << '\n';
      }
      return 0;
    } else {
      std::cerr << "unknown flag: " << flag << '\n'
                << "usage: peerscope_lint [--root DIR] [--rule NAME]... "
                   "[--list-rules] [--no-git] [--sarif FILE] "
                   "[--fingerprints] [--baseline FILE | --no-baseline]\n";
      return 2;
    }
  }
  if (!baseline_path.empty() && no_baseline) {
    std::cerr << "--baseline and --no-baseline are mutually exclusive\n";
    return 2;
  }
  if (!baseline_path.empty()) {
    options.baseline = baseline_path;
  } else if (!no_baseline) {
    // The checked-in accepted-debt ledger, honoured by default so the
    // CLI, the `lint` ctest, and CI all agree on what "clean" means.
    const std::filesystem::path tracked =
        options.root / "tools" / "lint_baseline.txt";
    if (std::filesystem::exists(tracked)) options.baseline = tracked;
  }

  const peerscope::lint::LintResult result = peerscope::lint::run(options);
  for (const auto& error : result.errors) {
    std::cerr << "peerscope_lint: " << error << '\n';
  }
  for (const auto& finding : result.findings) {
    if (fingerprints) std::cout << finding.fingerprint << ' ';
    std::cout << peerscope::lint::to_string(finding) << '\n';
  }
  if (!sarif_path.empty()) {
    // The linter's own report is not a run artifact; plain ofstream
    // keeps the lint library dependency-free.
    std::ofstream out{sarif_path, std::ios::binary | std::ios::trunc};
    out << peerscope::lint::to_sarif(result, options.root);
    if (!out.flush()) {
      std::cerr << "peerscope_lint: cannot write " << sarif_path << '\n';
      return 2;
    }
  }
  if (result.baseline_suppressed != 0) {
    std::cerr << result.baseline_suppressed
              << " finding(s) suppressed by baseline "
              << options.baseline.generic_string() << '\n';
  }
  if (!result.errors.empty()) return 2;
  if (!result.findings.empty()) {
    std::cerr << result.findings.size() << " lint finding(s)\n";
    return 1;
  }
  std::cerr << "peerscope_lint: clean\n";
  return 0;
}
