#include "bench_gate.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace peerscope::tools {
namespace {

/// Minimal field scanner for the one-object documents
/// bench::BenchJsonSession writes: keys are known, values are numbers
/// or plain strings (span paths and bench names never contain quotes
/// or escapes), and the only nesting is the flat `phases` array. Not a
/// general JSON parser on purpose — a foreign document should fail
/// loudly, not half-parse.
class FieldScanner {
 public:
  explicit FieldScanner(std::string_view text) : text_(text) {}

  [[nodiscard]] std::string string_field(std::string_view key) const {
    const std::size_t at = value_offset(key);
    if (at == npos || at >= text_.size() || text_[at] != '"') {
      throw std::runtime_error("bench snapshot: missing string field \"" +
                               std::string{key} + "\"");
    }
    const std::size_t end = text_.find('"', at + 1);
    if (end == npos) {
      throw std::runtime_error("bench snapshot: unterminated string for \"" +
                               std::string{key} + "\"");
    }
    return std::string{text_.substr(at + 1, end - at - 1)};
  }

  [[nodiscard]] double number_field(std::string_view key) const {
    const std::size_t at = value_offset(key);
    if (at == npos) {
      throw std::runtime_error("bench snapshot: missing number field \"" +
                               std::string{key} + "\"");
    }
    const std::string token{text_.substr(at, 32)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      throw std::runtime_error("bench snapshot: bad number for \"" +
                               std::string{key} + "\"");
    }
    return v;
  }

  /// Offset just past `"key":`, or npos.
  [[nodiscard]] std::size_t value_offset(std::string_view key) const {
    const std::string needle = "\"" + std::string{key} + "\":";
    const std::size_t at = text_.find(needle);
    return at == npos ? npos : at + needle.size();
  }

  [[nodiscard]] std::string_view text() const { return text_; }

  static constexpr std::size_t npos = std::string_view::npos;

 private:
  std::string_view text_;
};

std::vector<BenchPhase> parse_phases(std::string_view text) {
  std::vector<BenchPhase> out;
  const std::string needle = "\"phases\":[";
  std::size_t at = text.find(needle);
  if (at == std::string_view::npos) return out;  // a /1 document
  at += needle.size();
  const std::size_t end = text.find(']', at);
  if (end == std::string_view::npos) {
    throw std::runtime_error("bench snapshot: unterminated phases array");
  }
  std::size_t cursor = at;
  while (true) {
    const std::size_t open = text.find('{', cursor);
    if (open == std::string_view::npos || open > end) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string_view::npos || close > end) {
      throw std::runtime_error("bench snapshot: torn phase object");
    }
    const FieldScanner row{text.substr(open, close - open + 1)};
    BenchPhase phase;
    phase.path = row.string_field("path");
    phase.count = static_cast<std::uint64_t>(row.number_field("count"));
    phase.total_ns =
        static_cast<std::uint64_t>(row.number_field("total_ns"));
    phase.self_ns = static_cast<std::uint64_t>(row.number_field("self_ns"));
    out.push_back(std::move(phase));
    cursor = close + 1;
  }
  return out;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

std::string seconds(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", ns / 1e9);
  return buf;
}

std::string human_rate(double per_s) {
  char buf[32];
  if (per_s >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", per_s / 1e6);
  } else if (per_s >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", per_s / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", per_s);
  }
  return buf;
}

}  // namespace

BenchSnapshot parse_bench_snapshot(const std::string& text) {
  const FieldScanner doc{text};
  BenchSnapshot out;
  out.schema = doc.string_field("schema");
  if (out.schema.rfind("peerscope.bench/", 0) != 0) {
    throw std::runtime_error("bench snapshot: foreign schema \"" +
                             out.schema + "\"");
  }
  out.bench = doc.string_field("bench");
  out.wall_s = doc.number_field("wall_s");
  out.events_executed =
      static_cast<std::uint64_t>(doc.number_field("events_executed"));
  out.events_per_s = doc.number_field("events_per_s");
  out.peak_rss_kb =
      static_cast<std::uint64_t>(doc.number_field("peak_rss_kb"));
  out.phases = parse_phases(doc.text());
  return out;
}

BenchSnapshot read_bench_snapshot(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("cannot read bench snapshot " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_bench_snapshot(std::move(buf).str());
  } catch (const std::exception& error) {
    throw std::runtime_error(path.string() + ": " + error.what());
  }
}

BenchDelta diff_snapshots(const BenchSnapshot& baseline,
                          const BenchSnapshot& fresh) {
  BenchDelta out;
  if (baseline.wall_s > 0) {
    out.wall_pct = (fresh.wall_s - baseline.wall_s) / baseline.wall_s * 100.0;
  }
  if (baseline.events_per_s > 0) {
    out.events_pct = (fresh.events_per_s - baseline.events_per_s) /
                     baseline.events_per_s * 100.0;
  }
  return out;
}

std::string render_bench_diff(const BenchSnapshot& baseline,
                              const BenchSnapshot& fresh,
                              double budget_pct) {
  const BenchDelta delta = diff_snapshots(baseline, fresh);
  std::ostringstream out;
  char line[160];
  out << "bench-diff: " << fresh.bench << " vs committed snapshot (budget "
      << budget_pct << "%)\n";
  std::snprintf(line, sizeof line, "  %-16s %12s %12s %9s\n", "metric",
                "committed", "fresh", "delta");
  out << line;
  std::snprintf(line, sizeof line, "  %-16s %12.3f %12.3f %9s\n", "wall_s",
                baseline.wall_s, fresh.wall_s, pct(delta.wall_pct).c_str());
  out << line;
  std::snprintf(line, sizeof line, "  %-16s %12s %12s %9s\n", "events/s",
                human_rate(baseline.events_per_s).c_str(),
                human_rate(fresh.events_per_s).c_str(),
                pct(delta.events_pct).c_str());
  out << line;
  std::snprintf(line, sizeof line, "  %-16s %12llu %12llu\n", "peak_rss_kb",
                static_cast<unsigned long long>(baseline.peak_rss_kb),
                static_cast<unsigned long long>(fresh.peak_rss_kb));
  out << line;
  // Phase attribution localizes a wall-time slope to a subsystem; the
  // rows are informational (timing noise on shared CI runners is far
  // above per-phase resolution), the verdict only reads the headline.
  bool phase_header = false;
  for (const BenchPhase& base_phase : baseline.phases) {
    for (const BenchPhase& fresh_phase : fresh.phases) {
      if (fresh_phase.path != base_phase.path) continue;
      if (!phase_header) {
        out << "  phase self-time (committed -> fresh):\n";
        phase_header = true;
      }
      const double phase_pct =
          base_phase.self_ns > 0
              ? (static_cast<double>(fresh_phase.self_ns) -
                 static_cast<double>(base_phase.self_ns)) /
                    static_cast<double>(base_phase.self_ns) * 100.0
              : 0.0;
      std::snprintf(line, sizeof line, "    %-24s %10s -> %10s %9s\n",
                    base_phase.path.c_str(),
                    seconds(static_cast<double>(base_phase.self_ns)).c_str(),
                    seconds(static_cast<double>(fresh_phase.self_ns)).c_str(),
                    pct(phase_pct).c_str());
      out << line;
    }
  }
  if (delta.regressed(budget_pct)) {
    out << "verdict: REGRESSION past the " << budget_pct
        << "% budget; apply the perf-regression-ok label only with an "
           "explanation in the PR\n";
  } else {
    out << "verdict: within budget\n";
  }
  return std::move(out).str();
}

std::string render_trajectory_markdown(
    const std::vector<BenchSnapshot>& rows) {
  std::ostringstream out;
  out << "### bench trajectory\n\n"
      << "| bench | wall_s | events | events/s | peak RSS (MB) | hottest "
         "phase (self) |\n"
      << "|---|---:|---:|---:|---:|---|\n";
  for (const BenchSnapshot& row : rows) {
    const BenchPhase* hottest = nullptr;
    for (const BenchPhase& phase : row.phases) {
      if (hottest == nullptr || phase.self_ns > hottest->self_ns) {
        hottest = &phase;
      }
    }
    char cell[64];
    out << "| " << row.bench << " | ";
    std::snprintf(cell, sizeof cell, "%.3f", row.wall_s);
    out << cell << " | " << row.events_executed << " | "
        << human_rate(row.events_per_s) << " | ";
    std::snprintf(cell, sizeof cell, "%.1f",
                  static_cast<double>(row.peak_rss_kb) / 1024.0);
    out << cell << " | ";
    if (hottest != nullptr) {
      out << hottest->path << " ("
          << seconds(static_cast<double>(hottest->self_ns)) << ")";
    } else {
      out << "-";
    }
    out << " |\n";
  }
  return std::move(out).str();
}

}  // namespace peerscope::tools
