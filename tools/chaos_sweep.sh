#!/usr/bin/env bash
# CLI-level storage chaos sweep — the end-to-end half of the chaos
# matrix (the library-level half is tests/chaos/, `ctest -L chaos`).
#
# Each cell runs the real `peerscope` binary under an injected storage
# fault schedule and asserts the documented outcome:
#
#   cell                           expected exit   invariant checked
#   ---------------------------------------------------------------
#   clean baseline                 0               metrics sidecar complete
#   transient EINTR storm          0               outputs byte-identical
#                                                  to the clean baseline
#   ENOSPC mid-trace               1               failure is loud, the
#                                                  metrics sidecar is still
#                                                  written and counts the
#                                                  injected faults
#   fsync failure + --retries 1    0               supervisor retry recovers
#   bit rot -> analyze             6               strict reader refuses
#   bit rot -> analyze --salvage   0               salvage accounts every
#                                                  dropped record
#   bit rot -> trace-summary       7               foreign/corrupt trace.json
#   malformed --io-faults spec     4               rejected before running
#
# Any other exit code, a missing sidecar, or divergent transient-run
# bytes fails the sweep. Salvage accounting lines are collected into
# $OUT/salvage_accounting.txt for CI artifact upload.
#
# Usage: tools/chaos_sweep.sh [BUILD_DIR] [OUT_DIR]
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-${BUILD_DIR}/chaos-sweep}"
PEERSCOPE="${BUILD_DIR}/tools/peerscope"
APP=tvants
SEED=1
DURATION=5

if [[ ! -x "${PEERSCOPE}" ]]; then
  echo "chaos-sweep: ${PEERSCOPE} not found (build first)" >&2
  exit 2
fi
rm -rf "${OUT}"
mkdir -p "${OUT}"
ACCOUNTING="${OUT}/salvage_accounting.txt"
: > "${ACCOUNTING}"

FAILURES=0

# run_cell NAME EXPECTED_EXIT CMD... — runs a cell, captures its
# stderr/stdout to $OUT/NAME.log, asserts the exit code.
run_cell() {
  local name="$1" expected="$2"
  shift 2
  local log="${OUT}/${name}.log"
  "$@" >"${log}" 2>&1
  local got=$?
  if [[ "${got}" -ne "${expected}" ]]; then
    echo "FAIL ${name}: exit ${got}, expected ${expected} (see ${log})" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok   ${name}: exit ${got}"
  fi
}

# assert_sidecar NAME PATH KEY... — the metrics sidecar must exist and
# contain every KEY; a faulted run that skips its sidecar is exactly
# the silent-truncation failure mode this sweep exists to catch.
assert_sidecar() {
  local name="$1" path="$2"
  shift 2
  if [[ ! -s "${path}" ]]; then
    echo "FAIL ${name}: metrics sidecar ${path} missing or empty" >&2
    FAILURES=$((FAILURES + 1))
    return
  fi
  local key
  for key in "$@"; do
    if ! grep -q "\"${key}\"" "${path}"; then
      echo "FAIL ${name}: sidecar ${path} lacks ${key}" >&2
      FAILURES=$((FAILURES + 1))
    fi
  done
}

# --- clean baseline -------------------------------------------------
run_cell clean 0 \
  "${PEERSCOPE}" run --app "${APP}" --seed "${SEED}" \
  --duration "${DURATION}" --out "${OUT}/clean" --trace-format binary \
  --metrics "${OUT}/clean_metrics.json"
assert_sidecar clean "${OUT}/clean_metrics.json" \
  sim.events_executed trace.binary_files_written
VICTIM="$(cd "${OUT}/clean" && ls *.psct | head -1)"

# --- transient faults are absorbed byte-identically -----------------
run_cell eintr 0 \
  "${PEERSCOPE}" run --app "${APP}" --seed "${SEED}" \
  --duration "${DURATION}" --out "${OUT}/eintr" --trace-format binary \
  --io-faults "eintr@4:${VICTIM},short-write@900:${VICTIM}" \
  --metrics "${OUT}/eintr_metrics.json"
assert_sidecar eintr "${OUT}/eintr_metrics.json" \
  io.faults_injected io.eintr_retries io.short_writes
if ! cmp -s "${OUT}/clean/${VICTIM}" "${OUT}/eintr/${VICTIM}"; then
  echo "FAIL eintr: ${VICTIM} diverged from the clean baseline" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- hard ENOSPC: loud failure, sidecar still complete --------------
run_cell enospc 1 \
  "${PEERSCOPE}" run --app "${APP}" --seed "${SEED}" \
  --duration "${DURATION}" --out "${OUT}/enospc" --trace-format binary \
  --io-faults "enospc@5000:${VICTIM}" \
  --metrics "${OUT}/enospc_metrics.json"
assert_sidecar enospc "${OUT}/enospc_metrics.json" \
  io.faults_injected io.enospc_failures
if ls "${OUT}/enospc"/*.tmp.* >/dev/null 2>&1; then
  echo "FAIL enospc: temp-file litter left in the capture dir" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- one-shot fsync failure recovered by the supervisor -------------
run_cell fsync-retry 0 \
  "${PEERSCOPE}" run --app "${APP}" --seed "${SEED}" \
  --duration "${DURATION}" --out "${OUT}/fsync-retry" \
  --trace-format binary --retries 1 \
  --io-faults "fsync-fail:${VICTIM}" \
  --metrics "${OUT}/fsync_metrics.json"
assert_sidecar fsync-retry "${OUT}/fsync_metrics.json" \
  io.faults_injected io.fsync_failures

# --- bit rot on disk: strict refuses, salvage accounts --------------
cp -r "${OUT}/clean" "${OUT}/bitrot"
printf '\x00\x00\x00\x00' |
  dd of="${OUT}/bitrot/${VICTIM}" bs=1 seek=2000 conv=notrunc status=none
run_cell analyze-strict 6 \
  "${PEERSCOPE}" analyze "${OUT}/bitrot"
run_cell analyze-salvage 0 \
  "${PEERSCOPE}" analyze "${OUT}/bitrot" --salvage
grep '^salvage ' "${OUT}/analyze-salvage.log" >> "${ACCOUNTING}" || true
if ! grep -q "^salvage ${VICTIM}:" "${ACCOUNTING}"; then
  echo "FAIL analyze-salvage: no accounting line for ${VICTIM}" >&2
  FAILURES=$((FAILURES + 1))
fi

# --- corrupt trace.json profile input -------------------------------
printf 'not a trace\n' > "${OUT}/bad_trace.json"
run_cell trace-summary 7 \
  "${PEERSCOPE}" trace-summary "${OUT}/bad_trace.json"

# --- malformed schedule is rejected up front ------------------------
run_cell bad-spec 4 \
  "${PEERSCOPE}" run --app "${APP}" --seed "${SEED}" --duration 1 \
  --out "${OUT}/bad-spec" --io-faults 'bogus@@'

echo "salvage accounting collected in ${ACCOUNTING}:"
cat "${ACCOUNTING}"

if [[ "${FAILURES}" -ne 0 ]]; then
  echo "chaos-sweep: ${FAILURES} cell(s) failed" >&2
  exit 1
fi
echo "chaos-sweep: all cells landed on their documented exit codes"
