file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_aware.dir/bench_micro_aware.cpp.o"
  "CMakeFiles/bench_micro_aware.dir/bench_micro_aware.cpp.o.d"
  "bench_micro_aware"
  "bench_micro_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
