# Empty compiler generated dependencies file for bench_micro_aware.
# This may be replaced when dependencies are built.
