file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_swarm.dir/bench_micro_swarm.cpp.o"
  "CMakeFiles/bench_micro_swarm.dir/bench_micro_swarm.cpp.o.d"
  "bench_micro_swarm"
  "bench_micro_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
