# Empty compiler generated dependencies file for peerscope_trace.
# This may be replaced when dependencies are built.
