file(REMOVE_RECURSE
  "CMakeFiles/peerscope_trace.dir/flow.cpp.o"
  "CMakeFiles/peerscope_trace.dir/flow.cpp.o.d"
  "CMakeFiles/peerscope_trace.dir/io.cpp.o"
  "CMakeFiles/peerscope_trace.dir/io.cpp.o.d"
  "CMakeFiles/peerscope_trace.dir/pcap.cpp.o"
  "CMakeFiles/peerscope_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/peerscope_trace.dir/sink.cpp.o"
  "CMakeFiles/peerscope_trace.dir/sink.cpp.o.d"
  "libpeerscope_trace.a"
  "libpeerscope_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
