
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/flow.cpp" "src/trace/CMakeFiles/peerscope_trace.dir/flow.cpp.o" "gcc" "src/trace/CMakeFiles/peerscope_trace.dir/flow.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/peerscope_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/peerscope_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/trace/CMakeFiles/peerscope_trace.dir/pcap.cpp.o" "gcc" "src/trace/CMakeFiles/peerscope_trace.dir/pcap.cpp.o.d"
  "/root/repo/src/trace/sink.cpp" "src/trace/CMakeFiles/peerscope_trace.dir/sink.cpp.o" "gcc" "src/trace/CMakeFiles/peerscope_trace.dir/sink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/peerscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peerscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
