file(REMOVE_RECURSE
  "libpeerscope_trace.a"
)
