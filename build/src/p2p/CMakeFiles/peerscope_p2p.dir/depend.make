# Empty dependencies file for peerscope_p2p.
# This may be replaced when dependencies are built.
