file(REMOVE_RECURSE
  "CMakeFiles/peerscope_p2p.dir/population.cpp.o"
  "CMakeFiles/peerscope_p2p.dir/population.cpp.o.d"
  "CMakeFiles/peerscope_p2p.dir/profile.cpp.o"
  "CMakeFiles/peerscope_p2p.dir/profile.cpp.o.d"
  "CMakeFiles/peerscope_p2p.dir/swarm.cpp.o"
  "CMakeFiles/peerscope_p2p.dir/swarm.cpp.o.d"
  "libpeerscope_p2p.a"
  "libpeerscope_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
