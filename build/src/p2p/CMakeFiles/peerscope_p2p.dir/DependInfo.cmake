
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/population.cpp" "src/p2p/CMakeFiles/peerscope_p2p.dir/population.cpp.o" "gcc" "src/p2p/CMakeFiles/peerscope_p2p.dir/population.cpp.o.d"
  "/root/repo/src/p2p/profile.cpp" "src/p2p/CMakeFiles/peerscope_p2p.dir/profile.cpp.o" "gcc" "src/p2p/CMakeFiles/peerscope_p2p.dir/profile.cpp.o.d"
  "/root/repo/src/p2p/swarm.cpp" "src/p2p/CMakeFiles/peerscope_p2p.dir/swarm.cpp.o" "gcc" "src/p2p/CMakeFiles/peerscope_p2p.dir/swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/peerscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peerscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/peerscope_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
