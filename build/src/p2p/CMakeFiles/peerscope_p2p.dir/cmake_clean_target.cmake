file(REMOVE_RECURSE
  "libpeerscope_p2p.a"
)
