# Empty compiler generated dependencies file for peerscope_util.
# This may be replaced when dependencies are built.
