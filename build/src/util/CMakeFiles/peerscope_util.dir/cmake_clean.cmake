file(REMOVE_RECURSE
  "CMakeFiles/peerscope_util.dir/log.cpp.o"
  "CMakeFiles/peerscope_util.dir/log.cpp.o.d"
  "CMakeFiles/peerscope_util.dir/rng.cpp.o"
  "CMakeFiles/peerscope_util.dir/rng.cpp.o.d"
  "CMakeFiles/peerscope_util.dir/stats.cpp.o"
  "CMakeFiles/peerscope_util.dir/stats.cpp.o.d"
  "CMakeFiles/peerscope_util.dir/table.cpp.o"
  "CMakeFiles/peerscope_util.dir/table.cpp.o.d"
  "CMakeFiles/peerscope_util.dir/thread_pool.cpp.o"
  "CMakeFiles/peerscope_util.dir/thread_pool.cpp.o.d"
  "libpeerscope_util.a"
  "libpeerscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
