file(REMOVE_RECURSE
  "libpeerscope_util.a"
)
