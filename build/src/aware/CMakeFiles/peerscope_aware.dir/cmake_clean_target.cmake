file(REMOVE_RECURSE
  "libpeerscope_aware.a"
)
