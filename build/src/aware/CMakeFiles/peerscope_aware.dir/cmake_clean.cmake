file(REMOVE_RECURSE
  "CMakeFiles/peerscope_aware.dir/bandwidth.cpp.o"
  "CMakeFiles/peerscope_aware.dir/bandwidth.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/export.cpp.o"
  "CMakeFiles/peerscope_aware.dir/export.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/observation.cpp.o"
  "CMakeFiles/peerscope_aware.dir/observation.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/partition.cpp.o"
  "CMakeFiles/peerscope_aware.dir/partition.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/preference.cpp.o"
  "CMakeFiles/peerscope_aware.dir/preference.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/report.cpp.o"
  "CMakeFiles/peerscope_aware.dir/report.cpp.o.d"
  "CMakeFiles/peerscope_aware.dir/temporal.cpp.o"
  "CMakeFiles/peerscope_aware.dir/temporal.cpp.o.d"
  "libpeerscope_aware.a"
  "libpeerscope_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
