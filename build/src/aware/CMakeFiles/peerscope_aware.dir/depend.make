# Empty dependencies file for peerscope_aware.
# This may be replaced when dependencies are built.
