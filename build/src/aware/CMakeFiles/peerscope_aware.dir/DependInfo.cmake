
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aware/bandwidth.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/bandwidth.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/bandwidth.cpp.o.d"
  "/root/repo/src/aware/export.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/export.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/export.cpp.o.d"
  "/root/repo/src/aware/observation.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/observation.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/observation.cpp.o.d"
  "/root/repo/src/aware/partition.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/partition.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/partition.cpp.o.d"
  "/root/repo/src/aware/preference.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/preference.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/preference.cpp.o.d"
  "/root/repo/src/aware/report.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/report.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/report.cpp.o.d"
  "/root/repo/src/aware/temporal.cpp" "src/aware/CMakeFiles/peerscope_aware.dir/temporal.cpp.o" "gcc" "src/aware/CMakeFiles/peerscope_aware.dir/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/peerscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/peerscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peerscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
