
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/metadata.cpp" "src/exp/CMakeFiles/peerscope_exp.dir/metadata.cpp.o" "gcc" "src/exp/CMakeFiles/peerscope_exp.dir/metadata.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/exp/CMakeFiles/peerscope_exp.dir/runner.cpp.o" "gcc" "src/exp/CMakeFiles/peerscope_exp.dir/runner.cpp.o.d"
  "/root/repo/src/exp/sensitivity.cpp" "src/exp/CMakeFiles/peerscope_exp.dir/sensitivity.cpp.o" "gcc" "src/exp/CMakeFiles/peerscope_exp.dir/sensitivity.cpp.o.d"
  "/root/repo/src/exp/testbed.cpp" "src/exp/CMakeFiles/peerscope_exp.dir/testbed.cpp.o" "gcc" "src/exp/CMakeFiles/peerscope_exp.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/peerscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peerscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/peerscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/peerscope_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/aware/CMakeFiles/peerscope_aware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
