file(REMOVE_RECURSE
  "libpeerscope_exp.a"
)
