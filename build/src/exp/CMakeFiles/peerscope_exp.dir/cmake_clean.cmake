file(REMOVE_RECURSE
  "CMakeFiles/peerscope_exp.dir/metadata.cpp.o"
  "CMakeFiles/peerscope_exp.dir/metadata.cpp.o.d"
  "CMakeFiles/peerscope_exp.dir/runner.cpp.o"
  "CMakeFiles/peerscope_exp.dir/runner.cpp.o.d"
  "CMakeFiles/peerscope_exp.dir/sensitivity.cpp.o"
  "CMakeFiles/peerscope_exp.dir/sensitivity.cpp.o.d"
  "CMakeFiles/peerscope_exp.dir/testbed.cpp.o"
  "CMakeFiles/peerscope_exp.dir/testbed.cpp.o.d"
  "libpeerscope_exp.a"
  "libpeerscope_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
