# Empty dependencies file for peerscope_exp.
# This may be replaced when dependencies are built.
