
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/access.cpp" "src/net/CMakeFiles/peerscope_net.dir/access.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/access.cpp.o.d"
  "/root/repo/src/net/allocator.cpp" "src/net/CMakeFiles/peerscope_net.dir/allocator.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/allocator.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/peerscope_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/net/CMakeFiles/peerscope_net.dir/prefix.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/prefix.cpp.o.d"
  "/root/repo/src/net/registry.cpp" "src/net/CMakeFiles/peerscope_net.dir/registry.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/registry.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/peerscope_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/peerscope_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
