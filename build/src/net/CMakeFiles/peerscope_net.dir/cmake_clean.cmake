file(REMOVE_RECURSE
  "CMakeFiles/peerscope_net.dir/access.cpp.o"
  "CMakeFiles/peerscope_net.dir/access.cpp.o.d"
  "CMakeFiles/peerscope_net.dir/allocator.cpp.o"
  "CMakeFiles/peerscope_net.dir/allocator.cpp.o.d"
  "CMakeFiles/peerscope_net.dir/ipv4.cpp.o"
  "CMakeFiles/peerscope_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/peerscope_net.dir/prefix.cpp.o"
  "CMakeFiles/peerscope_net.dir/prefix.cpp.o.d"
  "CMakeFiles/peerscope_net.dir/registry.cpp.o"
  "CMakeFiles/peerscope_net.dir/registry.cpp.o.d"
  "CMakeFiles/peerscope_net.dir/topology.cpp.o"
  "CMakeFiles/peerscope_net.dir/topology.cpp.o.d"
  "libpeerscope_net.a"
  "libpeerscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
