file(REMOVE_RECURSE
  "libpeerscope_net.a"
)
