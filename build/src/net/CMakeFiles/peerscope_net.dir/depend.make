# Empty dependencies file for peerscope_net.
# This may be replaced when dependencies are built.
