# Empty dependencies file for peerscope_sim.
# This may be replaced when dependencies are built.
