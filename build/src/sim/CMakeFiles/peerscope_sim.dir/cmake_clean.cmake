file(REMOVE_RECURSE
  "CMakeFiles/peerscope_sim.dir/engine.cpp.o"
  "CMakeFiles/peerscope_sim.dir/engine.cpp.o.d"
  "CMakeFiles/peerscope_sim.dir/train.cpp.o"
  "CMakeFiles/peerscope_sim.dir/train.cpp.o.d"
  "libpeerscope_sim.a"
  "libpeerscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
