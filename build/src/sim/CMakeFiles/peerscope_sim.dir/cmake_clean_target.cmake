file(REMOVE_RECURSE
  "libpeerscope_sim.a"
)
