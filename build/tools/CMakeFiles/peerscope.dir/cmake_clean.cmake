file(REMOVE_RECURSE
  "CMakeFiles/peerscope.dir/peerscope_cli.cpp.o"
  "CMakeFiles/peerscope.dir/peerscope_cli.cpp.o.d"
  "CMakeFiles/peerscope.dir/reproduce.cpp.o"
  "CMakeFiles/peerscope.dir/reproduce.cpp.o.d"
  "peerscope"
  "peerscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
