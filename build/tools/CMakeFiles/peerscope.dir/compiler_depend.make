# Empty compiler generated dependencies file for peerscope.
# This may be replaced when dependencies are built.
