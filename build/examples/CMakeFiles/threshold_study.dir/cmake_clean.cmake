file(REMOVE_RECURSE
  "CMakeFiles/threshold_study.dir/threshold_study.cpp.o"
  "CMakeFiles/threshold_study.dir/threshold_study.cpp.o.d"
  "threshold_study"
  "threshold_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
