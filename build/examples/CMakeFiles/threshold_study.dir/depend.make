# Empty dependencies file for threshold_study.
# This may be replaced when dependencies are built.
