file(REMOVE_RECURSE
  "CMakeFiles/nextgen_locality.dir/nextgen_locality.cpp.o"
  "CMakeFiles/nextgen_locality.dir/nextgen_locality.cpp.o.d"
  "nextgen_locality"
  "nextgen_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nextgen_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
