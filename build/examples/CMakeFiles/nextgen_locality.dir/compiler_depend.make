# Empty compiler generated dependencies file for nextgen_locality.
# This may be replaced when dependencies are built.
