# Empty compiler generated dependencies file for calibrate_debug.
# This may be replaced when dependencies are built.
