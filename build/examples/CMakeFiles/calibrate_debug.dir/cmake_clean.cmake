file(REMOVE_RECURSE
  "CMakeFiles/calibrate_debug.dir/calibrate_debug.cpp.o"
  "CMakeFiles/calibrate_debug.dir/calibrate_debug.cpp.o.d"
  "calibrate_debug"
  "calibrate_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
