file(REMOVE_RECURSE
  "CMakeFiles/test_p2p.dir/p2p/buffer_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/buffer_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/population_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/population_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/profile_sweep_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/profile_sweep_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/profile_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/profile_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/selection_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/selection_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/swarm_conservation_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/swarm_conservation_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/swarm_loss_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/swarm_loss_test.cpp.o.d"
  "CMakeFiles/test_p2p.dir/p2p/swarm_test.cpp.o"
  "CMakeFiles/test_p2p.dir/p2p/swarm_test.cpp.o.d"
  "test_p2p"
  "test_p2p.pdb"
  "test_p2p[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
