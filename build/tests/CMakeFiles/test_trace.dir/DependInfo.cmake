
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/flow_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/flow_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/flow_test.cpp.o.d"
  "/root/repo/tests/trace/fuzz_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/fuzz_test.cpp.o.d"
  "/root/repo/tests/trace/io_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/io_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/io_test.cpp.o.d"
  "/root/repo/tests/trace/pcap_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/pcap_test.cpp.o.d"
  "/root/repo/tests/trace/sink_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/sink_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/sink_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/peerscope_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/peerscope_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/aware/CMakeFiles/peerscope_aware.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/peerscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/peerscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/peerscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/peerscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
