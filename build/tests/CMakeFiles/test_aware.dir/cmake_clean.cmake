file(REMOVE_RECURSE
  "CMakeFiles/test_aware.dir/aware/bandwidth_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/bandwidth_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/contributor_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/contributor_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/export_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/export_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/observation_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/observation_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/partition_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/partition_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/preference_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/preference_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/report_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/report_test.cpp.o.d"
  "CMakeFiles/test_aware.dir/aware/temporal_test.cpp.o"
  "CMakeFiles/test_aware.dir/aware/temporal_test.cpp.o.d"
  "test_aware"
  "test_aware.pdb"
  "test_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
