// Report assembly: the aggregated statistics behind the paper's
// Tables II-IV and Figures 1-2, computed from ExperimentObservations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aware/experiment.hpp"
#include "aware/partition.hpp"
#include "aware/preference.hpp"

namespace peerscope::aware {

// ---------------------------------------------------------------- Table II

struct ExperimentSummary {
  // Application-level stream rates per probe, kb/s.
  double rx_kbps_mean = 0, rx_kbps_max = 0;
  double tx_kbps_mean = 0, tx_kbps_max = 0;
  // Distinct peers seen per probe.
  double all_peers_mean = 0;
  std::uint64_t all_peers_max = 0;
  // Contributing peers per probe.
  double contrib_rx_mean = 0;
  std::uint64_t contrib_rx_max = 0;
  double contrib_tx_mean = 0;
  std::uint64_t contrib_tx_max = 0;
  /// Union of distinct remote peers over all probes ("total number of
  /// observed peers" of §II).
  std::uint64_t observed_total = 0;
};

[[nodiscard]] ExperimentSummary summarize(const ExperimentObservations& data,
                                          const ContributorConfig& cfg = {});

// --------------------------------------------------------------- Table III

struct SelfBias {
  double contributors_peer_pct = 0;
  double contributors_bytes_pct = 0;
  double all_peers_peer_pct = 0;
  double all_peers_bytes_pct = 0;
};

[[nodiscard]] SelfBias self_bias(const ExperimentObservations& data,
                                 const ContributorConfig& cfg = {});

// ---------------------------------------------------------------- Table IV

struct AwarenessCell {
  /// Non-NAPA statistics (P', B'); absent when the filtered set is
  /// structurally empty (NET: only probes share subnets) or the metric
  /// is not measurable in this direction (BW upload).
  std::optional<double> b_prime_pct, p_prime_pct;
  std::optional<double> b_pct, p_pct;
};

struct AwarenessRow {
  Metric metric{};
  AwarenessCell download;
  AwarenessCell upload;
};

struct AwarenessConfig {
  ContributorConfig contributor;
  BwConfig bw;
  HopConfig hop;
};

/// Computes the full Table IV block for one application: all five
/// metrics x {download, upload} x {non-NAPA, all contributors}.
[[nodiscard]] std::vector<AwarenessRow> awareness_table(
    const ExperimentObservations& data, const AwarenessConfig& cfg = {});

// --------------------------------------------------------------- Figure 1

struct GeoShare {
  net::CountryCode cc;      // unknown() entry = the "*" bucket
  double peer_pct = 0;
  double rx_bytes_pct = 0;
  double tx_bytes_pct = 0;
};

/// Breakdown over {CN, HU, IT, FR, PL, *} like Figure 1; shares are
/// percentages of all observed peers / bytes.
[[nodiscard]] std::vector<GeoShare> geo_breakdown(
    const ExperimentObservations& data);

// --------------------------------------------------------------- Figure 2

struct AsMatrix {
  std::vector<net::AsId> ases;  // institution ASes with high-bw probes
  /// mean_bytes[i * ases.size() + j]: average bytes transferred from a
  /// high-bw probe in ases[i] to a high-bw probe in ases[j].
  std::vector<double> mean_bytes;
  /// R: mean intra-AS / mean inter-AS pair traffic, with same-subnet
  /// (hop-0) pairs excluded — the paper's §IV-B statistic ("excluding
  /// the traffic exchanged among peers in the same SubNet"): 1.93
  /// TVAnts, 0.98 PPLive, 0.2 SopCast.
  double intra_inter_ratio = 0;
  /// Same ratio with same-subnet pairs included (what the raw matrix
  /// diagonal shows; dominated by LAN traffic for PPLive).
  double intra_inter_ratio_with_lan = 0;

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return mean_bytes[i * ases.size() + j];
  }
};

[[nodiscard]] AsMatrix as_traffic_matrix(const ExperimentObservations& data);

}  // namespace peerscope::aware
