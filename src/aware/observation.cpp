#include "aware/observation.hpp"

#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace peerscope::aware {

std::vector<PairObservation> extract_observations(
    const trace::FlowTable& flows, const net::NetRegistry& registry,
    const std::unordered_set<net::Ipv4Addr>& napa_set) {
  std::vector<PairObservation> out;
  out.reserve(flows.flow_count());

  const net::Ipv4Addr probe = flows.probe();
  const net::AsId probe_as = registry.as_of(probe);
  const net::CountryCode probe_cc = registry.country_of(probe);

  // Observation order is the flow table's hash order; every consumer
  // (report tallies, JSON export) keys by address or sorts first.
  for (const auto& [remote, f] : flows.flows()) {  // lint: ordered
    PairObservation obs;
    obs.probe = probe;
    obs.remote = remote;
    obs.probe_as = probe_as;
    obs.probe_cc = probe_cc;
    obs.remote_as = registry.as_of(remote);
    obs.remote_cc = registry.country_of(remote);
    obs.same_subnet = net::same_subnet24(probe, remote);
    obs.remote_is_napa = napa_set.contains(remote);

    obs.rx_pkts = f.rx_pkts;
    obs.rx_bytes = f.rx_bytes;
    obs.tx_pkts = f.tx_pkts;
    obs.tx_bytes = f.tx_bytes;
    obs.rx_video_pkts = f.rx_video_pkts;
    obs.rx_video_bytes = f.rx_video_bytes;
    obs.tx_video_pkts = f.tx_video_pkts;
    obs.tx_video_bytes = f.tx_video_bytes;
    obs.min_rx_video_ipg_ns = f.min_rx_video_ipg_ns;
    obs.smallest_rx_ipgs = f.smallest_rx_ipgs;
    obs.rx_ipg_samples = f.rx_ipg_samples;
    if (f.saw_rx) {
      // TTL mode, not last-seen: a corrupt TTL byte on the final packet
      // of a flow must not move the hop estimate.
      obs.rx_hops = sim::kInitialTtl - static_cast<int>(f.rx_ttl_mode());
    }
    out.push_back(obs);
  }
  if (obs::enabled()) {
    std::uint64_t ipg_samples = 0;
    for (const auto& o : out) ipg_samples += o.rx_ipg_samples;
    obs::counter("aware.flow_tables_joined").add();
    obs::counter("aware.observations_extracted").add(out.size());
    obs::counter("aware.ipg_samples").add(ipg_samples);
  }
  PEERSCOPE_TRACE_COUNTER("aware.observations_extracted",
                          static_cast<std::int64_t>(out.size()));
  return out;
}

}  // namespace peerscope::aware
