#include "aware/partition.hpp"

#include <vector>

#include "util/stats.hpp"

namespace peerscope::aware {

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kBw:
      return "BW";
    case Metric::kAs:
      return "AS";
    case Metric::kCc:
      return "CC";
    case Metric::kNet:
      return "NET";
    case Metric::kHop:
      return "HOP";
  }
  return "?";
}

Partition bw_partition(BwConfig cfg) {
  return [cfg](const PairObservation& obs) -> std::optional<bool> {
    if (!obs.has_min_ipg()) return std::nullopt;
    return obs.min_ipg_after_discard(cfg.ipg_discard) < cfg.ipg_threshold_ns;
  };
}

Partition as_partition() {
  return [](const PairObservation& obs) -> std::optional<bool> {
    if (!obs.remote_as.known() || !obs.probe_as.known()) return std::nullopt;
    return obs.remote_as == obs.probe_as;
  };
}

Partition cc_partition() {
  return [](const PairObservation& obs) -> std::optional<bool> {
    if (!obs.remote_cc.known() || !obs.probe_cc.known()) return std::nullopt;
    return obs.remote_cc == obs.probe_cc;
  };
}

Partition net_partition() {
  return [](const PairObservation& obs) -> std::optional<bool> {
    return obs.same_subnet;
  };
}

Partition hop_partition(HopConfig cfg) {
  return [cfg](const PairObservation& obs) -> std::optional<bool> {
    if (obs.rx_hops < 0) return std::nullopt;
    return obs.rx_hops < cfg.threshold_hops;
  };
}

Partition make_partition(Metric metric) {
  switch (metric) {
    case Metric::kBw:
      return bw_partition();
    case Metric::kAs:
      return as_partition();
    case Metric::kCc:
      return cc_partition();
    case Metric::kNet:
      return net_partition();
    case Metric::kHop:
      return hop_partition();
  }
  return net_partition();  // unreachable
}

double median_hops(std::span<const PairObservation> observations) {
  std::vector<double> hops;
  hops.reserve(observations.size());
  for (const auto& obs : observations) {
    if (obs.rx_hops >= 0) hops.push_back(static_cast<double>(obs.rx_hops));
  }
  if (hops.empty()) return 0.0;
  return util::percentile_inplace(hops, 0.5);
}

}  // namespace peerscope::aware
