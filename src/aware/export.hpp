// Machine-readable result export: every report structure as CSV, so
// the figures can be regenerated with external plotting tools and the
// benches can archive their numbers (PEERSCOPE_BENCH_OUTDIR).
#pragma once

#include <filesystem>
#include <vector>

#include "aware/report.hpp"
#include "aware/temporal.hpp"

namespace peerscope::aware {

/// Table IV block: one row per (metric, direction) with the four
/// preference percentages (empty cells for unmeasurable entries).
void write_awareness_csv(const std::filesystem::path& path,
                         const std::string& app,
                         const std::vector<AwarenessRow>& rows);

/// Table II row for one application.
void write_summary_csv(const std::filesystem::path& path,
                       const std::string& app, const ExperimentSummary& s);

/// Figure 1 series: country, peer%, rx%, tx%.
void write_geo_csv(const std::filesystem::path& path, const std::string& app,
                   const std::vector<GeoShare>& shares);

/// Figure 2 matrix in long form: from_as, to_as, mean_bytes, intra.
void write_matrix_csv(const std::filesystem::path& path,
                      const std::string& app, const AsMatrix& matrix);

/// Temporal series: t_s, rx_kbps, tx_kbps, active, new, new_contrib.
void write_timeseries_csv(const std::filesystem::path& path,
                          const std::vector<IntervalStats>& series);

}  // namespace peerscope::aware
