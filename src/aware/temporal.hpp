// Temporal evolution of per-probe metrics — the per-interval view of
// an experiment (the analysis style of the paper's ref [11], which
// tracked transmitted/received bytes and parent/children counts over
// time). Operates on raw packet records, so it needs a capture with
// keep_records enabled (or a loaded trace file).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/record.hpp"
#include "util/sim_time.hpp"

namespace peerscope::aware {

/// One analysis interval of one probe's capture.
struct IntervalStats {
  util::SimTime start{0};
  double rx_kbps = 0;
  double tx_kbps = 0;
  /// Distinct peers with any traffic in the interval.
  std::uint32_t active_peers = 0;
  /// Peers seen for the first time in this interval.
  std::uint32_t new_peers = 0;
  /// Peers that crossed the video-contributor threshold (RX) within
  /// this interval (cumulative count of "new contributors").
  std::uint32_t new_rx_contributors = 0;
};

/// Slices a record stream into fixed intervals. Records must cover a
/// single probe; they need not be sorted.
[[nodiscard]] std::vector<IntervalStats> time_series(
    std::span<const trace::PacketRecord> records, util::SimTime duration,
    util::SimTime interval, std::uint64_t contributor_video_packets = 13);

/// Session-level peer stability: how long peers stay active with the
/// probe (first-to-last packet span), aggregated.
struct StabilityStats {
  double mean_session_s = 0;
  double median_session_s = 0;
  double p90_session_s = 0;
  std::size_t peers = 0;
};

[[nodiscard]] StabilityStats session_stability(
    std::span<const trace::PacketRecord> records);

}  // namespace peerscope::aware
