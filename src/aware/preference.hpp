// The preference framework — Eqs. (1)-(8) of the paper.
//
// For a network property X with preferred partition X_P, over the
// contributor set of each probe p (optionally deprived of the probe
// set W to remove self-induced bias):
//
//   Peer_{U|P}(p) = sum over e in U(p) of 1_P(p,e)                (1)
//   Byte_{U|P}(p) = sum over e in U(p) of 1_P(p,e) * B(p,e)       (2)
//   (and the complements, Eqs. 3-4), aggregated over probes (5-6):
//
//   P_U = 100 * Peer_{U|P} / (Peer_{U|P} + Peer_{U|!P})           (7)
//   B_U = 100 * Byte_{U|P} / (Byte_{U|P} + Byte_{U|!P})           (8)
//
// and identically for the download direction D.
#pragma once

#include <cstdint>
#include <span>

#include "aware/contributor.hpp"
#include "aware/observation.hpp"
#include "aware/partition.hpp"
#include "util/stats.hpp"

namespace peerscope::aware {

enum class Dir { kDownload, kUpload };

struct PreferenceCounts {
  std::uint64_t peers_pref = 0;
  std::uint64_t peers_nonpref = 0;
  std::uint64_t bytes_pref = 0;
  std::uint64_t bytes_nonpref = 0;
  /// Peers skipped because the partition could not evaluate them
  /// (e.g. no packet-pair signal for BW).
  std::uint64_t peers_unevaluable = 0;

  void merge(const PreferenceCounts& other) {
    peers_pref += other.peers_pref;
    peers_nonpref += other.peers_nonpref;
    bytes_pref += other.bytes_pref;
    bytes_nonpref += other.bytes_nonpref;
    peers_unevaluable += other.peers_unevaluable;
  }

  /// Eq. 7 (peer-wise preference, percent).
  [[nodiscard]] double peer_pct() const {
    return util::percentage(static_cast<double>(peers_pref),
                            static_cast<double>(peers_nonpref));
  }
  /// Eq. 8 (byte-wise preference, percent).
  [[nodiscard]] double byte_pct() const {
    return util::percentage(static_cast<double>(bytes_pref),
                            static_cast<double>(bytes_nonpref));
  }
  [[nodiscard]] std::uint64_t peers_total() const {
    return peers_pref + peers_nonpref;
  }
};

struct PreferenceOptions {
  Dir dir = Dir::kDownload;
  /// Evaluate on P'(p) = P(p) \ W (drop peers that are themselves
  /// probes) — the paper's control for self-induced bias.
  bool exclude_napa = false;
  ContributorConfig contributor;
};

/// Per-probe evaluation (Eqs. 1-4) over one vantage point's
/// observations.
[[nodiscard]] PreferenceCounts evaluate_preference(
    std::span<const PairObservation> observations, const Partition& partition,
    const PreferenceOptions& options);

}  // namespace peerscope::aware
