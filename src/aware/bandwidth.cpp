#include "aware/bandwidth.hpp"

#include "aware/partition.hpp"
#include "aware/preference.hpp"

namespace peerscope::aware {

std::optional<CapacityEstimate> estimate_capacity(const PairObservation& obs,
                                                  std::int32_t packet_bytes) {
  if (!obs.has_min_ipg() || obs.min_rx_video_ipg_ns <= 0) {
    return std::nullopt;
  }
  CapacityEstimate estimate;
  estimate.min_ipg_ns = obs.min_rx_video_ipg_ns;
  estimate.mbps = static_cast<double>(packet_bytes) * 8.0 /
                  static_cast<double>(obs.min_rx_video_ipg_ns) * 1e3;
  return estimate;
}

std::vector<ThresholdPoint> bw_threshold_sweep(
    const ExperimentObservations& data,
    std::span<const std::int64_t> thresholds_ns,
    const ContributorConfig& contributor) {
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds_ns.size());
  for (const std::int64_t threshold : thresholds_ns) {
    PreferenceCounts counts;
    PreferenceOptions options;
    options.dir = Dir::kDownload;
    options.exclude_napa = true;
    options.contributor = contributor;
    const Partition partition =
        bw_partition(BwConfig{.ipg_threshold_ns = threshold});
    for (const auto& per_probe : data.per_probe) {
      counts.merge(evaluate_preference(per_probe, partition, options));
    }
    out.push_back({threshold, counts.peer_pct(), counts.byte_pct()});
  }
  return out;
}

util::Histogram capacity_distribution(const ExperimentObservations& data,
                                      double max_mbps, std::size_t bins,
                                      const ContributorConfig& contributor) {
  util::Histogram histogram{0.0, max_mbps, bins};
  for (const auto& per_probe : data.per_probe) {
    for (const auto& obs : per_probe) {
      if (obs.remote_is_napa || !is_rx_contributor(obs, contributor)) {
        continue;
      }
      if (const auto estimate = estimate_capacity(obs)) {
        histogram.add(estimate->mbps);
      }
    }
  }
  return histogram;
}

}  // namespace peerscope::aware
