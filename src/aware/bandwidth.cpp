#include "aware/bandwidth.hpp"

#include <limits>

#include "aware/partition.hpp"
#include "aware/preference.hpp"

namespace peerscope::aware {

std::optional<CapacityEstimate> estimate_capacity(const PairObservation& obs,
                                                  std::int32_t packet_bytes,
                                                  int ipg_discard) {
  if (!obs.has_min_ipg()) return std::nullopt;
  const std::int64_t ipg = obs.min_ipg_after_discard(ipg_discard);
  if (ipg <= 0 || ipg == std::numeric_limits<std::int64_t>::max()) {
    return std::nullopt;
  }
  CapacityEstimate estimate;
  estimate.min_ipg_ns = ipg;
  estimate.mbps = static_cast<double>(packet_bytes) * 8.0 /
                  static_cast<double>(ipg) * 1e3;
  return estimate;
}

std::vector<ThresholdPoint> bw_threshold_sweep(
    const ExperimentObservations& data,
    std::span<const std::int64_t> thresholds_ns,
    const ContributorConfig& contributor) {
  std::vector<ThresholdPoint> out;
  out.reserve(thresholds_ns.size());
  for (const std::int64_t threshold : thresholds_ns) {
    PreferenceCounts counts;
    PreferenceOptions options;
    options.dir = Dir::kDownload;
    options.exclude_napa = true;
    options.contributor = contributor;
    const Partition partition =
        bw_partition(BwConfig{.ipg_threshold_ns = threshold});
    for (const auto& per_probe : data.per_probe) {
      counts.merge(evaluate_preference(per_probe, partition, options));
    }
    out.push_back({threshold, counts.peer_pct(), counts.byte_pct()});
  }
  return out;
}

util::Histogram capacity_distribution(const ExperimentObservations& data,
                                      double max_mbps, std::size_t bins,
                                      const ContributorConfig& contributor) {
  util::Histogram histogram{0.0, max_mbps, bins};
  for (const auto& per_probe : data.per_probe) {
    for (const auto& obs : per_probe) {
      if (obs.remote_is_napa || !is_rx_contributor(obs, contributor)) {
        continue;
      }
      if (const auto estimate = estimate_capacity(obs)) {
        histogram.add(estimate->mbps);
      }
    }
  }
  return histogram;
}

}  // namespace peerscope::aware
