#include "aware/report.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/prefix.hpp"

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace peerscope::aware {

ExperimentSummary summarize(const ExperimentObservations& data,
                            const ContributorConfig& cfg) {
  ExperimentSummary s;
  if (data.per_probe.empty()) return s;

  util::OnlineStats rx_rate, tx_rate, all_peers, contrib_rx, contrib_tx;
  std::unordered_set<net::Ipv4Addr> observed;
  const double seconds = data.duration.seconds();

  for (const auto& observations : data.per_probe) {
    std::uint64_t rx_bytes = 0, tx_bytes = 0, n_rx = 0, n_tx = 0;
    for (const auto& obs : observations) {
      rx_bytes += obs.rx_bytes;
      tx_bytes += obs.tx_bytes;
      if (is_rx_contributor(obs, cfg)) ++n_rx;
      if (is_tx_contributor(obs, cfg)) ++n_tx;
      observed.insert(obs.remote);
    }
    if (seconds > 0) {
      rx_rate.add(static_cast<double>(rx_bytes) * 8.0 / seconds / 1e3);
      tx_rate.add(static_cast<double>(tx_bytes) * 8.0 / seconds / 1e3);
    }
    all_peers.add(static_cast<double>(observations.size()));
    contrib_rx.add(static_cast<double>(n_rx));
    contrib_tx.add(static_cast<double>(n_tx));
  }

  s.rx_kbps_mean = rx_rate.mean();
  s.rx_kbps_max = rx_rate.max();
  s.tx_kbps_mean = tx_rate.mean();
  s.tx_kbps_max = tx_rate.max();
  s.all_peers_mean = all_peers.mean();
  s.all_peers_max = static_cast<std::uint64_t>(all_peers.max());
  s.contrib_rx_mean = contrib_rx.mean();
  s.contrib_rx_max = static_cast<std::uint64_t>(contrib_rx.max());
  s.contrib_tx_mean = contrib_tx.mean();
  s.contrib_tx_max = static_cast<std::uint64_t>(contrib_tx.max());
  s.observed_total = observed.size();
  if (obs::enabled()) {
    // Classification work done, not distinct peers: repeated summarize
    // calls over the same data count again (like packets, not gauges).
    obs::counter("aware.contributors_rx_classified")
        .add(static_cast<std::uint64_t>(contrib_rx.sum()));
    obs::counter("aware.contributors_tx_classified")
        .add(static_cast<std::uint64_t>(contrib_tx.sum()));
    obs::counter("aware.peers_observed").add(s.observed_total);
  }
  return s;
}

SelfBias self_bias(const ExperimentObservations& data,
                   const ContributorConfig& cfg) {
  std::uint64_t contrib_napa_peers = 0, contrib_peers = 0;
  std::uint64_t contrib_napa_bytes = 0, contrib_bytes = 0;
  std::uint64_t all_napa_peers = 0, all_peers = 0;
  std::uint64_t all_napa_bytes = 0, all_bytes = 0;

  for (const auto& observations : data.per_probe) {
    for (const auto& obs : observations) {
      const std::uint64_t bytes = obs.rx_bytes + obs.tx_bytes;
      ++all_peers;
      all_bytes += bytes;
      if (obs.remote_is_napa) {
        ++all_napa_peers;
        all_napa_bytes += bytes;
      }
      if (is_contributor(obs, cfg)) {
        ++contrib_peers;
        contrib_bytes += bytes;
        if (obs.remote_is_napa) {
          ++contrib_napa_peers;
          contrib_napa_bytes += bytes;
        }
      }
    }
  }

  auto pct = [](std::uint64_t part, std::uint64_t total) {
    return total == 0
               ? 0.0
               : 100.0 * static_cast<double>(part) / static_cast<double>(total);
  };
  return {pct(contrib_napa_peers, contrib_peers),
          pct(contrib_napa_bytes, contrib_bytes),
          pct(all_napa_peers, all_peers), pct(all_napa_bytes, all_bytes)};
}

namespace {

std::optional<double> counts_peer_pct(const PreferenceCounts& c) {
  if (c.peers_total() == 0) return std::nullopt;
  return c.peer_pct();
}
std::optional<double> counts_byte_pct(const PreferenceCounts& c) {
  if (c.peers_total() == 0) return std::nullopt;
  return c.byte_pct();
}

AwarenessCell evaluate_cell(const ExperimentObservations& data,
                            const Partition& partition, Dir dir,
                            const ContributorConfig& contributor) {
  PreferenceCounts all;
  PreferenceCounts non_napa;
  for (const auto& observations : data.per_probe) {
    PreferenceOptions opt;
    opt.dir = dir;
    opt.contributor = contributor;
    opt.exclude_napa = false;
    all.merge(evaluate_preference(observations, partition, opt));
    opt.exclude_napa = true;
    non_napa.merge(evaluate_preference(observations, partition, opt));
  }
  AwarenessCell cell;
  cell.p_pct = counts_peer_pct(all);
  cell.b_pct = counts_byte_pct(all);
  cell.p_prime_pct = counts_peer_pct(non_napa);
  cell.b_prime_pct = counts_byte_pct(non_napa);
  if (obs::enabled()) {
    obs::counter("aware.cells_evaluated").add();
    obs::counter("aware.partition_preferred").add(all.peers_pref);
    obs::counter("aware.partition_other").add(all.peers_nonpref);
    obs::counter("aware.partition_unevaluable").add(all.peers_unevaluable);
  }
  return cell;
}

}  // namespace

std::vector<AwarenessRow> awareness_table(const ExperimentObservations& data,
                                          const AwarenessConfig& cfg) {
  std::vector<AwarenessRow> rows;
  const Metric metrics[] = {Metric::kBw, Metric::kAs, Metric::kCc,
                            Metric::kNet, Metric::kHop};
  for (const Metric metric : metrics) {
    Partition partition;
    switch (metric) {
      case Metric::kBw:
        partition = bw_partition(cfg.bw);
        break;
      case Metric::kHop:
        partition = hop_partition(cfg.hop);
        break;
      default:
        partition = make_partition(metric);
        break;
    }
    AwarenessRow row;
    row.metric = metric;
    row.download = evaluate_cell(data, partition, Dir::kDownload,
                                 cfg.contributor);
    if (metric == Metric::kBw) {
      // The packet-pair signal only exists for peers that sent us
      // video, so BW is download-only (paper §III-C directionality).
      row.upload = {};
    } else {
      row.upload =
          evaluate_cell(data, partition, Dir::kUpload, cfg.contributor);
    }
    if (metric == Metric::kNet) {
      // "The set of peers in the same subnet includes only NAPA-WINE
      // peers, so that P' = ∅" (paper §IV-C): the testbed's subnets
      // contain no third-party hosts, so the non-NAPA statistic is
      // structurally empty and printed "-".
      row.download.p_prime_pct.reset();
      row.download.b_prime_pct.reset();
      row.upload.p_prime_pct.reset();
      row.upload.b_prime_pct.reset();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<GeoShare> geo_breakdown(const ExperimentObservations& data) {
  struct Tally {
    std::uint64_t peers = 0, rx = 0, tx = 0;
  };
  std::unordered_map<net::CountryCode, Tally> tallies;
  Tally total;

  for (const auto& observations : data.per_probe) {
    for (const auto& obs : observations) {
      Tally& t = tallies[obs.remote_cc];
      ++t.peers;
      t.rx += obs.rx_bytes;
      t.tx += obs.tx_bytes;
      ++total.peers;
      total.rx += obs.rx_bytes;
      total.tx += obs.tx_bytes;
    }
  }

  const net::CountryCode highlighted[] = {net::kChina, net::kHungary,
                                          net::kItaly, net::kFrance,
                                          net::kPoland};
  auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole == 0
               ? 0.0
               : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
  };

  std::vector<GeoShare> out;
  Tally rest = total;
  for (const auto cc : highlighted) {
    const Tally t = tallies.contains(cc) ? tallies.at(cc) : Tally{};
    out.push_back({cc, pct(t.peers, total.peers), pct(t.rx, total.rx),
                   pct(t.tx, total.tx)});
    rest.peers -= t.peers;
    rest.rx -= t.rx;
    rest.tx -= t.tx;
  }
  out.push_back({net::CountryCode{}, pct(rest.peers, total.peers),
                 pct(rest.rx, total.rx), pct(rest.tx, total.tx)});
  return out;
}

AsMatrix as_traffic_matrix(const ExperimentObservations& data) {
  // Institution ASes that host high-bandwidth probes, in first-seen
  // order (stable axis labels).
  std::vector<net::AsId> ases;
  for (const auto& probe : data.probes) {
    if (!probe.high_bw) continue;
    if (std::find(ases.begin(), ases.end(), probe.as) == ases.end()) {
      ases.push_back(probe.as);
    }
  }
  std::sort(ases.begin(), ases.end());

  auto as_index = [&ases](net::AsId as) -> std::optional<std::size_t> {
    const auto it = std::find(ases.begin(), ases.end(), as);
    if (it == ases.end()) return std::nullopt;
    return static_cast<std::size_t>(it - ases.begin());
  };

  // High-bw probe address -> AS index for the receiver side.
  std::unordered_map<net::Ipv4Addr, std::size_t> probe_as_index;
  for (const auto& probe : data.probes) {
    if (!probe.high_bw) continue;
    if (const auto idx = as_index(probe.as)) {
      probe_as_index.emplace(probe.addr, *idx);
    }
  }

  const std::size_t n = ases.size();
  std::vector<double> sums(n * n, 0.0);       // all probe pairs
  std::vector<double> sums_wan(n * n, 0.0);   // same-subnet pairs excluded

  // Denominators: every ordered pair of distinct high-bw probes counts,
  // including pairs that exchanged nothing (they dilute the average).
  // Same-subnet (hop-0) pairs are tallied separately so R can exclude
  // them the way the paper's §IV-B discussion does.
  std::vector<std::uint64_t> pairs(n * n, 0);
  std::vector<std::uint64_t> pairs_wan(n * n, 0);
  for (const auto& a : data.probes) {
    if (!a.high_bw) continue;
    const auto ia = as_index(a.as);
    if (!ia) continue;
    for (const auto& b : data.probes) {
      if (!b.high_bw || a.addr == b.addr) continue;
      const auto ib = as_index(b.as);
      if (!ib) continue;
      ++pairs[*ia * n + *ib];
      if (!net::same_subnet24(a.addr, b.addr)) {
        ++pairs_wan[*ia * n + *ib];
      }
    }
  }

  for (std::size_t pi = 0; pi < data.per_probe.size(); ++pi) {
    const ProbeMeta& probe = data.probes[pi];
    if (!probe.high_bw) continue;
    const auto src = as_index(probe.as);
    if (!src) continue;
    for (const auto& obs : data.per_probe[pi]) {
      const auto it = probe_as_index.find(obs.remote);
      if (it == probe_as_index.end()) continue;
      const std::size_t cell = *src * n + it->second;
      sums[cell] += static_cast<double>(obs.tx_bytes);
      if (!obs.same_subnet) {
        sums_wan[cell] += static_cast<double>(obs.tx_bytes);
      }
    }
  }

  AsMatrix matrix;
  matrix.ases = ases;
  matrix.mean_bytes.assign(n * n, 0.0);
  double intra_sum = 0, inter_sum = 0, intra_sum_wan = 0;
  std::uint64_t intra_n = 0, inter_n = 0, intra_n_wan = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t cell = i * n + j;
      if (pairs[cell] > 0) {
        matrix.mean_bytes[cell] =
            sums[cell] / static_cast<double>(pairs[cell]);
      }
      if (i == j) {
        intra_sum += sums[cell];
        intra_n += pairs[cell];
        intra_sum_wan += sums_wan[cell];
        intra_n_wan += pairs_wan[cell];
      } else {
        inter_sum += sums[cell];
        inter_n += pairs[cell];
      }
    }
  }
  const double inter_mean =
      inter_n ? inter_sum / static_cast<double>(inter_n) : 0.0;
  const double intra_mean =
      intra_n ? intra_sum / static_cast<double>(intra_n) : 0.0;
  const double intra_mean_wan =
      intra_n_wan ? intra_sum_wan / static_cast<double>(intra_n_wan) : 0.0;
  matrix.intra_inter_ratio_with_lan =
      inter_mean > 0 ? intra_mean / inter_mean : 0.0;
  matrix.intra_inter_ratio =
      inter_mean > 0 ? intra_mean_wan / inter_mean : 0.0;
  return matrix;
}

}  // namespace peerscope::aware
