// Packet-pair capacity estimation beyond the paper's binary classifier.
//
// The paper only needs high/low at a 1 ms threshold; this module keeps
// the full signal: a capacity point-estimate per peer from the minimum
// inter-packet gap, the population IPG distribution, and a threshold
// sensitivity sweep that shows how (in)sensitive Table IV's BW row is
// to the 1 ms choice — the natural ablation of §III-B.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "aware/contributor.hpp"
#include "aware/experiment.hpp"
#include "aware/observation.hpp"
#include "util/stats.hpp"

namespace peerscope::aware {

/// Path-capacity point estimate for one peer pair.
struct CapacityEstimate {
  /// Bottleneck estimate in Mb/s: packet_bits / min_ipg.
  double mbps = 0.0;
  std::int64_t min_ipg_ns = 0;
};

/// Estimates the path bottleneck toward the probe from the minimum
/// inter-packet gap, assuming `packet_bytes`-sized video packets (the
/// paper's 1250 B reference). nullopt when no packet pair was observed.
/// `ipg_discard` drops that many smallest gap samples first (capture
/// duplication fabricates near-zero gaps that would otherwise read as
/// absurd multi-Gb/s capacities); 0 is the paper's plain minimum.
[[nodiscard]] std::optional<CapacityEstimate> estimate_capacity(
    const PairObservation& obs, std::int32_t packet_bytes = 1250,
    int ipg_discard = 0);

/// One point of the threshold sensitivity sweep.
struct ThresholdPoint {
  std::int64_t threshold_ns = 0;
  /// Peer-wise / byte-wise download preference at this threshold
  /// (non-NAPA contributors), i.e. Table IV's B'D/P'D as a function of
  /// the classification boundary.
  double peer_pct = 0;
  double byte_pct = 0;
};

/// Evaluates the BW preference at each candidate threshold.
[[nodiscard]] std::vector<ThresholdPoint> bw_threshold_sweep(
    const ExperimentObservations& data,
    std::span<const std::int64_t> thresholds_ns,
    const ContributorConfig& contributor = {});

/// Distribution of estimated capacities over download contributors
/// (non-NAPA), in Mb/s bins over [0, max_mbps).
[[nodiscard]] util::Histogram capacity_distribution(
    const ExperimentObservations& data, double max_mbps = 120.0,
    std::size_t bins = 24, const ContributorConfig& contributor = {});

}  // namespace peerscope::aware
