#include "aware/preference.hpp"

namespace peerscope::aware {

PreferenceCounts evaluate_preference(
    std::span<const PairObservation> observations, const Partition& partition,
    const PreferenceOptions& options) {
  PreferenceCounts counts;
  for (const PairObservation& obs : observations) {
    if (options.exclude_napa && obs.remote_is_napa) continue;

    const bool member = options.dir == Dir::kDownload
                            ? is_rx_contributor(obs, options.contributor)
                            : is_tx_contributor(obs, options.contributor);
    if (!member) continue;

    const std::uint64_t bytes = options.dir == Dir::kDownload
                                    ? obs.rx_video_bytes
                                    : obs.tx_video_bytes;

    const std::optional<bool> preferred = partition(obs);
    if (!preferred.has_value()) {
      ++counts.peers_unevaluable;
      continue;
    }
    if (*preferred) {
      ++counts.peers_pref;
      counts.bytes_pref += bytes;
    } else {
      ++counts.peers_nonpref;
      counts.bytes_nonpref += bytes;
    }
  }
  return counts;
}

}  // namespace peerscope::aware
