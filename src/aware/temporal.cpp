#include "aware/temporal.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.hpp"

namespace peerscope::aware {

std::vector<IntervalStats> time_series(
    std::span<const trace::PacketRecord> records, util::SimTime duration,
    util::SimTime interval, std::uint64_t contributor_video_packets) {
  if (interval <= util::SimTime::zero() || duration <= util::SimTime::zero()) {
    throw std::invalid_argument("time_series: non-positive interval");
  }
  const auto slots = static_cast<std::size_t>(
      (duration.ns() + interval.ns() - 1) / interval.ns());
  std::vector<IntervalStats> out(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    out[i].start = interval * static_cast<std::int64_t>(i);
  }

  std::vector<trace::PacketRecord> sorted(records.begin(), records.end());
  std::sort(sorted.begin(), sorted.end(), trace::record_before);

  std::vector<std::uint64_t> rx_bytes(slots, 0), tx_bytes(slots, 0);
  std::vector<std::unordered_set<net::Ipv4Addr>> active(slots);
  std::unordered_set<net::Ipv4Addr> ever_seen;
  std::unordered_map<net::Ipv4Addr, std::uint64_t> video_pkts;
  std::unordered_set<net::Ipv4Addr> contributors;

  for (const auto& r : sorted) {
    const auto slot = static_cast<std::size_t>(r.ts.ns() / interval.ns());
    if (slot >= slots) continue;  // completion tail past the horizon
    if (r.dir == trace::Direction::kRx) {
      rx_bytes[slot] += static_cast<std::uint64_t>(r.bytes);
    } else {
      tx_bytes[slot] += static_cast<std::uint64_t>(r.bytes);
    }
    active[slot].insert(r.remote);
    if (ever_seen.insert(r.remote).second) {
      ++out[slot].new_peers;
    }
    if (r.dir == trace::Direction::kRx &&
        r.kind == sim::PacketKind::kVideo) {
      if (++video_pkts[r.remote] == contributor_video_packets &&
          contributors.insert(r.remote).second) {
        ++out[slot].new_rx_contributors;
      }
    }
  }

  const double interval_s = interval.seconds();
  for (std::size_t i = 0; i < slots; ++i) {
    out[i].rx_kbps = static_cast<double>(rx_bytes[i]) * 8.0 / interval_s / 1e3;
    out[i].tx_kbps = static_cast<double>(tx_bytes[i]) * 8.0 / interval_s / 1e3;
    out[i].active_peers = static_cast<std::uint32_t>(active[i].size());
  }
  return out;
}

StabilityStats session_stability(
    std::span<const trace::PacketRecord> records) {
  std::unordered_map<net::Ipv4Addr,
                     std::pair<util::SimTime, util::SimTime>>
      spans;
  for (const auto& r : records) {
    auto [it, inserted] = spans.try_emplace(r.remote, r.ts, r.ts);
    if (!inserted) {
      it->second.first = std::min(it->second.first, r.ts);
      it->second.second = std::max(it->second.second, r.ts);
    }
  }
  StabilityStats stats;
  stats.peers = spans.size();
  if (spans.empty()) return stats;
  std::vector<double> sessions;
  sessions.reserve(spans.size());
  // Session lengths feed set-functions (mean, percentiles), so the
  // collection order of the samples does not matter.
  for (const auto& [addr, span] : spans) {  // lint: ordered
    sessions.push_back((span.second - span.first).seconds());
  }
  util::OnlineStats online;
  for (const double s : sessions) online.add(s);
  stats.mean_session_s = online.mean();
  stats.median_session_s = util::percentile(sessions, 0.5);
  stats.p90_session_s = util::percentile_inplace(sessions, 0.9);
  return stats;
}

}  // namespace peerscope::aware
