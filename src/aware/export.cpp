#include "aware/export.hpp"

#include <sstream>

#include "util/atomic_file.hpp"

namespace peerscope::aware {

namespace {

// Every exporter builds the full CSV in memory and publishes it with a
// temp-file + atomic rename, so a crashed or killed batch never leaves
// a half-written CSV behind for analyze/report to trip over.
void publish(const std::filesystem::path& path,
             const std::ostringstream& out) {
  util::write_file_atomic(path, out.str());
}

std::string cell(const std::optional<double>& v) {
  return v ? std::to_string(*v) : std::string{};
}

}  // namespace

void write_awareness_csv(const std::filesystem::path& path,
                         const std::string& app,
                         const std::vector<AwarenessRow>& rows) {
  std::ostringstream out;
  out << "app,metric,direction,b_prime_pct,p_prime_pct,b_pct,p_pct\n";
  for (const auto& row : rows) {
    out << app << ',' << to_string(row.metric) << ",download,"
        << cell(row.download.b_prime_pct) << ','
        << cell(row.download.p_prime_pct) << ',' << cell(row.download.b_pct)
        << ',' << cell(row.download.p_pct) << '\n';
    out << app << ',' << to_string(row.metric) << ",upload,"
        << cell(row.upload.b_prime_pct) << ','
        << cell(row.upload.p_prime_pct) << ',' << cell(row.upload.b_pct)
        << ',' << cell(row.upload.p_pct) << '\n';
  }
  publish(path, out);
}

void write_summary_csv(const std::filesystem::path& path,
                       const std::string& app, const ExperimentSummary& s) {
  std::ostringstream out;
  out << "app,rx_kbps_mean,rx_kbps_max,tx_kbps_mean,tx_kbps_max,"
         "all_peers_mean,all_peers_max,contrib_rx_mean,contrib_rx_max,"
         "contrib_tx_mean,contrib_tx_max,observed_total\n";
  out << app << ',' << s.rx_kbps_mean << ',' << s.rx_kbps_max << ','
      << s.tx_kbps_mean << ',' << s.tx_kbps_max << ',' << s.all_peers_mean
      << ',' << s.all_peers_max << ',' << s.contrib_rx_mean << ','
      << s.contrib_rx_max << ',' << s.contrib_tx_mean << ','
      << s.contrib_tx_max << ',' << s.observed_total << '\n';
  publish(path, out);
}

void write_geo_csv(const std::filesystem::path& path, const std::string& app,
                   const std::vector<GeoShare>& shares) {
  std::ostringstream out;
  out << "app,country,peer_pct,rx_bytes_pct,tx_bytes_pct\n";
  for (const auto& share : shares) {
    out << app << ','
        << (share.cc.known() ? share.cc.to_string() : std::string{"*"})
        << ',' << share.peer_pct << ',' << share.rx_bytes_pct << ','
        << share.tx_bytes_pct << '\n';
  }
  publish(path, out);
}

void write_matrix_csv(const std::filesystem::path& path,
                      const std::string& app, const AsMatrix& matrix) {
  std::ostringstream out;
  out << "app,from_as,to_as,mean_bytes,intra\n";
  for (std::size_t i = 0; i < matrix.ases.size(); ++i) {
    for (std::size_t j = 0; j < matrix.ases.size(); ++j) {
      out << app << ',' << matrix.ases[i].value() << ','
          << matrix.ases[j].value() << ',' << matrix.at(i, j) << ','
          << (i == j ? 1 : 0) << '\n';
    }
  }
  publish(path, out);
}

void write_timeseries_csv(const std::filesystem::path& path,
                          const std::vector<IntervalStats>& series) {
  std::ostringstream out;
  out << "t_s,rx_kbps,tx_kbps,active_peers,new_peers,new_rx_contributors\n";
  for (const auto& point : series) {
    out << point.start.seconds() << ',' << point.rx_kbps << ','
        << point.tx_kbps << ',' << point.active_peers << ','
        << point.new_peers << ',' << point.new_rx_contributors << '\n';
  }
  publish(path, out);
}

}  // namespace peerscope::aware
