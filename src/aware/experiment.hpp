// Experiment-level observation bundle: all vantage points of one
// (application, run), ready for the preference framework and report
// generators. exp::Runner fills this from a simulation; the offline
// tools fill it from trace files.
#pragma once

#include <string>
#include <vector>

#include "aware/observation.hpp"
#include "net/types.hpp"
#include "util/sim_time.hpp"

namespace peerscope::aware {

/// What the experimenters know about their own vantage points
/// (Table I): enough to label Fig. 2's axes and select its
/// "high-bandwidth NAPA-WINE peer" pairs.
struct ProbeMeta {
  net::Ipv4Addr addr;
  net::AsId as;
  net::CountryCode cc;
  bool high_bw = true;
  std::string label;
};

struct ExperimentObservations {
  std::string app;
  util::SimTime duration{0};
  std::vector<ProbeMeta> probes;
  /// observations[i] belongs to probes[i].
  std::vector<std::vector<PairObservation>> per_probe;
};

}  // namespace peerscope::aware
