// Preferential partitions X_P (paper §III-B).
//
// Each partition maps an observation to: preferred (true),
// non-preferred (false), or not-evaluable (nullopt — the peer drops out
// of this metric's statistic, e.g. BW needs received video packets).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>

#include "aware/observation.hpp"

namespace peerscope::aware {

enum class Metric { kBw, kAs, kCc, kNet, kHop };

[[nodiscard]] std::string to_string(Metric metric);

using Partition =
    std::function<std::optional<bool>(const PairObservation&)>;

/// BW: high-bandwidth peer <=> min inter-packet gap < 1 ms (the
/// serialisation time of a 1250-byte packet at 10 Mb/s). Evaluable
/// only when the probe received a video train from the peer, hence the
/// paper restricts BW analysis to the download direction.
struct BwConfig {
  std::int64_t ipg_threshold_ns = 1'000'000;
  /// Number of smallest IPG samples to discard before taking the
  /// minimum (robustness against capture duplication/reordering, which
  /// fabricate near-zero gaps). 0 = the paper's plain minimum.
  int ipg_discard = 0;
};
[[nodiscard]] Partition bw_partition(BwConfig cfg = {});

/// AS: both endpoints in the same Autonomous System.
[[nodiscard]] Partition as_partition();

/// CC: both endpoints in the same country.
[[nodiscard]] Partition cc_partition();

/// NET: same subnet, operationally HOP(e,p) == 0.
[[nodiscard]] Partition net_partition();

/// HOP: path shorter than the population median. The paper measures a
/// median of 18-20 depending on application and fixes 19 for all.
struct HopConfig {
  int threshold_hops = 19;
};
[[nodiscard]] Partition hop_partition(HopConfig cfg = {});

/// Convenience: the partition for a metric with default configs.
[[nodiscard]] Partition make_partition(Metric metric);

/// Median observed hop count over peers with RX traffic — used to
/// sanity-check the fixed 19-hop threshold against a given experiment.
[[nodiscard]] double median_hops(
    std::span<const PairObservation> observations);

}  // namespace peerscope::aware
