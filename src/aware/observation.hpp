// Per-(probe, remote-peer) observation: everything the paper's
// methodology extracts from one vantage point's trace about one remote
// peer, after the IP -> AS/CC database joins.
//
// This is the boundary between trace processing and the preference
// framework: observations can come from a live simulation's flow
// tables or from trace files re-read from disk — the analysis code
// cannot tell the difference (black-box property).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/ipv4.hpp"
#include "net/registry.hpp"
#include "net/types.hpp"
#include "trace/flow.hpp"

#include <unordered_set>

namespace peerscope::aware {

struct PairObservation {
  net::Ipv4Addr probe;
  net::Ipv4Addr remote;

  // Database joins (the whois/geo lookup of the paper).
  net::AsId probe_as;
  net::AsId remote_as;
  net::CountryCode probe_cc;
  net::CountryCode remote_cc;
  bool same_subnet = false;
  /// Whether the remote endpoint is itself a NAPA-WINE probe (member
  /// of the set W) — needed for the self-bias filtering P', B'.
  bool remote_is_napa = false;

  // Volume, split by direction and payload type.
  std::uint64_t rx_pkts = 0, rx_bytes = 0;
  std::uint64_t tx_pkts = 0, tx_bytes = 0;
  std::uint64_t rx_video_pkts = 0, rx_video_bytes = 0;
  std::uint64_t tx_video_pkts = 0, tx_video_bytes = 0;

  /// Packet-pair signal: minimum inter-packet gap over received video
  /// packets (int64 max when fewer than two such packets were seen).
  std::int64_t min_rx_video_ipg_ns =
      std::numeric_limits<std::int64_t>::max();
  [[nodiscard]] bool has_min_ipg() const {
    return min_rx_video_ipg_ns != std::numeric_limits<std::int64_t>::max();
  }

  /// The k smallest RX video IPGs (ascending, int64-max padded) and the
  /// sample count, for the corruption-robust BW estimator.
  std::array<std::int64_t, trace::FlowStats::kIpgTrack> smallest_rx_ipgs{
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max()};
  std::uint64_t rx_ipg_samples = 0;
  /// Min IPG after discarding the `discard` smallest samples (capture
  /// duplication/reordering artifacts); discard <= 0 is the plain min.
  /// Falls back to min_rx_video_ipg_ns when the k-smallest array was
  /// never populated (hand-built observations).
  [[nodiscard]] std::int64_t min_ipg_after_discard(int discard) const {
    if (discard <= 0 || rx_ipg_samples == 0) return min_rx_video_ipg_ns;
    return trace::robust_min_ipg(smallest_rx_ipgs, rx_ipg_samples, discard);
  }

  /// Hop count inferred from received TTL (128 - TTL); -1 when the
  /// probe never received a packet from this peer.
  int rx_hops = -1;
};

/// Joins one probe's flow table against the registry and the probe set
/// W, yielding one observation per remote peer.
[[nodiscard]] std::vector<PairObservation> extract_observations(
    const trace::FlowTable& flows, const net::NetRegistry& registry,
    const std::unordered_set<net::Ipv4Addr>& napa_set);

}  // namespace peerscope::aware
