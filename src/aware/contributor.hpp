// Contributing-peer identification (heuristic of the paper's ref [14]).
//
// A remote peer is a *contributor* in a direction when at least one
// video segment was exchanged that way. Operationally: at least
// `min_video_packets` full-size packets of video payload — one chunk's
// worth by default — which the paper verified to be "accurate and
// conservative".
#pragma once

#include <cstdint>

#include "aware/observation.hpp"

namespace peerscope::aware {

struct ContributorConfig {
  /// Minimum video packets to count as a contributor (default: one
  /// 16 kB chunk of 1250-byte packets).
  std::uint64_t min_video_packets = 13;
};

/// e ∈ D(p): p downloads video from e.
[[nodiscard]] inline bool is_rx_contributor(const PairObservation& obs,
                                            const ContributorConfig& cfg) {
  return obs.rx_video_pkts >= cfg.min_video_packets;
}

/// e ∈ U(p): p uploads video to e.
[[nodiscard]] inline bool is_tx_contributor(const PairObservation& obs,
                                            const ContributorConfig& cfg) {
  return obs.tx_video_pkts >= cfg.min_video_packets;
}

/// e ∈ P(p) = U(p) ∪ D(p).
[[nodiscard]] inline bool is_contributor(const PairObservation& obs,
                                         const ContributorConfig& cfg) {
  return is_rx_contributor(obs, cfg) || is_tx_contributor(obs, cfg);
}

}  // namespace peerscope::aware
