#include "net/prefix.hpp"

#include <charconv>

namespace peerscope::net {

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  if (length > 32) return std::nullopt;
  return Ipv4Prefix{*addr, static_cast<std::uint8_t>(length)};
}

}  // namespace peerscope::net
