#include "net/access.hpp"

#include <sstream>

namespace peerscope::net {

std::string to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kLan:
      return "high-bw";
    case AccessKind::kDsl:
      return "DSL";
    case AccessKind::kCatv:
      return "CATV";
  }
  return "?";
}

std::string AccessLink::describe() const {
  std::ostringstream out;
  out << to_string(kind);
  if (kind != AccessKind::kLan) {
    out << ' ' << static_cast<double>(down_bps) / 1e6 << '/'
        << static_cast<double>(up_bps) / 1e6;
  }
  if (nat) out << " NAT";
  if (firewall) out << " FW";
  return out.str();
}

}  // namespace peerscope::net
