#include "net/registry.hpp"

#include <algorithm>

namespace peerscope::net {

void NetRegistry::announce(const Ipv4Prefix& prefix, AsId as,
                           CountryCode country) {
  map_.insert(prefix, Entry{as, country});
  by_as_[as].push_back(prefix);
}

AsId NetRegistry::as_of(Ipv4Addr addr) const {
  if (auto e = map_.lookup(addr)) return e->as;
  return AsId{};
}

CountryCode NetRegistry::country_of(Ipv4Addr addr) const {
  if (auto e = map_.lookup(addr)) return e->country;
  return CountryCode{};
}

std::optional<NetRegistry::Entry> NetRegistry::lookup(Ipv4Addr addr) const {
  return map_.lookup(addr);
}

const std::vector<Ipv4Prefix>& NetRegistry::prefixes_of(AsId as) const {
  if (auto it = by_as_.find(as); it != by_as_.end()) return it->second;
  return empty_;
}

std::vector<NetRegistry::Announcement> NetRegistry::dump() const {
  std::vector<Announcement> out;
  out.reserve(map_.size());
  // Collected in hash order, then sorted by prefix base below.
  for (const auto& [as, prefixes] : by_as_) {  // lint: ordered
    for (const auto& prefix : prefixes) {
      const auto entry = map_.exact(prefix);
      if (entry) out.push_back({prefix, entry->as, entry->country});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Announcement& a, const Announcement& b) {
              if (a.prefix.base() != b.prefix.base()) {
                return a.prefix.base() < b.prefix.base();
              }
              return a.prefix.length() < b.prefix.length();
            });
  return out;
}

}  // namespace peerscope::net
