// IPv4 address value type.
//
// The measurement pipeline identifies peers by IP address exactly like
// the paper's passive traces do, so addresses are first-class values:
// trivially copyable, ordered, hashable, parse/format round-trip exact.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace peerscope::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  /// Dotted-quad rendering ("10.1.2.3").
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad; rejects anything malformed (empty octets,
  /// values > 255, trailing junk). Strict on purpose: trace files must
  /// not silently accept corrupt addresses.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace peerscope::net

template <>
struct std::hash<peerscope::net::Ipv4Addr> {
  std::size_t operator()(const peerscope::net::Ipv4Addr& a) const noexcept {
    // Fibonacci scrambling: addresses allocated sequentially within a
    // subnet must not collide into the same hash bucket chains.
    return static_cast<std::size_t>(a.bits() * 0x9e3779b97f4a7c15ULL >> 16);
  }
};
