// Longest-prefix-match registry: the simulator's equivalent of the
// whois/GeoIP databases the paper uses to map peer IPs to Autonomous
// Systems and Countries.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "net/types.hpp"

namespace peerscope::net {

/// Generic longest-prefix-match table. Insertion is O(1); lookup walks
/// prefix lengths from /32 downward over per-length hash maps — at most
/// 33 probes, cache-friendly for the handful of lengths actually used.
template <typename Value>
class PrefixMap {
 public:
  /// Inserts or replaces the value for an exact prefix.
  void insert(const Ipv4Prefix& prefix, Value value) {
    auto& level = levels_[prefix.length()];
    const bool inserted =
        level.insert_or_assign(prefix.base().bits(), std::move(value)).second;
    if (inserted) ++size_;
  }

  /// Longest-prefix match; nullopt when no prefix covers the address.
  [[nodiscard]] std::optional<Value> lookup(Ipv4Addr addr) const {
    for (int len = 32; len >= 0; --len) {
      const auto& level = levels_[static_cast<std::size_t>(len)];
      if (level.empty()) continue;
      const Ipv4Prefix probe{addr, static_cast<std::uint8_t>(len)};
      if (auto it = level.find(probe.base().bits()); it != level.end()) {
        return it->second;
      }
    }
    return std::nullopt;
  }

  /// Exact-prefix fetch (no LPM), mostly for tests and introspection.
  [[nodiscard]] std::optional<Value> exact(const Ipv4Prefix& prefix) const {
    const auto& level = levels_[prefix.length()];
    if (auto it = level.find(prefix.base().bits()); it != level.end()) {
      return it->second;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::array<std::unordered_map<std::uint32_t, Value>, 33> levels_{};
  std::size_t size_ = 0;
};

/// IP -> (AS, Country) database. Every prefix announcement carries both
/// attributes, mirroring a route registry joined with a geo database.
class NetRegistry {
 public:
  struct Entry {
    AsId as;
    CountryCode country;
  };

  void announce(const Ipv4Prefix& prefix, AsId as, CountryCode country);

  [[nodiscard]] AsId as_of(Ipv4Addr addr) const;
  [[nodiscard]] CountryCode country_of(Ipv4Addr addr) const;
  [[nodiscard]] std::optional<Entry> lookup(Ipv4Addr addr) const;

  [[nodiscard]] std::size_t prefix_count() const { return map_.size(); }

  /// All announced prefixes of an AS, in announcement order.
  [[nodiscard]] const std::vector<Ipv4Prefix>& prefixes_of(AsId as) const;

  struct Announcement {
    Ipv4Prefix prefix;
    AsId as;
    CountryCode country;
  };
  /// Every announcement, sorted by prefix — for persistence (the CLI
  /// stores this beside trace files so offline analysis can redo the
  /// IP -> AS/CC joins).
  [[nodiscard]] std::vector<Announcement> dump() const;

 private:
  PrefixMap<Entry> map_;
  std::unordered_map<AsId, std::vector<Ipv4Prefix>> by_as_;
  std::vector<Ipv4Prefix> empty_;
};

}  // namespace peerscope::net
