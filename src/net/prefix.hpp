// CIDR prefixes and the subnet test.
//
// The paper's NET metric asks whether two peers share a subnet; its AS
// and CC metrics need IP -> attribute lookup, which `PrefixMap` in
// registry.hpp implements by longest-prefix match over these values.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"

namespace peerscope::net {

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Canonicalises: host bits below the prefix length are zeroed.
  constexpr Ipv4Prefix(Ipv4Addr base, std::uint8_t length)
      : base_(Ipv4Addr{base.bits() & mask_bits(length)}), length_(length) {}

  [[nodiscard]] constexpr Ipv4Addr base() const { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return mask_bits(length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    return (addr.bits() & mask()) == base_.bits();
  }
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Number of addresses covered (2^(32-length)).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The i-th address inside the prefix.
  [[nodiscard]] constexpr Ipv4Addr at(std::uint64_t i) const {
    return Ipv4Addr{base_.bits() + static_cast<std::uint32_t>(i)};
  }

  constexpr auto operator<=>(const Ipv4Prefix&) const = default;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

 private:
  static constexpr std::uint32_t mask_bits(std::uint8_t length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Addr base_{};
  std::uint8_t length_ = 0;
};

/// Subnet test as used by the NET partition: both addresses inside the
/// same /24 LAN prefix. Real deployments know the interface netmask; a
/// /24 matches the institution LANs of Table I (DESIGN.md §3).
[[nodiscard]] constexpr bool same_subnet24(Ipv4Addr a, Ipv4Addr b) {
  return (a.bits() >> 8) == (b.bits() >> 8);
}

}  // namespace peerscope::net
