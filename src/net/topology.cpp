#include "net/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace peerscope::net {

std::string to_string(Region region) {
  switch (region) {
    case Region::kEurope:
      return "EU";
    case Region::kAsia:
      return "AS";
    case Region::kNorthAmerica:
      return "NA";
    case Region::kOther:
      return "OT";
  }
  return "?";
}

void AsTopology::add_as(AsId as, CountryCode country, Region region,
                        int transit_hops, int border_hops) {
  if (finalized_) {
    throw std::logic_error("AsTopology: add_as after finalize");
  }
  if (index_.contains(as)) {
    throw std::invalid_argument("AsTopology: duplicate AS " + as.to_string());
  }
  if (transit_hops < 1 || border_hops < 0) {
    throw std::invalid_argument("AsTopology: invalid hop parameters");
  }
  index_.emplace(as, nodes_.size());
  nodes_.push_back({as, country, region, transit_hops, border_hops, {}});
}

void AsTopology::connect(AsId a, AsId b) {
  if (finalized_) {
    throw std::logic_error("AsTopology: connect after finalize");
  }
  if (a == b) {
    throw std::invalid_argument("AsTopology: self-loop on " + a.to_string());
  }
  const std::size_t ia = index_of(a);
  const std::size_t ib = index_of(b);
  auto& na = nodes_[ia].neighbors;
  if (std::find(na.begin(), na.end(), ib) != na.end()) return;  // idempotent
  na.push_back(ib);
  nodes_[ib].neighbors.push_back(ia);
}

std::size_t AsTopology::index_of(AsId as) const {
  const auto it = index_.find(as);
  if (it == index_.end()) {
    throw std::out_of_range("AsTopology: unknown " + as.to_string());
  }
  return it->second;
}

void AsTopology::finalize() {
  const std::size_t n = nodes_.size();
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  dist_.assign(n * n, kInf);

  // Dijkstra from every source. Traversing an inter-AS link costs 1
  // (the border router pair counts as one decrementing hop on entry)
  // plus the transit cost of the AS being entered — except that the
  // final AS contributes no transit cost (the path ends at its border).
  // To get that, we compute distances as "cost to reach the border of
  // AS j", where entering j costs 1, and add transit costs only for
  // intermediate ASes: cost(edge i->j) = 1 + transit(i if i is not the
  // source... ).
  //
  // Simpler equivalent formulation: define d(i, j) over edges with
  // weight w(u -> v) = 1 + transit(v), then subtract transit(j) at the
  // end so the destination AS is not transited.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<int> d(n, kInf);
    using Item = std::pair<int, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    d[src] = 0;
    heap.emplace(0, src);
    while (!heap.empty()) {
      const auto [du, u] = heap.top();
      heap.pop();
      if (du != d[u]) continue;
      for (const std::size_t v : nodes_[u].neighbors) {
        const int w = 1 + nodes_[v].transit_hops;
        if (du + w < d[v]) {
          d[v] = du + w;
          heap.emplace(d[v], v);
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j == src) {
        dist_[src * n + j] = 0;
      } else if (d[j] < kInf) {
        dist_[src * n + j] = d[j] - nodes_[j].transit_hops;
      }
    }
  }
  finalized_ = true;
}

std::vector<AsId> AsTopology::as_ids() const {
  std::vector<AsId> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.as);
  return out;
}

CountryCode AsTopology::country_of_as(AsId as) const {
  return nodes_[index_of(as)].country;
}

Region AsTopology::region_of_as(AsId as) const {
  return nodes_[index_of(as)].region;
}

int AsTopology::as_path_hops(AsId a, AsId b) const {
  if (!finalized_) {
    throw std::logic_error("AsTopology: path query before finalize");
  }
  const std::size_t ia = index_of(a);
  const std::size_t ib = index_of(b);
  const int d = dist_[ia * nodes_.size() + ib];
  if (d >= std::numeric_limits<int>::max() / 4) {
    throw std::runtime_error("AsTopology: " + a.to_string() + " and " +
                             b.to_string() + " are disconnected");
  }
  return d;
}

util::SimTime AsTopology::base_delay(Region a, Region b, bool same_country) {
  using util::SimTime;
  if (a == b) {
    switch (a) {
      case Region::kEurope:
        return same_country ? SimTime::millis(8) : SimTime::millis(15);
      case Region::kAsia:
        return same_country ? SimTime::millis(12) : SimTime::millis(30);
      case Region::kNorthAmerica:
        return same_country ? SimTime::millis(15) : SimTime::millis(25);
      case Region::kOther:
        return SimTime::millis(40);
    }
  }
  const auto pair = [&](Region x, Region y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (pair(Region::kEurope, Region::kAsia)) return SimTime::millis(140);
  if (pair(Region::kEurope, Region::kNorthAmerica)) return SimTime::millis(50);
  if (pair(Region::kAsia, Region::kNorthAmerica)) return SimTime::millis(90);
  return SimTime::millis(100);  // anything involving kOther
}

PathInfo AsTopology::path(const Endpoint& src, const Endpoint& dst) const {
  if (src.addr == dst.addr) {
    return {0, util::SimTime::micros(50)};  // loopback-ish
  }
  if (same_subnet24(src.addr, dst.addr)) {
    // Same LAN: no router in between; only switching latency.
    return {0, util::SimTime::micros(200)};
  }

  const auto& sa = nodes_[index_of(src.as)];
  const auto& da = nodes_[index_of(dst.as)];

  int hops;
  if (src.as == dst.as) {
    // Intra-AS: through the IGP core, no border crossing.
    hops = src.router_depth + sa.transit_hops + dst.router_depth;
  } else {
    hops = src.router_depth + sa.border_hops + as_path_hops(src.as, dst.as) +
           da.border_hops + dst.router_depth;
    // Deterministic forward/reverse asymmetry: hot-potato routing makes
    // one direction up to 2 hops longer. Derived from the ordered
    // address pair so hop(e,p) != hop(p,e) in general but both are
    // stable across the experiment.
    util::SplitMix64 mix{(std::uint64_t{src.addr.bits()} << 32) |
                         dst.addr.bits()};
    hops += static_cast<int>(mix.next() % 3);
  }

  const bool same_country = src.country == dst.country;
  util::SimTime delay = base_delay(src.region, dst.region, same_country);
  if (src.as == dst.as) {
    delay = util::SimTime::millis(2);  // IGP paths are short
  }
  delay += util::SimTime::micros(100) * static_cast<std::int64_t>(hops);
  return {hops, delay};
}

AsTopology make_reference_topology() {
  AsTopology topo;
  using namespace refas;

  // --- Institution ASes (Table I). NRENs have shallow, fast cores.
  topo.add_as(kAs1, kHungary, Region::kEurope, /*transit=*/2, /*border=*/1);
  topo.add_as(kAs2, kItaly, Region::kEurope, 2, 1);
  topo.add_as(kAs3, kHungary, Region::kEurope, 2, 1);
  topo.add_as(kAs4, kFrance, Region::kEurope, 2, 1);
  topo.add_as(kAs5, kFrance, Region::kEurope, 2, 1);
  topo.add_as(kAs6, kPoland, Region::kEurope, 2, 1);

  // --- Home ISPs for the 7 home probes ("ASx" rows of Table I): one
  // per home host, countries matching the host's site country.
  const CountryCode home_cc[kHomeIspCount] = {
      kHungary,  // BME home DSL
      kItaly,    // PoliTO home DSL 4/0.384
      kItaly,    // PoliTO home DSL 8/0.384 (hosts 11-12)
      kFrance,   // ENST home DSL 22/1.8
      kItaly,    // UniTN home DSL 2.5/0.384
      kPoland,   // WUT home CATV 6/0.512
      kItaly,    // spare eyeball AS (keeps AS numbering dense)
  };
  for (std::uint32_t i = 0; i < kHomeIspCount; ++i) {
    topo.add_as(AsId{kHomeIspFirst.value() + i}, home_cc[i], Region::kEurope,
                /*transit=*/3, /*border=*/2);
  }

  // --- European transit carriers.
  topo.add_as(kEuTransit1, CountryCode{'D', 'E'}, Region::kEurope, 3, 1);
  topo.add_as(kEuTransit2, CountryCode{'G', 'B'}, Region::kEurope, 3, 1);

  // --- Intercontinental transit and Chinese carriers/eyeballs.
  topo.add_as(kIcTransit, CountryCode{'U', 'S'}, Region::kNorthAmerica, 4, 1);
  topo.add_as(kCnTransit, kChina, Region::kAsia, 4, 1);
  for (std::uint32_t i = 0; i < kCnIspCount; ++i) {
    // Chinese eyeballs: dense metro aggregation keeps the border close;
    // host depth (2-6) carries most of the intra-AS variation.
    topo.add_as(AsId{kCnIspFirst.value() + i}, kChina, Region::kAsia,
                /*transit=*/3, /*border=*/1);
  }

  // --- Rest-of-world eyeballs (US/KR/JP-ish mix labelled "*" in Fig 1).
  const CountryCode row_cc[kRowIspCount] = {
      CountryCode{'U', 'S'}, CountryCode{'K', 'R'}, CountryCode{'J', 'P'},
      CountryCode{'U', 'S'}, CountryCode{'T', 'W'}, CountryCode{'C', 'A'},
  };
  const Region row_region[kRowIspCount] = {
      Region::kNorthAmerica, Region::kAsia,         Region::kAsia,
      Region::kNorthAmerica, Region::kAsia,         Region::kNorthAmerica,
  };
  for (std::uint32_t i = 0; i < kRowIspCount; ++i) {
    topo.add_as(AsId{kRowIspFirst.value() + i}, row_cc[i], row_region[i], 3,
                2);
  }

  // --- Extra European eyeball ISPs (background European viewers).
  // Deliberately skewed away from the testbed countries: the paper
  // finds CC preference is fully explained by AS preference, i.e. the
  // same-country-different-AS viewer pool was thin.
  const CountryCode eu_cc[kEuIspCount] = {
      CountryCode{'D', 'E'}, CountryCode{'E', 'S'}, CountryCode{'N', 'L'},
      CountryCode{'G', 'B'}, CountryCode{'S', 'E'}, kItaly,
  };
  for (std::uint32_t i = 0; i < kEuIspCount; ++i) {
    topo.add_as(AsId{kEuIspFirst.value() + i}, eu_cc[i], Region::kEurope, 3,
                2);
  }

  // --- Edges. European institutions and eyeballs hang off the two EU
  // transits; China hangs off its national carrier, which reaches
  // Europe via the intercontinental transit (and a direct EU link,
  // giving route diversity / asymmetry room).
  for (AsId as : {kAs1, kAs2, kAs3, kAs6}) topo.connect(as, kEuTransit1);
  for (AsId as : {kAs2, kAs4, kAs5}) topo.connect(as, kEuTransit2);
  topo.connect(kEuTransit1, kEuTransit2);
  for (std::uint32_t i = 0; i < kHomeIspCount; ++i) {
    topo.connect(AsId{kHomeIspFirst.value() + i},
                 i % 2 ? kEuTransit1 : kEuTransit2);
  }
  for (std::uint32_t i = 0; i < kEuIspCount; ++i) {
    topo.connect(AsId{kEuIspFirst.value() + i},
                 i % 2 ? kEuTransit2 : kEuTransit1);
  }
  topo.connect(kEuTransit1, kIcTransit);
  topo.connect(kEuTransit2, kIcTransit);
  topo.connect(kIcTransit, kCnTransit);
  topo.connect(kEuTransit1, kCnTransit);  // direct EU-CN trunk
  for (std::uint32_t i = 0; i < kCnIspCount; ++i) {
    topo.connect(AsId{kCnIspFirst.value() + i}, kCnTransit);
  }
  for (std::uint32_t i = 0; i < kRowIspCount; ++i) {
    topo.connect(AsId{kRowIspFirst.value() + i},
                 i % 2 ? kIcTransit : kCnTransit);
  }

  topo.finalize();
  return topo;
}

}  // namespace peerscope::net
