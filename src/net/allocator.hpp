// Deterministic address allocation.
//
// Each Autonomous System owns a /16 block announced in the NetRegistry.
// Institution LANs get /24 subnets carved from the bottom of the block
// (so Table I probe "clouds" share a subnet, which the NET metric must
// detect); scattered background hosts are allocated from the top of the
// block, one per address, never colliding with the LAN range.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "net/registry.hpp"
#include "net/types.hpp"

namespace peerscope::net {

class AddressAllocator {
 public:
  /// The allocator announces every AS block into `registry`, which must
  /// outlive the allocator.
  explicit AddressAllocator(NetRegistry& registry) : registry_(&registry) {}

  /// Assigns (idempotently) a /16 to the AS and announces it.
  Ipv4Prefix register_as(AsId as, CountryCode country);

  /// Carves the next /24 LAN subnet out of the AS block.
  [[nodiscard]] Ipv4Prefix new_subnet(AsId as);

  /// Next free host address inside a previously carved subnet
  /// (.1 upward; .0 and .255 are never handed out).
  [[nodiscard]] Ipv4Addr new_host_in_subnet(const Ipv4Prefix& subnet);

  /// A scattered host somewhere in the AS block, outside any carved
  /// LAN subnet. Sequential from the top of the block.
  [[nodiscard]] Ipv4Addr new_host(AsId as);

  [[nodiscard]] const NetRegistry& registry() const { return *registry_; }

 private:
  struct AsBlock {
    Ipv4Prefix block;          // the /16
    std::uint32_t next_lan = 0;     // next /24 index from the bottom
    std::uint32_t next_scatter = 0; // scattered host counter from the top
  };
  struct SubnetCursor {
    std::uint32_t next_host = 1;
  };

  AsBlock& block_of(AsId as);

  NetRegistry* registry_;
  std::unordered_map<AsId, AsBlock> blocks_;
  std::unordered_map<std::uint32_t, SubnetCursor> subnet_cursors_;
  std::uint32_t next_block_index_ = 0;
};

}  // namespace peerscope::net
