#include "net/allocator.hpp"

#include <stdexcept>

namespace peerscope::net {

namespace {
// AS blocks are carved sequentially from 20.0.0.0 upward: block i is
// (20 + i/256).(i%256).0.0/16. Far more blocks than ASes we ever model.
constexpr std::uint32_t kBlockBase = 20u << 24;
constexpr std::uint32_t kMaxBlocks = 4096;
}  // namespace

Ipv4Prefix AddressAllocator::register_as(AsId as, CountryCode country) {
  if (const auto it = blocks_.find(as); it != blocks_.end()) {
    return it->second.block;
  }
  if (next_block_index_ >= kMaxBlocks) {
    throw std::runtime_error("AddressAllocator: out of /16 blocks");
  }
  const Ipv4Prefix block{Ipv4Addr{kBlockBase + (next_block_index_ << 16)}, 16};
  ++next_block_index_;
  registry_->announce(block, as, country);
  blocks_.emplace(as, AsBlock{block, 0, 0});
  return block;
}

AddressAllocator::AsBlock& AddressAllocator::block_of(AsId as) {
  const auto it = blocks_.find(as);
  if (it == blocks_.end()) {
    throw std::out_of_range("AddressAllocator: AS not registered: " +
                            as.to_string());
  }
  return it->second;
}

Ipv4Prefix AddressAllocator::new_subnet(AsId as) {
  auto& blk = block_of(as);
  if (blk.next_lan >= 64) {
    throw std::runtime_error("AddressAllocator: LAN range exhausted in " +
                             as.to_string());
  }
  const Ipv4Prefix subnet{
      Ipv4Addr{blk.block.base().bits() + (blk.next_lan << 8)}, 24};
  ++blk.next_lan;
  subnet_cursors_.emplace(subnet.base().bits(), SubnetCursor{});
  return subnet;
}

Ipv4Addr AddressAllocator::new_host_in_subnet(const Ipv4Prefix& subnet) {
  const auto it = subnet_cursors_.find(subnet.base().bits());
  if (it == subnet_cursors_.end()) {
    throw std::out_of_range("AddressAllocator: unknown subnet " +
                            subnet.to_string());
  }
  auto& cursor = it->second;
  if (cursor.next_host >= 255) {
    throw std::runtime_error("AddressAllocator: subnet full: " +
                             subnet.to_string());
  }
  return Ipv4Addr{subnet.base().bits() + cursor.next_host++};
}

Ipv4Addr AddressAllocator::new_host(AsId as) {
  auto& blk = block_of(as);
  // Scatter range: /24s from index 255 downward, hosts .1-.254 in each.
  const std::uint32_t per_net = 254;
  const std::uint32_t net = 255 - blk.next_scatter / per_net;
  const std::uint32_t host = 1 + blk.next_scatter % per_net;
  if (net < 64) {  // would collide with the LAN carving range
    throw std::runtime_error("AddressAllocator: scatter range exhausted in " +
                             as.to_string());
  }
  ++blk.next_scatter;
  return Ipv4Addr{blk.block.base().bits() + (net << 8) + host};
}

}  // namespace peerscope::net
