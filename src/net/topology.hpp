// AS-level Internet topology and host-to-host path model.
//
// The paper's HOP metric derives hop counts from received TTLs, so the
// substrate must produce realistic, asymmetric hop counts: host access
// depth + border-to-border routed path through the AS graph. Latency is
// modelled as a geographic base delay plus a small per-hop component;
// it shapes chunk delivery times but none of the paper's statistics.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/types.hpp"
#include "util/sim_time.hpp"

namespace peerscope::net {

enum class Region : std::uint8_t { kEurope, kAsia, kNorthAmerica, kOther };

[[nodiscard]] std::string to_string(Region region);

/// Everything the path model needs to know about one attached host.
/// `router_depth` is the number of routers between the host and its AS
/// border (LAN hosts shallow, DSL hosts behind deeper aggregation).
struct Endpoint {
  Ipv4Addr addr;
  AsId as;
  CountryCode country;
  Region region = Region::kEurope;
  int router_depth = 2;
};

/// Result of routing between two endpoints.
struct PathInfo {
  int hops = 0;                    // routers decrementing TTL
  util::SimTime one_way_delay{0};  // propagation + per-hop processing
};

/// The AS graph. Small by construction (tens of ASes), so all-pairs
/// shortest paths are precomputed by repeated Dijkstra at finalize().
class AsTopology {
 public:
  /// `transit_hops`: routers crossed when a path transits this AS.
  /// `border_hops`: routers between an endpoint's first-hop region and
  /// the AS border (added once per endpoint AS).
  void add_as(AsId as, CountryCode country, Region region,
              int transit_hops = 2, int border_hops = 1);

  /// Undirected peering/transit link; both ASes must exist.
  void connect(AsId a, AsId b);

  /// Computes all-pairs AS-path router hops. Must be called after the
  /// graph is complete and before any path query.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  /// All ASes in insertion order.
  [[nodiscard]] std::vector<AsId> as_ids() const;
  [[nodiscard]] bool contains(AsId as) const {
    return index_.contains(as);
  }
  [[nodiscard]] CountryCode country_of_as(AsId as) const;
  [[nodiscard]] Region region_of_as(AsId as) const;

  /// Router hops along the AS-level path from border of `a` to border
  /// of `b` (0 when a == b). Throws if either AS is unknown or the
  /// graph is disconnected between them.
  [[nodiscard]] int as_path_hops(AsId a, AsId b) const;

  /// Full host-to-host path. Hop count:
  ///   same subnet (/24)    -> 0 (direct L2, matching the paper's NET=HOP0)
  ///   same AS              -> depths + intra-AS core
  ///   different AS         -> depths + border hops + AS path + asymmetry
  /// Asymmetry is a deterministic function of the ordered (src, dst)
  /// pair: forward and reverse paths may differ by 0-2 hops (§III-C of
  /// the paper discusses exactly this directionality issue).
  [[nodiscard]] PathInfo path(const Endpoint& src, const Endpoint& dst) const;

 private:
  struct Node {
    AsId as;
    CountryCode country;
    Region region;
    int transit_hops;
    int border_hops;
    std::vector<std::size_t> neighbors;
  };

  [[nodiscard]] std::size_t index_of(AsId as) const;
  [[nodiscard]] static util::SimTime base_delay(Region a, Region b,
                                                bool same_country);

  std::vector<Node> nodes_;
  std::unordered_map<AsId, std::size_t> index_;
  // dist_[i * nodes_.size() + j] = router hops border(i) -> border(j).
  std::vector<int> dist_;
  bool finalized_ = false;
};

/// Builds the topology used by all experiments: the six institution
/// ASes of Table I (AS1..AS6), home-ISP ASes (AS11..AS17), two European
/// transit carriers, and a set of Chinese / rest-of-world ASes reachable
/// through intercontinental transit. Deterministic; see topology.cpp
/// for the exact graph.
[[nodiscard]] AsTopology make_reference_topology();

/// AS numbers used by make_reference_topology(). Institution ASes match
/// Table I labels; the rest model the background swarm's homes.
namespace refas {
inline constexpr AsId kAs1{1};   // BME (HU)
inline constexpr AsId kAs2{2};   // PoliTO + UniTN (IT) -- GARR-like NREN
inline constexpr AsId kAs3{3};   // MT (HU)
inline constexpr AsId kAs4{4};   // ENST (FR)
inline constexpr AsId kAs5{5};   // FFT (FR)
inline constexpr AsId kAs6{6};   // WUT (PL)
// Home ISP ASes hosting the 7 home probes (one per "ASx" row).
inline constexpr AsId kHomeIspFirst{11};  // 11..17
inline constexpr std::uint32_t kHomeIspCount = 7;
// European transit.
inline constexpr AsId kEuTransit1{100};
inline constexpr AsId kEuTransit2{101};
// Intercontinental + Chinese ISPs.
inline constexpr AsId kIcTransit{200};
inline constexpr AsId kCnTransit{201};
inline constexpr AsId kCnIspFirst{210};  // 210..215 (6 Chinese eyeball ASes)
inline constexpr std::uint32_t kCnIspCount = 6;
// Rest-of-world eyeball ASes.
inline constexpr AsId kRowIspFirst{300};  // 300..305
inline constexpr std::uint32_t kRowIspCount = 6;
// Extra European eyeball ISPs (background European peers).
inline constexpr AsId kEuIspFirst{400};  // 400..405
inline constexpr std::uint32_t kEuIspCount = 6;
}  // namespace refas

}  // namespace peerscope::net
