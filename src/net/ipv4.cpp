#include "net/ipv4.hpp"

#include <array>
#include <charconv>

namespace peerscope::net {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* ptr = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i) {
      if (ptr == end || *ptr != '.') return std::nullopt;
      ++ptr;
    }
    auto [next, ec] = std::from_chars(ptr, end, octets[static_cast<std::size_t>(i)]);
    if (ec != std::errc{} || next == ptr) return std::nullopt;
    if (octets[static_cast<std::size_t>(i)] > 255) return std::nullopt;
    // Reject leading zeros like "01" to keep round-tripping exact.
    if (next - ptr > 1 && *ptr == '0') return std::nullopt;
    ptr = next;
  }
  if (ptr != end) return std::nullopt;
  return Ipv4Addr(static_cast<std::uint8_t>(octets[0]),
                  static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]),
                  static_cast<std::uint8_t>(octets[3]));
}

}  // namespace peerscope::net
