// Strong identifier types shared by the network model and the analysis
// pipeline: Autonomous System numbers and ISO-3166 country codes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace peerscope::net {

/// Autonomous System number. 0 is reserved as "unknown".
class AsId {
 public:
  constexpr AsId() = default;
  constexpr explicit AsId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool known() const { return value_ != 0; }
  constexpr auto operator<=>(const AsId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "AS" + std::to_string(value_);
  }

 private:
  std::uint32_t value_ = 0;
};

/// Two-letter country code packed into 16 bits. Default-constructed is
/// the unknown country, rendered "??".
class CountryCode {
 public:
  constexpr CountryCode() = default;
  constexpr CountryCode(char a, char b)
      : packed_(static_cast<std::uint16_t>((a << 8) | b)) {}

  /// From a 2-character string view; anything else yields unknown.
  constexpr explicit CountryCode(std::string_view text)
      : packed_(text.size() == 2 ? static_cast<std::uint16_t>(
                                       (text[0] << 8) | text[1])
                                 : 0) {}

  [[nodiscard]] constexpr bool known() const { return packed_ != 0; }
  constexpr auto operator<=>(const CountryCode&) const = default;

  [[nodiscard]] std::string to_string() const {
    if (!known()) return "??";
    return {static_cast<char>(packed_ >> 8),
            static_cast<char>(packed_ & 0xff)};
  }

  [[nodiscard]] constexpr std::uint16_t packed() const { return packed_; }

 private:
  std::uint16_t packed_ = 0;
};

// The countries appearing in the paper's testbed and swarm.
inline constexpr CountryCode kChina{'C', 'N'};
inline constexpr CountryCode kHungary{'H', 'U'};
inline constexpr CountryCode kItaly{'I', 'T'};
inline constexpr CountryCode kFrance{'F', 'R'};
inline constexpr CountryCode kPoland{'P', 'L'};

}  // namespace peerscope::net

template <>
struct std::hash<peerscope::net::AsId> {
  std::size_t operator()(const peerscope::net::AsId& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<peerscope::net::CountryCode> {
  std::size_t operator()(const peerscope::net::CountryCode& c) const noexcept {
    return std::hash<std::uint16_t>{}(c.packed());
  }
};
