// Access-link model: the peer-side bottleneck that the paper's
// packet-pair bandwidth classifier measures.
//
// Table I access types map onto these classes: institution hosts sit on
// high-bandwidth LANs, home hosts on asymmetric DSL or CATV links, some
// behind NAT and/or firewalls.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace peerscope::net {

enum class AccessKind : std::uint8_t {
  kLan,   // institution LAN, >= 100 Mb/s symmetric
  kDsl,   // asymmetric digital subscriber line
  kCatv,  // cable access
};

[[nodiscard]] std::string to_string(AccessKind kind);

/// A peer's access link. Rates are layer-3 bits per second.
///
/// Residential plans are *shaped*, not slow: the advertised downstream
/// rate (down_bps) is a token-bucket cap on sustained throughput, but
/// short bursts traverse the last mile at the technology's line rate
/// (ADSL2+ sync ~24 Mb/s, DOCSIS channel ~38 Mb/s). Packet-pair
/// dispersion therefore measures `down_line_bps`, while sustained
/// transfers are bounded by `down_bps`. Uplinks have no such headroom:
/// the upstream sync rate is the true serialisation rate.
struct AccessLink {
  AccessKind kind = AccessKind::kLan;
  std::int64_t down_bps = 100'000'000;
  std::int64_t up_bps = 100'000'000;
  std::int64_t down_line_bps = 100'000'000;
  bool nat = false;
  bool firewall = false;

  /// Serialisation delay of `bytes` on the uplink.
  [[nodiscard]] util::SimTime up_tx_time(std::int64_t bytes) const {
    return util::transmission_time(bytes, up_bps);
  }
  /// Per-packet delivery spacing on the downlink (line rate — what a
  /// sniffer behind the modem observes inside a burst).
  [[nodiscard]] util::SimTime down_tx_time(std::int64_t bytes) const {
    return util::transmission_time(bytes, down_line_bps);
  }

  /// The paper's operational definition of a high-bandwidth peer:
  /// uplink able to serialise a 1250-byte packet in under 1 ms,
  /// i.e. > 10 Mb/s. (Ground truth; the pipeline must *infer* this.)
  [[nodiscard]] bool is_high_bandwidth() const { return up_bps > 10'000'000; }

  // Table I entries, expressed as factories. DSL/CATV rates in the
  // table read "down/up" in Mb/s (e.g. "6/0.512").
  [[nodiscard]] static AccessLink lan100() {
    return {AccessKind::kLan, 100'000'000, 100'000'000, 100'000'000, false,
            false};
  }
  [[nodiscard]] static AccessLink lan1000() {
    return {AccessKind::kLan, 1'000'000'000, 1'000'000'000, 1'000'000'000,
            false, false};
  }
  [[nodiscard]] static AccessLink dsl(double down_mbps, double up_mbps,
                                      bool nat = false, bool firewall = false) {
    const auto down = static_cast<std::int64_t>(down_mbps * 1e6);
    return {AccessKind::kDsl, down, static_cast<std::int64_t>(up_mbps * 1e6),
            std::max<std::int64_t>(down, 24'000'000), nat, firewall};
  }
  [[nodiscard]] static AccessLink catv(double down_mbps, double up_mbps,
                                       bool nat = false,
                                       bool firewall = false) {
    const auto down = static_cast<std::int64_t>(down_mbps * 1e6);
    return {AccessKind::kCatv, down, static_cast<std::int64_t>(up_mbps * 1e6),
            std::max<std::int64_t>(down, 38'000'000), nat, firewall};
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace peerscope::net
