#include "trace/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace peerscope::trace {

namespace {

// On-disk record layout (little-endian), 19 bytes packed:
//   int64  ts_ns
//   uint32 remote
//   int32  bytes
//   uint8  dir
//   uint8  kind
//   uint8  ttl
constexpr std::size_t kRecordSize = 8 + 4 + 4 + 1 + 1 + 1;

template <typename T>
void put(std::string& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buf.append(bytes, sizeof(T));  // host is little-endian (x86/ARM64)
}

template <typename T>
T get(const char*& ptr) {
  T value;
  std::memcpy(&value, ptr, sizeof(T));
  ptr += sizeof(T);
  return value;
}

}  // namespace

void write_trace(const std::filesystem::path& path, net::Ipv4Addr probe,
                 const std::vector<PacketRecord>& records) {
  std::string buf;
  buf.reserve(16 + records.size() * kRecordSize);
  put<std::uint32_t>(buf, kTraceMagic);
  put<std::uint16_t>(buf, kTraceVersion);
  put<std::uint16_t>(buf, 0);  // reserved
  put<std::uint32_t>(buf, probe.bits());
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    put<std::int64_t>(buf, r.ts.ns());
    put<std::uint32_t>(buf, r.remote.bits());
    put<std::int32_t>(buf, r.bytes);
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.dir));
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.kind));
    put<std::uint8_t>(buf, r.ttl);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_trace: cannot open " + path.string());
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) {
    throw std::runtime_error("write_trace: short write to " + path.string());
  }
}

TraceFile read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_trace: cannot open " + path.string());
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < 16) {
    throw std::runtime_error("read_trace: truncated header in " +
                             path.string());
  }
  const char* ptr = buf.data();
  if (get<std::uint32_t>(ptr) != kTraceMagic) {
    throw std::runtime_error("read_trace: bad magic in " + path.string());
  }
  if (get<std::uint16_t>(ptr) != kTraceVersion) {
    throw std::runtime_error("read_trace: unsupported version in " +
                             path.string());
  }
  (void)get<std::uint16_t>(ptr);  // reserved
  TraceFile file;
  file.probe = net::Ipv4Addr{get<std::uint32_t>(ptr)};
  const auto count = get<std::uint32_t>(ptr);
  if (buf.size() != 16 + static_cast<std::size_t>(count) * kRecordSize) {
    throw std::runtime_error("read_trace: size mismatch in " + path.string());
  }
  file.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PacketRecord r;
    r.ts = util::SimTime{get<std::int64_t>(ptr)};
    r.remote = net::Ipv4Addr{get<std::uint32_t>(ptr)};
    r.bytes = get<std::int32_t>(ptr);
    const auto dir = get<std::uint8_t>(ptr);
    const auto kind = get<std::uint8_t>(ptr);
    if (dir > 1 || kind > 1) {
      throw std::runtime_error("read_trace: corrupt record in " +
                               path.string());
    }
    r.dir = static_cast<Direction>(dir);
    r.kind = static_cast<sim::PacketKind>(kind);
    r.ttl = get<std::uint8_t>(ptr);
    file.records.push_back(r);
  }
  return file;
}

void write_trace_csv(const std::filesystem::path& path, net::Ipv4Addr probe,
                     const std::vector<PacketRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_trace_csv: cannot open " + path.string());
  }
  out << "# probe=" << probe.to_string() << '\n';
  out << "ts_ns,remote,dir,kind,bytes,ttl\n";
  for (const auto& r : records) {
    out << r.ts.ns() << ',' << r.remote.to_string() << ','
        << (r.dir == Direction::kRx ? "rx" : "tx") << ','
        << (r.kind == sim::PacketKind::kVideo ? "video" : "sig") << ','
        << r.bytes << ',' << static_cast<int>(r.ttl) << '\n';
  }
  if (!out) {
    throw std::runtime_error("write_trace_csv: short write to " +
                             path.string());
  }
}

}  // namespace peerscope::trace
