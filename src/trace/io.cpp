#include "trace/io.hpp"

#include <array>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/io_faults.hpp"

namespace peerscope::trace {

namespace {

// On-disk record layout (little-endian), 19 bytes packed:
//   int64  ts_ns
//   uint32 remote
//   int32  bytes
//   uint8  dir
//   uint8  kind
//   uint8  ttl
constexpr std::size_t kRecordSize = 8 + 4 + 4 + 1 + 1 + 1;

template <typename T>
void put(std::string& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buf.append(bytes, sizeof(T));  // host is little-endian (x86/ARM64)
}

template <typename T>
T get(const char*& ptr) {
  T value;
  std::memcpy(&value, ptr, sizeof(T));
  ptr += sizeof(T);
  return value;
}

}  // namespace

void write_trace(const std::filesystem::path& path, net::Ipv4Addr probe,
                 const std::vector<PacketRecord>& records) {
  if (records.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    // The header stores the count as uint32; writing more would
    // silently truncate the trace on the next read.
    throw std::length_error(
        "write_trace: record count exceeds the format's 32-bit limit (" +
        std::to_string(records.size()) + " records)");
  }
  std::string buf;
  buf.reserve(16 + records.size() * kRecordSize);
  put<std::uint32_t>(buf, kTraceMagic);
  put<std::uint16_t>(buf, kTraceVersion);
  put<std::uint16_t>(buf, 0);  // reserved
  put<std::uint32_t>(buf, probe.bits());
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) {
    put<std::int64_t>(buf, r.ts.ns());
    put<std::uint32_t>(buf, r.remote.bits());
    put<std::int32_t>(buf, r.bytes);
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.dir));
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.kind));
    put<std::uint8_t>(buf, r.ttl);
  }

  // Atomic + durable: readers (and crash-resumed batches) only ever see
  // a complete trace or no trace, never a torn one.
  util::write_file_atomic(path, buf);
  if (obs::enabled()) {
    obs::counter("trace.files_written").add();
    obs::counter("trace.records_written").add(records.size());
    obs::counter("trace.bytes_written").add(buf.size());
  }
}

TraceFile parse_trace(std::string_view buf, const std::string& origin) {
  if (buf.size() < 16) {
    throw std::runtime_error("read_trace: truncated header in " + origin);
  }
  const char* ptr = buf.data();
  if (get<std::uint32_t>(ptr) != kTraceMagic) {
    throw std::runtime_error("read_trace: bad magic in " + origin);
  }
  if (get<std::uint16_t>(ptr) != kTraceVersion) {
    throw std::runtime_error("read_trace: unsupported version in " +
                             origin);
  }
  (void)get<std::uint16_t>(ptr);  // reserved
  TraceFile file;
  file.probe = net::Ipv4Addr{get<std::uint32_t>(ptr)};
  const auto count = get<std::uint32_t>(ptr);
  if (buf.size() != 16 + static_cast<std::size_t>(count) * kRecordSize) {
    throw std::runtime_error("read_trace: size mismatch in " + origin);
  }
  file.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PacketRecord r;
    r.ts = util::SimTime{get<std::int64_t>(ptr)};
    r.remote = net::Ipv4Addr{get<std::uint32_t>(ptr)};
    r.bytes = get<std::int32_t>(ptr);
    const auto dir = get<std::uint8_t>(ptr);
    const auto kind = get<std::uint8_t>(ptr);
    if (dir > 1 || kind > 1) {
      throw std::runtime_error("read_trace: corrupt record in " +
                               origin);
    }
    r.dir = static_cast<Direction>(dir);
    r.kind = static_cast<sim::PacketKind>(kind);
    r.ttl = get<std::uint8_t>(ptr);
    file.records.push_back(r);
  }
  if (obs::enabled()) {
    obs::counter("trace.files_read").add();
    obs::counter("trace.records_read").add(file.records.size());
    obs::counter("trace.bytes_read").add(buf.size());
  }
  return file;
}

TraceFile parse_trace_salvage(std::string_view buf,
                              SalvageReport* report) {
  SalvageReport local;
  SalvageReport& rep = report ? *report : local;
  rep = SalvageReport{};

  TraceFile file;
  if (buf.size() < 16) {
    rep.bytes_discarded = buf.size();
    rep.note = "truncated header";
    return file;
  }
  const char* ptr = buf.data();
  if (get<std::uint32_t>(ptr) != kTraceMagic) {
    rep.bytes_discarded = buf.size();
    rep.note = "bad magic";
    return file;
  }
  if (const auto version = get<std::uint16_t>(ptr);
      version != kTraceVersion) {
    rep.bytes_discarded = buf.size();
    rep.note = "unsupported version " + std::to_string(version);
    return file;
  }
  (void)get<std::uint16_t>(ptr);  // reserved
  rep.header_valid = true;
  file.probe = net::Ipv4Addr{get<std::uint32_t>(ptr)};
  const auto declared = get<std::uint32_t>(ptr);

  // Fixed-size records mean boundaries survive field corruption: a bad
  // record is skipped and parsing resynchronises at the next one.
  const std::size_t payload = buf.size() - 16;
  const std::size_t present = payload / kRecordSize;
  const std::size_t usable = std::min<std::size_t>(declared, present);
  if (present < declared) {
    rep.truncated = true;
    rep.bytes_discarded = payload - present * kRecordSize;
    if (rep.note.empty()) {
      rep.note = "file ends " +
                 std::to_string(declared - present) +
                 " records short of the declared count";
    }
  } else if (payload > static_cast<std::size_t>(declared) * kRecordSize) {
    rep.bytes_discarded =
        payload - static_cast<std::size_t>(declared) * kRecordSize;
    rep.note = "trailing garbage after declared records";
  }

  file.records.reserve(usable);
  for (std::size_t i = 0; i < usable; ++i) {
    const char* rp = buf.data() + 16 + i * kRecordSize;
    PacketRecord r;
    r.ts = util::SimTime{get<std::int64_t>(rp)};
    r.remote = net::Ipv4Addr{get<std::uint32_t>(rp)};
    r.bytes = get<std::int32_t>(rp);
    const auto dir = get<std::uint8_t>(rp);
    const auto kind = get<std::uint8_t>(rp);
    if (dir > 1 || kind > 1 || r.bytes < 0) {
      ++rep.records_skipped;
      if (rep.note.empty()) {
        rep.note = "corrupt record at index " + std::to_string(i);
      }
      continue;
    }
    r.dir = static_cast<Direction>(dir);
    r.kind = static_cast<sim::PacketKind>(kind);
    r.ttl = get<std::uint8_t>(rp);
    file.records.push_back(r);
  }
  rep.records_recovered = file.records.size();
  if (obs::enabled()) {
    obs::counter("trace.files_salvaged").add();
    obs::counter("trace.records_salvaged").add(rep.records_recovered);
    obs::counter("trace.records_skipped").add(rep.records_skipped);
    obs::counter("trace.bytes_read").add(buf.size());
    obs::counter("trace.bytes_discarded").add(rep.bytes_discarded);
  }
  return file;
}

TraceFile read_trace(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_trace: cannot open " + path.string());
  }
  return parse_trace(*buf, path.string());
}

TraceFile read_trace_salvage(const std::filesystem::path& path,
                             SalvageReport* report) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_trace_salvage: cannot open " +
                             path.string());
  }
  return parse_trace_salvage(*buf, report);
}

void write_trace_csv(const std::filesystem::path& path, net::Ipv4Addr probe,
                     const std::vector<PacketRecord>& records) {
  std::ostringstream out;
  out << "# probe=" << probe.to_string() << '\n';
  out << "ts_ns,remote,dir,kind,bytes,ttl\n";
  for (const auto& r : records) {
    out << r.ts.ns() << ',' << r.remote.to_string() << ','
        << (r.dir == Direction::kRx ? "rx" : "tx") << ','
        << (r.kind == sim::PacketKind::kVideo ? "video" : "sig") << ','
        << r.bytes << ',' << static_cast<int>(r.ttl) << '\n';
  }
  util::write_file_atomic(path, out.str());
}

}  // namespace peerscope::trace
