// Record-framed checksummed binary trace format ("PSBT").
//
// The classic PSCT format (io.hpp) relies on fixed-size records to
// keep boundaries recoverable, but it cannot *detect* corruption — a
// flipped bit inside a plausible field reads back as data. PSBT is
// the self-validating successor and the substrate for the roadmap's
// out-of-core >140M-packet analysis: every record carries its own
// CRC-32C, periodic sync markers let a salvage reader resynchronise
// past damaged regions, and the layout is position-independent so a
// reader can parse straight out of an mmap'd view (parse_* functions
// take a string_view; nothing needs the whole file copied or seeked).
//
// Layout (little-endian throughout, DESIGN.md §15):
//
//   header (28 bytes):
//     u32 magic      0x50534254 "PSBT"
//     u16 version    1
//     u16 reserved   0
//     u32 probe      IPv4 of the capturing probe
//     u64 record_count
//     u32 sync_interval   records between sync markers (0 = none)
//     u32 header_crc      CRC-32C over the preceding 24 bytes
//
//   stream: records, with a sync marker before record i whenever
//   i % sync_interval == 0 (i > 0):
//     record frame:  u32 payload_len · u32 payload_crc · payload
//     sync marker:   u32 0x53594e43 "SYNC" · u64 record_index ·
//                    u32 marker_crc (CRC-32C over the preceding 12)
//
// Salvage semantics: a frame whose length is implausible or whose CRC
// fails poisons the stream until the next verifiable sync marker; the
// marker's record_index says exactly how many records the damaged
// region swallowed, so every drop is accounted, never guessed. A
// CRC-valid frame with out-of-domain field values is skipped alone
// (the boundary survives). Recovered + dropped always reconciles
// against the header's declared count when the header itself is
// intact.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/io.hpp"
#include "trace/record.hpp"
#include "trace/salvage.hpp"

namespace peerscope::trace {

inline constexpr std::uint32_t kBinaryTraceMagic = 0x50534254;  // "PSBT"
inline constexpr std::uint16_t kBinaryTraceVersion = 1;
inline constexpr std::uint32_t kSyncMarkerMagic = 0x53594e43;  // "SYNC"
inline constexpr std::uint32_t kDefaultSyncInterval = 256;

/// Frames longer than this are treated as corruption, not data; it
/// also keeps a flipped length bit from sending the reader gigabytes
/// ahead. v1 records are 19 bytes — the headroom is format evolution.
inline constexpr std::uint32_t kMaxRecordLen = 4096;

/// Writes one probe's records in PSBT framing (atomic + durable, like
/// write_trace). `sync_interval` of 0 disables sync markers — legal,
/// but a corrupt record then costs the rest of the file in salvage.
/// Throws std::length_error on absurd record counts.
void write_trace_binary(const std::filesystem::path& path,
                        net::Ipv4Addr probe,
                        const std::vector<PacketRecord>& records,
                        std::uint32_t sync_interval = kDefaultSyncInterval);

/// Strict reader: throws std::runtime_error on any malformation —
/// bad magic/version/CRC, frame damage, truncation, count mismatch.
[[nodiscard]] TraceFile read_trace_binary(const std::filesystem::path& path);

/// Salvage reader: recovers every record outside damaged regions,
/// resynchronising at sync markers, and accounts each drop in
/// `report`. Only failure to open the file throws.
[[nodiscard]] TraceFile read_trace_binary_salvage(
    const std::filesystem::path& path, SalvageReport* report = nullptr);

/// Buffer-level parsers behind the readers above; `origin` names the
/// source in error messages. These are the mmap-friendly entry points.
[[nodiscard]] TraceFile parse_trace_binary(std::string_view buf,
                                           const std::string& origin);
[[nodiscard]] TraceFile parse_trace_binary_salvage(
    std::string_view buf, SalvageReport* report = nullptr);

}  // namespace peerscope::trace
