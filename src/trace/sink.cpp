#include "trace/sink.hpp"

#include <algorithm>

namespace peerscope::trace {

void ProbeSink::sort_records() {
  std::sort(records_.begin(), records_.end(), record_before);
}

}  // namespace peerscope::trace
