#include "trace/flow.hpp"

#include <algorithm>

namespace peerscope::trace {

void FlowTable::add(const PacketRecord& record) {
  auto [it, inserted] = flows_.try_emplace(record.remote);
  FlowStats& f = it->second;
  if (inserted) f.remote = record.remote;

  f.first_ts = std::min(f.first_ts, record.ts);
  f.last_ts = std::max(f.last_ts, record.ts);

  const auto bytes = static_cast<std::uint64_t>(record.bytes);
  if (record.dir == Direction::kRx) {
    ++f.rx_pkts;
    f.rx_bytes += bytes;
    ++total_rx_pkts_;
    total_rx_bytes_ += bytes;
    f.rx_ttl = record.ttl;
    f.saw_rx = true;
    if (record.kind == sim::PacketKind::kVideo) {
      ++f.rx_video_pkts;
      f.rx_video_bytes += bytes;
      auto [lit, first] = last_rx_video_.try_emplace(record.remote, record.ts);
      if (!first) {
        const std::int64_t gap = record.ts.ns() - lit->second.ns();
        if (gap >= 0 && gap < f.min_rx_video_ipg_ns) {
          f.min_rx_video_ipg_ns = gap;
        }
        lit->second = record.ts;
      }
    }
  } else {
    ++f.tx_pkts;
    f.tx_bytes += bytes;
    ++total_tx_pkts_;
    total_tx_bytes_ += bytes;
    if (record.kind == sim::PacketKind::kVideo) {
      ++f.tx_video_pkts;
      f.tx_video_bytes += bytes;
    }
  }
}

FlowTable FlowTable::from_records(net::Ipv4Addr probe,
                                  std::span<const PacketRecord> records) {
  std::vector<PacketRecord> sorted(records.begin(), records.end());
  std::sort(sorted.begin(), sorted.end(), record_before);
  FlowTable table{probe};
  for (const auto& r : sorted) table.add(r);
  return table;
}

const FlowStats* FlowTable::find(net::Ipv4Addr remote) const {
  const auto it = flows_.find(remote);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace peerscope::trace
