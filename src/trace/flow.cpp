#include "trace/flow.hpp"

#include <algorithm>

namespace peerscope::trace {

std::int64_t robust_min_ipg(std::span<const std::int64_t> smallest,
                            std::uint64_t samples, int discard) {
  if (samples == 0 || smallest.empty()) {
    return std::numeric_limits<std::int64_t>::max();
  }
  if (discard < 0) discard = 0;
  // Never discard the whole sample: with few gaps, fall back to the
  // largest one we have rather than declaring the flow unmeasurable.
  const auto last_valid = static_cast<std::size_t>(
      std::min<std::uint64_t>(samples, smallest.size()) - 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(discard), last_valid);
  return smallest[idx];
}

std::uint8_t FlowStats::rx_ttl_mode() const {
  std::uint8_t best = rx_ttl;
  std::int32_t best_count = 0;
  for (std::size_t i = 0; i < ttl_candidates.size(); ++i) {
    if (ttl_counts[i] > best_count) {
      best_count = ttl_counts[i];
      best = ttl_candidates[i];
    }
  }
  return best;
}

void FlowTable::add(const PacketRecord& record) {
  auto [it, inserted] = flows_.try_emplace(record.remote);
  FlowStats& f = it->second;
  if (inserted) f.remote = record.remote;

  f.first_ts = std::min(f.first_ts, record.ts);
  f.last_ts = std::max(f.last_ts, record.ts);

  const auto bytes = static_cast<std::uint64_t>(record.bytes);
  if (record.dir == Direction::kRx) {
    ++f.rx_pkts;
    f.rx_bytes += bytes;
    ++total_rx_pkts_;
    total_rx_bytes_ += bytes;
    f.rx_ttl = record.ttl;
    f.saw_rx = true;
    // Misra–Gries update for the TTL mode.
    {
      bool placed = false;
      for (std::size_t i = 0; i < f.ttl_candidates.size() && !placed; ++i) {
        if (f.ttl_counts[i] > 0 && f.ttl_candidates[i] == record.ttl) {
          ++f.ttl_counts[i];
          placed = true;
        }
      }
      for (std::size_t i = 0; i < f.ttl_candidates.size() && !placed; ++i) {
        if (f.ttl_counts[i] == 0) {
          f.ttl_candidates[i] = record.ttl;
          f.ttl_counts[i] = 1;
          placed = true;
        }
      }
      if (!placed) {
        for (auto& count : f.ttl_counts) --count;
      }
    }
    if (record.kind == sim::PacketKind::kVideo) {
      ++f.rx_video_pkts;
      f.rx_video_bytes += bytes;
      auto [lit, first] = last_rx_video_.try_emplace(record.remote, record.ts);
      if (!first) {
        const std::int64_t gap = record.ts.ns() - lit->second.ns();
        if (gap >= 0) {
          if (gap < f.min_rx_video_ipg_ns) {
            f.min_rx_video_ipg_ns = gap;
          }
          ++f.rx_ipg_samples;
          // Insertion into the sorted k-smallest array.
          auto& smallest = f.smallest_rx_ipgs;
          if (gap < smallest.back()) {
            smallest.back() = gap;
            for (std::size_t i = smallest.size() - 1;
                 i > 0 && smallest[i] < smallest[i - 1]; --i) {
              std::swap(smallest[i], smallest[i - 1]);
            }
          }
        }
        lit->second = record.ts;
      }
    }
  } else {
    ++f.tx_pkts;
    f.tx_bytes += bytes;
    ++total_tx_pkts_;
    total_tx_bytes_ += bytes;
    if (record.kind == sim::PacketKind::kVideo) {
      ++f.tx_video_pkts;
      f.tx_video_bytes += bytes;
    }
  }
}

FlowTable FlowTable::from_records(net::Ipv4Addr probe,
                                  std::span<const PacketRecord> records) {
  std::vector<PacketRecord> sorted(records.begin(), records.end());
  std::sort(sorted.begin(), sorted.end(), record_before);
  FlowTable table{probe};
  for (const auto& r : sorted) table.add(r);
  return table;
}

const FlowStats* FlowTable::find(net::Ipv4Addr remote) const {
  const auto it = flows_.find(remote);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace peerscope::trace
