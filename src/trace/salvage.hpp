// Salvage-mode trace reading.
//
// The strict readers (io.hpp, pcap.hpp) treat any corruption as fatal —
// right for regression tests, wrong for a measurement campaign where a
// probe host crashed mid-write or a disk flipped bits. Salvage mode
// recovers the valid record prefix (and resynchronises past bad
// records where the format's fixed record size allows it), never
// throws on corrupt input, and accounts for everything it skipped so
// the analysis can report how much data survived.
#pragma once

#include <cstddef>
#include <string>

namespace peerscope::trace {

struct SalvageReport {
  std::size_t records_recovered = 0;
  /// Records present in the byte stream but dropped (bad field values,
  /// foreign packets, unparseable headers).
  std::size_t records_skipped = 0;
  /// Bytes that could not be attributed to any record (truncated tail,
  /// trailing garbage, or the whole file when the header is bad).
  std::size_t bytes_discarded = 0;
  /// False when the file header itself was unusable; nothing can be
  /// recovered in that case.
  bool header_valid = false;
  /// True when the file ended mid-record or short of the declared
  /// record count.
  bool truncated = false;
  /// Human-readable description of the first problem found; empty for
  /// a clean file.
  std::string note;

  [[nodiscard]] bool clean() const {
    return header_valid && !truncated && records_skipped == 0 &&
           bytes_discarded == 0;
  }
};

}  // namespace peerscope::trace
