// Captured-packet record: what a vantage point's sniffer writes.
//
// Field-for-field this is the subset of a pcap entry the paper's
// methodology consumes: timestamp, endpoint addresses, IP length, and
// the TTL observed on *received* packets.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "sim/packet.hpp"
#include "util/sim_time.hpp"

namespace peerscope::trace {

/// Direction relative to the capturing probe.
enum class Direction : std::uint8_t {
  kRx,  // remote -> probe
  kTx,  // probe -> remote
};

struct PacketRecord {
  util::SimTime ts;        // capture timestamp
  net::Ipv4Addr remote;    // the non-probe endpoint
  std::int32_t bytes = 0;  // IP-layer length
  Direction dir = Direction::kRx;
  sim::PacketKind kind = sim::PacketKind::kVideo;
  /// TTL as seen at the probe. Meaningful for RX records only; TX
  /// records carry the initial TTL (the probe wrote it).
  std::uint8_t ttl = sim::kInitialTtl;
};

/// Stable ordering for offline analysis: by time, then remote, then
/// direction — a total order given distinct timestamps from the
/// serialising link cursors.
[[nodiscard]] inline bool record_before(const PacketRecord& a,
                                        const PacketRecord& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.remote != b.remote) return a.remote < b.remote;
  return static_cast<int>(a.dir) < static_cast<int>(b.dir);
}

}  // namespace peerscope::trace
