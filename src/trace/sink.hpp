// Per-probe capture sink: the simulator-side "tcpdump".
//
// Always maintains an online FlowTable (O(#peers) memory, enough for
// every statistic in the paper). Optionally also stores raw
// PacketRecords, which is what gets written to trace files and fed to
// the offline analysis path — tests assert both paths agree.
#pragma once

#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/packet.hpp"
#include "trace/flow.hpp"
#include "trace/record.hpp"
#include "util/sim_time.hpp"

namespace peerscope::trace {

class ProbeSink {
 public:
  ProbeSink(net::Ipv4Addr probe, bool keep_records)
      : probe_(probe), keep_records_(keep_records), flows_(probe) {}

  [[nodiscard]] net::Ipv4Addr probe() const { return probe_; }

  void on_packet(const PacketRecord& record) {
    flows_.add(record);
    if (keep_records_) records_.push_back(record);
  }

  /// A received video burst: one RX record per packet arrival.
  void video_train_rx(net::Ipv4Addr remote,
                      std::span<const util::SimTime> arrivals,
                      std::int32_t bytes_per_packet, std::uint8_t ttl) {
    for (const auto ts : arrivals) {
      on_packet({ts, remote, bytes_per_packet, Direction::kRx,
                 sim::PacketKind::kVideo, ttl});
    }
  }

  /// A transmitted video burst: one TX record per packet departure.
  void video_train_tx(net::Ipv4Addr remote,
                      std::span<const util::SimTime> departures,
                      std::int32_t bytes_per_packet) {
    for (const auto ts : departures) {
      on_packet({ts, remote, bytes_per_packet, Direction::kTx,
                 sim::PacketKind::kVideo, sim::kInitialTtl});
    }
  }

  void signaling_rx(net::Ipv4Addr remote, util::SimTime ts,
                    std::int32_t bytes, std::uint8_t ttl) {
    on_packet({ts, remote, bytes, Direction::kRx,
               sim::PacketKind::kSignaling, ttl});
  }

  void signaling_tx(net::Ipv4Addr remote, util::SimTime ts,
                    std::int32_t bytes) {
    on_packet({ts, remote, bytes, Direction::kTx,
               sim::PacketKind::kSignaling, sim::kInitialTtl});
  }

  [[nodiscard]] const FlowTable& flows() const { return flows_; }
  [[nodiscard]] bool keeps_records() const { return keep_records_; }
  [[nodiscard]] const std::vector<PacketRecord>& records() const {
    return records_;
  }

  /// Sorts stored records into capture order (no-op effect on flows).
  void sort_records();

 private:
  net::Ipv4Addr probe_;
  bool keep_records_;
  FlowTable flows_;
  std::vector<PacketRecord> records_;
};

}  // namespace peerscope::trace
