// Trace persistence.
//
// Binary format ("PSCT"): little-endian, fixed-size records, one file
// per probe. A CSV exporter is provided for eyeballing traces with
// standard tooling. Readers validate magic, version and record counts
// and throw on any corruption — trace files are measurement data, not
// best-effort input.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/record.hpp"

namespace peerscope::trace {

inline constexpr std::uint32_t kTraceMagic = 0x50534354;  // "PSCT"
inline constexpr std::uint16_t kTraceVersion = 1;

struct TraceFile {
  net::Ipv4Addr probe;
  std::vector<PacketRecord> records;
};

/// Writes one probe's records. Overwrites an existing file.
void write_trace(const std::filesystem::path& path, net::Ipv4Addr probe,
                 const std::vector<PacketRecord>& records);

/// Reads a trace file; throws std::runtime_error on malformed input.
[[nodiscard]] TraceFile read_trace(const std::filesystem::path& path);

/// CSV with header: ts_ns,remote,dir,kind,bytes,ttl
void write_trace_csv(const std::filesystem::path& path, net::Ipv4Addr probe,
                     const std::vector<PacketRecord>& records);

}  // namespace peerscope::trace
