// Trace persistence.
//
// Binary format ("PSCT"): little-endian, fixed-size records, one file
// per probe. A CSV exporter is provided for eyeballing traces with
// standard tooling. Readers validate magic, version and record counts
// and throw on any corruption — trace files are measurement data, not
// best-effort input.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/record.hpp"
#include "trace/salvage.hpp"

namespace peerscope::trace {

inline constexpr std::uint32_t kTraceMagic = 0x50534354;  // "PSCT"
inline constexpr std::uint16_t kTraceVersion = 1;

struct TraceFile {
  net::Ipv4Addr probe;
  std::vector<PacketRecord> records;
};

/// Writes one probe's records. Overwrites an existing file. Throws
/// std::length_error when `records` exceeds the format's 32-bit record
/// count (a file that large would silently truncate on read).
void write_trace(const std::filesystem::path& path, net::Ipv4Addr probe,
                 const std::vector<PacketRecord>& records);

/// Reads a trace file; throws std::runtime_error on malformed input.
[[nodiscard]] TraceFile read_trace(const std::filesystem::path& path);

/// Buffer-level parsers behind read_trace / read_trace_salvage, for
/// callers that already hold the bytes (capture ingestion sniffs the
/// magic and dispatches between PSCT and PSBT from one slurp).
/// `origin` names the source in error messages.
[[nodiscard]] TraceFile parse_trace(std::string_view buf,
                                    const std::string& origin);
[[nodiscard]] TraceFile parse_trace_salvage(std::string_view buf,
                                            SalvageReport* report = nullptr);

/// Salvage-mode reader: recovers every parseable record from a
/// possibly-corrupt trace (truncated tail, bad records, trailing
/// garbage) instead of throwing. Only failure to open the file throws.
/// Fills `report` (if non-null) with what was recovered vs skipped; a
/// clean file yields the same records as read_trace and a clean()
/// report.
[[nodiscard]] TraceFile read_trace_salvage(const std::filesystem::path& path,
                                           SalvageReport* report = nullptr);

/// CSV with header: ts_ns,remote,dir,kind,bytes,ttl
void write_trace_csv(const std::filesystem::path& path, net::Ipv4Addr probe,
                     const std::vector<PacketRecord>& records);

}  // namespace peerscope::trace
