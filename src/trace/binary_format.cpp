#include "trace/binary_format.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32c.hpp"
#include "util/io_faults.hpp"

namespace peerscope::trace {

namespace {

constexpr std::size_t kHeaderSize = 28;
constexpr std::size_t kSyncMarkerSize = 16;
constexpr std::size_t kFrameOverhead = 8;  // payload_len + payload_crc

// Record payload: the same 19-byte little-endian packing as PSCT
// (io.cpp), so a PSBT payload is a PSCT record with a checksum
// wrapped around it.
constexpr std::size_t kRecordSize = 8 + 4 + 4 + 1 + 1 + 1;
static_assert(kRecordSize <= kMaxRecordLen);

template <typename T>
void put(std::string& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buf.append(bytes, sizeof(T));  // host is little-endian (x86/ARM64)
}

template <typename T>
T get(const char*& ptr) {
  T value;
  std::memcpy(&value, ptr, sizeof(T));
  ptr += sizeof(T);
  return value;
}

void pack_record(std::string& buf, const PacketRecord& r) {
  put<std::int64_t>(buf, r.ts.ns());
  put<std::uint32_t>(buf, r.remote.bits());
  put<std::int32_t>(buf, r.bytes);
  put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.dir));
  put<std::uint8_t>(buf, static_cast<std::uint8_t>(r.kind));
  put<std::uint8_t>(buf, r.ttl);
}

/// Decodes one CRC-valid payload. Returns false when a field is out
/// of domain — possible despite the checksum if the *writer* was fed
/// garbage, so readers still validate.
[[nodiscard]] bool unpack_record(std::string_view payload, PacketRecord& r) {
  const char* ptr = payload.data();
  r.ts = util::SimTime{get<std::int64_t>(ptr)};
  r.remote = net::Ipv4Addr{get<std::uint32_t>(ptr)};
  r.bytes = get<std::int32_t>(ptr);
  const auto dir = get<std::uint8_t>(ptr);
  const auto kind = get<std::uint8_t>(ptr);
  if (dir > 1 || kind > 1 || r.bytes < 0) {
    return false;
  }
  r.dir = static_cast<Direction>(dir);
  r.kind = static_cast<sim::PacketKind>(kind);
  r.ttl = get<std::uint8_t>(ptr);
  return true;
}

struct Header {
  net::Ipv4Addr probe;
  std::uint64_t count = 0;
  std::uint32_t sync_interval = 0;
};

/// Parses and CRC-verifies the 28-byte header. Returns the failure
/// reason, or empty on success.
[[nodiscard]] std::string parse_header(std::string_view buf, Header& out) {
  if (buf.size() < kHeaderSize) {
    return "truncated header";
  }
  const char* ptr = buf.data();
  if (get<std::uint32_t>(ptr) != kBinaryTraceMagic) {
    return "bad magic";
  }
  if (const auto version = get<std::uint16_t>(ptr);
      version != kBinaryTraceVersion) {
    return "unsupported version " + std::to_string(version);
  }
  (void)get<std::uint16_t>(ptr);  // reserved
  out.probe = net::Ipv4Addr{get<std::uint32_t>(ptr)};
  out.count = get<std::uint64_t>(ptr);
  out.sync_interval = get<std::uint32_t>(ptr);
  const auto stored = get<std::uint32_t>(ptr);
  if (stored != util::crc32c(buf.substr(0, kHeaderSize - 4))) {
    return "header checksum mismatch";
  }
  return {};
}

/// True when the 16 bytes at `p` are a CRC-valid sync marker.
[[nodiscard]] bool valid_sync_marker(std::string_view buf, std::size_t p,
                                     std::uint64_t& index_out) {
  if (buf.size() - p < kSyncMarkerSize) {
    return false;
  }
  const char* ptr = buf.data() + p;
  if (get<std::uint32_t>(ptr) != kSyncMarkerMagic) {
    return false;
  }
  const std::uint64_t index = get<std::uint64_t>(ptr);
  if (get<std::uint32_t>(ptr) != util::crc32c(buf.substr(p, 12))) {
    return false;
  }
  index_out = index;
  return true;
}

void count_salvage(const SalvageReport& rep, std::size_t bytes) {
  if (obs::enabled()) {
    obs::counter("trace.binary_files_read").add();
    obs::counter("trace.binary_records_salvaged").add(rep.records_recovered);
    obs::counter("trace.binary_records_dropped").add(rep.records_skipped);
    obs::counter("trace.bytes_read").add(bytes);
    obs::counter("trace.bytes_discarded").add(rep.bytes_discarded);
  }
}

}  // namespace

void write_trace_binary(const std::filesystem::path& path,
                        net::Ipv4Addr probe,
                        const std::vector<PacketRecord>& records,
                        std::uint32_t sync_interval) {
  if (records.size() > std::numeric_limits<std::uint32_t>::max()) {
    // The u64 count field has room, but nothing downstream has been
    // sized for more; fail loudly like write_trace rather than let a
    // runaway writer fill the disk.
    throw std::length_error(
        "write_trace_binary: record count exceeds the supported 32-bit "
        "limit (" +
        std::to_string(records.size()) + " records)");
  }
  std::string buf;
  buf.reserve(kHeaderSize + records.size() * (kFrameOverhead + kRecordSize));
  put<std::uint32_t>(buf, kBinaryTraceMagic);
  put<std::uint16_t>(buf, kBinaryTraceVersion);
  put<std::uint16_t>(buf, 0);  // reserved
  put<std::uint32_t>(buf, probe.bits());
  put<std::uint64_t>(buf, records.size());
  put<std::uint32_t>(buf, sync_interval);
  put<std::uint32_t>(buf, util::crc32c(buf));

  std::string payload;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (sync_interval > 0 && i > 0 && i % sync_interval == 0) {
      const std::size_t marker_start = buf.size();
      put<std::uint32_t>(buf, kSyncMarkerMagic);
      put<std::uint64_t>(buf, static_cast<std::uint64_t>(i));
      put<std::uint32_t>(
          buf, util::crc32c(
                   std::string_view(buf).substr(marker_start, 12)));
    }
    payload.clear();
    pack_record(payload, records[i]);
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(buf, util::crc32c(payload));
    buf.append(payload);
  }

  util::write_file_atomic(path, buf);
  if (obs::enabled()) {
    obs::counter("trace.binary_files_written").add();
    obs::counter("trace.records_written").add(records.size());
    obs::counter("trace.bytes_written").add(buf.size());
  }
}

TraceFile parse_trace_binary(std::string_view buf,
                             const std::string& origin) {
  Header header;
  if (const std::string err = parse_header(buf, header); !err.empty()) {
    throw std::runtime_error("read_trace_binary: " + err + " in " + origin);
  }
  TraceFile file;
  file.probe = header.probe;
  file.records.reserve(static_cast<std::size_t>(header.count));
  std::size_t pos = kHeaderSize;
  for (std::uint64_t i = 0; i < header.count; ++i) {
    if (header.sync_interval > 0 && i > 0 &&
        i % header.sync_interval == 0) {
      std::uint64_t index = 0;
      if (!valid_sync_marker(buf, pos, index) || index != i) {
        throw std::runtime_error(
            "read_trace_binary: bad sync marker before record " +
            std::to_string(i) + " in " + origin);
      }
      pos += kSyncMarkerSize;
    }
    if (buf.size() - pos < kFrameOverhead) {
      throw std::runtime_error("read_trace_binary: truncated at record " +
                               std::to_string(i) + " in " + origin);
    }
    const char* ptr = buf.data() + pos;
    const auto len = get<std::uint32_t>(ptr);
    const auto crc = get<std::uint32_t>(ptr);
    if (len != kRecordSize || buf.size() - pos - kFrameOverhead < len) {
      throw std::runtime_error("read_trace_binary: corrupt frame at record " +
                               std::to_string(i) + " in " + origin);
    }
    const std::string_view payload = buf.substr(pos + kFrameOverhead, len);
    if (crc != util::crc32c(payload)) {
      throw std::runtime_error(
          "read_trace_binary: checksum mismatch at record " +
          std::to_string(i) + " in " + origin);
    }
    PacketRecord r;
    if (!unpack_record(payload, r)) {
      throw std::runtime_error("read_trace_binary: corrupt record " +
                               std::to_string(i) + " in " + origin);
    }
    file.records.push_back(r);
    pos += kFrameOverhead + len;
  }
  if (pos != buf.size()) {
    throw std::runtime_error(
        "read_trace_binary: trailing garbage after declared records in " +
        origin);
  }
  if (obs::enabled()) {
    obs::counter("trace.binary_files_read").add();
    obs::counter("trace.records_read").add(file.records.size());
    obs::counter("trace.bytes_read").add(buf.size());
  }
  return file;
}

TraceFile parse_trace_binary_salvage(std::string_view buf,
                                     SalvageReport* report) {
  SalvageReport local;
  SalvageReport& rep = report ? *report : local;
  rep = SalvageReport{};

  TraceFile file;
  Header header;
  if (const std::string err = parse_header(buf, header); !err.empty()) {
    rep.bytes_discarded = buf.size();
    rep.note = err;
    count_salvage(rep, buf.size());
    return file;
  }
  rep.header_valid = true;
  file.probe = header.probe;
  file.records.reserve(static_cast<std::size_t>(header.count));

  // `seen` counts stream positions consumed (recovered or dropped);
  // the invariant recovered + dropped == declared holds on exit.
  // `marker_due` is the index of the next sync marker the writer will
  // have emitted — tracked explicitly so that resyncing *to* a marker
  // does not leave the loop expecting that same marker again.
  std::uint64_t seen = 0;
  std::uint64_t marker_due =
      header.sync_interval > 0 ? header.sync_interval : 0;
  std::size_t pos = kHeaderSize;
  bool damaged = false;  // in a poisoned region, looking for a marker

  while (seen < header.count) {
    if (damaged) {
      // Resync: scan byte-by-byte for a CRC-valid marker whose index
      // both advances the stream and lands on the writer's cadence.
      const std::size_t scan_start = pos;
      std::size_t found = std::string_view::npos;
      std::uint64_t found_index = 0;
      for (std::size_t p = pos; p + kSyncMarkerSize <= buf.size(); ++p) {
        std::uint64_t index = 0;
        if (valid_sync_marker(buf, p, index) && index > seen &&
            index <= header.count && header.sync_interval > 0 &&
            index % header.sync_interval == 0) {
          found = p;
          found_index = index;
          break;
        }
      }
      if (found == std::string_view::npos) {
        rep.bytes_discarded += buf.size() - scan_start;
        rep.records_skipped += header.count - seen;
        rep.truncated = true;
        if (rep.note.empty()) {
          rep.note = "no sync marker after corrupt frame";
        }
        seen = header.count;
        break;
      }
      rep.bytes_discarded += found - scan_start;
      rep.records_skipped += found_index - seen;
      seen = found_index;
      marker_due = found_index + header.sync_interval;
      pos = found + kSyncMarkerSize;
      damaged = false;
      continue;
    }

    if (header.sync_interval > 0 && seen > 0 && seen == marker_due) {
      std::uint64_t index = 0;
      if (!valid_sync_marker(buf, pos, index) || index != seen) {
        if (rep.note.empty()) {
          rep.note = "bad sync marker before record " + std::to_string(seen);
        }
        damaged = true;
        continue;
      }
      marker_due += header.sync_interval;
      pos += kSyncMarkerSize;
    }

    if (buf.size() - pos < kFrameOverhead) {
      rep.bytes_discarded += buf.size() - pos;
      rep.records_skipped += header.count - seen;
      rep.truncated = true;
      if (rep.note.empty()) {
        rep.note = "file ends " + std::to_string(header.count - seen) +
                   " records short of the declared count";
      }
      seen = header.count;
      break;
    }
    const char* ptr = buf.data() + pos;
    const auto len = get<std::uint32_t>(ptr);
    const auto crc = get<std::uint32_t>(ptr);
    if (len != kRecordSize) {
      if (rep.note.empty()) {
        rep.note = "corrupt frame length at record " + std::to_string(seen);
      }
      damaged = true;
      continue;
    }
    if (buf.size() - pos - kFrameOverhead < len) {
      rep.bytes_discarded += buf.size() - pos;
      rep.records_skipped += header.count - seen;
      rep.truncated = true;
      if (rep.note.empty()) {
        rep.note = "file ends mid-record at index " + std::to_string(seen);
      }
      seen = header.count;
      break;
    }
    const std::string_view payload = buf.substr(pos + kFrameOverhead, len);
    if (crc != util::crc32c(payload)) {
      if (rep.note.empty()) {
        rep.note = "checksum mismatch at record " + std::to_string(seen);
      }
      damaged = true;
      continue;
    }
    PacketRecord r;
    if (unpack_record(payload, r)) {
      file.records.push_back(r);
    } else {
      // CRC-valid but out-of-domain: the frame boundary is intact, so
      // only this record is lost.
      ++rep.records_skipped;
      if (rep.note.empty()) {
        rep.note = "corrupt record at index " + std::to_string(seen);
      }
    }
    ++seen;
    pos += kFrameOverhead + len;
  }

  if (!rep.truncated && pos < buf.size()) {
    rep.bytes_discarded += buf.size() - pos;
    if (rep.note.empty()) {
      rep.note = "trailing garbage after declared records";
    }
  }
  rep.records_recovered = file.records.size();
  count_salvage(rep, buf.size());
  return file;
}

TraceFile read_trace_binary(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_trace_binary: cannot open " +
                             path.string());
  }
  return parse_trace_binary(*buf, path.string());
}

TraceFile read_trace_binary_salvage(const std::filesystem::path& path,
                                    SalvageReport* report) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_trace_binary_salvage: cannot open " +
                             path.string());
  }
  return parse_trace_binary_salvage(*buf, report);
}

}  // namespace peerscope::trace
