#include "trace/pcap.hpp"

#include <cstring>
#include <stdexcept>

#include "sim/packet.hpp"
#include "util/atomic_file.hpp"
#include "util/io_faults.hpp"

namespace peerscope::trace {

namespace {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kLinkTypeRaw = 101;  // raw IPv4/IPv6

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}
// Network byte order (big-endian) for the IP/UDP header fields.
void put_be16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}
void put_be32(std::string& out, std::uint32_t v) {
  put_be16(out, static_cast<std::uint16_t>(v >> 16));
  put_be16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t read_u16(const char*& p) {
  const auto lo = static_cast<std::uint8_t>(*p++);
  const auto hi = static_cast<std::uint8_t>(*p++);
  return static_cast<std::uint16_t>(lo | (hi << 8));
}
std::uint32_t read_u32(const char*& p) {
  const std::uint16_t lo = read_u16(p);
  const std::uint16_t hi = read_u16(p);
  return static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
}
std::uint16_t read_be16(const char*& p) {
  const auto hi = static_cast<std::uint8_t>(*p++);
  const auto lo = static_cast<std::uint8_t>(*p++);
  return static_cast<std::uint16_t>((hi << 8) | lo);
}
std::uint32_t read_be32(const char*& p) {
  const std::uint16_t hi = read_be16(p);
  const std::uint16_t lo = read_be16(p);
  return (static_cast<std::uint32_t>(hi) << 16) | lo;
}

}  // namespace

std::uint16_t ipv4_header_checksum(const std::uint8_t* header,
                                   std::size_t length) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < length; i += 2) {
    sum += static_cast<std::uint32_t>((header[i] << 8) | header[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void write_pcap(const std::filesystem::path& path, net::Ipv4Addr probe,
                const std::vector<PacketRecord>& records,
                const PcapOptions& options) {
  std::string out;
  out.reserve(24 + records.size() * (16 + options.snaplen));

  // Global header.
  put_u32(out, kPcapMagic);
  put_u16(out, kVersionMajor);
  put_u16(out, kVersionMinor);
  put_u32(out, 0);  // thiszone
  put_u32(out, 0);  // sigfigs
  put_u32(out, options.snaplen);
  put_u32(out, kLinkTypeRaw);

  for (const auto& r : records) {
    const bool rx = r.dir == Direction::kRx;
    const net::Ipv4Addr src = rx ? r.remote : probe;
    const net::Ipv4Addr dst = rx ? probe : r.remote;
    const std::uint8_t ttl = rx ? r.ttl : sim::kInitialTtl;
    const auto total_len =
        static_cast<std::uint16_t>(std::max(r.bytes, 28));
    const std::uint32_t incl_len =
        std::min<std::uint32_t>(options.snaplen, total_len);

    // Record header: seconds, microseconds, captured, original.
    const std::int64_t ns = r.ts.ns();
    put_u32(out, static_cast<std::uint32_t>(ns / 1'000'000'000));
    put_u32(out, static_cast<std::uint32_t>((ns % 1'000'000'000) / 1'000));
    put_u32(out, incl_len);
    put_u32(out, total_len);

    // IPv4 header (20 bytes).
    std::string pkt;
    pkt.reserve(incl_len);
    pkt.push_back(0x45);  // version 4, IHL 5
    pkt.push_back(0x00);  // DSCP/ECN
    put_be16(pkt, total_len);
    put_be16(pkt, 0);       // identification
    put_be16(pkt, 0x4000);  // DF
    pkt.push_back(static_cast<char>(ttl));
    pkt.push_back(17);  // UDP
    put_be16(pkt, 0);   // checksum placeholder
    put_be32(pkt, src.bits());
    put_be32(pkt, dst.bits());
    const std::uint16_t checksum = ipv4_header_checksum(
        reinterpret_cast<const std::uint8_t*>(pkt.data()), 20);
    pkt[10] = static_cast<char>(checksum >> 8);
    pkt[11] = static_cast<char>(checksum & 0xff);

    // UDP header (8 bytes); checksum 0 = not computed (legal for IPv4).
    put_be16(pkt, options.app_port);
    put_be16(pkt, options.app_port);
    put_be16(pkt, static_cast<std::uint16_t>(total_len - 20));
    put_be16(pkt, 0);

    pkt.resize(incl_len, '\0');
    out += pkt;
  }

  util::write_file_atomic(path, out);
}

std::vector<PacketRecord> read_pcap(const std::filesystem::path& path,
                                    net::Ipv4Addr probe) {
  const auto slurped = util::io::read_file(path);
  if (!slurped) {
    throw std::runtime_error("read_pcap: cannot open " + path.string());
  }
  const std::string& buf = *slurped;
  if (buf.size() < 24) {
    throw std::runtime_error("read_pcap: truncated global header");
  }
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  if (read_u32(p) != kPcapMagic) {
    throw std::runtime_error("read_pcap: bad magic");
  }
  (void)read_u16(p);  // version major
  (void)read_u16(p);  // version minor
  (void)read_u32(p);  // thiszone
  (void)read_u32(p);  // sigfigs
  (void)read_u32(p);  // snaplen
  if (read_u32(p) != kLinkTypeRaw) {
    throw std::runtime_error("read_pcap: unexpected link type");
  }

  std::vector<PacketRecord> records;
  while (p < end) {
    if (static_cast<std::size_t>(end - p) < 16) {
      throw std::runtime_error("read_pcap: truncated record header");
    }
    const std::uint32_t sec = read_u32(p);
    const std::uint32_t usec = read_u32(p);
    const std::uint32_t incl = read_u32(p);
    const std::uint32_t orig = read_u32(p);
    if (incl < 28 || static_cast<std::size_t>(end - p) < incl) {
      throw std::runtime_error("read_pcap: truncated packet");
    }
    if (orig < 28 || orig > 65535 || incl > orig) {
      // The writer stores original length as a 16-bit IPv4 total; a
      // value outside it would alias to a negative byte count below.
      throw std::runtime_error("read_pcap: implausible original length");
    }
    const char* ip = p;
    p += incl;

    if ((static_cast<std::uint8_t>(ip[0]) >> 4) != 4) {
      throw std::runtime_error("read_pcap: not IPv4");
    }
    const auto ttl = static_cast<std::uint8_t>(ip[8]);
    const char* addr_ptr = ip + 12;
    const net::Ipv4Addr src{read_be32(addr_ptr)};
    const net::Ipv4Addr dst{read_be32(addr_ptr)};

    PacketRecord r;
    r.ts = util::SimTime::nanos(static_cast<std::int64_t>(sec) *
                                    1'000'000'000 +
                                static_cast<std::int64_t>(usec) * 1'000);
    r.bytes = static_cast<std::int32_t>(orig);
    if (dst == probe) {
      r.dir = Direction::kRx;
      r.remote = src;
      r.ttl = ttl;
    } else if (src == probe) {
      r.dir = Direction::kTx;
      r.remote = dst;
      r.ttl = ttl;
    } else {
      throw std::runtime_error("read_pcap: packet does not involve probe");
    }
    // Payload kind is not expressible in pcap; classify by size the way
    // the paper's heuristics do (video packets ride near-MTU sizes).
    r.kind = r.bytes >= 1000 ? sim::PacketKind::kVideo
                             : sim::PacketKind::kSignaling;
    records.push_back(r);
  }
  return records;
}

std::vector<PacketRecord> read_pcap_salvage(const std::filesystem::path& path,
                                            net::Ipv4Addr probe,
                                            SalvageReport* report) {
  SalvageReport local;
  SalvageReport& rep = report ? *report : local;
  rep = SalvageReport{};

  const auto slurped = util::io::read_file(path);
  if (!slurped) {
    throw std::runtime_error("read_pcap_salvage: cannot open " +
                             path.string());
  }
  const std::string& buf = *slurped;

  std::vector<PacketRecord> records;
  if (buf.size() < 24) {
    rep.bytes_discarded = buf.size();
    rep.note = "truncated global header";
    return records;
  }
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  if (read_u32(p) != kPcapMagic) {
    rep.bytes_discarded = buf.size();
    rep.note = "bad magic";
    return records;
  }
  (void)read_u16(p);  // version major
  (void)read_u16(p);  // version minor
  (void)read_u32(p);  // thiszone
  (void)read_u32(p);  // sigfigs
  (void)read_u32(p);  // snaplen
  if (read_u32(p) != kLinkTypeRaw) {
    rep.bytes_discarded = buf.size();
    rep.note = "unexpected link type";
    return records;
  }
  rep.header_valid = true;

  while (p < end) {
    if (static_cast<std::size_t>(end - p) < 16) {
      rep.truncated = true;
      rep.bytes_discarded += static_cast<std::size_t>(end - p);
      if (rep.note.empty()) rep.note = "truncated record header";
      break;
    }
    const std::uint32_t sec = read_u32(p);
    const std::uint32_t usec = read_u32(p);
    const std::uint32_t incl = read_u32(p);
    const std::uint32_t orig = read_u32(p);
    if (static_cast<std::size_t>(end - p) < incl) {
      // The captured length points past EOF: the writer died
      // mid-record. Nothing after this point is trustworthy.
      rep.truncated = true;
      rep.bytes_discarded += static_cast<std::size_t>(end - p) + 16;
      if (rep.note.empty()) rep.note = "truncated packet";
      break;
    }
    const char* ip = p;
    p += incl;
    if (incl < 28 || (static_cast<std::uint8_t>(ip[0]) >> 4) != 4) {
      ++rep.records_skipped;  // headers unparseable or not IPv4
      if (rep.note.empty()) rep.note = "unparseable packet";
      continue;
    }
    if (orig < 28 || orig > 65535 || incl > orig) {
      // Would alias to a negative/implausible byte count; the frame
      // boundary held, so only this record is lost.
      ++rep.records_skipped;
      if (rep.note.empty()) rep.note = "implausible original length";
      continue;
    }
    const auto ttl = static_cast<std::uint8_t>(ip[8]);
    const char* addr_ptr = ip + 12;
    const net::Ipv4Addr src{read_be32(addr_ptr)};
    const net::Ipv4Addr dst{read_be32(addr_ptr)};

    PacketRecord r;
    r.ts = util::SimTime::nanos(static_cast<std::int64_t>(sec) *
                                    1'000'000'000 +
                                static_cast<std::int64_t>(usec) * 1'000);
    r.bytes = static_cast<std::int32_t>(orig);
    if (dst == probe) {
      r.dir = Direction::kRx;
      r.remote = src;
      r.ttl = ttl;
    } else if (src == probe) {
      r.dir = Direction::kTx;
      r.remote = dst;
      r.ttl = ttl;
    } else {
      // A sniffer on a shared segment records bystander traffic; it is
      // not part of this probe's view.
      ++rep.records_skipped;
      if (rep.note.empty()) rep.note = "packet does not involve probe";
      continue;
    }
    r.kind = r.bytes >= 1000 ? sim::PacketKind::kVideo
                             : sim::PacketKind::kSignaling;
    records.push_back(r);
  }
  rep.records_recovered = records.size();
  return records;
}

}  // namespace peerscope::trace
