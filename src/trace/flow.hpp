// Per-peer-pair flow aggregation.
//
// FlowStats is the unit of everything downstream: the contributor
// heuristic, the bandwidth classifier (min inter-packet gap over
// received video packets), the hop estimator (RX TTL), and all
// byte/peer preference counters.
//
// A FlowTable can be built two ways, with identical results:
//   - online, by feeding records as the simulation emits them
//     (memory stays O(#peers), used by the large benches);
//   - offline, from a stored/loaded record vector sorted by time
//     (the faithful "analyse the pcap" path, used by examples/tests).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/record.hpp"
#include "util/sim_time.hpp"

namespace peerscope::trace {

/// Quantile-style robust minimum: the smallest IPG after discarding the
/// `discard` smallest samples (capture duplication and reordering
/// fabricate a handful of near-zero gaps per flow; the discarded head
/// absorbs them). `smallest` holds the k smallest observed gaps in
/// ascending order with int64-max padding; `samples` is the total gap
/// count. Returns int64 max when no gap survives.
[[nodiscard]] std::int64_t robust_min_ipg(
    std::span<const std::int64_t> smallest, std::uint64_t samples,
    int discard);

struct FlowStats {
  net::Ipv4Addr remote;

  std::uint64_t rx_pkts = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_pkts = 0;
  std::uint64_t tx_bytes = 0;

  std::uint64_t rx_video_pkts = 0;
  std::uint64_t rx_video_bytes = 0;
  std::uint64_t tx_video_pkts = 0;
  std::uint64_t tx_video_bytes = 0;

  /// Minimum gap between consecutive received video packets, the
  /// packet-pair bottleneck signal. int64 max when < 2 video packets.
  std::int64_t min_rx_video_ipg_ns = std::numeric_limits<std::int64_t>::max();

  /// The k smallest RX video IPGs in ascending order (int64-max
  /// padded), for the duplication/reordering-robust estimator.
  static constexpr int kIpgTrack = 5;
  std::array<std::int64_t, kIpgTrack> smallest_rx_ipgs{
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max()};
  /// Total RX video IPG samples observed (rx_video_pkts - 1 per
  /// contiguous run).
  std::uint64_t rx_ipg_samples = 0;
  /// Robust min IPG: see robust_min_ipg(). With discard <= 0 this is
  /// exactly min_rx_video_ipg_ns.
  [[nodiscard]] std::int64_t min_ipg_after_discard(int discard) const {
    if (discard <= 0) return min_rx_video_ipg_ns;
    return robust_min_ipg(smallest_rx_ipgs, rx_ipg_samples, discard);
  }

  /// TTL observed on received packets (stable per path in the model;
  /// the last observation is kept).
  std::uint8_t rx_ttl = 0;
  bool saw_rx = false;

  /// Misra–Gries majority tracking over RX TTL values: under
  /// corruption, a handful of flipped TTL bytes must not move the hop
  /// estimate the way last-seen does. On a clean trace the mode equals
  /// rx_ttl.
  std::array<std::uint8_t, 3> ttl_candidates{};
  std::array<std::int32_t, 3> ttl_counts{};
  [[nodiscard]] std::uint8_t rx_ttl_mode() const;

  util::SimTime first_ts = util::SimTime::max();
  util::SimTime last_ts = util::SimTime::zero();

  [[nodiscard]] bool has_min_ipg() const {
    return min_rx_video_ipg_ns !=
           std::numeric_limits<std::int64_t>::max();
  }
};

/// All flows observed at one probe, keyed by remote address.
class FlowTable {
 public:
  explicit FlowTable(net::Ipv4Addr probe) : probe_(probe) {}

  [[nodiscard]] net::Ipv4Addr probe() const { return probe_; }

  /// Online update with one record. Records for the same remote must
  /// arrive in non-decreasing timestamp order for the IPG tracking to
  /// match the offline path (the simulator guarantees this per remote).
  void add(const PacketRecord& record);

  /// Offline build: sorts a copy of `records` by time and feeds it.
  [[nodiscard]] static FlowTable from_records(
      net::Ipv4Addr probe, std::span<const PacketRecord> records);

  [[nodiscard]] const FlowStats* find(net::Ipv4Addr remote) const;
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  [[nodiscard]] const std::unordered_map<net::Ipv4Addr, FlowStats>& flows()
      const {
    return flows_;
  }

  /// Totals over all flows (Table II inputs).
  [[nodiscard]] std::uint64_t total_rx_bytes() const { return total_rx_bytes_; }
  [[nodiscard]] std::uint64_t total_tx_bytes() const { return total_tx_bytes_; }
  [[nodiscard]] std::uint64_t total_rx_pkts() const { return total_rx_pkts_; }
  [[nodiscard]] std::uint64_t total_tx_pkts() const { return total_tx_pkts_; }

 private:
  net::Ipv4Addr probe_;
  std::unordered_map<net::Ipv4Addr, FlowStats> flows_;
  // Last RX video timestamp per remote, for the online IPG update.
  std::unordered_map<net::Ipv4Addr, util::SimTime> last_rx_video_;
  std::uint64_t total_rx_bytes_ = 0;
  std::uint64_t total_tx_bytes_ = 0;
  std::uint64_t total_rx_pkts_ = 0;
  std::uint64_t total_tx_pkts_ = 0;
};

}  // namespace peerscope::trace
