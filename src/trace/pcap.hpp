// pcap export: writes probe traces as standard libpcap capture files
// (LINKTYPE_RAW, synthetic IPv4/UDP headers) so they can be opened with
// tcpdump/wireshark — the same tooling the paper's authors used on the
// originals. Only headers are materialised (payload bytes are zeroed
// and snapped away); sizes, addresses, TTLs and timestamps are exact.
#pragma once

#include <filesystem>
#include <vector>

#include "net/ipv4.hpp"
#include "trace/record.hpp"
#include "trace/salvage.hpp"

namespace peerscope::trace {

struct PcapOptions {
  /// UDP port the synthetic P2P-TV application speaks on.
  std::uint16_t app_port = 4004;
  /// Bytes of each packet actually stored (headers need 28).
  std::uint32_t snaplen = 28;
};

/// Writes `records` (a probe's capture) as a pcap file. RX records
/// become remote->probe datagrams carrying the observed TTL; TX records
/// become probe->remote datagrams with the initial TTL.
void write_pcap(const std::filesystem::path& path, net::Ipv4Addr probe,
                const std::vector<PacketRecord>& records,
                const PcapOptions& options = {});

/// Minimal reader for round-trip tests: parses a file produced by
/// write_pcap (LINKTYPE_RAW, IPv4/UDP) back into records. Throws on
/// malformed input.
[[nodiscard]] std::vector<PacketRecord> read_pcap(
    const std::filesystem::path& path, net::Ipv4Addr probe);

/// Salvage-mode pcap reader: recovers every parseable packet involving
/// `probe` instead of throwing. Non-IPv4 and foreign packets are
/// counted and skipped; a truncated tail stops parsing with the valid
/// prefix kept. Only failure to open the file throws.
[[nodiscard]] std::vector<PacketRecord> read_pcap_salvage(
    const std::filesystem::path& path, net::Ipv4Addr probe,
    SalvageReport* report = nullptr);

/// RFC 1071 checksum over a header (for tests and the writer).
[[nodiscard]] std::uint16_t ipv4_header_checksum(
    const std::uint8_t* header, std::size_t length);

}  // namespace peerscope::trace
