#include "exp/sensitivity.hpp"

namespace peerscope::exp {

namespace {

void fold_cell(CellDistribution& dist, const aware::AwarenessCell& cell) {
  if (cell.b_prime_pct) dist.b_prime.add(*cell.b_prime_pct);
  if (cell.p_prime_pct) dist.p_prime.add(*cell.p_prime_pct);
  if (cell.b_pct) dist.b.add(*cell.b_pct);
  if (cell.p_pct) dist.p.add(*cell.p_pct);
}

}  // namespace

SensitivityResult run_sensitivity(const net::AsTopology& topo,
                                  const p2p::SystemProfile& profile,
                                  util::SimTime duration,
                                  std::span<const std::uint64_t> seeds,
                                  util::ThreadPool& pool) {
  std::vector<RunSpec> specs;
  specs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    RunSpec spec;
    spec.profile = profile;
    spec.seed = seed;
    spec.duration = duration;
    specs.push_back(std::move(spec));
  }
  const auto results = run_experiments(topo, specs, pool);

  SensitivityResult out;
  out.app = profile.name;
  out.replications = results.size();
  out.metrics.resize(5);

  for (const auto& result : results) {
    const auto rows = aware::awareness_table(result.observations);
    for (std::size_t m = 0; m < rows.size(); ++m) {
      out.metrics[m].metric = rows[m].metric;
      fold_cell(out.metrics[m].download, rows[m].download);
      fold_cell(out.metrics[m].upload, rows[m].upload);
    }
    out.self_bias_bytes_pct.add(
        aware::self_bias(result.observations).contributors_bytes_pct);
    const auto summary = aware::summarize(result.observations);
    out.rx_kbps_mean.add(summary.rx_kbps_mean);
    out.tx_kbps_mean.add(summary.tx_kbps_mean);
  }
  return out;
}

}  // namespace peerscope::exp
