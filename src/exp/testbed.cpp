#include "exp/testbed.hpp"

#include <map>
#include <set>
#include <sstream>

namespace peerscope::exp {

Testbed Testbed::table1() {
  Testbed tb;
  tb.probes_ = p2p::table1_probes();
  return tb;
}

std::size_t Testbed::site_count() const {
  std::set<std::string> sites;
  for (const auto& p : probes_) sites.insert(p.site);
  return sites.size();
}

std::size_t Testbed::institution_as_count() const {
  std::set<std::uint32_t> ases;
  for (const auto& p : probes_) {
    if (p.as.value() < net::refas::kHomeIspFirst.value()) {
      ases.insert(p.as.value());
    }
  }
  return ases.size();
}

std::size_t Testbed::home_as_count() const {
  std::set<std::uint32_t> ases;
  for (const auto& p : probes_) {
    if (p.as.value() >= net::refas::kHomeIspFirst.value()) {
      ases.insert(p.as.value());
    }
  }
  return ases.size();
}

std::size_t Testbed::home_host_count() const {
  std::size_t n = 0;
  for (const auto& p : probes_) {
    if (p.access.kind != net::AccessKind::kLan) ++n;
  }
  return n;
}

std::vector<TestbedRow> Testbed::rows(const net::AsTopology& topo) const {
  // Group consecutive probes with identical (site, as, access, flags)
  // into one printed row, like the published table.
  std::vector<TestbedRow> out;
  std::size_t i = 0;
  while (i < probes_.size()) {
    std::size_t j = i;
    const auto& a = probes_[i];
    while (j + 1 < probes_.size()) {
      const auto& b = probes_[j + 1];
      if (b.site != a.site || b.as != a.as ||
          b.access.kind != a.access.kind ||
          b.access.up_bps != a.access.up_bps ||
          b.access.down_bps != a.access.down_bps ||
          b.access.nat != a.access.nat ||
          b.access.firewall != a.access.firewall) {
        break;
      }
      ++j;
    }
    TestbedRow row;
    std::ostringstream hosts;
    if (i == j) {
      hosts << a.host_number;
    } else {
      hosts << a.host_number << '-' << probes_[j].host_number;
    }
    row.hosts = hosts.str();
    row.site = a.site;
    row.country = topo.country_of_as(a.as).to_string();
    row.as_label = a.as.value() >= net::refas::kHomeIspFirst.value()
                       ? "ASx"
                       : a.as.to_string();
    if (a.access.kind == net::AccessKind::kLan) {
      row.access = "high-bw";
    } else {
      std::ostringstream acc;
      acc << net::to_string(a.access.kind) << ' '
          << static_cast<double>(a.access.down_bps) / 1e6 << '/'
          << static_cast<double>(a.access.up_bps) / 1e6;
      row.access = acc.str();
    }
    row.nat = a.access.nat;
    row.firewall = a.access.firewall;
    out.push_back(std::move(row));
    i = j + 1;
  }
  return out;
}

}  // namespace peerscope::exp
