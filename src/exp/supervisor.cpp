#include "exp/supervisor.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <iostream>
#include <optional>
#include <thread>

#include "exp/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/cancel.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace peerscope::exp {

std::chrono::milliseconds backoff_delay(
    std::chrono::milliseconds base, std::uint64_t spec_seed, int attempt,
    const std::function<double(std::uint64_t, int)>& jitter) {
  double factor = 0.0;
  if (jitter) {
    factor = jitter(spec_seed, attempt);
  } else {
    constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
    util::Rng rng{spec_seed ^
                  (kGolden * static_cast<std::uint64_t>(attempt))};
    factor = 0.75 + 0.5 * rng.uniform01();
  }
  const double scale = static_cast<double>(1LL << std::min(attempt - 1, 16));
  const double ms = static_cast<double>(base.count()) * scale * factor;
  return std::chrono::milliseconds{static_cast<std::int64_t>(ms)};
}

namespace {

/// Sleeps in short slices so pool teardown (shutdown_token) cuts a
/// pending backoff short instead of stalling the destructor.
void interruptible_sleep(std::chrono::milliseconds total,
                         const util::CancelToken& shutdown) {
  using namespace std::chrono;
  const auto deadline = steady_clock::now() + total;
  while (steady_clock::now() < deadline) {
    if (shutdown.cancelled()) return;
    const auto left =
        duration_cast<milliseconds>(deadline - steady_clock::now());
    std::this_thread::sleep_for(std::min(left, milliseconds{20}));
  }
}

}  // namespace

const char* to_string(RunState state) {
  switch (state) {
    case RunState::kOk:
      return "ok";
    case RunState::kFailed:
      return "failed";
    case RunState::kTimedOut:
      return "timed_out";
    case RunState::kSkipped:
      return "skipped";
  }
  return "unknown";
}

std::size_t BatchOutcome::succeeded() const {
  return static_cast<std::size_t>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunStatus& r) { return r.ok(); }));
}

std::size_t BatchOutcome::failed() const {
  return runs.size() - succeeded();
}

BatchOutcome supervise_runs(const net::AsTopology& topo,
                            std::span<const RunSpec> specs,
                            util::ThreadPool& pool,
                            const SupervisorConfig& config) {
  obs::set_gauge("exp.pool_workers",
                 static_cast<double>(pool.worker_count()));
  const auto run_fn =
      config.run_fn
          ? config.run_fn
          : [](const net::AsTopology& t, const RunSpec& s) {
              return run_experiment(t, s);
            };

  const bool journaled = !config.journal.empty();
  const std::filesystem::path blob_dir =
      journaled ? std::filesystem::path{config.journal.string() + ".d"}
                : std::filesystem::path{};
  std::map<std::string, JournalEntry> replayed;
  if (journaled) {
    if (config.resume) {
      replayed = journal_replay(config.journal);
      if (!std::filesystem::exists(config.journal)) {
        journal_begin(config.journal);
      }
    } else {
      journal_begin(config.journal);
    }
    std::filesystem::create_directories(blob_dir);
  }

  BatchOutcome outcome;
  outcome.runs.resize(specs.size());
  util::Mutex journal_mutex;

  // Live introspection: a LiveRun per spec whenever something will
  // observe it — the status reporter, the SLO watchdog, or both. With
  // neither configured no LiveRun exists and the run loop is
  // byte-for-byte the old one.
  std::optional<StatusReporter> reporter;
  if (!config.status_path.empty()) {
    reporter.emplace(config.status_path);
  }
  std::deque<LiveRun> slo_runs;  // watchdog-only storage (no reporter)
  std::vector<LiveRun*> lives(specs.size(), nullptr);
  if (reporter.has_value() || config.slo.enabled()) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const double duration_s = specs[i].duration.seconds();
      lives[i] = reporter.has_value()
                     ? &reporter->add_run(spec_id(specs[i]), duration_s)
                     : &slo_runs.emplace_back(spec_id(specs[i]), duration_s);
    }
  }
  if (reporter.has_value()) reporter->start();

  std::vector<std::future<void>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    RunStatus& status = outcome.runs[i];
    const RunSpec& spec = specs[i];
    LiveRun* const live = lives[i];
    status.spec = spec_id(spec);

    // Resume: a journaled "ok" whose blob still loads is not rerun.
    // Anything else — failed, timed out, or an ok entry whose blob was
    // lost — goes through the full attempt chain again.
    if (const auto it = replayed.find(status.spec); it != replayed.end()) {
      if (it->second.state == "ok" && !it->second.artifact.empty()) {
        if (auto result = read_run_result(blob_dir / it->second.artifact)) {
          status.state = RunState::kSkipped;
          status.attempts = 0;
          status.result = std::move(result);
          if (live != nullptr) {
            live->state.store(static_cast<int>(RunState::kSkipped),
                              std::memory_order_release);
          }
          if (obs::enabled()) obs::counter("exp.runs_skipped").add();
          continue;
        }
      }
    }

    futures.push_back(pool.submit([&topo, &spec, &status, &run_fn, &config,
                                   &pool, &journal_mutex, &blob_dir,
                                   journaled, live] {
      const int max_attempts = 1 + std::max(0, config.retries);
      for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        PEERSCOPE_TRACE_INSTANT("exp.run_attempt");
        util::CancelToken token;
        if (config.deadline_s > 0) {
          token.set_deadline_after(std::chrono::nanoseconds{
              static_cast<std::int64_t>(config.deadline_s * 1e9)});
        }
        RunSpec attempt_spec = spec;
        attempt_spec.cancel = &token;
        std::optional<obs::Watchdog> watchdog;
        if (live != nullptr) {
          live->progress.reset();
          live->attempts.store(attempt, std::memory_order_relaxed);
          live->state.store(LiveRun::kRunning, std::memory_order_release);
          attempt_spec.progress = &live->progress;
          if (config.slo.enabled()) {
            watchdog.emplace(config.slo, &live->progress, &token);
          }
        }
        try {
          RunResult result = run_fn(topo, attempt_spec);
          status.state = RunState::kOk;
          status.attempts = attempt;
          status.error.clear();
          status.result = std::move(result);
          if (obs::enabled()) obs::counter("exp.runs_ok").add();
          break;
        } catch (const util::Cancelled& cancelled) {
          if (watchdog.has_value()) {
            watchdog->stop();
            if (watchdog->tripped()) {
              // The watchdog cancelled this run, not the deadline: a
              // sustained SLO violation is terminal (the next attempt
              // would violate the same objective) and distinguishable
              // downstream — the CLI maps this error prefix to exit
              // code 10.
              status.state = RunState::kFailed;
              status.attempts = attempt;
              status.error = "slo violation: " + watchdog->reason();
              PEERSCOPE_TRACE_INSTANT("exp.run_failed");
              if (obs::enabled()) obs::counter("exp.runs_failed").add();
              break;
            }
          }
          // A deadline overrun is a property of the spec at this
          // scale, not a transient fault: retrying would burn another
          // full deadline for the same outcome, so report and move on.
          status.state = RunState::kTimedOut;
          status.attempts = attempt;
          status.error = cancelled.what();
          PEERSCOPE_TRACE_INSTANT("exp.run_timed_out");
          if (obs::enabled()) obs::counter("exp.runs_timed_out").add();
          break;
        } catch (const std::exception& error) {
          status.state = RunState::kFailed;
          status.attempts = attempt;
          status.error = error.what();
          if (attempt < max_attempts) {
            if (obs::enabled()) obs::counter("exp.run_retries").add();
            // Move this attempt's events into the central store so
            // the ring — and therefore a later flight dump — holds
            // only the final attempt.
            obs::trace_flush();
            interruptible_sleep(
                backoff_delay(config.backoff_base, spec.seed, attempt,
                              config.backoff_jitter),
                pool.shutdown_token());
          } else {
            PEERSCOPE_TRACE_INSTANT("exp.run_failed");
            if (obs::enabled()) obs::counter("exp.runs_failed").add();
          }
        }
      }

      if (live != nullptr) {
        live->state.store(static_cast<int>(status.state),
                          std::memory_order_release);
      }

      // Flight recorder: dump the ring tail of a run that just died,
      // then flush. A successful run_experiment already flushed its
      // own events; the flush here covers failed runs and custom
      // run_fn hooks so event accounting stays per-run at any pool
      // size.
      const bool terminal_failure = status.state == RunState::kFailed ||
                                    status.state == RunState::kTimedOut;
      if (journaled && terminal_failure &&
          config.flight_recorder_events > 0) {
        if (obs::TraceRecorder* recorder = obs::tracer()) {
          try {
            obs::TraceSnapshot tail;
            tail.events =
                recorder->recent_events(config.flight_recorder_events);
            obs::write_trace_json(blob_dir / spec_flight_name(status.spec),
                                  tail);
          } catch (const std::exception& error) {
            std::cerr << "supervisor: flight-recorder dump failed for "
                      << status.spec << ": " << error.what() << '\n';
          }
        }
      }
      obs::trace_flush();

      if (!journaled) return;
      JournalEntry entry;
      entry.spec = status.spec;
      entry.state = to_string(status.state);
      entry.attempts = status.attempts;
      entry.error = status.error;
      try {
        if (status.state == RunState::kOk) {
          entry.artifact = spec_artifact_name(status.spec);
          // Blob first, journal line second: an "ok" line on disk
          // always points at a complete, already-renamed blob.
          // NOLINTNEXTLINE(bugprone-unchecked-optional-access): state == kOk implies result is engaged (set together in the run loop)
          write_run_result(blob_dir / entry.artifact, *status.result);
        }
        const util::MutexLock lock{journal_mutex};
        journal_append(config.journal, entry);
      } catch (const std::exception& error) {
        // Journal trouble must not demote a completed run: the result
        // is in memory and this batch's report still includes it. The
        // spec merely loses resumability.
        std::cerr << "supervisor: journal write failed for " << status.spec
                  << ": " << error.what() << '\n';
      }
    }));
  }

  // Drain everything; task bodies capture their own failures, so a
  // throw here is an infrastructure bug worth surfacing.
  for (auto& f : futures) f.get();
  if (reporter.has_value()) reporter->stop();  // final "done" snapshot
  return outcome;
}

}  // namespace peerscope::exp
