// Multi-seed sensitivity analysis: every Table IV statistic as a
// mean ± stddev over independent experiment replications. The paper
// reports single numbers from multiple 1-hour captures; this module
// quantifies how much of each statistic is signal vs run-to-run noise
// at the reproduction scale.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace peerscope::exp {

struct CellDistribution {
  util::OnlineStats b_prime, p_prime, b, p;
};

struct MetricDistribution {
  aware::Metric metric{};
  CellDistribution download;
  CellDistribution upload;
};

struct SensitivityResult {
  std::string app;
  std::size_t replications = 0;
  std::vector<MetricDistribution> metrics;  // BW, AS, CC, NET, HOP
  util::OnlineStats self_bias_bytes_pct;
  util::OnlineStats rx_kbps_mean;
  util::OnlineStats tx_kbps_mean;
};

/// Runs the profile once per seed (concurrently on `pool`) and folds
/// the awareness tables into per-cell distributions.
[[nodiscard]] SensitivityResult run_sensitivity(
    const net::AsTopology& topo, const p2p::SystemProfile& profile,
    util::SimTime duration, std::span<const std::uint64_t> seeds,
    util::ThreadPool& pool);

}  // namespace peerscope::exp
