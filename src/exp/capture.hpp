// Offline capture loading with diagnostics.
//
// `peerscope analyze DIR` used to die with an unhandled exception on a
// missing, empty, or half-written capture directory. This module owns
// the directory-level validation and trace loading so the CLI can map
// every malformed-capture condition to one clean diagnostic and a
// distinct exit code, and so the conditions are unit-testable without
// spawning the binary. Salvage mode additionally tolerates individual
// lost or corrupt traces: the affected probe contributes no
// observations and the analysis aggregates over what survived —
// matching the paper's own partially-lost campaign.
#pragma once

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "aware/experiment.hpp"

namespace peerscope::exp {

/// A capture directory that cannot be analyzed at all: missing or not
/// a directory, no/invalid experiment.meta, or (outside salvage mode)
/// an unreadable trace. The message is the user-facing diagnostic.
class CaptureError : public std::runtime_error {
 public:
  explicit CaptureError(const std::string& what)
      : std::runtime_error(what) {}
};

struct CaptureLoad {
  aware::ExperimentObservations data;
  /// Probes whose trace file was missing or unrecoverable (salvage
  /// mode only — outside it, these throw). They keep their slot in
  /// `data.per_probe` as an empty observation list so probe/vantage
  /// alignment is preserved.
  std::size_t probes_lost = 0;
  /// Salvage totals across all traces.
  std::size_t records_skipped = 0;
  /// One human-readable note per anomaly, for the CLI to print.
  std::vector<std::string> notes;
  [[nodiscard]] bool clean() const {
    return probes_lost == 0 && records_skipped == 0 && notes.empty();
  }
};

/// Loads a capture directory (experiment.meta + per-probe traces) and
/// joins it into analysis-ready observations. Throws CaptureError with
/// a one-line diagnostic when the directory cannot be analyzed; in
/// salvage mode, per-trace damage is recorded in the returned notes
/// instead of thrown.
[[nodiscard]] CaptureLoad load_capture(const std::filesystem::path& dir,
                                       bool salvage);

}  // namespace peerscope::exp
