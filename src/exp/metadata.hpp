// Experiment metadata persistence.
//
// Trace files alone are not enough to reproduce the analysis: the
// paper's pipeline also needs the probe set W and the IP -> AS/CC
// database that were in effect. This sidecar file (plain text, one
// token-separated record per line) captures both, so `peerscope analyze`
// can rerun the complete methodology on stored traces.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "aware/experiment.hpp"
#include "net/registry.hpp"
#include "p2p/churn.hpp"
#include "sim/impairment.hpp"
#include "util/sim_time.hpp"

namespace peerscope::exp {

struct ExperimentMetadata {
  std::string app;
  util::SimTime duration{0};
  std::vector<aware::ProbeMeta> probes;
  std::vector<net::NetRegistry::Announcement> announcements;
  /// Faults injected during the capture, if any. Written to the sidecar
  /// only when enabled, so clean-run sidecars are byte-identical to
  /// those of earlier versions; an analysis reading the traces can tell
  /// measured degradation from injected degradation.
  sim::ImpairmentSpec impairment;
  p2p::ChurnSpec churn;

  /// Rebuilds the registry for offline IP joins.
  [[nodiscard]] net::NetRegistry build_registry() const;
  /// The probe address set W.
  [[nodiscard]] std::unordered_set<net::Ipv4Addr> napa_set() const;
  /// Conventional trace-file name for a probe label.
  [[nodiscard]] static std::string trace_filename(const std::string& label) {
    return label + ".psct";
  }
};

void write_metadata(const std::filesystem::path& path,
                    const ExperimentMetadata& meta);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] ExperimentMetadata read_metadata(
    const std::filesystem::path& path);

}  // namespace peerscope::exp
