// The NAPA-WINE testbed of Table I, with site-level reporting.
#pragma once

#include <string>
#include <vector>

#include "p2p/population.hpp"

namespace peerscope::exp {

/// A printable row of Table I (one or more hosts sharing site/AS/access).
struct TestbedRow {
  std::string hosts;   // "1-4", "5", ...
  std::string site;
  std::string country;
  std::string as_label;  // "AS1" or "ASx" for home ISPs
  std::string access;    // "high-bw", "DSL 6/0.512", ...
  bool nat = false;
  bool firewall = false;
};

class Testbed {
 public:
  /// Builds the published Table I testbed.
  [[nodiscard]] static Testbed table1();

  [[nodiscard]] const std::vector<p2p::ProbeSpec>& probes() const {
    return probes_;
  }
  [[nodiscard]] std::size_t host_count() const { return probes_.size(); }
  [[nodiscard]] std::size_t site_count() const;
  [[nodiscard]] std::size_t institution_as_count() const;
  [[nodiscard]] std::size_t home_as_count() const;
  [[nodiscard]] std::size_t home_host_count() const;

  /// Rows grouped like the published table.
  [[nodiscard]] std::vector<TestbedRow> rows(
      const net::AsTopology& topo) const;

 private:
  std::vector<p2p::ProbeSpec> probes_;
};

}  // namespace peerscope::exp
