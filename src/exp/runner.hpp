// Experiment runner: simulate -> capture -> extract observations.
//
// One RunSpec per (application, seed); run_experiments executes several
// concurrently on a thread pool (each Swarm is fully self-contained),
// which is how the bench binaries produce all three applications' data
// in one pass.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "aware/experiment.hpp"
#include "net/topology.hpp"
#include "p2p/swarm.hpp"
#include "util/thread_pool.hpp"

namespace peerscope::exp {

/// The engine's cancellation poll cadence, re-exported where the
/// supervisor's deadline handling lives: once a CancelToken trips (or
/// its deadline passes), the event loop notices within at most this
/// many executed events — the bound
/// tests/exp/supervisor_test.cpp:CancelPollStride pins. One constant,
/// two names: sim::Engine::kCancelStride is the implementation,
/// this alias is the supervision-facing contract.
inline constexpr std::uint64_t kCancelPollStride =
    sim::Engine::kCancelStride;

struct RunSpec {
  p2p::SystemProfile profile;
  std::uint64_t seed = 42;
  util::SimTime duration = util::SimTime::seconds(300);
  bool keep_records = false;
  /// Fault injection (both disabled by default — the clean
  /// reproduction runs are byte-identical with or without this field).
  sim::ImpairmentSpec impairment;
  p2p::ChurnSpec churn;
  /// Discovery-subsystem configuration (backend selection, tracker
  /// outages, failover policy, NAT matrix, session dynamics). Disabled
  /// by default; when a rejoin deadline is set and any swarm misses it
  /// run_experiment throws DiscoveryDegraded.
  p2p::DiscoverySpec discovery;
  /// Cooperative cancellation token, polled between simulation events;
  /// run_experiment throws util::Cancelled when it trips. The
  /// supervisor arms one per attempt to enforce --deadline. nullptr =
  /// uncancellable. Must outlive the run.
  const util::CancelToken* cancel = nullptr;
  /// Live progress sink (obs/watchdog.hpp): run_experiment marks it
  /// active for the duration of the simulation and the engine/swarm
  /// publish events, sim time and the rejoin p99 into it. nullptr (the
  /// default) leaves the hot path untouched. Must outlive the run.
  obs::RunProgress* progress = nullptr;
};

struct RunResult {
  aware::ExperimentObservations observations;
  p2p::Swarm::Counters counters;
};

/// A run that completed the simulation but missed its discovery
/// re-join SLO: with a configured rejoin_deadline, at least one probe
/// failed to re-establish a partner set in time after a tracker
/// outage / zap. Distinct from a crash — the supervisor records it as
/// a failed run, and the CLI maps the message prefix to its own
/// "degraded" exit code.
class DiscoveryDegraded : public std::runtime_error {
 public:
  explicit DiscoveryDegraded(std::size_t rejoins_missed)
      : std::runtime_error("discovery degraded: " +
                           std::to_string(rejoins_missed) +
                           " re-join(s) missed the deadline") {}
};

/// Runs one experiment on the given (finalized) topology with the
/// Table I testbed and returns the extracted observations. Throws
/// std::invalid_argument for a malformed spec (non-positive duration)
/// and util::Cancelled when the spec's cancellation token trips.
[[nodiscard]] RunResult run_experiment(const net::AsTopology& topo,
                                       const RunSpec& spec);

/// Extraction only (for callers that keep the Swarm alive, e.g. to
/// export trace files afterwards).
[[nodiscard]] aware::ExperimentObservations extract_observations(
    const p2p::Swarm& swarm);

/// Runs several experiments concurrently; results align with `specs`.
/// Every future is drained before control returns: a throwing spec
/// never abandons its siblings mid-flight (their work completes and
/// their counters/sidecar entries land), then the first exception in
/// spec order is rethrown. Callers who need the surviving results
/// rather than all-or-nothing semantics use supervise_runs
/// (exp/supervisor.hpp).
[[nodiscard]] std::vector<RunResult> run_experiments(
    const net::AsTopology& topo, std::span<const RunSpec> specs,
    util::ThreadPool& pool);

}  // namespace peerscope::exp
