#include "exp/status.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "exp/supervisor.hpp"
#include "util/atomic_file.hpp"

namespace peerscope::exp {

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string fixed3(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return buf;
}

const char* state_label(int state) {
  switch (state) {
    case LiveRun::kPending:
      return "pending";
    case LiveRun::kRunning:
      return "running";
    default:
      return to_string(static_cast<RunState>(state));
  }
}

// Own-dialect readers (the same shape journal.cpp uses): extract one
// scalar field from a document StatusReporter itself wrote.

std::optional<std::string> string_field(std::string_view doc,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto start = doc.find(needle);
  if (start == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = start + needle.size(); i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '"') return out;
    if (c == '\\') {
      if (i + 1 >= doc.size()) return std::nullopt;
      const char esc = doc[++i];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 'u': {
          if (i + 4 >= doc.size()) return std::nullopt;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = doc[++i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return std::nullopt;
            }
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return std::nullopt;
      }
    } else {
      out += c;
    }
  }
  return std::nullopt;
}

std::optional<double> number_field(std::string_view doc,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto start = doc.find(needle);
  if (start == std::string_view::npos) return std::nullopt;
  const std::size_t i = start + needle.size();
  if (i >= doc.size()) return std::nullopt;
  const std::string number{doc.substr(i, 32)};
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str()) return std::nullopt;
  return value;
}

}  // namespace

StatusReporter::StatusReporter(std::filesystem::path path,
                               std::chrono::milliseconds poll)
    : path_(std::move(path)), poll_(poll) {
  if (poll_.count() < 1) poll_ = std::chrono::milliseconds{1};
}

StatusReporter::~StatusReporter() { stop(); }

LiveRun& StatusReporter::add_run(std::string spec_id,
                                 double run_duration_s) {
  if (started_) {
    throw std::logic_error("StatusReporter: add_run after start");
  }
  return runs_.emplace_back(std::move(spec_id), run_duration_s);
}

void StatusReporter::start() {
  if (started_) return;
  started_ = true;
  baselines_.assign(runs_.size(), Baseline{});
  try {
    util::write_file_atomic(path_, render("running"), /*durable=*/false);
  } catch (const std::exception& error) {
    // Status is advisory: a broken status path must not kill the batch.
    std::cerr << "status: cannot write " << path_.string() << ": "
              << error.what() << '\n';
  }
  thread_ = std::thread([this] { run(); });
}

void StatusReporter::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  started_ = false;
  try {
    util::write_file_atomic(path_, render("done"), /*durable=*/false);
  } catch (const std::exception& error) {
    std::cerr << "status: cannot write " << path_.string() << ": "
              << error.what() << '\n';
  }
}

void StatusReporter::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(poll_);
    if (stop_.load(std::memory_order_relaxed)) break;
    try {
      util::write_file_atomic(path_, render("running"), /*durable=*/false);
    } catch (const std::exception&) {
      // Transient (io_faults, full disk): the next tick retries.
    }
  }
}

std::string StatusReporter::render(std::string_view phase) {
  const auto now = std::chrono::steady_clock::now();
  std::string out = "{\"schema\":";
  append_json_string(out, kStatusSchema);
  out += ",\"phase\":";
  append_json_string(out, phase);
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    LiveRun& live = runs_[i];
    Baseline& base = baselines_[i];
    const int state = live.state.load(std::memory_order_acquire);
    const std::uint64_t events =
        live.progress.events.load(std::memory_order_relaxed);
    const std::int64_t sim_ns =
        live.progress.sim_time_ns.load(std::memory_order_relaxed);
    // Rates come from deltas between renders; an attempt restart
    // (progress reset) shows up as a backwards step and re-primes.
    if (base.primed && events >= base.events && sim_ns >= base.sim_ns) {
      const double dt = std::chrono::duration<double>(now - base.at).count();
      if (dt > 0) {
        base.events_per_s =
            static_cast<double>(events - base.events) / dt;
        base.sim_rate =
            static_cast<double>(sim_ns - base.sim_ns) / 1e9 / dt;
      }
    } else {
      base.events_per_s = 0;
      base.sim_rate = 0;
    }
    base.events = events;
    base.sim_ns = sim_ns;
    base.at = now;
    base.primed = true;

    double eta_s = -1;
    if (state == LiveRun::kRunning && base.sim_rate > 0 &&
        live.duration_s > 0) {
      const double remaining =
          live.duration_s - static_cast<double>(sim_ns) / 1e9;
      eta_s = remaining > 0 ? remaining / base.sim_rate : 0;
    }

    if (i > 0) out += ',';
    out += "{\"spec\":";
    append_json_string(out, live.spec);
    out += ",\"state\":";
    append_json_string(out, state_label(state));
    out += ",\"attempts\":" +
           std::to_string(live.attempts.load(std::memory_order_relaxed));
    out += ",\"events\":" + std::to_string(events);
    out += ",\"sim_time_s\":" + fixed3(static_cast<double>(sim_ns) / 1e9);
    out += ",\"events_per_s\":" + fixed3(base.events_per_s);
    out += ",\"eta_s\":" + fixed3(eta_s);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::optional<StatusView> parse_status(std::string_view json) {
  if (string_field(json, "schema") != std::string{kStatusSchema}) {
    return std::nullopt;
  }
  StatusView view;
  const auto phase = string_field(json, "phase");
  if (!phase) return std::nullopt;
  view.phase = *phase;
  const auto runs_at = json.find("\"runs\":[");
  if (runs_at == std::string_view::npos) return std::nullopt;
  std::string_view rest = json.substr(runs_at + 8);
  // Run entries are flat objects (no nesting in our dialect): each one
  // spans exactly one {...}.
  while (true) {
    const auto open = rest.find('{');
    const auto close = rest.find('}');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      break;
    }
    const std::string_view entry = rest.substr(open, close - open + 1);
    StatusRunView run;
    const auto spec = string_field(entry, "spec");
    const auto state = string_field(entry, "state");
    const auto attempts = number_field(entry, "attempts");
    const auto events = number_field(entry, "events");
    const auto sim_time_s = number_field(entry, "sim_time_s");
    const auto events_per_s = number_field(entry, "events_per_s");
    const auto eta_s = number_field(entry, "eta_s");
    if (!spec || !state || !attempts || !events || !sim_time_s ||
        !events_per_s || !eta_s) {
      return std::nullopt;
    }
    run.spec = *spec;
    run.state = *state;
    run.attempts = static_cast<int>(*attempts);
    run.events = static_cast<std::uint64_t>(*events);
    run.sim_time_s = *sim_time_s;
    run.events_per_s = *events_per_s;
    run.eta_s = *eta_s;
    view.runs.push_back(std::move(run));
    rest = rest.substr(close + 1);
  }
  return view;
}

}  // namespace peerscope::exp
