#include "exp/capture.hpp"

#include <cstring>

#include "aware/observation.hpp"
#include "exp/metadata.hpp"
#include "trace/binary_format.hpp"
#include "trace/flow.hpp"
#include "trace/io.hpp"
#include "util/io_faults.hpp"

namespace peerscope::exp {

namespace {

[[noreturn]] void bad_capture(const std::filesystem::path& dir,
                              const std::string& what) {
  throw CaptureError("capture " + dir.string() + ": " + what);
}

/// True when `buf` leads with the PSBT magic: captures may mix
/// classic and binary traces per probe, so ingestion sniffs each
/// file rather than trusting a directory-wide convention.
[[nodiscard]] bool is_binary_trace(const std::string& buf) {
  std::uint32_t magic = 0;
  if (buf.size() < sizeof magic) return false;
  std::memcpy(&magic, buf.data(), sizeof magic);
  return magic == trace::kBinaryTraceMagic;
}

}  // namespace

CaptureLoad load_capture(const std::filesystem::path& dir, bool salvage) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    bad_capture(dir, "no such directory");
  }
  if (!std::filesystem::is_directory(dir, ec)) {
    bad_capture(dir, "not a directory");
  }
  const auto meta_path = dir / "experiment.meta";
  if (!std::filesystem::exists(meta_path, ec)) {
    if (std::filesystem::is_empty(dir, ec)) {
      bad_capture(dir, "directory is empty (no experiment.meta) — "
                       "was the capture interrupted before any run "
                       "completed?");
    }
    bad_capture(dir,
                "no experiment.meta (is this a capture directory?)");
  }

  ExperimentMetadata meta;
  try {
    meta = read_metadata(meta_path);
  } catch (const std::exception& error) {
    bad_capture(dir, std::string{"unreadable metadata: "} + error.what());
  }
  const auto registry = meta.build_registry();
  const auto napa = meta.napa_set();

  CaptureLoad load;
  load.data.app = meta.app;
  load.data.duration = meta.duration;
  load.data.probes = meta.probes;
  for (const auto& probe : meta.probes) {
    const auto path =
        dir / ExperimentMetadata::trace_filename(probe.label);
    const bool present = std::filesystem::exists(path, ec);
    trace::TraceFile file;
    if (salvage) {
      if (!present) {
        // Lost probe: keep its vantage slot, contribute nothing —
        // exactly how the paper handled probes whose captures died.
        ++load.probes_lost;
        load.notes.push_back("salvage " + path.filename().string() +
                             ": trace missing, probe excluded");
        load.data.per_probe.emplace_back();
        continue;
      }
      trace::SalvageReport report;
      const auto buf = util::io::read_file(path);
      if (!buf) {
        ++load.probes_lost;
        load.notes.push_back("salvage " + path.filename().string() +
                             ": trace unreadable, probe excluded");
        load.data.per_probe.emplace_back();
        continue;
      }
      file = is_binary_trace(*buf)
                 ? trace::parse_trace_binary_salvage(*buf, &report)
                 : trace::parse_trace_salvage(*buf, &report);
      if (!report.clean()) {
        load.records_skipped += report.records_skipped;
        load.notes.push_back(
            "salvage " + path.filename().string() + ": " +
            std::to_string(report.records_recovered) + " recovered, " +
            std::to_string(report.records_skipped) + " skipped, " +
            std::to_string(report.bytes_discarded) +
            " bytes discarded (" +
            (report.note.empty() ? "ok" : report.note) + ")");
        if (!report.header_valid) ++load.probes_lost;
      }
    } else {
      if (!present) {
        bad_capture(dir, "missing trace " + path.filename().string() +
                             " — partial capture? rerun with --salvage "
                             "to analyze what survived");
      }
      try {
        const auto buf = util::io::read_file(path);
        if (!buf) {
          throw std::runtime_error("read_trace: cannot open " +
                                   path.string());
        }
        file = is_binary_trace(*buf)
                   ? trace::parse_trace_binary(*buf, path.string())
                   : trace::parse_trace(*buf, path.string());
      } catch (const std::exception& error) {
        bad_capture(dir, std::string{error.what()} +
                             " — rerun with --salvage to analyze what "
                             "survived");
      }
    }
    load.data.per_probe.push_back(aware::extract_observations(
        trace::FlowTable::from_records(file.probe, file.records), registry,
        napa));
  }
  return load;
}

}  // namespace peerscope::exp
