#include "exp/capture.hpp"

#include "aware/observation.hpp"
#include "exp/metadata.hpp"
#include "trace/flow.hpp"
#include "trace/io.hpp"

namespace peerscope::exp {

namespace {

[[noreturn]] void bad_capture(const std::filesystem::path& dir,
                              const std::string& what) {
  throw CaptureError("capture " + dir.string() + ": " + what);
}

}  // namespace

CaptureLoad load_capture(const std::filesystem::path& dir, bool salvage) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    bad_capture(dir, "no such directory");
  }
  if (!std::filesystem::is_directory(dir, ec)) {
    bad_capture(dir, "not a directory");
  }
  const auto meta_path = dir / "experiment.meta";
  if (!std::filesystem::exists(meta_path, ec)) {
    if (std::filesystem::is_empty(dir, ec)) {
      bad_capture(dir, "directory is empty (no experiment.meta) — "
                       "was the capture interrupted before any run "
                       "completed?");
    }
    bad_capture(dir,
                "no experiment.meta (is this a capture directory?)");
  }

  ExperimentMetadata meta;
  try {
    meta = read_metadata(meta_path);
  } catch (const std::exception& error) {
    bad_capture(dir, std::string{"unreadable metadata: "} + error.what());
  }
  const auto registry = meta.build_registry();
  const auto napa = meta.napa_set();

  CaptureLoad load;
  load.data.app = meta.app;
  load.data.duration = meta.duration;
  load.data.probes = meta.probes;
  for (const auto& probe : meta.probes) {
    const auto path =
        dir / ExperimentMetadata::trace_filename(probe.label);
    const bool present = std::filesystem::exists(path, ec);
    trace::TraceFile file;
    if (salvage) {
      if (!present) {
        // Lost probe: keep its vantage slot, contribute nothing —
        // exactly how the paper handled probes whose captures died.
        ++load.probes_lost;
        load.notes.push_back("salvage " + path.filename().string() +
                             ": trace missing, probe excluded");
        load.data.per_probe.emplace_back();
        continue;
      }
      trace::SalvageReport report;
      file = trace::read_trace_salvage(path, &report);
      if (!report.clean()) {
        load.records_skipped += report.records_skipped;
        load.notes.push_back(
            "salvage " + path.filename().string() + ": " +
            std::to_string(report.records_recovered) + " recovered, " +
            std::to_string(report.records_skipped) + " skipped, " +
            std::to_string(report.bytes_discarded) +
            " bytes discarded (" +
            (report.note.empty() ? "ok" : report.note) + ")");
        if (!report.header_valid) ++load.probes_lost;
      }
    } else {
      if (!present) {
        bad_capture(dir, "missing trace " + path.filename().string() +
                             " — partial capture? rerun with --salvage "
                             "to analyze what survived");
      }
      try {
        file = trace::read_trace(path);
      } catch (const std::exception& error) {
        bad_capture(dir, std::string{error.what()} +
                             " — rerun with --salvage to analyze what "
                             "survived");
      }
    }
    load.data.per_probe.push_back(aware::extract_observations(
        trace::FlowTable::from_records(file.probe, file.records), registry,
        napa));
  }
  return load;
}

}  // namespace peerscope::exp
