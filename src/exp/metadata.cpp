#include "exp/metadata.hpp"

#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/io_faults.hpp"

namespace peerscope::exp {

namespace {
constexpr const char* kHeader = "peerscope-meta 1";

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw std::runtime_error("metadata " + path.string() + ": " + what);
}
}  // namespace

net::NetRegistry ExperimentMetadata::build_registry() const {
  net::NetRegistry registry;
  for (const auto& a : announcements) {
    registry.announce(a.prefix, a.as, a.country);
  }
  return registry;
}

std::unordered_set<net::Ipv4Addr> ExperimentMetadata::napa_set() const {
  std::unordered_set<net::Ipv4Addr> set;
  for (const auto& probe : probes) set.insert(probe.addr);
  return set;
}

void write_metadata(const std::filesystem::path& path,
                    const ExperimentMetadata& meta) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "app " << meta.app << '\n';
  out << "duration_ns " << meta.duration.ns() << '\n';
  for (const auto& probe : meta.probes) {
    out << "probe " << probe.addr.to_string() << ' ' << probe.as.value()
        << ' ' << probe.cc.to_string() << ' ' << (probe.high_bw ? 1 : 0)
        << ' ' << probe.label << '\n';
  }
  for (const auto& a : meta.announcements) {
    out << "prefix " << a.prefix.to_string() << ' ' << a.as.value() << ' '
        << a.country.to_string() << '\n';
  }
  if (meta.impairment.enabled()) {
    const auto& imp = meta.impairment;
    out << "impairment " << imp.loss_rate << ' ' << imp.loss_burst << ' '
        << imp.reorder_rate << ' ' << imp.reorder_delay.ns() << ' '
        << imp.duplicate_rate << ' ' << imp.outage_per_s << ' '
        << imp.outage_duration.ns() << '\n';
  }
  if (meta.churn.enabled()) {
    const auto& churn = meta.churn;
    out << "churn " << churn.probe_session_s << ' ' << churn.probe_downtime_s
        << ' ' << churn.bg_session_s << ' ' << churn.bg_downtime_s << ' '
        << churn.nat_connect_failure << ' ' << churn.firewall_connect_failure
        << '\n';
  }
  // Atomic + durable: an analyze (or a resumed run) can never observe
  // a torn sidecar, only the previous complete one or this one.
  util::write_file_atomic(path, out.str());
}

ExperimentMetadata read_metadata(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) fail(path, "cannot open");
  std::istringstream in(*buf);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    fail(path, "bad header");
  }

  ExperimentMetadata meta;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string key;
    tokens >> key;
    if (key == "app") {
      tokens >> meta.app;
    } else if (key == "duration_ns") {
      std::int64_t ns = -1;
      tokens >> ns;
      if (!tokens || ns < 0) fail(path, "bad duration: " + line);
      meta.duration = util::SimTime::nanos(ns);
    } else if (key == "probe") {
      std::string addr_text, cc_text, label;
      std::uint32_t as_value = 0;
      int high_bw = 0;
      tokens >> addr_text >> as_value >> cc_text >> high_bw >> label;
      const auto addr = net::Ipv4Addr::parse(addr_text);
      if (!tokens || !addr || cc_text.size() != 2) {
        fail(path, "bad probe line: " + line);
      }
      meta.probes.push_back({*addr, net::AsId{as_value},
                             net::CountryCode{cc_text}, high_bw != 0,
                             label});
    } else if (key == "prefix") {
      std::string prefix_text, cc_text;
      std::uint32_t as_value = 0;
      tokens >> prefix_text >> as_value >> cc_text;
      const auto prefix = net::Ipv4Prefix::parse(prefix_text);
      if (!tokens || !prefix || cc_text.size() != 2) {
        fail(path, "bad prefix line: " + line);
      }
      meta.announcements.push_back(
          {*prefix, net::AsId{as_value}, net::CountryCode{cc_text}});
    } else if (key == "impairment") {
      auto& imp = meta.impairment;
      std::int64_t reorder_delay_ns = -1, outage_duration_ns = -1;
      tokens >> imp.loss_rate >> imp.loss_burst >> imp.reorder_rate >>
          reorder_delay_ns >> imp.duplicate_rate >> imp.outage_per_s >>
          outage_duration_ns;
      if (!tokens || reorder_delay_ns < 0 || outage_duration_ns < 0) {
        fail(path, "bad impairment line: " + line);
      }
      imp.reorder_delay = util::SimTime::nanos(reorder_delay_ns);
      imp.outage_duration = util::SimTime::nanos(outage_duration_ns);
    } else if (key == "churn") {
      auto& churn = meta.churn;
      tokens >> churn.probe_session_s >> churn.probe_downtime_s >>
          churn.bg_session_s >> churn.bg_downtime_s >>
          churn.nat_connect_failure >> churn.firewall_connect_failure;
      if (!tokens) fail(path, "bad churn line: " + line);
    } else {
      fail(path, "unknown key: " + key);
    }
  }
  if (meta.app.empty() || meta.probes.empty()) {
    fail(path, "incomplete metadata");
  }
  return meta;
}

}  // namespace peerscope::exp
