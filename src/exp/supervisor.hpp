// Supervised experiment execution: per-run isolation, retry with
// exponential backoff, wall-clock deadlines, and journal-backed
// crash-safe resume.
//
// The paper's 44-probe campaign lost probes and partial traces yet
// still produced per-application aggregates; supervise_runs gives the
// reproduction harness the same property. Each RunSpec executes in
// isolation on the thread pool: an exception is captured into that
// run's RunStatus instead of aborting the batch, failures are retried
// with exponential backoff + jitter, and a run that exceeds its
// deadline is cut off cooperatively (util::CancelToken polled at
// simulation-event granularity) and reported as timed-out. When a
// journal is configured, every terminal state is recorded durably and
// completed results are persisted, so a SIGKILLed batch rerun with
// resume=true skips finished specs and produces byte-identical output
// (DESIGN.md §10).
#pragma once

#include <chrono>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/status.hpp"
#include "util/thread_pool.hpp"

namespace peerscope::exp {

/// Terminal state of one spec's attempt chain.
enum class RunState {
  kOk,        // a fresh attempt succeeded
  kFailed,    // every attempt threw (non-cancellation)
  kTimedOut,  // the deadline cut the run off
  kSkipped,   // resume replayed a journaled result; nothing executed
};

[[nodiscard]] const char* to_string(RunState state);

struct RunStatus {
  std::string spec;  // spec_id() of the RunSpec
  RunState state = RunState::kFailed;
  /// Attempts actually executed this process (0 for kSkipped).
  int attempts = 0;
  std::string error;  // what() of the last failure, empty on success
  /// Present for kOk and kSkipped; absent means the app is missing
  /// from the batch and reports must mark it explicitly.
  std::optional<RunResult> result;
  [[nodiscard]] bool ok() const { return result.has_value(); }
};

struct SupervisorConfig {
  /// Extra attempts after the first failure (0 = fail fast).
  int retries = 0;
  /// Per-attempt wall-clock deadline in seconds; 0 disables. Enforced
  /// cooperatively between simulation events, so granularity is
  /// microseconds, not a hard preemption.
  double deadline_s = 0.0;
  /// First backoff before retry #1; doubles per retry, with ±25%
  /// deterministic-per-spec jitter so a batch of co-failing runs does
  /// not retry in lockstep.
  std::chrono::milliseconds backoff_base{200};
  /// Journal file; empty disables journaling and resume. Result blobs
  /// land next to it in `<journal>.d/`.
  std::filesystem::path journal;
  /// Replay the journal and skip specs with a completed, loadable
  /// result. With false, any existing journal is truncated first.
  bool resume = false;
  /// Execution hook for tests (fault injection without a real swarm);
  /// defaults to run_experiment.
  std::function<RunResult(const net::AsTopology&, const RunSpec&)> run_fn;
  /// Backoff jitter hook: maps (spec_seed, attempt) to a multiplier on
  /// the exponential delay. Defaults (when empty) to the deterministic
  /// 75–125% per-(spec, attempt) draw. Tests inject a constant (or a
  /// recording probe) to make retry timing exact instead of bounded.
  std::function<double(std::uint64_t, int)> backoff_jitter;
  /// Flight recorder: when a TraceRecorder is installed (obs/trace.hpp)
  /// and the batch is journaled, a failed or timed-out spec dumps the
  /// last N trace events of its final attempt into
  /// `<journal>.d/<spec>.trace.json` next to its journal entry —
  /// a post-mortem timeline for exactly the runs that need one.
  /// 0 disables the dump.
  std::size_t flight_recorder_events = 512;
  /// Declarative SLOs (obs/watchdog.hpp): when any objective is set, a
  /// watchdog per attempt polls the run's live progress and cancels it
  /// on sustained violation; the run lands as kFailed with an "slo
  /// violation: ..." error the CLI maps to exit 10, plus the flight-
  /// recorder dump above. Default (all-zero) runs no watchdog thread.
  obs::SloSpec slo;
  /// Live status.json path (exp/status.hpp): non-empty starts a
  /// StatusReporter that atomically rewrites per-run phase / events/s
  /// / ETA for `peerscope watch`. Empty (the default) publishes
  /// nothing.
  std::filesystem::path status_path;
};

struct BatchOutcome {
  /// Aligned with the input specs.
  std::vector<RunStatus> runs;
  [[nodiscard]] std::size_t succeeded() const;  // kOk + kSkipped
  [[nodiscard]] std::size_t failed() const;     // kFailed + kTimedOut
  [[nodiscard]] bool complete() const { return failed() == 0; }
};

/// Backoff before retry `attempt` (1-based): base * 2^(attempt-1)
/// scaled by `jitter(spec_seed, attempt)` — or, with an empty jitter,
/// by a deterministic 75–125% per-(spec, attempt) draw, so co-failing
/// runs spread out and reruns behave identically. Exposed so tests
/// can pin the exact delay the supervisor will sleep.
[[nodiscard]] std::chrono::milliseconds backoff_delay(
    std::chrono::milliseconds base, std::uint64_t spec_seed, int attempt,
    const std::function<double(std::uint64_t, int)>& jitter = {});

/// Runs every spec under supervision; never throws for a failing run
/// (only for infrastructure errors such as an unwritable journal).
/// Counters land in the obs sidecar: exp.runs_ok / runs_failed /
/// runs_timed_out / runs_skipped / run_retries.
[[nodiscard]] BatchOutcome supervise_runs(const net::AsTopology& topo,
                                          std::span<const RunSpec> specs,
                                          util::ThreadPool& pool,
                                          const SupervisorConfig& config = {});

}  // namespace peerscope::exp
