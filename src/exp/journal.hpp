// The experiment journal: a durable, append-only record of run
// completion, plus the result-blob serialization that makes resume
// byte-identical.
//
// Schema `peerscope.journal/1`: line 1 is a JSON header object, every
// later line is one JSON object describing the terminal state of one
// run attempt chain. Lines are appended with fsync
// (util::append_line_durable), so a line either survives a SIGKILL
// whole or not at all; the replay side ignores a torn trailing line.
// Completed runs additionally persist their full RunResult to a blob
// file (atomic rename, integer-exact fields), which is what lets
// `--resume` skip a finished spec and still produce output
// byte-identical to an uninterrupted batch (DESIGN.md §10).
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "exp/runner.hpp"

namespace peerscope::exp {

inline constexpr const char* kJournalSchema = "peerscope.journal/1";
inline constexpr std::uint16_t kRunResultVersion = 1;

/// Stable identity of a RunSpec for journal matching: application,
/// seed, duration, record retention, and a fingerprint of any fault
/// injection. Two specs with the same id produce byte-identical
/// results, which is what makes replaying a journal entry sound.
[[nodiscard]] std::string spec_id(const RunSpec& spec);

/// Filesystem-safe blob filename for a spec id (sanitized id plus a
/// collision-proofing hash suffix, ".result" extension).
[[nodiscard]] std::string spec_artifact_name(const std::string& id);

/// Filesystem-safe flight-recorder dump filename for a spec id (same
/// sanitize + hash scheme, ".trace.json" extension). supervise_runs
/// writes a failed or timed-out run's last trace events here, inside
/// `<journal>.d/` next to the spec's journal entry.
[[nodiscard]] std::string spec_flight_name(const std::string& id);

struct JournalEntry {
  std::string spec;      // spec_id()
  std::string state;     // "ok" | "failed" | "timed_out"
  int attempts = 0;      // attempts consumed by this chain
  std::string error;     // diagnostic for failed / timed_out
  std::string artifact;  // blob filename relative to the journal's dir
};

/// Starts a fresh journal: atomically replaces `path` with just the
/// schema header line. Any previous content is discarded — call this
/// for a non-resume batch so stale entries cannot leak in.
void journal_begin(const std::filesystem::path& path);

/// Appends one entry as a single fsync'd JSON line. Once this
/// returns, the entry survives a crash.
void journal_append(const std::filesystem::path& path,
                    const JournalEntry& entry);

/// Replays a journal into a spec-id -> entry map (last entry per spec
/// wins). Returns an empty map when the file does not exist. A torn or
/// malformed trailing line — the signature of a crash mid-append — is
/// skipped. Throws std::runtime_error when the file exists but does
/// not carry the peerscope.journal/1 header (refusing to resume
/// against something that is not our journal).
[[nodiscard]] std::map<std::string, JournalEntry> journal_replay(
    const std::filesystem::path& path);

/// Persists a completed RunResult (atomic + durable). Every field of
/// the observation bundle is integral, so the blob roundtrips exactly
/// and analysis over a reloaded result is byte-identical to analysis
/// over the in-memory one.
void write_run_result(const std::filesystem::path& path,
                      const RunResult& result);

/// Reloads a blob written by write_run_result. Returns nullopt when
/// the file is missing or malformed — resume treats that as "not
/// actually finished" and reruns the spec.
[[nodiscard]] std::optional<RunResult> read_run_result(
    const std::filesystem::path& path);

}  // namespace peerscope::exp
