#include "exp/runner.hpp"

#include <future>
#include <stdexcept>

#include "aware/observation.hpp"
#include "exp/journal.hpp"
#include "exp/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace peerscope::exp {

aware::ExperimentObservations extract_observations(const p2p::Swarm& swarm) {
  PEERSCOPE_SPAN("extract");
  aware::ExperimentObservations data;
  data.app = swarm.profile().name;
  data.duration = swarm.duration();

  const auto& pop = swarm.population();
  const auto probe_ids = pop.probe_ids();
  data.probes.reserve(probe_ids.size());
  data.per_probe.reserve(probe_ids.size());
  for (std::size_t i = 0; i < probe_ids.size(); ++i) {
    const auto& info = pop.peer(probe_ids[i]);
    const auto& spec = pop.probe_specs()[i];
    data.probes.push_back({info.ep.addr, info.ep.as, info.ep.country,
                           info.access.is_high_bandwidth(), spec.label()});
    data.per_probe.push_back(aware::extract_observations(
        swarm.sink(i).flows(), pop.registry(), pop.probe_addrs()));
  }
  return data;
}

RunResult run_experiment(const net::AsTopology& topo, const RunSpec& spec) {
  if (spec.duration <= util::SimTime::zero()) {
    throw std::invalid_argument("run_experiment: duration must be positive");
  }
  const Testbed testbed = Testbed::table1();
  p2p::SwarmConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.duration = spec.duration;
  config.keep_records = spec.keep_records;
  config.impairment = spec.impairment;
  config.churn = spec.churn;
  config.discovery = spec.discovery;
  config.cancel = spec.cancel;
  // Series rows key on the journal's stable run identity so the PSTS
  // sidecar, the journal, and the flight-recorder dumps all agree on
  // what a "run" is.
  config.series_key = spec_id(spec);
  config.progress = spec.progress;

  // Mark the progress sink active for exactly the window observers may
  // trust it, and deactivate on every exit path (the watchdog must not
  // judge a dead attempt's frozen counters).
  struct ProgressGuard {
    obs::RunProgress* progress;
    explicit ProgressGuard(obs::RunProgress* p) : progress(p) {
      if (progress != nullptr) {
        progress->active.store(true, std::memory_order_release);
      }
    }
    ~ProgressGuard() {
      if (progress != nullptr) {
        progress->active.store(false, std::memory_order_release);
      }
    }
  } progress_guard{spec.progress};

  RunResult result;
  {
    // Per-application root span: every stage below lands under
    // "run.<app>/..." in the metrics sidecar and on the trace
    // timeline. The scope closes before the flush below so the
    // span's end event is part of the run it belongs to.
    obs::Span run_span{"run." + spec.profile.name};
    p2p::Swarm swarm{topo, testbed.probes(), std::move(config)};
    {
      PEERSCOPE_SPAN("simulate");
      swarm.run();
    }
    if (obs::enabled()) obs::counter("exp.experiments_run").add();
    if (spec.discovery.rejoin_deadline > util::SimTime::zero()) {
      const auto report = swarm.discovery_report();
      if (report.rejoins_missed > 0) {
        // Leave a flight-recorder anchor before unwinding: the
        // supervisor's ring-tail dump is how the post-mortem finds
        // which failover attempts preceded the miss.
        PEERSCOPE_TRACE_INSTANT("p2p.discovery.degraded");
        throw DiscoveryDegraded(report.rejoins_missed);
      }
    }
    result = {extract_observations(swarm), swarm.counters()};
  }
  // Run boundary = trace flush boundary: the ring's retained-event
  // and drop counts become per-run properties, independent of how
  // runs map onto pool threads (§5.6). A failed run skips this — the
  // supervisor dumps its ring tail first (flight recorder), then
  // flushes.
  obs::trace_flush();
  return result;
}

std::vector<RunResult> run_experiments(const net::AsTopology& topo,
                                       std::span<const RunSpec> specs,
                                       util::ThreadPool& pool) {
  // Workers is a configuration fact, not a counter: it lands in the
  // gauges section, which the deterministic export excludes (results
  // must not depend on it).
  obs::set_gauge("exp.pool_workers",
                 static_cast<double>(pool.worker_count()));
  std::vector<std::future<RunResult>> futures;
  futures.reserve(specs.size());
  for (const RunSpec& spec : specs) {
    futures.push_back(
        pool.submit([&topo, spec] { return run_experiment(topo, spec); }));
  }
  std::vector<RunResult> results;
  results.reserve(specs.size());
  // Drain every future before surfacing any failure: letting the first
  // get() rethrow would return with sibling runs still executing and
  // discard their results (the original first-exception abort bug).
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace peerscope::exp
