// Live batch introspection: an atomically-rewritten status.json.
//
// A 181k-peer batch is a black box between launch and exit unless the
// supervisor publishes where it is. StatusReporter owns a background
// thread that periodically renders every run's live state — supervisor
// phase, attempt count, events executed, sim time, events/s, ETA —
// into `peerscope.status/1` JSON and atomically replaces the status
// file (rename, non-durable: a stale status after a crash is
// harmless, and fsyncing four times a second is not). `peerscope
// watch` tails that file from another process; because every rewrite
// is a rename, a reader never observes a torn document.
//
// The task threads never block for the reporter: each run's LiveRun
// is all-atomic, written with relaxed stores from the run loop and
// the engine's progress hook, read by the reporter thread alone.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/watchdog.hpp"

namespace peerscope::exp {

inline constexpr const char* kStatusSchema = "peerscope.status/1";

/// One run's live, lock-free state. The strings are immutable after
/// construction; everything mutable is atomic, so the reporter thread
/// reads concurrently with the task thread without a lock (and under
/// TSan).
struct LiveRun {
  /// state values: kPending / kRunning, or static_cast<int> of the
  /// terminal exp::RunState once the attempt chain resolves.
  static constexpr int kPending = -1;
  static constexpr int kRunning = -2;

  LiveRun(std::string spec_id, double run_duration_s)
      : spec(std::move(spec_id)), duration_s(run_duration_s) {}

  const std::string spec;
  const double duration_s;
  obs::RunProgress progress;
  std::atomic<int> state{kPending};
  std::atomic<int> attempts{0};
};

/// Background status.json writer. Add every run before start(); the
/// LiveRun references stay stable (deque) for the batch's lifetime.
class StatusReporter {
 public:
  explicit StatusReporter(
      std::filesystem::path path,
      std::chrono::milliseconds poll = std::chrono::milliseconds{250});
  ~StatusReporter();

  StatusReporter(const StatusReporter&) = delete;
  StatusReporter& operator=(const StatusReporter&) = delete;

  /// Registers a run; call only before start().
  LiveRun& add_run(std::string spec_id, double run_duration_s);

  /// Writes the first snapshot and starts the rewrite thread.
  void start();

  /// Joins the thread and writes the final "done" snapshot.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void run();
  [[nodiscard]] std::string render(std::string_view phase);

  std::filesystem::path path_;
  std::chrono::milliseconds poll_;
  std::deque<LiveRun> runs_;
  /// events/s baselines, reporter-thread-only (render is also called
  /// from start/stop, strictly before the thread exists / after it
  /// joined).
  struct Baseline {
    std::uint64_t events = 0;
    std::int64_t sim_ns = 0;
    std::chrono::steady_clock::time_point at{};
    double events_per_s = 0;
    double sim_rate = 0;  // sim seconds per wall second
    bool primed = false;
  };
  std::vector<Baseline> baselines_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread thread_;
};

/// Parsed view of one status.json document (the watch subcommand and
/// tests read through this instead of scraping JSON).
struct StatusRunView {
  std::string spec;
  std::string state;
  int attempts = 0;
  std::uint64_t events = 0;
  double sim_time_s = 0;
  double events_per_s = 0;
  /// Estimated wall seconds to finish; -1 when unknown (not running,
  /// or no sim-rate sample yet).
  double eta_s = -1;
};

struct StatusView {
  std::string phase;  // "running" | "done"
  std::vector<StatusRunView> runs;
};

/// Parses a document written by StatusReporter (own-dialect reader,
/// like journal_replay). Returns nullopt when the schema line is
/// missing or a field is malformed.
[[nodiscard]] std::optional<StatusView> parse_status(std::string_view json);

}  // namespace peerscope::exp
