#include "exp/journal.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/crc32c.hpp"
#include "util/io_faults.hpp"

namespace peerscope::exp {

namespace {

constexpr const char* kResultHeader = "peerscope-runresult 1";

/// FNV-1a over a canonical byte serialization; stable across builds
/// (no type punning of doubles through text formatting).
class Fingerprint {
 public:
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void add_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Extracts the string value of `"key":"..."` from one of our own
/// JSON lines (the journal is self-written; this is a reader for that
/// exact dialect, not a general JSON parser). Returns nullopt when the
/// key is absent or the value is malformed.
std::optional<std::string> json_string_field(const std::string& line,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = start + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c == '\\') {
      if (i + 1 >= line.size()) return std::nullopt;
      const char esc = line[++i];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 'u': {
          if (i + 4 >= line.size()) return std::nullopt;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = line[++i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return std::nullopt;
            }
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return std::nullopt;
      }
    } else {
      out += c;
    }
  }
  return std::nullopt;  // unterminated (torn line)
}

std::optional<int> json_int_field(const std::string& line,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto start = line.find(needle);
  if (start == std::string::npos) return std::nullopt;
  std::size_t i = start + needle.size();
  if (i >= line.size() ||
      std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
    return std::nullopt;
  }
  int value = 0;
  for (; i < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[i])) != 0;
       ++i) {
    value = value * 10 + (line[i] - '0');
  }
  return value;
}

}  // namespace

std::string spec_id(const RunSpec& spec) {
  std::string id = spec.profile.name + "#seed=" +
                   std::to_string(spec.seed) + "#dur=" +
                   std::to_string(spec.duration.ns());
  if (spec.keep_records) id += "#rec";
  if (spec.impairment.enabled() || spec.churn.enabled()) {
    Fingerprint fp;
    const auto& imp = spec.impairment;
    fp.add_double(imp.loss_rate);
    fp.add_double(imp.loss_burst);
    fp.add_double(imp.reorder_rate);
    fp.add_u64(static_cast<std::uint64_t>(imp.reorder_delay.ns()));
    fp.add_double(imp.duplicate_rate);
    fp.add_double(imp.outage_per_s);
    fp.add_u64(static_cast<std::uint64_t>(imp.outage_duration.ns()));
    const auto& churn = spec.churn;
    fp.add_double(churn.probe_session_s);
    fp.add_double(churn.probe_downtime_s);
    fp.add_double(churn.bg_session_s);
    fp.add_double(churn.bg_downtime_s);
    fp.add_double(churn.nat_connect_failure);
    fp.add_double(churn.firewall_connect_failure);
    id += "#faults=" + hex16(fp.value());
  }
  if (spec.discovery.enabled()) {
    Fingerprint fp;
    const auto& d = spec.discovery;
    fp.add_u64(static_cast<std::uint64_t>(d.primary));
    fp.add_u64(static_cast<std::uint64_t>(d.fallback));
    fp.add_u64(static_cast<std::uint64_t>(d.tracker_outage_start.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.tracker_outage_duration.ns()));
    fp.add_double(d.tracker_flap_per_s);
    fp.add_u64(static_cast<std::uint64_t>(d.tracker_flap_duration.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.failover_after));
    fp.add_u64(static_cast<std::uint64_t>(d.primary_retry.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.rejoin_deadline.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.join_backoff.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.join_backoff_max.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.flash_crowd_at.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.flash_crowd_arrivals));
    fp.add_double(d.zap_reuse);
    fp.add_double(d.session_tail_alpha);
    fp.add_u64(static_cast<std::uint64_t>(d.dht.k));
    fp.add_u64(static_cast<std::uint64_t>(d.dht.max_hops));
    fp.add_u64(static_cast<std::uint64_t>(d.dht.hop_timeout.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.dht.refresh_period.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.gossip.fanout));
    fp.add_u64(static_cast<std::uint64_t>(d.gossip.exchange_size));
    fp.add_u64(static_cast<std::uint64_t>(d.gossip.period.ns()));
    fp.add_u64(static_cast<std::uint64_t>(d.gossip.partition_after));
    fp.add_u64(static_cast<std::uint64_t>(d.gossip.view_size));
    fp.add_u64(d.nat.enabled ? 1 : 0);
    fp.add_double(d.nat.symmetric_fraction);
    fp.add_double(d.nat.cone_cone);
    fp.add_double(d.nat.cone_symmetric);
    fp.add_double(d.nat.symmetric_symmetric);
    fp.add_double(d.nat.relay_success);
    fp.add_u64(static_cast<std::uint64_t>(d.nat.relay_penalty.ns()));
    id += "#disc=" + hex16(fp.value());
  }
  return id;
}

namespace {

/// Sanitized id + 8-hex-digit fingerprint: filesystem-safe and
/// collision-proof, shared by every per-spec artifact in journal.d.
std::string spec_file_stem(const std::string& id) {
  std::string safe;
  safe.reserve(id.size());
  for (const char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    safe += keep ? c : '_';
  }
  Fingerprint fp;
  for (const char c : id) fp.add_u64(static_cast<unsigned char>(c));
  return safe + "-" + hex16(fp.value()).substr(0, 8);
}

}  // namespace

std::string spec_artifact_name(const std::string& id) {
  return spec_file_stem(id) + ".result";
}

std::string spec_flight_name(const std::string& id) {
  return spec_file_stem(id) + ".trace.json";
}

void journal_begin(const std::filesystem::path& path) {
  std::string header = "{\"schema\":";
  append_json_string(header, kJournalSchema);
  header += "}\n";
  util::write_file_atomic(path, header);
}

void journal_append(const std::filesystem::path& path,
                    const JournalEntry& entry) {
  std::string line = "{\"spec\":";
  append_json_string(line, entry.spec);
  line += ",\"state\":";
  append_json_string(line, entry.state);
  line += ",\"attempts\":" + std::to_string(entry.attempts);
  if (!entry.artifact.empty()) {
    line += ",\"artifact\":";
    append_json_string(line, entry.artifact);
  }
  if (!entry.error.empty()) {
    line += ",\"error\":";
    append_json_string(line, entry.error);
  }
  line += '}';
  util::append_line_durable(path, line);
}

std::map<std::string, JournalEntry> journal_replay(
    const std::filesystem::path& path) {
  std::map<std::string, JournalEntry> entries;
  const auto buf = util::io::read_file(path);
  if (!buf) return entries;  // no journal yet: nothing to replay
  std::istringstream in(*buf);
  std::string line;
  if (!std::getline(in, line) ||
      json_string_field(line, "schema") != std::string{kJournalSchema}) {
    throw std::runtime_error("journal " + path.string() +
                             ": missing peerscope.journal/1 header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A torn line (crash mid-append) fails field extraction or the
    // closing-brace check and is skipped; every complete line that
    // follows one is still honoured.
    if (line.back() != '}') continue;
    JournalEntry entry;
    const auto spec = json_string_field(line, "spec");
    const auto state = json_string_field(line, "state");
    const auto attempts = json_int_field(line, "attempts");
    if (!spec || !state || !attempts) continue;
    entry.spec = *spec;
    entry.state = *state;
    entry.attempts = *attempts;
    entry.artifact = json_string_field(line, "artifact").value_or("");
    entry.error = json_string_field(line, "error").value_or("");
    entries[entry.spec] = std::move(entry);
  }
  return entries;
}

// ---------------------------------------------------------------------
// RunResult blob: versioned text, integer-exact, atomically written.

void write_run_result(const std::filesystem::path& path,
                      const RunResult& result) {
  const auto& data = result.observations;
  std::ostringstream out;
  out << kResultHeader << '\n';
  out << "app " << data.app << '\n';
  out << "duration_ns " << data.duration.ns() << '\n';
  const auto& c = result.counters;
  out << "counters " << c.chunks_delivered << ' ' << c.chunks_duplicate
      << ' ' << c.chunks_uploaded << ' ' << c.requests_refused << ' '
      << c.contacts << ' ' << c.timeouts << ' ' << c.contact_failures << ' '
      << c.probe_crashes << ' ' << c.chunks_retried << ' '
      << c.partners_blacklisted << '\n';
  // Discovery counters ride in their own optional line so blobs from
  // discovery-free runs stay byte-identical to the pre-discovery
  // format (and old readers that reject unknown keys never see it).
  if (c.discovery.any()) {
    const auto& d = c.discovery;
    out << "dcounters " << d.tracker_queries << ' ' << d.tracker_failures
        << ' ' << d.dht_lookups << ' ' << d.dht_hops << ' '
        << d.dht_hop_timeouts << ' ' << d.dht_evictions << ' '
        << d.gossip_exchanges << ' ' << d.gossip_partitions << ' '
        << d.failovers << ' ' << d.recoveries << ' ' << d.joins_ok << ' '
        << d.join_retries << ' ' << d.nat_direct << ' ' << d.nat_relayed
        << ' ' << d.nat_blocked << ' ' << d.flash_arrivals << '\n';
  }
  for (const auto& probe : data.probes) {
    out << "probe " << probe.addr.bits() << ' ' << probe.as.value() << ' '
        << probe.cc.packed() << ' ' << (probe.high_bw ? 1 : 0) << ' '
        << probe.label << '\n';
  }
  for (std::size_t i = 0; i < data.per_probe.size(); ++i) {
    out << "vantage " << i << ' ' << data.per_probe[i].size() << '\n';
    for (const auto& o : data.per_probe[i]) {
      out << "o " << o.probe.bits() << ' ' << o.remote.bits() << ' '
          << o.probe_as.value() << ' ' << o.remote_as.value() << ' '
          << o.probe_cc.packed() << ' ' << o.remote_cc.packed() << ' '
          << (o.same_subnet ? 1 : 0) << ' ' << (o.remote_is_napa ? 1 : 0)
          << ' ' << o.rx_pkts << ' ' << o.rx_bytes << ' ' << o.tx_pkts
          << ' ' << o.tx_bytes << ' ' << o.rx_video_pkts << ' '
          << o.rx_video_bytes << ' ' << o.tx_video_pkts << ' '
          << o.tx_video_bytes << ' ' << o.min_rx_video_ipg_ns;
      for (const auto ipg : o.smallest_rx_ipgs) out << ' ' << ipg;
      out << ' ' << o.rx_ipg_samples << ' ' << o.rx_hops << '\n';
    }
  }
  // Integrity line: CRC-32C over every byte above it. A torn or
  // bit-rotted blob fails verification on --resume and the run is
  // simply re-executed instead of trusted.
  char crc_line[16];
  std::snprintf(crc_line, sizeof crc_line, "crc %08x\n",
                util::crc32c(out.str()));
  out << crc_line;
  out << "end\n";
  util::write_file_atomic(path, out.str());
}

std::optional<RunResult> read_run_result(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) return std::nullopt;

  // Verify the integrity line before believing anything else. Blobs
  // from before the crc line was introduced simply lack it and are
  // validated structurally like before.
  if (const std::size_t at = buf->rfind("\ncrc ");
      at != std::string::npos) {
    const std::string_view rest = std::string_view(*buf).substr(at + 5);
    if (rest.size() < 9 || rest.substr(8, 1) != "\n") return std::nullopt;
    std::uint32_t stored = 0;
    for (const char c : rest.substr(0, 8)) {
      const int digit = c >= '0' && c <= '9'   ? c - '0'
                        : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                               : -1;
      if (digit < 0) return std::nullopt;
      stored = stored << 4 | static_cast<std::uint32_t>(digit);
    }
    if (stored != util::crc32c(std::string_view(*buf).substr(0, at + 1))) {
      return std::nullopt;
    }
  }

  std::istringstream in(*buf);
  std::string line;
  if (!std::getline(in, line) || line != kResultHeader) return std::nullopt;

  RunResult result;
  auto& data = result.observations;
  bool complete = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string key;
    tokens >> key;
    if (key == "app") {
      tokens >> data.app;
    } else if (key == "duration_ns") {
      std::int64_t ns = -1;
      tokens >> ns;
      if (!tokens || ns < 0) return std::nullopt;
      data.duration = util::SimTime::nanos(ns);
    } else if (key == "counters") {
      auto& c = result.counters;
      tokens >> c.chunks_delivered >> c.chunks_duplicate >>
          c.chunks_uploaded >> c.requests_refused >> c.contacts >>
          c.timeouts >> c.contact_failures >> c.probe_crashes >>
          c.chunks_retried >> c.partners_blacklisted;
      if (!tokens) return std::nullopt;
    } else if (key == "dcounters") {
      auto& d = result.counters.discovery;
      tokens >> d.tracker_queries >> d.tracker_failures >> d.dht_lookups >>
          d.dht_hops >> d.dht_hop_timeouts >> d.dht_evictions >>
          d.gossip_exchanges >> d.gossip_partitions >> d.failovers >>
          d.recoveries >> d.joins_ok >> d.join_retries >> d.nat_direct >>
          d.nat_relayed >> d.nat_blocked >> d.flash_arrivals;
      if (!tokens) return std::nullopt;
    } else if (key == "probe") {
      std::uint32_t addr_bits = 0, as_value = 0;
      std::uint16_t cc_packed = 0;
      int high_bw = 0;
      std::string label;
      tokens >> addr_bits >> as_value >> cc_packed >> high_bw >> label;
      if (!tokens) return std::nullopt;
      data.probes.push_back(
          {net::Ipv4Addr{addr_bits}, net::AsId{as_value},
           net::CountryCode{static_cast<char>(cc_packed >> 8),
                            static_cast<char>(cc_packed & 0xff)},
           high_bw != 0, label});
    } else if (key == "vantage") {
      std::size_t index = 0, count = 0;
      tokens >> index >> count;
      if (!tokens || index != data.per_probe.size()) return std::nullopt;
      std::vector<aware::PairObservation> observations;
      observations.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        if (!std::getline(in, line)) return std::nullopt;
        std::istringstream fields(line);
        std::string tag;
        fields >> tag;
        if (tag != "o") return std::nullopt;
        aware::PairObservation o;
        std::uint32_t probe_bits = 0, remote_bits = 0, probe_as = 0,
                      remote_as = 0;
        std::uint16_t probe_cc = 0, remote_cc = 0;
        int same_subnet = 0, napa = 0;
        fields >> probe_bits >> remote_bits >> probe_as >> remote_as >>
            probe_cc >> remote_cc >> same_subnet >> napa >> o.rx_pkts >>
            o.rx_bytes >> o.tx_pkts >> o.tx_bytes >> o.rx_video_pkts >>
            o.rx_video_bytes >> o.tx_video_pkts >> o.tx_video_bytes >>
            o.min_rx_video_ipg_ns;
        for (auto& ipg : o.smallest_rx_ipgs) fields >> ipg;
        fields >> o.rx_ipg_samples >> o.rx_hops;
        if (!fields) return std::nullopt;
        o.probe = net::Ipv4Addr{probe_bits};
        o.remote = net::Ipv4Addr{remote_bits};
        o.probe_as = net::AsId{probe_as};
        o.remote_as = net::AsId{remote_as};
        o.probe_cc =
            net::CountryCode{static_cast<char>(probe_cc >> 8),
                             static_cast<char>(probe_cc & 0xff)};
        o.remote_cc =
            net::CountryCode{static_cast<char>(remote_cc >> 8),
                             static_cast<char>(remote_cc & 0xff)};
        o.same_subnet = same_subnet != 0;
        o.remote_is_napa = napa != 0;
        observations.push_back(o);
      }
      data.per_probe.push_back(std::move(observations));
    } else if (key == "crc") {
      // Already verified against the bytes above; nothing to parse.
    } else if (key == "end") {
      complete = true;
      break;
    } else {
      return std::nullopt;
    }
  }
  if (!complete || data.app.empty() ||
      data.probes.size() != data.per_probe.size()) {
    return std::nullopt;
  }
  return result;
}

}  // namespace peerscope::exp
