#include "sim/train.hpp"

#include <stdexcept>

namespace peerscope::sim {

TrainResult transmit_train(const TrainSpec& spec,
                           const net::AccessLink& sender,
                           LinkCursor& sender_up,
                           const net::AccessLink& receiver,
                           LinkCursor& receiver_down,
                           const net::PathInfo& path, util::Rng& rng) {
  if (spec.packet_count <= 0 || spec.packet_bytes <= 0) {
    throw std::invalid_argument("transmit_train: empty train");
  }

  const util::SimTime up_ser = sender.up_tx_time(spec.packet_bytes);
  const util::SimTime down_ser = receiver.down_tx_time(spec.packet_bytes);

  TrainResult result;
  result.arrivals.reserve(static_cast<std::size_t>(spec.packet_count));
  result.departures.reserve(static_cast<std::size_t>(spec.packet_count));

  // Uplink: the whole chunk is written to the socket at once, so its
  // packets occupy the link contiguously — concurrent chunks queue
  // *behind* the train, they do not interleave into it. This is what
  // keeps the in-train inter-packet gap equal to the uplink
  // serialisation time even on a busy sender (the packet-pair signal).
  const util::SimTime train_start = sender_up.reserve(
      spec.start, up_ser * static_cast<std::int64_t>(spec.packet_count));

  util::SimTime release = train_start;
  util::SimTime last_arrival{0};
  for (int i = 0; i < spec.packet_count; ++i) {
    const util::SimTime departed = release + up_ser;
    release = departed;  // next packet right behind
    result.departures.push_back(departed);

    if (spec.loss_rate > 0.0 && rng.chance(spec.loss_rate)) {
      continue;  // dropped in flight: no arrival, no receiver work
    }

    // Path: fixed one-way delay plus small positive jitter.
    const util::SimTime jitter = util::SimTime::nanos(static_cast<std::int64_t>(
        rng.uniform01() * static_cast<double>(spec.jitter_max.ns())));
    const util::SimTime reached = departed + path.one_way_delay + jitter;

    // Downlink: serialised through the receiver's access link; FIFO
    // order is preserved even if jitter reordered the wire arrival.
    const util::SimTime earliest = reached > last_arrival ? reached : last_arrival;
    const util::SimTime rx_start = receiver_down.reserve(earliest, down_ser);
    const util::SimTime arrival = rx_start + down_ser;
    last_arrival = arrival;
    result.arrivals.push_back(arrival);
  }
  result.sender_done = release;
  return result;
}

}  // namespace peerscope::sim
