#include "sim/train.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace peerscope::sim {

TrainResult transmit_train(const TrainSpec& spec,
                           const net::AccessLink& sender,
                           LinkCursor& sender_up,
                           const net::AccessLink& receiver,
                           LinkCursor& receiver_down,
                           const net::PathInfo& path, util::Rng& rng,
                           GilbertElliott* channel) {
  if (spec.packet_count <= 0 || spec.packet_bytes <= 0) {
    throw std::invalid_argument("transmit_train: empty train");
  }

  // Local tallies, published once per train: the per-packet loop stays
  // free of shared writes even with metrics on.
  const bool metrics = obs::enabled();
  const auto wall_start = metrics ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  std::uint64_t lost = 0, outage_dropped = 0, reordered = 0, duplicated = 0;

  const util::SimTime up_ser = sender.up_tx_time(spec.packet_bytes);
  const util::SimTime down_ser = receiver.down_tx_time(spec.packet_bytes);
  const ImpairmentSpec& imp = spec.impairment;
  GilbertElliott local_channel;
  GilbertElliott& ge = channel ? *channel : local_channel;

  TrainResult result;
  result.arrivals.reserve(static_cast<std::size_t>(spec.packet_count));
  result.departures.reserve(static_cast<std::size_t>(spec.packet_count));
  // Capture artifacts (reordered/duplicated records) land out of
  // arrival order; collected here and merge-sorted at the end.
  std::vector<util::SimTime> artifacts;

  // Uplink: the whole chunk is written to the socket at once, so its
  // packets occupy the link contiguously — concurrent chunks queue
  // *behind* the train, they do not interleave into it. This is what
  // keeps the in-train inter-packet gap equal to the uplink
  // serialisation time even on a busy sender (the packet-pair signal).
  const util::SimTime train_start = sender_up.reserve(
      spec.start, up_ser * static_cast<std::int64_t>(spec.packet_count));

  util::SimTime release = train_start;
  util::SimTime last_arrival{0};
  for (int i = 0; i < spec.packet_count; ++i) {
    const util::SimTime departed = release + up_ser;
    release = departed;  // next packet right behind
    result.departures.push_back(departed);

    if (imp.has_loss() && ge.lose(imp, rng)) {
      ++lost;
      continue;  // dropped in flight: no arrival, no receiver work
    }

    // Path: fixed one-way delay plus small positive jitter.
    const util::SimTime jitter = util::SimTime::nanos(static_cast<std::int64_t>(
        rng.uniform01() * static_cast<double>(spec.jitter_max.ns())));
    const util::SimTime reached = departed + path.one_way_delay + jitter;

    // Transient outage: the receiver link is down, the packet is gone.
    if (imp.has_outage() && in_outage(imp, spec.link_key, reached)) {
      ++outage_dropped;
      continue;
    }

    // Downlink: serialised through the receiver's access link; FIFO
    // order is preserved even if jitter reordered the wire arrival.
    const util::SimTime earliest = reached > last_arrival ? reached : last_arrival;
    const util::SimTime rx_start = receiver_down.reserve(earliest, down_ser);
    const util::SimTime arrival = rx_start + down_ser;
    last_arrival = arrival;

    if (imp.reorder_rate > 0.0 && rng.chance(imp.reorder_rate)) {
      // Capture-side reordering: the sniffer stamps this packet late,
      // landing it among later arrivals. Link occupancy is unchanged —
      // only the recorded timestamp moves.
      ++reordered;
      artifacts.push_back(arrival +
                          util::SimTime::nanos(static_cast<std::int64_t>(
                              rng.uniform01() *
                              static_cast<double>(imp.reorder_delay.ns()))));
    } else {
      result.arrivals.push_back(arrival);
    }
    if (imp.duplicate_rate > 0.0 && rng.chance(imp.duplicate_rate)) {
      // Capture duplication: the same packet recorded twice a few
      // microseconds apart — fabricates a near-zero inter-packet gap.
      ++duplicated;
      artifacts.push_back(arrival +
                          util::SimTime::nanos(1'000 + static_cast<std::int64_t>(
                                                           rng.uniform01() *
                                                           14'000.0)));
    }
  }
  if (!artifacts.empty()) {
    result.arrivals.insert(result.arrivals.end(), artifacts.begin(),
                           artifacts.end());
    std::sort(result.arrivals.begin(), result.arrivals.end());
  }
  result.sender_done = release;
  if (metrics) {
    obs::counter("sim.trains_expanded").add();
    obs::counter("sim.packets_generated")
        .add(static_cast<std::uint64_t>(spec.packet_count));
    obs::counter("sim.packets_lost").add(lost);
    obs::counter("sim.packets_dropped_outage").add(outage_dropped);
    obs::counter("sim.packets_reordered").add(reordered);
    obs::counter("sim.packets_duplicated").add(duplicated);
    obs::histogram("sim.train_expand_ns", obs::timing_bounds(), true)
        .observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count());
  }
  return result;
}

}  // namespace peerscope::sim
