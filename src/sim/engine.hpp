// Discrete-event simulation engine.
//
// A single-threaded calendar-queue scheduler with a total event order:
// ties on timestamp break on insertion sequence, so a given seed always
// replays the exact same execution (DESIGN.md §5.1, §14). Parallelism
// lives one level up — independent experiments each own an Engine.
//
// Hot-path layout (DESIGN.md §14): timestamps live in a CalendarQueue
// (O(1) amortized push/pop), callbacks live inline in slab-allocated
// EventNodes (no per-event heap traffic), and a Handle is an
// {index, seq} pair validated in O(1) — the binary heap and the
// unordered_map of std::functions this replaces cost two mallocs and
// an O(log n) sift per event.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "sim/calendar_queue.hpp"
#include "sim/event_pool.hpp"
#include "util/cancel.hpp"
#include "util/sim_time.hpp"

namespace peerscope::obs {
struct RunProgress;
}  // namespace peerscope::obs

namespace peerscope::sim {

class Engine {
 public:
  /// Interop alias: any callable invocable as `void()` schedules
  /// directly (stored inline when it fits, see event_pool.hpp); this
  /// alias remains for signatures that need a named owning type.
  using Callback = std::function<void()>;

  /// Identifies a scheduled event for cancellation. Value-semantic;
  /// outliving the engine is harmless (cancel just returns false).
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] bool valid() const { return seq_ != 0; }

   private:
    friend class Engine;
    Handle(std::uint32_t node, std::uint64_t seq)
        : node_(node), seq_(seq) {}
    std::uint32_t node_ = 0;
    std::uint64_t seq_ = 0;  // 0 = null handle
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedules `fn` at absolute time `at`; scheduling in the past
  /// (before now()) is a logic error and throws. A null target —
  /// nullptr, an empty std::function, a null function pointer —
  /// throws std::invalid_argument.
  template <typename F>
  Handle schedule_at(util::SimTime at, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (std::is_same_v<D, std::nullptr_t>) {
      (void)at;
      throw std::invalid_argument("Engine: null callback");
    } else {
      static_assert(std::is_invocable_v<D&>,
                    "Engine callbacks take no arguments");
      if (at < now_) {
        throw std::logic_error("Engine: scheduling into the past");
      }
      if constexpr (requires(const D& f) { f == nullptr; }) {
        if (fn == nullptr) {
          throw std::invalid_argument("Engine: null callback");
        }
      }
      const std::uint32_t index = pool_.allocate();
      EventNode& node = pool_[index];
      try {
        EventPool::emplace(node, std::forward<F>(fn));
        queue_.push(at.ns(), next_seq_, index);
      } catch (...) {
        if (node.ops != nullptr) EventPool::discard(node);
        pool_.release(index);
        throw;
      }
      const std::uint64_t seq = next_seq_++;
      node.at = at.ns();
      node.seq = seq;
      ++live_;
      return Handle{index, seq};
    }
  }

  /// Schedules `fn` after a non-negative delay from now().
  template <typename F>
  Handle schedule_after(util::SimTime delay, F&& fn) {
    if (delay < util::SimTime::zero()) {
      throw std::logic_error("Engine: negative delay");
    }
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if the event already ran,
  /// was already cancelled, or the handle is null. O(1): the queue
  /// entry stays behind and is skipped when popped (its seq no longer
  /// matches the node's).
  bool cancel(Handle handle) {
    if (handle.seq_ == 0 || handle.node_ >= pool_.capacity()) return false;
    EventNode& node = pool_[handle.node_];
    if (node.seq != handle.seq_ || node.ops == nullptr) return false;
    EventPool::discard(node);
    pool_.release(handle.node_);
    --live_;
    return true;
  }

  /// Installs a cancellation token polled between events (every
  /// kCancelStride executed events, so a deadline lands at simulation-
  /// event granularity); run_until throws util::Cancelled when it
  /// trips. nullptr (the default) disables polling entirely — the
  /// uncancellable fast path is byte-identical to builds without this
  /// hook. The token must outlive the run.
  void set_cancel(const util::CancelToken* token) noexcept {
    cancel_ = token;
  }

  /// Poll stride for the cancellation token: coarse enough that the
  /// steady-clock read in deadline checks never shows up in profiles,
  /// fine enough that a deadline cuts a run off within microseconds.
  /// exp::kCancelPollStride re-exports this for the supervisor's
  /// latency math — keep them one constant.
  static constexpr std::uint64_t kCancelStride = 256;

  /// Installs a sim-time sampling hook: `fn(index, at)` fires once
  /// per grid point `at = k·interval` (k = 1, 2, …), after every
  /// event with timestamp ≤ at has executed and before any event
  /// after it — so the sample points, like the events themselves, are
  /// a pure function of (seed, configuration) and independent of the
  /// thread-pool size (§5.6). Grid points up to a finite run horizon
  /// fire even when the queue drains early; a cancelled run stops
  /// sampling where it stopped executing. Pass a zero interval or
  /// null fn to uninstall — the default, where the per-event cost is
  /// one integer compare.
  void set_sampler(util::SimTime interval,
                   std::function<void(std::uint64_t, util::SimTime)> fn) {
    if (interval <= util::SimTime::zero() || fn == nullptr) {
      sample_interval_ns_ = 0;
      sampler_ = nullptr;
      return;
    }
    sample_interval_ns_ = interval.ns();
    next_sample_ns_ = now_.ns() + interval.ns();
    sample_index_ = 0;
    sampler_ = std::move(fn);
  }

  /// Installs a live progress sink: executed-event count and sim time
  /// are published with relaxed stores at the cancel-poll stride so a
  /// watchdog or status reporter on another thread can read them.
  /// nullptr (the default) keeps the loop free of the stores. The
  /// sink must outlive the run.
  void set_progress(obs::RunProgress* progress) noexcept {
    progress_ = progress;
  }

  /// Sample stride for trace checkpoints (power of two; the loop
  /// tests `executed_ & (stride - 1)`): every 2^16 executed events
  /// the tracer — when installed — gets a sim.events_executed counter
  /// sample, giving the timeline a deterministic progress pulse.
  static constexpr std::uint64_t kTraceCheckpointStride = std::uint64_t{1}
                                                          << 16;

  /// Runs events until the queue drains or the next event would fire
  /// after `horizon`; `now()` ends at the later of its old value and
  /// the last executed event time (never past the horizon). Events
  /// scheduled exactly at the horizon still run. Throws
  /// util::Cancelled when an installed cancellation token trips.
  void run_until(util::SimTime horizon);

  /// Runs until the queue drains.
  void run() { run_until(util::SimTime::max()); }

 private:
  util::SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet run or cancelled
  const util::CancelToken* cancel_ = nullptr;
  obs::RunProgress* progress_ = nullptr;
  std::int64_t sample_interval_ns_ = 0;  // 0 = sampling off
  std::int64_t next_sample_ns_ = 0;
  std::uint64_t sample_index_ = 0;
  std::function<void(std::uint64_t, util::SimTime)> sampler_;
  CalendarQueue queue_;
  EventPool pool_;
};

}  // namespace peerscope::sim
