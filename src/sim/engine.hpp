// Discrete-event simulation engine.
//
// A single-threaded binary-heap scheduler with a total event order:
// ties on timestamp break on insertion sequence, so a given seed always
// replays the exact same execution (DESIGN.md §5.1). Parallelism lives
// one level up — independent experiments each own an Engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/cancel.hpp"
#include "util/sim_time.hpp"

namespace peerscope::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Identifies a scheduled event for cancellation. Value-semantic;
  /// outliving the engine is harmless (cancel just returns false).
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] bool valid() const { return id_ != 0; }

   private:
    friend class Engine;
    explicit Handle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;  // 0 = null handle
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedules `cb` at absolute time `at`; scheduling in the past
  /// (before now()) is a logic error and throws.
  Handle schedule_at(util::SimTime at, Callback cb);

  /// Schedules `cb` after a non-negative delay from now().
  Handle schedule_after(util::SimTime delay, Callback cb);

  /// Cancels a pending event. Returns false if the event already ran,
  /// was already cancelled, or the handle is null.
  bool cancel(Handle handle);

  /// Installs a cancellation token polled between events (every
  /// kCancelStride executed events, so a deadline lands at simulation-
  /// event granularity); run_until throws util::Cancelled when it
  /// trips. nullptr (the default) disables polling entirely — the
  /// uncancellable fast path is byte-identical to builds without this
  /// hook. The token must outlive the run.
  void set_cancel(const util::CancelToken* token) noexcept {
    cancel_ = token;
  }

  /// Poll stride for the cancellation token: coarse enough that the
  /// steady-clock read in deadline checks never shows up in profiles,
  /// fine enough that a deadline cuts a run off within microseconds.
  static constexpr std::uint64_t kCancelStride = 256;

  /// Sample stride for trace checkpoints (power of two; the loop
  /// tests `executed_ & (stride - 1)`): every 2^16 executed events
  /// the tracer — when installed — gets a sim.events_executed counter
  /// sample, giving the timeline a deterministic progress pulse.
  static constexpr std::uint64_t kTraceCheckpointStride = std::uint64_t{1}
                                                          << 16;

  /// Runs events until the queue drains or the next event would fire
  /// after `horizon`; `now()` ends at the later of its old value and
  /// the last executed event time (never past the horizon). Events
  /// scheduled exactly at the horizon still run. Throws
  /// util::Cancelled when an installed cancellation token trips.
  void run_until(util::SimTime horizon);

  /// Runs until the queue drains.
  void run() { run_until(util::SimTime::max()); }

 private:
  struct Item {
    util::SimTime at;
    std::uint64_t seq;
    // std::priority_queue is a max-heap; invert for earliest-first,
    // with sequence as the deterministic tiebreak.
    bool operator<(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  util::SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  const util::CancelToken* cancel_ = nullptr;
  std::priority_queue<Item> queue_;
  // Callbacks live out-of-line so heap items stay 16 bytes; erasing
  // from `live_` doubles as cancellation.
  std::unordered_map<std::uint64_t, Callback> live_;
};

}  // namespace peerscope::sim
