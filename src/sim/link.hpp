// FIFO link occupancy cursor.
//
// Each host's uplink and downlink is a non-preemptive serial resource:
// a transmission reserves the link from max(earliest, busy_until) for
// its serialisation time. Concurrent transfers therefore queue and
// stretch each other's inter-packet gaps — while an uncontended train's
// gaps equal the link serialisation time, which is precisely the
// packet-pair signal the BW classifier reads.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace peerscope::sim {

class LinkCursor {
 public:
  /// Reserves the link for `duration` starting no earlier than
  /// `earliest`; returns the actual start time.
  util::SimTime reserve(util::SimTime earliest, util::SimTime duration) {
    const util::SimTime start =
        earliest > busy_until_ ? earliest : busy_until_;
    busy_until_ = start + duration;
    busy_time_ += duration;
    return start;
  }

  [[nodiscard]] util::SimTime busy_until() const { return busy_until_; }

  /// Cumulative reserved time; busy_time()/elapsed gives utilisation.
  [[nodiscard]] util::SimTime busy_time() const { return busy_time_; }

  /// Queueing backlog relative to `now` (zero when idle).
  [[nodiscard]] util::SimTime backlog(util::SimTime now) const {
    return busy_until_ > now ? busy_until_ - now : util::SimTime::zero();
  }

 private:
  util::SimTime busy_until_{0};
  util::SimTime busy_time_{0};
};

}  // namespace peerscope::sim
