// Calendar-queue event scheduler (Brown 1988; DESIGN.md §14).
//
// The engine's old std::priority_queue cost O(log n) compares per
// push/pop with n in the hundreds of thousands at full swarm scale.
// A calendar queue hashes each event by timestamp into one of N
// "day" buckets of fixed width W ns and pops by walking the calendar
// from the current day, giving O(1) amortized insert and extract when
// N tracks the queue size (the structure resizes itself to keep
// 0.5 <= n/N <= 2 and re-derives W from the observed event spacing).
//
// Determinism contract (DESIGN.md §5.1): pop order is EXACTLY
// ascending (at, seq) — the same total order the binary heap
// produced. Two events tie on `at` only within one bucket (the bucket
// index is a pure function of `at`), where entries are kept sorted,
// so the calendar's bucket walk can never reorder ties; and resizing
// is triggered by size thresholds alone, so a given push/pop sequence
// always rebuilds at the same points regardless of wall-clock
// behaviour.
//
// Buckets are sorted ASCENDING by (at, seq) behind a popped-prefix
// cursor (`head`): swarms mass-schedule at identical instants (every
// peer's tick lands on the same tick-grid timestamp), and since `seq`
// is a monotone counter each new same-instant event is the largest key
// in its tie group — ascending order makes that a push_back and makes
// pops a head increment, both O(1). A descending layout (min at
// back()) inverts the tie order and turns every such push into a
// whole-bucket memmove, which is quadratic on exactly the workloads
// the engine is built for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace peerscope::sim {

/// Min-queue over (at, seq) keys carrying a 32-bit payload (the
/// engine's event-pool index). Not a template: the engine is its only
/// intended user and a concrete type keeps the hot loop inlinable.
class CalendarQueue {
 public:
  struct Entry {
    std::int64_t at = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = 0;
  };

  CalendarQueue();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// `at` must be non-negative (simulation time starts at zero) and
  /// (at, seq) pairs must be unique — both hold by construction in the
  /// engine (seq is a monotone counter).
  void push(std::int64_t at, std::uint64_t seq, std::uint32_t node);

  /// The (at, seq)-smallest entry. Undefined when empty. The search
  /// result is cached, so a min()/pop_min() pair costs one walk.
  [[nodiscard]] const Entry& min();

  /// Removes and returns the smallest entry. Undefined when empty.
  Entry pop_min();

 private:
  // Entries sorted ASCENDING by (at, seq); [0, head) is the popped
  // prefix, min() is data[head]. The dead prefix is reclaimed when the
  // bucket drains (the common case: the cursor sweep empties a day
  // completely before moving on).
  struct Bucket {
    std::vector<Entry> data;
    std::size_t head = 0;
    [[nodiscard]] bool empty() const { return head == data.size(); }
    [[nodiscard]] const Entry& min() const { return data[head]; }
  };

  [[nodiscard]] std::uint64_t width() const {
    return std::uint64_t{1} << shift_;
  }
  [[nodiscard]] std::uint64_t slot_of(std::int64_t at) const {
    return static_cast<std::uint64_t>(at) >> shift_;
  }
  /// Sorted insert into one bucket, O(1) for monotone (at, seq) keys.
  static void place(Bucket& bucket, const Entry& entry);
  /// Points the dequeue cursor at the calendar slot containing `at`.
  void seek_to(std::int64_t at);
  /// Locates the bucket holding the global minimum (cached).
  [[nodiscard]] std::size_t find_min_bucket();
  /// Rebuilds with `nbuckets` buckets and a bucket width re-derived
  /// from the current entries' timestamp spread.
  void resize(std::size_t nbuckets);

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  std::uint32_t shift_;       // log2 of bucket width in ns
  std::uint64_t mask_;        // bucket_count - 1 (power of two)
  std::size_t cur_bucket_;    // dequeue cursor: bucket being examined
  std::uint64_t bucket_top_;  // exclusive upper bound of its current slot
  std::size_t cached_min_bucket_;  // result of find_min_bucket, or npos
  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);
};

}  // namespace peerscope::sim
