// Slab allocator for scheduled-event callbacks (DESIGN.md §14).
//
// The old engine kept callbacks in an unordered_map<seq,
// std::function>, which cost one node allocation per scheduled event
// plus a second heap block whenever a capture list outgrew
// std::function's small-buffer — two mallocs and two frees on the
// innermost simulator path. This pool replaces both: events live in
// fixed 80-byte nodes carved from never-freed chunks, callables are
// move-constructed into 48 bytes of inline storage (every swarm lambda
// fits; oversized or throwing-move callables fall back to one heap
// box), and a free list recycles nodes so a steady-state run stops
// allocating entirely.
//
// Type erasure is a static three-entry vtable per callable type
// (transfer / invoke / destroy) rather than std::function: the engine
// moves the callable out of the node into a stack frame *before*
// running it, so a callback that schedules new events may reuse its
// own node.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace peerscope::sim {

/// Inline callback storage per event node. Sized for the swarm's
/// fattest capture list ([this] + a handful of ids/epochs/times) with
/// room to spare; std::function itself (32 bytes on both mainstream
/// ABIs) also fits, so even Callback-typed values stay inline.
inline constexpr std::size_t kEventInlineBytes = 48;
inline constexpr std::size_t kEventInlineAlign = 16;

/// Static per-callable-type vtable. `transfer` move-constructs the
/// callable from `src` into `dst` and destroys the source (noexcept by
/// construction: throwing-move types are boxed); `invoke` calls it;
/// `destroy` drops it without calling.
struct EventOps {
  void (*transfer)(void* dst, void* src) noexcept;
  void (*invoke)(void* p);
  void (*destroy)(void* p) noexcept;
};

/// One pooled event. `seq` doubles as the handle-validity check: a
/// node is live iff `ops != nullptr`, and a Handle resolves iff its
/// seq matches (seqs are never reused, so recycled nodes can't be
/// cancelled through stale handles).
struct EventNode {
  std::int64_t at = 0;
  std::uint64_t seq = 0;
  const EventOps* ops = nullptr;
  std::uint32_t next_free = 0;
  alignas(kEventInlineAlign) unsigned char storage[kEventInlineBytes];
};

namespace detail {

template <typename F>
inline constexpr bool kEventInlineEligible =
    sizeof(F) <= kEventInlineBytes && alignof(F) <= kEventInlineAlign &&
    std::is_nothrow_move_constructible_v<F>;

template <typename F>
struct InlineEventOps {
  static void transfer(void* dst, void* src) noexcept {
    F* from = std::launder(static_cast<F*>(src));
    ::new (dst) F(std::move(*from));
    from->~F();
  }
  static void invoke(void* p) { (*std::launder(static_cast<F*>(p)))(); }
  static void destroy(void* p) noexcept {
    std::launder(static_cast<F*>(p))->~F();
  }
  static constexpr EventOps ops{&transfer, &invoke, &destroy};
};

template <typename F>
struct BoxedEventOps {
  static F*& slot(void* p) noexcept {
    return *std::launder(static_cast<F**>(p));
  }
  static void transfer(void* dst, void* src) noexcept {
    ::new (dst) F*(slot(src));
  }
  static void invoke(void* p) { (*slot(p))(); }
  static void destroy(void* p) noexcept { delete slot(p); }
  static constexpr EventOps ops{&transfer, &invoke, &destroy};
};

}  // namespace detail

/// Chunked slab of EventNodes. Indices are stable for the pool's
/// lifetime (chunks never move or free), so a 32-bit index plus the
/// node's seq forms an O(1)-validatable handle.
class EventPool {
 public:
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kNullIndex = 0xffff'ffffu;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  /// Destroys any callables still stored (events never run, e.g. when
  /// an engine is torn down with work pending).
  ~EventPool() {
    for (auto& chunk : chunks_) {
      for (EventNode& node : chunk->nodes) {
        if (node.ops != nullptr) node.ops->destroy(node.storage);
      }
    }
  }

  [[nodiscard]] EventNode& operator[](std::uint32_t index) {
    return chunks_[index >> kChunkShift]->nodes[index & (kChunkSize - 1)];
  }

  /// Hints the hardware to pull a node's two cache lines (header +
  /// inline storage) ahead of use. The engine issues this for the next
  /// due event before running the current callback, overlapping the
  /// slab's cold DRAM fetch with useful work.
  void prefetch(std::uint32_t index) const {
    const EventNode& node =
        chunks_[index >> kChunkShift]->nodes[index & (kChunkSize - 1)];
    __builtin_prefetch(&node);
    __builtin_prefetch(node.storage);
  }

  /// Total nodes ever created (valid indices are < capacity()).
  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(chunks_.size()) * kChunkSize;
  }

  /// Returns an empty node (ops == nullptr), recycling freed ones.
  [[nodiscard]] std::uint32_t allocate() {
    if (free_head_ != kNullIndex) {
      const std::uint32_t index = free_head_;
      free_head_ = (*this)[index].next_free;
      return index;
    }
    if (next_fresh_ == capacity()) {
      // Chunk growth: one allocation per 1024 events, amortised away.
      // peerscope-lint: allow(engine-hot-path)
      chunks_.push_back(std::make_unique<Chunk>());
    }
    return next_fresh_++;
  }

  /// Returns a node to the free list. The callable must already be
  /// destroyed (ops == nullptr).
  void release(std::uint32_t index) {
    EventNode& node = (*this)[index];
    node.next_free = free_head_;
    free_head_ = index;
  }

  /// Destroys the stored callable and marks the node empty. The node
  /// is NOT released (callers release separately so the executing path
  /// can hold the node while the callable runs from a stack frame).
  static void discard(EventNode& node) noexcept {
    node.ops->destroy(node.storage);
    node.ops = nullptr;
    node.seq = 0;
  }

  /// Move-constructs `fn` into the node: inline when it fits and moves
  /// are noexcept, otherwise via one heap box. Leaves the node empty
  /// when construction throws (the caller releases it).
  template <typename F>
  static void emplace(EventNode& node, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (detail::kEventInlineEligible<D>) {
      ::new (static_cast<void*>(node.storage)) D(std::forward<F>(fn));
      node.ops = &detail::InlineEventOps<D>::ops;
    } else {
      // Boxed fallback for oversized callables: nothing in the
      // shipping engine takes this branch (kEventInlineEligible holds
      // for every swarm callback); it exists so a future large capture
      // degrades instead of failing to compile.
      // peerscope-lint: allow(engine-hot-path)
      auto* boxed = new D(std::forward<F>(fn));
      ::new (static_cast<void*>(node.storage)) D*(boxed);
      node.ops = &detail::BoxedEventOps<D>::ops;
    }
  }

 private:
  struct Chunk {
    EventNode nodes[kChunkSize];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t free_head_ = kNullIndex;
  std::uint32_t next_fresh_ = 0;
};

}  // namespace peerscope::sim
