#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace peerscope::sim {

namespace {

// Size bounds for the calendar. The floor keeps tiny queues cheap to
// rebuild; the ceiling (256k buckets, ~10 MB of empty buckets) is far
// above the 8x-size trigger for any realistic swarm.
constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 18;

// Bucket widths stay within [1 ns, ~18 min] — outside that range the
// calendar degenerates to a sorted list either way.
constexpr std::uint32_t kMinShift = 0;
constexpr std::uint32_t kMaxShift = 40;

// Ascending (at, seq): the bucket sort order; min() is the first live
// entry.
constexpr bool entry_before(const CalendarQueue::Entry& a,
                            const CalendarQueue::Entry& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets),
      shift_(20),  // 1.05 ms days until the first adaptive resize
      mask_(kMinBuckets - 1),
      cur_bucket_(0),
      bucket_top_(std::uint64_t{1} << 20),
      cached_min_bucket_(kNoCache) {}

void CalendarQueue::seek_to(std::int64_t at) {
  const std::uint64_t slot = slot_of(at);
  cur_bucket_ = static_cast<std::size_t>(slot & mask_);
  bucket_top_ = (slot + 1) << shift_;
}

void CalendarQueue::place(Bucket& bucket, const Entry& entry) {
  if (bucket.empty() && bucket.head != 0) {
    bucket.data.clear();
    bucket.head = 0;
  }
  // Typical case: seq is monotone, so a same-instant burst (every
  // peer's tick on the same grid timestamp) always appends — probe
  // back() before paying for a binary search.
  if (bucket.data.empty() || entry_before(bucket.data.back(), entry)) {
    bucket.data.push_back(entry);
  } else if (bucket.head > 0 && entry_before(entry, bucket.min())) {
    // A new global-ish minimum can reuse a popped slot directly.
    bucket.data[--bucket.head] = entry;
  } else {
    bucket.data.insert(
        std::upper_bound(
            bucket.data.begin() + static_cast<std::ptrdiff_t>(bucket.head),
            bucket.data.end(), entry, entry_before),
        entry);
  }
}

void CalendarQueue::push(std::int64_t at, std::uint64_t seq,
                         std::uint32_t node) {
  // Keep the cursor invariant — no unpopped entry lives in a slot
  // before the cursor's — by seeking back whenever an entry lands in
  // an earlier day (possible: callbacks may schedule at now() exactly
  // while the cursor has advanced past empty near days).
  if (size_ == 0 || slot_of(at) < (bucket_top_ >> shift_) - 1) {
    seek_to(at);
  }
  place(buckets_[static_cast<std::size_t>(slot_of(at) & mask_)],
        Entry{at, seq, node});
  ++size_;
  cached_min_bucket_ = kNoCache;
  if (size_ > 8 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    resize(buckets_.size() * 2);
  }
}

std::size_t CalendarQueue::find_min_bucket() {
  if (cached_min_bucket_ != kNoCache) return cached_min_bucket_;
  // Walk the calendar from the current day: the first bucket whose
  // minimum falls inside its current day holds the global minimum
  // (days are examined in ascending order and a day maps to exactly
  // one bucket per year).
  for (std::size_t step = 0; step < buckets_.size(); ++step) {
    const Bucket& bucket = buckets_[cur_bucket_];
    if (!bucket.empty() &&
        static_cast<std::uint64_t>(bucket.min().at) < bucket_top_) {
      cached_min_bucket_ = cur_bucket_;
      return cur_bucket_;
    }
    cur_bucket_ = (cur_bucket_ + 1) & mask_;
    bucket_top_ += width();
  }
  // A full year is empty of due events: every remaining entry is far
  // in the future. Fall back to a direct scan of bucket minima and
  // jump the cursor to the winner's day (Brown's "direct search").
  std::size_t best = kNoCache;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == kNoCache ||
        entry_before(buckets_[b].min(), buckets_[best].min())) {
      best = b;
    }
  }
  seek_to(buckets_[best].min().at);
  cached_min_bucket_ = best;
  return best;
}

const CalendarQueue::Entry& CalendarQueue::min() {
  return buckets_[find_min_bucket()].min();
}

CalendarQueue::Entry CalendarQueue::pop_min() {
  const std::size_t b = find_min_bucket();
  Bucket& bucket = buckets_[b];
  const Entry entry = bucket.data[bucket.head++];
  if (bucket.head == bucket.data.size()) {
    bucket.data.clear();
    bucket.head = 0;
  } else if (bucket.head > 64 &&
             bucket.head > bucket.data.size() - bucket.head) {
    // A bucket that never fully drains (a far-future entry keeps it
    // alive across cursor passes) would otherwise grow its dead prefix
    // without bound. Compacting once the prefix outweighs the live
    // tail is amortized O(1) per pop.
    bucket.data.erase(
        bucket.data.begin(),
        bucket.data.begin() + static_cast<std::ptrdiff_t>(bucket.head));
    bucket.head = 0;
  }
  --size_;
  // The cache stays valid only if this bucket still fronts its day.
  if (bucket.empty() ||
      static_cast<std::uint64_t>(bucket.min().at) >= bucket_top_) {
    cached_min_bucket_ = kNoCache;
  }
  if (size_ < 2 * buckets_.size() && buckets_.size() > kMinBuckets) {
    resize(std::max(kMinBuckets, buckets_.size() / 2));
  }
  return entry;
}

void CalendarQueue::resize(std::size_t nbuckets) {
  std::vector<Entry> all;
  all.reserve(size_);
  std::int64_t min_at = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_at = std::numeric_limits<std::int64_t>::min();
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.data.size(); ++i) {
      const Entry& entry = bucket.data[i];
      min_at = std::min(min_at, entry.at);
      max_at = std::max(max_at, entry.at);
      all.push_back(entry);
    }
    bucket.data.clear();
    bucket.head = 0;
  }
  // Re-derive the day width from the observed spread so a day holds
  // ~16 events on average: fat days keep the bucket directory small
  // enough to stay cache-resident at six-figure pending sets, and the
  // head-cursor layout keeps inserts O(1) regardless of day size.
  // Empty/degenerate spreads keep the old width.
  if (size_ > 1 && max_at > min_at) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(max_at - min_at);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, 16 * span / static_cast<std::uint64_t>(size_));
    shift_ = std::clamp(
        static_cast<std::uint32_t>(std::bit_width(target) - 1), kMinShift,
        kMaxShift);
  }
  buckets_.assign(nbuckets, {});
  mask_ = nbuckets - 1;
  for (const Entry& entry : all) {
    place(buckets_[static_cast<std::size_t>(slot_of(entry.at) & mask_)],
          entry);
  }
  if (size_ > 0) {
    seek_to(min_at);
  } else {
    seek_to(0);
  }
  cached_min_bucket_ = kNoCache;
}

}  // namespace peerscope::sim
