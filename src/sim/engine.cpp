#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace peerscope::sim {

Engine::Handle Engine::schedule_at(util::SimTime at, Callback cb) {
  if (at < now_) {
    throw std::logic_error("Engine: scheduling into the past");
  }
  if (!cb) {
    throw std::invalid_argument("Engine: null callback");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Item{at, seq});
  live_.emplace(seq, std::move(cb));
  return Handle{seq};
}

Engine::Handle Engine::schedule_after(util::SimTime delay, Callback cb) {
  if (delay < util::SimTime::zero()) {
    throw std::logic_error("Engine: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

bool Engine::cancel(Handle handle) {
  if (handle.id_ == 0) return false;
  return live_.erase(handle.id_) > 0;
}

void Engine::run_until(util::SimTime horizon) {
  const std::uint64_t executed_before = executed_;
  while (!queue_.empty()) {
    if (cancel_ != nullptr && executed_ % kCancelStride == 0 &&
        cancel_->cancelled()) {
      // Publish the work done so far before unwinding: a timed-out
      // run's partial counters still land in the sidecar.
      if (obs::enabled()) {
        obs::counter("sim.events_executed").add(executed_ - executed_before);
      }
      throw util::Cancelled("simulation cancelled at t=" +
                            std::to_string(now_.seconds()) + "s after " +
                            std::to_string(executed_) + " events");
    }
    const Item item = queue_.top();
    if (item.at > horizon) break;
    queue_.pop();
    const auto it = live_.find(item.seq);
    if (it == live_.end()) continue;  // cancelled
    // Move the callback out before invoking: the callback may schedule
    // new events and rehash `live_`.
    Callback cb = std::move(it->second);
    live_.erase(it);
    now_ = item.at;
    ++executed_;
    // Deterministic trace checkpoints: the sample points depend only
    // on the executed-event count, so the sampled values — and the
    // sample count — are reproducible for a fixed seed at any pool
    // size. The mask test keeps the traced-off cost to an AND+branch
    // ahead of the tracer's own relaxed load.
    if ((executed_ & (kTraceCheckpointStride - 1)) == 0) {
      PEERSCOPE_TRACE_COUNTER("sim.events_executed",
                              static_cast<std::int64_t>(executed_));
    }
    cb();
  }
  // One batched publish per drive, not one per event: the event loop
  // is the simulator's innermost hot path.
  if (obs::enabled()) {
    obs::counter("sim.events_executed").add(executed_ - executed_before);
  }
}

}  // namespace peerscope::sim
