#include "sim/engine.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace peerscope::sim {

void Engine::run_until(util::SimTime horizon) {
  const std::uint64_t executed_before = executed_;
  // Callbacks execute from this stack frame, not from their pool node:
  // the node is recycled first, so a callback that schedules new work
  // may land in its own slot.
  alignas(kEventInlineAlign) unsigned char frame[kEventInlineBytes];
  while (!queue_.empty()) {
    if (cancel_ != nullptr && executed_ % kCancelStride == 0 &&
        cancel_->cancelled()) {
      // Publish the work done so far before unwinding: a timed-out
      // run's partial counters still land in the sidecar.
      if (obs::enabled()) {
        obs::counter("sim.events_executed").add(executed_ - executed_before);
      }
      if (progress_ != nullptr) {
        progress_->events.store(executed_, std::memory_order_relaxed);
        progress_->sim_time_ns.store(now_.ns(), std::memory_order_relaxed);
      }
      throw util::Cancelled("simulation cancelled at t=" +
                            std::to_string(now_.seconds()) + "s after " +
                            std::to_string(executed_) + " events");
    }
    // Live progress rides the cancel stride: two relaxed stores per
    // 256 events when a sink is installed, one pointer test when not.
    if (progress_ != nullptr && executed_ % kCancelStride == 0) {
      progress_->events.store(executed_, std::memory_order_relaxed);
      progress_->sim_time_ns.store(now_.ns(), std::memory_order_relaxed);
    }
    if (queue_.min().at > horizon.ns()) break;
    // Fire every grid point strictly before the next event: events at
    // exactly the grid time execute first, then the sample covers them.
    while (sample_interval_ns_ != 0 && next_sample_ns_ <= horizon.ns() &&
           queue_.min().at > next_sample_ns_) {
      const util::SimTime at{next_sample_ns_};
      next_sample_ns_ += sample_interval_ns_;
      sampler_(sample_index_++, at);
    }
    const CalendarQueue::Entry item = queue_.pop_min();
    EventNode& node = pool_[item.node];
    if (node.seq != item.seq || node.ops == nullptr) continue;  // cancelled
    // Move the callback out before invoking: the callback may schedule
    // new events and must be free to reuse this node.
    const EventOps* ops = node.ops;
    ops->transfer(frame, node.storage);
    node.ops = nullptr;
    node.seq = 0;
    pool_.release(item.node);
    --live_;
    now_ = util::SimTime{item.at};
    ++executed_;
    // Deterministic trace checkpoints: the sample points depend only
    // on the executed-event count, so the sampled values — and the
    // sample count — are reproducible for a fixed seed at any pool
    // size. The mask test keeps the traced-off cost to an AND+branch
    // ahead of the tracer's own relaxed load.
    if ((executed_ & (kTraceCheckpointStride - 1)) == 0) {
      PEERSCOPE_TRACE_COUNTER("sim.events_executed",
                              static_cast<std::int64_t>(executed_));
    }
    // Overlap the next event's cold slab fetch with this callback's
    // execution. min() here is the same walk the next iteration would
    // pay anyway (and is cached for it); the hint goes stale only when
    // the callback schedules something even earlier, which costs
    // nothing but the wasted prefetch.
    if (!queue_.empty()) {
      pool_.prefetch(queue_.min().node);
    }
    // Destroy the moved-out callable even when it throws — the same
    // cleanup the old out-of-line std::function got from unwinding.
    struct FrameGuard {
      const EventOps* ops;
      void* p;
      ~FrameGuard() { ops->destroy(p); }
    } guard{ops, frame};
    ops->invoke(frame);
  }
  // A finite horizon defines the run's full grid: fire the points
  // between the last event and the horizon so every series covers the
  // configured duration. An open-ended run() has no such grid end.
  if (sample_interval_ns_ != 0 && horizon < util::SimTime::max()) {
    while (next_sample_ns_ <= horizon.ns()) {
      const util::SimTime at{next_sample_ns_};
      next_sample_ns_ += sample_interval_ns_;
      sampler_(sample_index_++, at);
    }
  }
  // One batched publish per drive, not one per event: the event loop
  // is the simulator's innermost hot path.
  if (obs::enabled()) {
    obs::counter("sim.events_executed").add(executed_ - executed_before);
  }
  if (progress_ != nullptr) {
    progress_->events.store(executed_, std::memory_order_relaxed);
    progress_->sim_time_ns.store(now_.ns(), std::memory_order_relaxed);
  }
}

}  // namespace peerscope::sim
