// Packet-train transmission timing.
//
// A video chunk is sent as a burst of back-to-back packets. This module
// computes, without scheduling per-packet events, the receiver-side
// arrival timestamp of every packet in the burst: sender uplink
// serialisation -> path propagation (+ small jitter) -> receiver
// downlink serialisation. The resulting inter-packet gaps carry the
// path-bottleneck signature the paper's packet-pair classifier
// (min IPG < 1 ms <=> > 10 Mb/s) measures.
#pragma once

#include <cstdint>
#include <vector>

#include "net/access.hpp"
#include "net/topology.hpp"
#include "sim/impairment.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace peerscope::sim {

struct TrainSpec {
  util::SimTime start;            // earliest sender release time
  int packet_count = 1;
  std::int32_t packet_bytes = 0;
  /// Peak of the per-packet forward jitter (uniform in [0, max)).
  util::SimTime jitter_max = util::SimTime::micros(30);
  /// Path fault injection: bursty loss, capture reordering and
  /// duplication, transient outages. Lost packets consume uplink
  /// capacity and appear in `departures` but never arrive (no receiver
  /// record — exactly what a vantage-point sniffer would miss). The
  /// default spec is fully disabled and reproduces the clean path
  /// bit-for-bit.
  ImpairmentSpec impairment;
  /// Identifies the receiver link for the deterministic outage
  /// schedule (callers key it on the receiver host).
  std::uint64_t link_key = 0;
};

struct TrainResult {
  /// Receiver-side arrival time of each packet, non-decreasing.
  std::vector<util::SimTime> arrivals;
  /// Sender-side departure time of each packet (uplink serialisation
  /// finished) — what a sniffer at the sender timestamps for TX.
  std::vector<util::SimTime> departures;
  /// When the sender uplink finished serialising the last packet.
  util::SimTime sender_done{0};
  /// When the last packet was fully received (== arrivals.back()).
  [[nodiscard]] util::SimTime completed() const {
    return arrivals.empty() ? util::SimTime::zero() : arrivals.back();
  }
};

/// Simulates one burst from `sender` to `receiver` over `path`,
/// advancing both link cursors. Deterministic given the RNG state.
/// `channel` carries Gilbert–Elliott burst state across trains on the
/// same directed pair; pass nullptr for a memoryless channel (always
/// correct when impairment.loss_burst <= 1).
[[nodiscard]] TrainResult transmit_train(const TrainSpec& spec,
                                         const net::AccessLink& sender,
                                         LinkCursor& sender_up,
                                         const net::AccessLink& receiver,
                                         LinkCursor& receiver_down,
                                         const net::PathInfo& path,
                                         util::Rng& rng,
                                         GilbertElliott* channel = nullptr);

}  // namespace peerscope::sim
