// Network impairment model: the faults a real Internet path injects
// into a packet train that the paper's clean-room simulator previously
// ignored.
//
// Four orthogonal effects, all disabled by default so the lossless
// reproduction path is bit-identical to the un-impaired simulator:
//
//   - bursty loss: a two-state Gilbert–Elliott channel (loss_rate is
//     the stationary drop probability, loss_burst the mean number of
//     consecutive drops). loss_burst == 1 degenerates to independent
//     Bernoulli drops — exactly the old flat `loss_rate` knob.
//   - capture reordering: the sniffer stamps a packet late, landing it
//     between later arrivals; once the trace is time-sorted this
//     fabricates an abnormally small inter-packet gap.
//   - capture duplication: the sniffer records a packet twice a few
//     microseconds apart (a classic dirty-pcap artifact), fabricating
//     a near-zero gap that a naive min-IPG classifier reads as a
//     >10 Mb/s path.
//   - transient link outages: deterministic hash-scheduled windows
//     during which every packet on the link is dropped (modem resyncs,
//     wifi fades, ARP storms). Hash-keyed, so enabling outages never
//     perturbs the shared RNG stream.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace peerscope::sim {

struct ImpairmentSpec {
  /// Stationary per-packet drop probability along the path.
  double loss_rate = 0.0;
  /// Mean length of a loss burst (Gilbert–Elliott bad-state sojourn);
  /// <= 1 means independent drops (the legacy flat model).
  double loss_burst = 1.0;
  /// Probability a packet's capture timestamp is delayed past later
  /// packets (sniffer-side reordering).
  double reorder_rate = 0.0;
  /// Peak of the reordering displacement (uniform in (0, max]).
  util::SimTime reorder_delay = util::SimTime::millis(2);
  /// Probability a packet is recorded twice (capture duplication).
  double duplicate_rate = 0.0;
  /// Mean transient link outages per second (0 disables).
  double outage_per_s = 0.0;
  /// Length of each outage window.
  util::SimTime outage_duration = util::SimTime::millis(200);

  [[nodiscard]] bool has_loss() const { return loss_rate > 0.0; }
  [[nodiscard]] bool has_outage() const { return outage_per_s > 0.0; }
  [[nodiscard]] bool enabled() const {
    return loss_rate > 0.0 || reorder_rate > 0.0 || duplicate_rate > 0.0 ||
           outage_per_s > 0.0;
  }

  /// The legacy flat `loss_rate` knob expressed in the new model:
  /// independent drops, nothing else.
  [[nodiscard]] static ImpairmentSpec flat_loss(double rate) {
    ImpairmentSpec spec;
    spec.loss_rate = rate;
    return spec;
  }
};

/// Per-directed-channel Gilbert–Elliott loss state. One instance per
/// (sender, receiver) pair carries burst correlation across trains;
/// with loss_burst <= 1 the state is never consulted and drops reduce
/// to the exact legacy Bernoulli draw.
class GilbertElliott {
 public:
  /// Advances the channel one packet and reports whether it was lost.
  /// Consumes exactly one RNG draw per call when loss is enabled and
  /// none when loss_rate == 0.
  [[nodiscard]] bool lose(const ImpairmentSpec& spec, util::Rng& rng);

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  bool bad_ = false;
};

/// Whether the link identified by `link_key` is inside an outage
/// window at time `at`. Deterministic: derived by hashing
/// (link_key, epoch), never from the simulation RNG stream, so outage
/// schedules are stable under replay and independent of other
/// impairments. Each epoch of length 1/outage_per_s contains one
/// outage window at a hash-chosen offset.
[[nodiscard]] bool in_outage(const ImpairmentSpec& spec,
                             std::uint64_t link_key, util::SimTime at);

}  // namespace peerscope::sim
