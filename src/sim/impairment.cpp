#include "sim/impairment.hpp"

#include <algorithm>

namespace peerscope::sim {

bool GilbertElliott::lose(const ImpairmentSpec& spec, util::Rng& rng) {
  if (spec.loss_rate <= 0.0) return false;
  if (spec.loss_burst <= 1.0) {
    // Independent drops: the exact legacy flat-loss draw.
    return rng.chance(spec.loss_rate);
  }
  // Stationary bad-state probability pi = loss_rate, mean bad sojourn
  // loss_burst packets: P(bad->good) = 1/burst,
  // P(good->bad) = pi / (burst * (1 - pi)).
  const double pi = std::min(spec.loss_rate, 0.95);
  const double leave_bad = 1.0 / spec.loss_burst;
  const double enter_bad = leave_bad * pi / (1.0 - pi);
  if (bad_) {
    if (rng.chance(leave_bad)) bad_ = false;
  } else {
    bad_ = rng.chance(enter_bad);
  }
  return bad_;
}

bool in_outage(const ImpairmentSpec& spec, std::uint64_t link_key,
               util::SimTime at) {
  if (spec.outage_per_s <= 0.0 || at.ns() < 0) return false;
  const auto epoch_ns = static_cast<std::int64_t>(1e9 / spec.outage_per_s);
  if (epoch_ns <= 0) return true;  // absurd rate: permanently down
  const std::int64_t duration_ns = spec.outage_duration.ns();
  if (duration_ns >= epoch_ns) return true;
  const std::int64_t epoch = at.ns() / epoch_ns;
  const std::int64_t offset = at.ns() - epoch * epoch_ns;
  // Hash-draw the outage start offset inside this epoch.
  util::SplitMix64 mix{link_key ^
                       (0x007a6eULL + static_cast<std::uint64_t>(epoch) *
                                          0x9e3779b97f4a7c15ULL)};
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const auto start = static_cast<std::int64_t>(
      u * static_cast<double>(epoch_ns - duration_ns));
  return offset >= start && offset < start + duration_ns;
}

}  // namespace peerscope::sim
