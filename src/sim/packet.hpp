// Wire-level packet description.
//
// The trace substrate records exactly the fields the paper's passive
// methodology consumes: addresses, size, and the received TTL (from
// which it derives hop counts as 128 - TTL).
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"

namespace peerscope::sim {

enum class PacketKind : std::uint8_t {
  kVideo,      // payload chunk fragment
  kSignaling,  // buffer maps, peer lists, keep-alives, requests
};

/// Initial TTL: the paper assumes Windows hosts (default 128) when
/// converting TTL to hop count, and the commercial clients it measures
/// are Windows applications.
inline constexpr int kInitialTtl = 128;

struct Packet {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::int32_t bytes = 0;     // layer-3 size
  std::uint8_t ttl = kInitialTtl;  // value observed at the receiver
  PacketKind kind = PacketKind::kVideo;
};

/// Typical sizes (bytes, IP layer). Video fragments ride full-MTU-ish
/// packets — 1250 B is the paper's reference size for the 1 ms / 10 Mb/s
/// packet-pair threshold.
inline constexpr std::int32_t kVideoPacketBytes = 1250;
inline constexpr std::int32_t kSignalingPacketBytes = 120;

/// TTL left after traversing `hops` routers; saturates at 1 so absurd
/// paths do not wrap (real networks would have dropped the packet).
[[nodiscard]] constexpr std::uint8_t ttl_after(int hops) {
  const int left = kInitialTtl - hops;
  return static_cast<std::uint8_t>(left < 1 ? 1 : left);
}

}  // namespace peerscope::sim
