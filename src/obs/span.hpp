// RAII phase spans: wall-time per pipeline stage, with nesting.
//
//   obs::Span span{"simulate"};          // inside Span{"run.pplive"}
//
// records one sample under the path "run.pplive/simulate" when the
// scope exits. Nesting is tracked per thread (a pool task never
// migrates mid-span), so span paths — and their counts — are
// deterministic for a fixed seed at any worker count; only the
// recorded durations vary run to run. When a TraceRecorder is
// installed (trace.hpp) the same scope additionally emits a
// begin/end event pair carrying the full path, timestamping the span
// on the trace timeline. With neither a registry nor a tracer
// installed a Span costs two relaxed loads and records nothing.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace peerscope::obs {

class TraceRecorder;

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  MetricsRegistry* registry_ = nullptr;
  TraceRecorder* tracer_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates scope wall-time into a timing histogram — the per-call
/// sibling of Span for hot stages (train expansion) where a mutexed
/// span record per call would be too heavy.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram) : histogram_(histogram) {
    if (histogram_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_) {
      histogram_.observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace peerscope::obs

#define PEERSCOPE_SPAN_CONCAT2(a, b) a##b
#define PEERSCOPE_SPAN_CONCAT(a, b) PEERSCOPE_SPAN_CONCAT2(a, b)
/// Named RAII span for the rest of the enclosing scope.
#define PEERSCOPE_SPAN(name) \
  ::peerscope::obs::Span PEERSCOPE_SPAN_CONCAT(ps_span_, __LINE__) { name }
