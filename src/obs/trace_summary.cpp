#include "obs/trace_summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/io_faults.hpp"
#include "util/table.hpp"

namespace peerscope::obs {

namespace {

constexpr std::string_view kTraceSchema = "peerscope.trace/1";

/// `"key": "..."` extractor for our own writer's dialect (note the
/// space after the colon — trace_json always emits one). Returns
/// nullopt when the key is absent or the value is torn.
std::optional<std::string> string_field(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = start + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c == '\\') {
      if (i + 1 >= line.size()) return std::nullopt;
      out += line[++i];
    } else {
      out += c;
    }
  }
  return std::nullopt;  // closing quote lost to a torn tail
}

/// `"key": <number>` extractor; handles the integer and the
/// integer.fraction forms trace_json emits.
std::optional<double> number_field(const std::string& line,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto start = line.find(needle);
  if (start == std::string::npos) return std::nullopt;
  const char* begin = line.c_str() + start + needle.size();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  // A number torn at end-of-line parses but may be truncated; require
  // a delimiter after it so we only trust complete values.
  if (*end != ',' && *end != '}' && *end != '\n' && *end != '\0') {
    return std::nullopt;
  }
  return value;
}

std::optional<TraceEventType> type_from_phase(const std::string& ph) {
  if (ph == "B") return TraceEventType::kBegin;
  if (ph == "E") return TraceEventType::kEnd;
  if (ph == "i") return TraceEventType::kInstant;
  if (ph == "C") return TraceEventType::kCounter;
  return std::nullopt;
}

}  // namespace

TraceFile read_trace_file(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("trace: cannot open " + path.string());
  }
  std::istringstream in{*buf};
  TraceFile file;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!header_seen && line.rfind("{\"schema\"", 0) == 0) {
      header_seen = true;
      file.schema = string_field(line, "schema").value_or("");
      if (!file.schema.empty() && file.schema != kTraceSchema) {
        throw std::runtime_error("trace: " + path.string() +
                                 " has schema \"" + file.schema +
                                 "\", expected \"" +
                                 std::string{kTraceSchema} + "\"");
      }
      continue;
    }
    if (line.rfind("\"dropped\"", 0) == 0) {
      if (const auto dropped = number_field("{" + line, "dropped")) {
        file.dropped = static_cast<std::uint64_t>(*dropped);
      }
      continue;
    }
    if (line[0] != '{') continue;  // structural lines ("traceEvents", "]}")
    const auto name = string_field(line, "name");
    const auto ph = string_field(line, "ph");
    const auto tid = number_field(line, "tid");
    const auto ts = number_field(line, "ts");
    const auto type = ph ? type_from_phase(*ph) : std::nullopt;
    if (!name || !type || !tid || !ts) {
      ++file.skipped_lines;  // torn or foreign event line: salvage on
      continue;
    }
    TraceEvent event;
    event.name = *name;
    event.type = *type;
    event.tid = static_cast<std::uint32_t>(*tid);
    event.ts_ns = std::llround(*ts * 1000.0);
    if (*type == TraceEventType::kCounter) {
      event.value = static_cast<std::int64_t>(
          number_field(line, "value").value_or(0.0));
    }
    file.events.push_back(std::move(event));
  }
  return file;
}

std::vector<SpanAttribution> attribute_spans(
    const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& event : events) {
    if (event.type == TraceEventType::kBegin ||
        event.type == TraceEventType::kEnd) {
      ordered.push_back(&event);
    }
  }
  // Events of one thread must replay chronologically; stable so equal
  // timestamps keep file order (outer B before nested B).
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->ts_ns < b->ts_ns;
                   });

  struct Frame {
    const std::string* path;
    std::int64_t start_ns;
    std::int64_t child_ns;
  };
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
  };
  std::map<std::string, Agg> by_path;
  std::vector<Frame> stack;
  std::uint32_t current_tid = 0;
  for (const TraceEvent* event : ordered) {
    if (!stack.empty() && event->tid != current_tid) stack.clear();
    current_tid = event->tid;
    if (event->type == TraceEventType::kBegin) {
      stack.push_back(Frame{&event->name, event->ts_ns, 0});
      continue;
    }
    // kEnd: match the nearest open frame with this path; frames above
    // it lost their E to a ring wrap or a dead run — discard them
    // unattributed instead of corrupting later pairs.
    std::size_t depth = stack.size();
    while (depth > 0 && *stack[depth - 1].path != event->name) --depth;
    if (depth == 0) continue;  // unmatched end
    stack.resize(depth);
    const Frame frame = stack.back();
    stack.pop_back();
    const std::int64_t duration = event->ts_ns - frame.start_ns;
    if (duration < 0) continue;
    Agg& agg = by_path[*frame.path];
    ++agg.count;
    agg.total_ns += duration;
    agg.self_ns += std::max<std::int64_t>(0, duration - frame.child_ns);
    if (!stack.empty()) stack.back().child_ns += duration;
  }

  std::vector<SpanAttribution> rows;
  rows.reserve(by_path.size());
  for (const auto& [path, agg] : by_path) {
    SpanAttribution row;
    row.path = path;
    row.app = path.substr(0, path.find('/'));
    row.count = agg.count;
    row.total_ns = agg.total_ns;
    row.self_ns = agg.self_ns;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_trace_summary(const std::vector<SpanAttribution>& rows,
                                 std::size_t top_n) {
  std::vector<const SpanAttribution*> sorted;
  sorted.reserve(rows.size());
  std::int64_t self_sum = 0;
  for (const SpanAttribution& row : rows) {
    sorted.push_back(&row);
    self_sum += row.self_ns;
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanAttribution* a, const SpanAttribution* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->path < b->path;
            });
  if (sorted.size() > top_n) sorted.resize(top_n);

  util::TextTable table{
      {"app", "span", "count", "total ms", "self ms", "self %"}};
  for (const SpanAttribution* row : sorted) {
    const double self_pct =
        self_sum > 0 ? 100.0 * static_cast<double>(row->self_ns) /
                           static_cast<double>(self_sum)
                     : 0.0;
    table.add_row({row->app, row->path, util::TextTable::count(row->count),
                   util::TextTable::num(
                       static_cast<double>(row->total_ns) / 1e6, 3),
                   util::TextTable::num(
                       static_cast<double>(row->self_ns) / 1e6, 3),
                   util::TextTable::num(self_pct, 1)});
  }
  return table.render();
}

std::vector<CounterAttribution> attribute_counters(
    const std::vector<TraceEvent>& events) {
  struct Agg {
    std::uint64_t samples = 0;
    std::int64_t last = 0;
    std::int64_t last_ts = 0;
    std::int64_t peak = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& event : events) {
    if (event.type != TraceEventType::kCounter) continue;
    Agg& agg = by_name[event.name];
    ++agg.samples;
    // >= : equal timestamps resolve to the later file line, the
    // writer's emission order.
    if (agg.samples == 1 || event.ts_ns >= agg.last_ts) {
      agg.last = event.value;
      agg.last_ts = event.ts_ns;
    }
    agg.peak = std::max(agg.peak, event.value);
  }
  std::vector<CounterAttribution> rows;
  rows.reserve(by_name.size());
  for (const auto& [name, agg] : by_name) {
    rows.push_back(CounterAttribution{name, agg.samples, agg.last, agg.peak});
  }
  return rows;
}

std::string render_counter_summary(const std::vector<CounterAttribution>& rows,
                                   std::size_t top_n) {
  if (rows.empty()) return {};
  std::vector<const CounterAttribution*> sorted;
  sorted.reserve(rows.size());
  for (const CounterAttribution& row : rows) sorted.push_back(&row);
  std::sort(sorted.begin(), sorted.end(),
            [](const CounterAttribution* a, const CounterAttribution* b) {
              if (a->samples != b->samples) return a->samples > b->samples;
              return a->name < b->name;
            });
  if (sorted.size() > top_n) sorted.resize(top_n);
  util::TextTable table{{"counter", "samples", "last", "peak"}};
  for (const CounterAttribution* row : sorted) {
    table.add_row({row->name, util::TextTable::count(row->samples),
                   util::TextTable::count(
                       static_cast<std::uint64_t>(std::max<std::int64_t>(
                           0, row->last))),
                   util::TextTable::count(
                       static_cast<std::uint64_t>(std::max<std::int64_t>(
                           0, row->peak)))});
  }
  return table.render();
}

std::string deterministic_rendering(const TraceFile& file) {
  TraceSnapshot snapshot;
  snapshot.events = file.events;
  snapshot.dropped = file.dropped;
  return deterministic_trace(snapshot);
}

}  // namespace peerscope::obs
