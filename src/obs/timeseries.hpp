// Per-interval time-series telemetry (DESIGN.md §17).
//
// The metrics registry (metrics.hpp) answers "how much, end to end";
// this module answers "how did it evolve". Each run samples its own
// run-local counters on a *sim-time* grid — the sampling hook lives in
// sim::Engine and fires every N simulated seconds, so the sample
// points, and therefore every recorded value, are a pure function of
// (seed, configuration) and independent of the thread-pool size, the
// same §5.6 reduction contract the registry obeys. Rows land here
// keyed by (run, interval index); deterministic_series() renders the
// whole store byte-identically at any pool size for golden tests.
//
// Latency-style samples aggregate into LogHistogram, an HDR-style
// log-bucketed histogram: 32 sub-buckets per power of two bound the
// relative quantile error at ~3%, values below 64 are exact, and the
// sparse bucket list serializes compactly into the sidecar.
//
// Persistence is the `PSTS` binary sidecar: the generic CRC-32C
// record framing of util/framing.hpp (PSBT's container, factored out
// in this PR) around one self-contained text payload per interval,
// written through util::write_file_atomic and read back through
// util::io::read_file so storage fault injection covers it. A strict
// reader throws on any damage; a salvage reader recovers everything
// outside damaged regions with exact drop accounting.
//
// Cost contract (same as metrics/trace): nothing records unless a
// recorder is installed (install_series), and with none installed the
// swarm never arms the engine sampling hook, so series-off runs stay
// byte-identical to builds that predate this layer.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/framing.hpp"
#include "util/mutex.hpp"
#include "util/sim_time.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::obs {

/// Log-bucketed (HDR-style) integer histogram. Bucket layout: values
/// in [0, 64) get exact unit buckets; above that, each power of two
/// splits into 32 geometric sub-buckets, so the bucket width never
/// exceeds 1/32 of the value and quantile() — which returns the
/// bucket midpoint — is within ~3.2% relative error of the exact
/// sample quantile. Negative values clamp to 0 (the domains are ns,
/// bytes, counts).
class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1}
                                               << kSubBucketBits;

  void record(std::int64_t value, std::uint64_t count = 1);
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }

  /// The representative value (bucket midpoint) of the bucket holding
  /// the q-th sample, q in [0, 1]. 0 when the histogram is empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// Sparse (bucket index, count) pairs, ascending index — the
  /// serialized form.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  nonzero() const;

  /// Rebuilds from the serialized form. `sum` restores the exact
  /// recorded sum (bucket floors alone could not).
  [[nodiscard]] static LogHistogram from_buckets(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets,
      std::int64_t sum);

  /// Bucket index for a value, and the inclusive lower edge / width of
  /// a bucket — exposed for the quantile-error tests.
  [[nodiscard]] static std::uint32_t bucket_index(std::int64_t value);
  [[nodiscard]] static std::int64_t bucket_floor(std::uint32_t index);
  [[nodiscard]] static std::int64_t bucket_width(std::uint32_t index);

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// One interval's worth of deltas for one run: counter increments
/// since the previous grid point plus the latency samples that
/// completed inside the interval. std::map so rendering is
/// deterministic.
struct SeriesRow {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, LogHistogram> histograms;
};

struct SeriesInterval {
  std::uint64_t index = 0;  // grid point k covers ((k)·N, (k+1)·N] sim-time
  std::int64_t at_ns = 0;   // the grid point's sim time
  SeriesRow row;
};

struct RunSeries {
  std::int64_t interval_ns = 0;
  std::vector<SeriesInterval> intervals;  // ascending index
};

/// Point-in-time copy of every run's series, keyed by run id.
struct SeriesSnapshot {
  std::map<std::string, RunSeries> runs;
};

/// Central store for per-run interval rows. Each run's engine invokes
/// record() from its own thread; the mutex only serializes the rare
/// (once per sim-interval) appends, never the simulation hot path.
class TimeseriesRecorder {
 public:
  explicit TimeseriesRecorder(
      util::SimTime interval = util::SimTime::seconds(10));

  TimeseriesRecorder(const TimeseriesRecorder&) = delete;
  TimeseriesRecorder& operator=(const TimeseriesRecorder&) = delete;

  /// The sim-time sampling grid spacing runs should install.
  [[nodiscard]] util::SimTime interval() const noexcept { return interval_; }

  void record(std::string_view run, std::uint64_t index, util::SimTime at,
              SeriesRow row);

  [[nodiscard]] SeriesSnapshot snapshot() const;

 private:
  util::SimTime interval_;
  mutable util::Mutex mutex_;
  std::map<std::string, RunSeries, std::less<>> runs_ PS_GUARDED_BY(mutex_);
};

/// Installs `recorder` as the process-wide series target (nullptr
/// uninstalls). Same ownership contract as obs::install.
void install_series(TimeseriesRecorder* recorder) noexcept;

/// The installed recorder, or nullptr (the no-op fast path).
[[nodiscard]] TimeseriesRecorder* series() noexcept;

[[nodiscard]] inline bool series_enabled() noexcept {
  return series() != nullptr;
}

/// The reproducible rendering: every run, interval, counter delta and
/// histogram (count/sum/p50/p95/p99), sorted — byte-identical for two
/// fixed-seed runs at any pool size. Golden tests and CI diff this.
[[nodiscard]] std::string deterministic_series(
    const SeriesSnapshot& snapshot);

// --- PSTS sidecar ---

inline constexpr std::uint32_t kSeriesMagic = 0x50535453;  // "PSTS"
inline constexpr std::uint16_t kSeriesVersion = 1;
inline constexpr const char* kSeriesSchema = "peerscope.series/1";

/// Salvage accounting for a PSTS read: the framing layer's report
/// plus payloads whose frames were intact but whose fields did not
/// parse (skipped alone, like PSBT's CRC-valid-but-out-of-domain
/// records).
struct SeriesSalvageReport {
  util::framing::FrameSalvageReport framing;
  std::uint64_t payloads_skipped = 0;
};

/// Writes the PSTS sidecar (atomic + durable).
void write_series(const std::filesystem::path& path,
                  const SeriesSnapshot& snapshot);

/// Strict reader: throws std::runtime_error on any malformation.
[[nodiscard]] SeriesSnapshot read_series(const std::filesystem::path& path);

/// Salvage reader: recovers every interval outside damaged regions.
/// Only failure to open the file throws.
[[nodiscard]] SeriesSnapshot read_series_salvage(
    const std::filesystem::path& path,
    SeriesSalvageReport* report = nullptr);

/// `peerscope timeline` renderings: long-form CSV (one line per
/// metric per interval) and a markdown table.
[[nodiscard]] std::string render_series_csv(const SeriesSnapshot& snapshot);
[[nodiscard]] std::string render_series_markdown(
    const SeriesSnapshot& snapshot);

}  // namespace peerscope::obs
