// Live run progress and the declarative SLO watchdog (DESIGN.md §17).
//
// RunProgress is the one-way publication channel out of a running
// simulation: the engine stores events-executed and sim-time into it
// at the cancel-poll stride (relaxed atomics, a handful of stores per
// 256 events), the swarm adds the discovery rejoin-latency p99, and
// anything on another thread — the status reporter, the watchdog —
// reads without touching engine state.
//
// Watchdog turns declarative service-level objectives (events/s
// floor, sim-time stall window, rejoin-latency p99 ceiling) into
// enforcement: a background thread polls RunProgress, counts
// consecutive violating windows, and on a sustained violation emits a
// trace instant, records metrics, and requests cancellation on the
// run's CancelToken. The supervisor distinguishes a watchdog trip
// from an ordinary deadline via tripped() and maps it to
// kExitSloViolation=10 with a flight-recorder dump — the run dies
// with a diagnosis instead of hanging in a black box.
//
// The watchdog can only interrupt a run that polls its token; a
// callback wedged *inside* one event is beyond cooperative
// cancellation (the same contract as deadlines, util/cancel.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "util/cancel.hpp"

namespace peerscope::obs {

/// Shared progress snapshot for one run attempt. All-atomic so the
/// publishing engine thread and any number of observer threads never
/// need a lock; values are monotone within an attempt and reset()
/// between attempts.
struct RunProgress {
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::int64_t> sim_time_ns{0};
  /// Cumulative p99 of p2p.discovery rejoin latency, ns; -1 until the
  /// first rejoin sample lands.
  std::atomic<std::int64_t> rejoin_p99_ns{-1};
  /// True while an attempt is between engine start and finish;
  /// observers must ignore the other fields when false.
  std::atomic<bool> active{false};

  void reset() noexcept {
    events.store(0, std::memory_order_relaxed);
    sim_time_ns.store(0, std::memory_order_relaxed);
    rejoin_p99_ns.store(-1, std::memory_order_relaxed);
    active.store(false, std::memory_order_relaxed);
  }
};

/// Declarative SLOs; a zero threshold disables that objective. Floor
/// and ceiling violations must persist for `sustain` consecutive poll
/// windows before tripping (one slow window is noise); a sim-time
/// stall trips as soon as no event has advanced sim time for
/// `stall_window_s` wall seconds, because the engine publishes
/// progress every 256 events even when sim time crawls — silence that
/// long means the run is wedged.
struct SloSpec {
  double events_per_s_floor = 0;
  double stall_window_s = 0;
  std::int64_t rejoin_p99_ceiling_ns = 0;
  int sustain = 3;
  std::chrono::milliseconds poll{200};

  [[nodiscard]] bool enabled() const noexcept {
    return events_per_s_floor > 0 || stall_window_s > 0 ||
           rejoin_p99_ceiling_ns > 0;
  }
};

/// Watches one RunProgress against one SloSpec for the lifetime of
/// the object. On sustained violation: trace instant, watchdog.*
/// metrics, token->request(), and tripped()/reason() latch for the
/// supervisor to inspect after the run unwinds.
class Watchdog {
 public:
  Watchdog(SloSpec spec, RunProgress* progress, util::CancelToken* token);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Joins the poll thread. Idempotent; the destructor calls it.
  void stop();

  /// True once an SLO violation was sustained and the token tripped.
  [[nodiscard]] bool tripped() const noexcept {
    return tripped_.load(std::memory_order_acquire);
  }

  /// Human-readable violation, e.g. "events/s 1200 below floor 50000
  /// for 3 windows". Empty until tripped() — and only stable to read
  /// once tripped() returned true.
  [[nodiscard]] const std::string& reason() const noexcept {
    return reason_;
  }

 private:
  void run();
  void trip(std::string reason);

  SloSpec spec_;
  RunProgress* progress_;
  util::CancelToken* token_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> tripped_{false};
  std::string reason_;  // written once before tripped_ releases
  std::thread thread_;
};

}  // namespace peerscope::obs
