// Observability layer: a lock-cheap metrics registry.
//
// The measurement pipeline instruments itself the same way it measures
// the swarm from the outside (DESIGN.md §9): monotonic counters,
// gauges, and fixed-bucket integer histograms, all shard-and-merge so
// aggregation is associative — results are identical at any
// ThreadPool worker count, mirroring the §5.6 reduction contract.
//
// Cost contract: nothing is recorded unless a registry is installed
// (obs::install). Every inline hook first checks the installed-
// registry pointer and degenerates to a single relaxed load + branch,
// so uninstrumented runs stay byte-identical to builds that predate
// this layer. Hot paths resolve Counter/Histogram handles once per
// scope and batch their adds; handles must not outlive the registry
// they were resolved against.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::obs {

/// Aggregated wall-time of one span path ("parent/child" nesting).
/// Counts are deterministic for a fixed seed; durations are not.
struct SpanStats {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
};

/// Merged view of one histogram: `buckets[i]` counts observations
/// <= bounds[i]; the final bucket is the overflow (> bounds.back()).
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  /// Timing histograms hold wall-clock samples and are excluded from
  /// the deterministic export (see json.hpp).
  bool timing = false;
};

/// Point-in-time merge of every shard, keyed by metric name. std::map
/// so iteration (and therefore the JSON export) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanStats> spans;
};

class MetricsRegistry {
 public:
  /// Shard count for contended writers. Threads map onto shards by
  /// identity hash; collisions only cost cache-line sharing, never
  /// correctness (merge is a plain sum).
  static constexpr std::size_t kShards = 16;

  /// One monotonic counter, one cache line per shard. Stable address
  /// for the registry's lifetime.
  class CounterCell {
   public:
    void add(std::uint64_t delta, std::size_t shard) noexcept {
      shards_[shard].value.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total() const noexcept {
      std::uint64_t sum = 0;
      for (const auto& slot : shards_) {
        sum += slot.value.load(std::memory_order_relaxed);
      }
      return sum;
    }

   private:
    struct alignas(64) Slot {
      std::atomic<std::uint64_t> value{0};
    };
    std::array<Slot, kShards> shards_{};
  };

  /// Fixed-bucket integer histogram (values are ns, bytes, counts —
  /// integer domains keep the merged sums associative and therefore
  /// worker-count independent). Bucket layout is fixed at
  /// registration, so observes never race a resize.
  class HistogramCell {
   public:
    HistogramCell(std::vector<std::int64_t> bounds, bool timing)
        : bounds_(std::move(bounds)),
          timing_(timing),
          buckets_(kShards * (bounds_.size() + 1)) {}

    void observe(std::int64_t value, std::size_t shard) noexcept {
      std::size_t bucket = 0;
      while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
      buckets_[shard * (bounds_.size() + 1) + bucket].fetch_add(
          1, std::memory_order_relaxed);
      counts_[shard].value.fetch_add(1, std::memory_order_relaxed);
      sums_[shard].value.fetch_add(static_cast<std::uint64_t>(value),
                                   std::memory_order_relaxed);
    }

    [[nodiscard]] HistogramSnapshot merged() const;
    [[nodiscard]] bool timing() const noexcept { return timing_; }

   private:
    struct alignas(64) Slot {
      std::atomic<std::uint64_t> value{0};
    };
    std::vector<std::int64_t> bounds_;
    bool timing_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::array<Slot, kShards> counts_{};
    std::array<Slot, kShards> sums_{};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter; the returned cell stays valid for
  /// the registry's lifetime.
  [[nodiscard]] CounterCell* counter_cell(std::string_view name);

  /// Registers (or finds) a histogram. The first registration fixes
  /// the bucket bounds; later calls with different bounds get the
  /// original cell.
  [[nodiscard]] HistogramCell* histogram_cell(
      std::string_view name, std::span<const std::int64_t> bounds,
      bool timing);

  /// Gauges are rare (configuration facts set once per run), so they
  /// live centrally under the registration mutex.
  void set_gauge(std::string_view name, double value);

  /// Called by Span on scope exit; `path` is the "/"-joined nesting.
  void record_span(const std::string& path, std::int64_t ns);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The calling thread's shard index.
  [[nodiscard]] static std::size_t this_shard() noexcept {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  }

 private:
  // The mutex guards registration and the gauge/span maps; the
  // returned Counter/Histogram cells are sharded atomics written
  // lock-free (their deque storage only grows under the mutex, and
  // deque growth never moves existing cells).
  mutable util::Mutex mutex_;
  std::map<std::string, CounterCell*, std::less<>> counters_
      PS_GUARDED_BY(mutex_);
  std::deque<CounterCell> counter_storage_ PS_GUARDED_BY(mutex_);
  std::map<std::string, HistogramCell*, std::less<>> histograms_
      PS_GUARDED_BY(mutex_);
  std::deque<HistogramCell> histogram_storage_ PS_GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_ PS_GUARDED_BY(mutex_);
  std::map<std::string, SpanStats, std::less<>> spans_ PS_GUARDED_BY(mutex_);
};

/// Installs `registry` as the process-wide recording target (nullptr
/// uninstalls). The caller keeps ownership and must uninstall before
/// destroying it. Not reference-counted on purpose: one registry per
/// run is the model.
void install(MetricsRegistry* registry) noexcept;

/// The installed registry, or nullptr (the no-op fast path).
[[nodiscard]] MetricsRegistry* registry() noexcept;

[[nodiscard]] inline bool enabled() noexcept { return registry() != nullptr; }

/// Lightweight counter handle: null when no registry was installed at
/// resolve time, in which case add() is a no-op.
class Counter {
 public:
  Counter() = default;
  explicit Counter(MetricsRegistry::CounterCell* cell) : cell_(cell) {}
  void add(std::uint64_t delta = 1) const noexcept {
    if (cell_ != nullptr && delta != 0) {
      cell_->add(delta, MetricsRegistry::this_shard());
    }
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  MetricsRegistry::CounterCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(MetricsRegistry::HistogramCell* cell) : cell_(cell) {}
  void observe(std::int64_t value) const noexcept {
    if (cell_ != nullptr) {
      cell_->observe(value, MetricsRegistry::this_shard());
    }
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  MetricsRegistry::HistogramCell* cell_ = nullptr;
};

/// Resolves a counter against the installed registry (null handle when
/// none). Registration takes the registry mutex; add() never does.
[[nodiscard]] Counter counter(std::string_view name);

/// Log-spaced default bounds for wall-time histograms: 1 µs .. 1 s.
[[nodiscard]] std::span<const std::int64_t> timing_bounds() noexcept;

/// Log-spaced default bounds for byte-size histograms: 64 B .. 16 MiB.
[[nodiscard]] std::span<const std::int64_t> size_bounds() noexcept;

[[nodiscard]] Histogram histogram(std::string_view name,
                                  std::span<const std::int64_t> bounds,
                                  bool timing = false);

/// Convenience: no-op when no registry is installed.
void set_gauge(std::string_view name, double value);

}  // namespace peerscope::obs

/// Counter bump through the installed registry; a relaxed load and a
/// branch when metrics are off.
#define PEERSCOPE_METRIC_ADD(name, delta)              \
  do {                                                 \
    if (::peerscope::obs::enabled()) {                 \
      ::peerscope::obs::counter(name).add(delta);      \
    }                                                  \
  } while (0)

#define PEERSCOPE_METRIC_INC(name) PEERSCOPE_METRIC_ADD(name, 1)
