#include "obs/metrics.hpp"

namespace peerscope::obs {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

}  // namespace

void install(MetricsRegistry* registry) noexcept {
  g_registry.store(registry, std::memory_order_release);
}

MetricsRegistry* registry() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

MetricsRegistry::CounterCell* MetricsRegistry::counter_cell(
    std::string_view name) {
  util::MutexLock lock{mutex_};
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  CounterCell* cell = &counter_storage_.emplace_back();
  counters_.emplace(std::string{name}, cell);
  return cell;
}

MetricsRegistry::HistogramCell* MetricsRegistry::histogram_cell(
    std::string_view name, std::span<const std::int64_t> bounds,
    bool timing) {
  util::MutexLock lock{mutex_};
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  HistogramCell* cell = &histogram_storage_.emplace_back(
      std::vector<std::int64_t>{bounds.begin(), bounds.end()}, timing);
  histograms_.emplace(std::string{name}, cell);
  return cell;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  util::MutexLock lock{mutex_};
  gauges_.insert_or_assign(std::string{name}, value);
}

void MetricsRegistry::record_span(const std::string& path, std::int64_t ns) {
  util::MutexLock lock{mutex_};
  SpanStats& stats = spans_[path];
  if (stats.count == 0 || ns < stats.min_ns) stats.min_ns = ns;
  if (stats.count == 0 || ns > stats.max_ns) stats.max_ns = ns;
  ++stats.count;
  stats.total_ns += ns;
}

HistogramSnapshot MetricsRegistry::HistogramCell::merged() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.timing = timing_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.buckets[b] += buckets_[shard * (bounds_.size() + 1) + b].load(
          std::memory_order_relaxed);
    }
    snap.count += counts_[shard].value.load(std::memory_order_relaxed);
    snap.sum += static_cast<std::int64_t>(
        sums_[shard].value.load(std::memory_order_relaxed));
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock{mutex_};
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace(name, cell->total());
  }
  for (const auto& [name, value] : gauges_) {
    snap.gauges.emplace(name, value);
  }
  for (const auto& [name, cell] : histograms_) {
    snap.histograms.emplace(name, cell->merged());
  }
  for (const auto& [name, stats] : spans_) {
    snap.spans.emplace(name, stats);
  }
  return snap;
}

Counter counter(std::string_view name) {
  MetricsRegistry* reg = registry();
  return reg != nullptr ? Counter{reg->counter_cell(name)} : Counter{};
}

Histogram histogram(std::string_view name,
                    std::span<const std::int64_t> bounds, bool timing) {
  MetricsRegistry* reg = registry();
  return reg != nullptr
             ? Histogram{reg->histogram_cell(name, bounds, timing)}
             : Histogram{};
}

void set_gauge(std::string_view name, double value) {
  if (MetricsRegistry* reg = registry()) reg->set_gauge(name, value);
}

std::span<const std::int64_t> timing_bounds() noexcept {
  // 1 µs .. 1 s, half-decade steps (ns).
  static constexpr std::int64_t kBounds[] = {
      1'000,      3'000,      10'000,      30'000,      100'000,
      300'000,    1'000'000,  3'000'000,   10'000'000,  30'000'000,
      100'000'000, 300'000'000, 1'000'000'000};
  return kBounds;
}

std::span<const std::int64_t> size_bounds() noexcept {
  // 64 B .. 16 MiB, factor-4 steps.
  static constexpr std::int64_t kBounds[] = {
      64,      256,      1'024,     4'096,      16'384,
      65'536,  262'144,  1'048'576, 4'194'304,  16'777'216};
  return kBounds;
}

}  // namespace peerscope::obs
