// trace.json reader + wall-time profiler (peerscope trace-summary).
//
// Reads the Chrome trace-event files written by write_trace_json and
// attributes wall time to span paths: `total` is time between a
// span's B and E events, `self` is total minus the time spent in
// directly nested child spans — the number that says where a phase
// actually burns its cycles. The reader is a dialect parser for our
// own writer (like exp/journal.cpp's), line-oriented and salvage-mode
// by construction: a torn or garbled event line is counted in
// `skipped_lines` and skipped, never fatal, so a trace copied out of
// a SIGKILL'd run directory still profiles.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace peerscope::obs {

/// One parsed trace file. `events` preserves file order; `dropped` is
/// the writer-side ring-overflow count from the file header.
struct TraceFile {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  /// Event-looking lines that failed to parse (torn tail, truncation).
  std::size_t skipped_lines = 0;
  /// Schema string from the header; empty when the header was torn.
  std::string schema;
};

/// Parses `path`. Throws std::runtime_error when the file cannot be
/// opened or declares a schema other than peerscope.trace/1;
/// malformed *lines* are salvage (skipped_lines), not errors.
[[nodiscard]] TraceFile read_trace_file(const std::filesystem::path& path);

/// Wall-time attribution of one span path across all its B/E pairs.
struct SpanAttribution {
  std::string path;
  /// Root path segment — "run.TVAnts" for "run.TVAnts/simulate".
  std::string app;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0;
};

/// Pairs B/E events per thread (events are stably sorted by (tid,
/// ts)) and computes per-path count/total/self. Unmatched events —
/// the begin fell out of a wrapped ring, or the end never happened
/// because the run died — are dropped without poisoning later pairs.
[[nodiscard]] std::vector<SpanAttribution> attribute_spans(
    const std::vector<TraceEvent>& events);

/// The top-`top_n` rows by self time, as the sorted table
/// `peerscope trace-summary` prints (app | span | count | total ms |
/// self ms | self %; self % is of the summed self time, i.e. of all
/// traced wall time).
[[nodiscard]] std::string render_trace_summary(
    const std::vector<SpanAttribution>& rows, std::size_t top_n);

/// Attribution of one counter series ("C" events): sample count, the
/// chronologically last published value, and the peak. Spans answer
/// "where did the time go"; these answer "what did the run tally" —
/// before this table, counter events rode along in trace.json but
/// never surfaced in the summary.
struct CounterAttribution {
  std::string name;
  std::uint64_t samples = 0;
  std::int64_t last = 0;
  std::int64_t peak = 0;
};

/// Aggregates every kCounter event by name. `last` follows timestamp
/// order with file order as the tie-break, matching the writer's
/// emission order.
[[nodiscard]] std::vector<CounterAttribution> attribute_counters(
    const std::vector<TraceEvent>& events);

/// The top-`top_n` counter rows by sample count (ties by name), as
/// the second table `peerscope trace-summary` prints. Empty string
/// when there are no counter events — older traces print exactly what
/// they always did.
[[nodiscard]] std::string render_counter_summary(
    const std::vector<CounterAttribution>& rows, std::size_t top_n);

/// deterministic_trace() of the file's events — byte-identical to the
/// rendering of the in-memory snapshot the file was written from, so
/// CI can diff two runs through their trace.json artifacts.
[[nodiscard]] std::string deterministic_rendering(const TraceFile& file);

}  // namespace peerscope::obs
