#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <thread>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::obs {

// One ring per recording thread. slots/written/name_cache are touched
// only by the owning thread on the hot path; flush and the flight-
// recorder tail run under the recorder mutex but are always invoked
// *by the owning thread*, so there is never a cross-thread access to
// a ring — the mutex only protects the shared structures (buffer
// registry, name table, central store). The rings are deliberately
// NOT PS_GUARDED_BY the mutex: they are thread-hostile by design, and
// the `owner` check below (free under NDEBUG) enforces the owner-only
// contract the annotations cannot express.
struct TraceRecorder::ThreadBuffer {
  struct Slot {
    std::uint32_t name_id = 0;
    TraceEventType type = TraceEventType::kInstant;
    std::int64_t ts_ns = 0;
    std::int64_t value = 0;
  };

  ThreadBuffer(std::size_t capacity, std::uint32_t thread_index)
      : slots(capacity), tid(thread_index) {}

  std::vector<Slot> slots;
  /// Events written since the last flush; the ring holds the newest
  /// min(written, capacity) of them.
  std::uint64_t written = 0;
  std::uint32_t tid;
  /// The only thread allowed to touch this ring (debug-checked).
  std::thread::id owner = std::this_thread::get_id();
  /// Owner-thread cache of the recorder-wide name table, so the hot
  /// path interns without taking the mutex.
  std::map<std::string, std::uint32_t, std::less<>> name_cache;
};

struct TraceRecorder::Impl {
  TraceConfig config;                         // set once in the ctor
  std::chrono::steady_clock::time_point epoch;  // likewise
  util::Mutex mutex;
  // deque: stable addresses
  std::deque<ThreadBuffer> buffers PS_GUARDED_BY(mutex);
  std::map<std::thread::id, ThreadBuffer*> by_thread PS_GUARDED_BY(mutex);
  std::vector<std::string> names PS_GUARDED_BY(mutex);
  std::map<std::string, std::uint32_t, std::less<>> name_ids
      PS_GUARDED_BY(mutex);
  std::vector<TraceEvent> drained PS_GUARDED_BY(mutex);
  std::uint64_t drained_dropped PS_GUARDED_BY(mutex) = 0;

  std::uint64_t flush_locked(ThreadBuffer& buffer) PS_REQUIRES(mutex);
};

namespace {

std::atomic<TraceRecorder*> g_tracer{nullptr};

// Bumped on every install/uninstall so a cached ring pointer can
// never outlive the install it was resolved under — a fresh recorder
// reusing a freed recorder's address invalidates stale caches too.
std::atomic<std::uint64_t> g_generation{0};

struct TlsCache {
  std::uint64_t generation = 0;
  void* buffer = nullptr;  // TraceRecorder::ThreadBuffer (private type)
};
thread_local TlsCache t_cache;

}  // namespace

void install_tracer(TraceRecorder* recorder) noexcept {
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_tracer.store(recorder, std::memory_order_release);
}

TraceRecorder* tracer() noexcept {
  return g_tracer.load(std::memory_order_acquire);
}

TraceRecorder::TraceRecorder(TraceConfig config) : impl_(new Impl) {
  impl_->config = config;
  if (impl_->config.ring_capacity == 0) impl_->config.ring_capacity = 1;
  impl_->epoch = std::chrono::steady_clock::now();
}

TraceRecorder::~TraceRecorder() { delete impl_; }

TraceRecorder::ThreadBuffer* TraceRecorder::cached_buffer() noexcept {
  return t_cache.generation == g_generation.load(std::memory_order_relaxed)
             ? static_cast<ThreadBuffer*>(t_cache.buffer)
             : nullptr;
}

TraceRecorder::ThreadBuffer& TraceRecorder::buffer_for_this_thread() {
  util::MutexLock lock{impl_->mutex};
  const std::thread::id id = std::this_thread::get_id();
  ThreadBuffer* buffer;
  const auto it = impl_->by_thread.find(id);
  if (it != impl_->by_thread.end()) {
    buffer = it->second;
  } else {
    buffer = &impl_->buffers.emplace_back(
        impl_->config.ring_capacity,
        static_cast<std::uint32_t>(impl_->buffers.size()));
    impl_->by_thread.emplace(id, buffer);
  }
  // Only the installed recorder may own the thread-local cache; a
  // Span closing against an already-uninstalled recorder stays on
  // this slow path.
  if (g_tracer.load(std::memory_order_relaxed) == this) {
    t_cache.generation = g_generation.load(std::memory_order_relaxed);
    t_cache.buffer = buffer;
  }
  return *buffer;
}

std::uint32_t TraceRecorder::intern(std::string_view name) {
  util::MutexLock lock{impl_->mutex};
  const auto it = impl_->name_ids.find(name);
  if (it != impl_->name_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(impl_->names.size());
  impl_->names.emplace_back(name);
  impl_->name_ids.emplace(std::string{name}, id);
  return id;
}

void TraceRecorder::record(TraceEventType type, std::string_view name,
                           std::int64_t value) {
  ThreadBuffer* buffer = cached_buffer();
  if (buffer == nullptr) buffer = &buffer_for_this_thread();
  assert(buffer->owner == std::this_thread::get_id());
  std::uint32_t name_id;
  const auto cached = buffer->name_cache.find(name);
  if (cached != buffer->name_cache.end()) {
    name_id = cached->second;
  } else {
    name_id = intern(name);
    buffer->name_cache.emplace(std::string{name}, name_id);
  }
  ThreadBuffer::Slot& slot =
      buffer->slots[buffer->written % buffer->slots.size()];
  slot.name_id = name_id;
  slot.type = type;
  slot.ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - impl_->epoch)
                   .count();
  slot.value = value;
  ++buffer->written;
}

void TraceRecorder::begin(std::string_view path) {
  record(TraceEventType::kBegin, path, 0);
}

void TraceRecorder::end(std::string_view path) {
  record(TraceEventType::kEnd, path, 0);
}

void TraceRecorder::instant(std::string_view name) {
  record(TraceEventType::kInstant, name, 0);
}

void TraceRecorder::counter(std::string_view name, std::int64_t value) {
  record(TraceEventType::kCounter, name, value);
}

std::uint64_t TraceRecorder::Impl::flush_locked(ThreadBuffer& buffer) {
  assert(buffer.owner == std::this_thread::get_id());
  const std::uint64_t capacity = buffer.slots.size();
  const std::uint64_t dropped =
      buffer.written > capacity ? buffer.written - capacity : 0;
  for (std::uint64_t i = dropped; i < buffer.written; ++i) {
    const ThreadBuffer::Slot& slot = buffer.slots[i % capacity];
    drained.push_back(TraceEvent{names[slot.name_id], slot.type,
                                 buffer.tid, slot.ts_ns, slot.value});
  }
  drained_dropped += dropped;
  buffer.written = 0;
  return dropped;
}

void TraceRecorder::flush_current_thread() {
  std::uint64_t dropped = 0;
  {
    util::MutexLock lock{impl_->mutex};
    const auto it = impl_->by_thread.find(std::this_thread::get_id());
    if (it == impl_->by_thread.end()) return;
    dropped = impl_->flush_locked(*it->second);
  }
  // Mirrored into metrics only when something was actually lost, so a
  // traced run with zero drops leaves metrics.json byte-identical to
  // an untraced one.
  if (dropped > 0) {
    PEERSCOPE_METRIC_ADD("obs.trace_events_dropped", dropped);
  }
}

std::vector<TraceEvent> TraceRecorder::recent_events(std::size_t max_events) {
  std::vector<TraceEvent> tail;
  util::MutexLock lock{impl_->mutex};
  const auto it = impl_->by_thread.find(std::this_thread::get_id());
  if (it == impl_->by_thread.end()) return tail;
  const ThreadBuffer& buffer = *it->second;
  const std::uint64_t capacity = buffer.slots.size();
  const std::uint64_t retained = std::min(buffer.written, capacity);
  const std::uint64_t take =
      std::min(retained, static_cast<std::uint64_t>(max_events));
  tail.reserve(take);
  for (std::uint64_t i = buffer.written - take; i < buffer.written; ++i) {
    const ThreadBuffer::Slot& slot = buffer.slots[i % capacity];
    tail.push_back(TraceEvent{impl_->names[slot.name_id], slot.type,
                              buffer.tid, slot.ts_ns, slot.value});
  }
  return tail;
}

TraceSnapshot TraceRecorder::snapshot() {
  flush_current_thread();
  TraceSnapshot snap;
  util::MutexLock lock{impl_->mutex};
  snap.events = impl_->drained;
  snap.dropped = impl_->drained_dropped;
  return snap;
}

void trace_instant(std::string_view name) {
  if (TraceRecorder* recorder = tracer()) recorder->instant(name);
}

void trace_counter(std::string_view name, std::int64_t value) {
  if (TraceRecorder* recorder = tracer()) recorder->counter(name, value);
}

void trace_flush() {
  if (TraceRecorder* recorder = tracer()) recorder->flush_current_thread();
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

// Microseconds with nanosecond precision, rendered with integer math
// so the text is locale-independent and exact.
void append_ts_us(std::string& out, std::int64_t ts_ns) {
  append_i64(out, ts_ns / 1000);
  char buf[8];
  std::snprintf(buf, sizeof buf, ".%03" PRId64, ts_ns % 1000);
  out += buf;
}

const char* phase_letter(TraceEventType type) {
  switch (type) {
    case TraceEventType::kBegin:
      return "B";
    case TraceEventType::kEnd:
      return "E";
    case TraceEventType::kInstant:
      return "i";
    case TraceEventType::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

std::string trace_json(const TraceSnapshot& snapshot) {
  std::string out;
  out.reserve(64 + snapshot.events.size() * 96);
  out += "{\"schema\": \"peerscope.trace/1\",\n";
  out += "\"displayTimeUnit\": \"ms\",\n";
  out += "\"dropped\": ";
  append_u64(out, snapshot.dropped);
  out += ",\n\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\": ";
    append_escaped(out, event.name);
    out += ", \"ph\": \"";
    out += phase_letter(event.type);
    out += "\", \"pid\": 1, \"tid\": ";
    append_u64(out, event.tid);
    out += ", \"ts\": ";
    append_ts_us(out, event.ts_ns);
    if (event.type == TraceEventType::kInstant) {
      out += ", \"s\": \"t\"";
    } else if (event.type == TraceEventType::kCounter) {
      out += ", \"args\": {\"value\": ";
      append_i64(out, event.value);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string deterministic_trace(const TraceSnapshot& snapshot) {
  struct SpanCounts {
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
  };
  struct CounterCounts {
    std::uint64_t count = 0;
    std::int64_t sum = 0;
  };
  std::map<std::string, SpanCounts> spans;
  std::map<std::string, std::uint64_t> instants;
  std::map<std::string, CounterCounts> counters;
  for (const TraceEvent& event : snapshot.events) {
    switch (event.type) {
      case TraceEventType::kBegin:
        ++spans[event.name].begins;
        break;
      case TraceEventType::kEnd:
        ++spans[event.name].ends;
        break;
      case TraceEventType::kInstant:
        ++instants[event.name];
        break;
      case TraceEventType::kCounter: {
        CounterCounts& c = counters[event.name];
        ++c.count;
        c.sum += event.value;
        break;
      }
    }
  }
  std::string out;
  out += "peerscope.trace/1 deterministic\n";
  out += "dropped ";
  append_u64(out, snapshot.dropped);
  out += '\n';
  // `spans` here is a std::map (sorted); the name merely collides
  // with unordered declarations elsewhere in src/.
  for (const auto& [name, c] : spans) {  // lint: ordered
    out += "span " + name + " begin ";
    append_u64(out, c.begins);
    out += " end ";
    append_u64(out, c.ends);
    out += '\n';
  }
  for (const auto& [name, count] : instants) {
    out += "instant " + name + " count ";
    append_u64(out, count);
    out += '\n';
  }
  for (const auto& [name, c] : counters) {
    out += "counter " + name + " count ";
    append_u64(out, c.count);
    out += " sum ";
    append_i64(out, c.sum);
    out += '\n';
  }
  return out;
}

void write_trace_json(const std::filesystem::path& path,
                      const TraceSnapshot& snapshot) {
  util::write_file_atomic(path, trace_json(snapshot));
}

}  // namespace peerscope::obs
