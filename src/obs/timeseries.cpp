#include "obs/timeseries.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/io_faults.hpp"

namespace peerscope::obs {

namespace {

std::atomic<TimeseriesRecorder*> g_series{nullptr};

/// One frame per interval keeps every record self-contained for the
/// salvage reader; 64 KiB leaves room for rows far wider than the
/// swarm's current counter set.
constexpr std::uint32_t kSeriesMaxRecordLen = std::uint32_t{1} << 16;

util::framing::FrameFormat series_format() {
  util::framing::FrameFormat format;
  format.magic = kSeriesMagic;
  format.version = kSeriesVersion;
  format.max_record_len = kSeriesMaxRecordLen;
  return format;
}

}  // namespace

// --- LogHistogram ---

std::uint32_t LogHistogram::bucket_index(std::int64_t value) {
  const std::uint64_t u =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);
  if (u < 2 * kSubBuckets) {
    return static_cast<std::uint32_t>(u);
  }
  const int msb = 63 - std::countl_zero(u);
  const std::uint64_t sub =
      (u >> (msb - kSubBucketBits)) - kSubBuckets;
  return static_cast<std::uint32_t>(
      2 * kSubBuckets +
      static_cast<std::uint64_t>(msb - kSubBucketBits - 1) * kSubBuckets +
      sub);
}

std::int64_t LogHistogram::bucket_floor(std::uint32_t index) {
  if (index < 2 * kSubBuckets) {
    return static_cast<std::int64_t>(index);
  }
  const auto k = static_cast<std::uint32_t>(index - 2 * kSubBuckets);
  const auto octave = static_cast<std::uint32_t>(k / kSubBuckets);
  const auto sub = static_cast<std::uint32_t>(k % kSubBuckets);
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSubBuckets + sub) << (octave + 1));
}

std::int64_t LogHistogram::bucket_width(std::uint32_t index) {
  if (index < 2 * kSubBuckets) {
    return 1;
  }
  const auto octave =
      static_cast<std::uint32_t>((index - 2 * kSubBuckets) / kSubBuckets);
  return std::int64_t{1} << (octave + 1);
}

void LogHistogram::record(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::uint32_t index = bucket_index(value);
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  buckets_[index] += count;
  count_ += count;
  sum_ += value * static_cast<std::int64_t>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target < 1) target = 1;
  if (target > count_) target = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      const auto index = static_cast<std::uint32_t>(i);
      return bucket_floor(index) + (bucket_width(index) - 1) / 2;
    }
  }
  // Unreachable when count_ matches the buckets; keep a sane fallback.
  return bucket_floor(static_cast<std::uint32_t>(buckets_.size()) - 1);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> LogHistogram::nonzero()
    const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(static_cast<std::uint32_t>(i), buckets_[i]);
    }
  }
  return out;
}

LogHistogram LogHistogram::from_buckets(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets,
    std::int64_t sum) {
  LogHistogram h;
  for (const auto& [index, count] : buckets) {
    if (index >= h.buckets_.size()) {
      h.buckets_.resize(index + 1, 0);
    }
    h.buckets_[index] += count;
    h.count_ += count;
  }
  h.sum_ = sum;
  return h;
}

// --- TimeseriesRecorder ---

TimeseriesRecorder::TimeseriesRecorder(util::SimTime interval)
    : interval_(interval) {
  if (interval <= util::SimTime::zero()) {
    throw std::invalid_argument(
        "TimeseriesRecorder: interval must be positive");
  }
}

void TimeseriesRecorder::record(std::string_view run, std::uint64_t index,
                                util::SimTime at, SeriesRow row) {
  // Run keys become tab-separated PSTS fields; keep them field-safe.
  std::string key{run};
  for (char& c : key) {
    if (c == '\t' || c == '\n') c = ' ';
  }
  {
    const util::MutexLock lock{mutex_};
    auto [it, inserted] = runs_.try_emplace(std::move(key));
    if (inserted) {
      it->second.interval_ns = interval_.ns();
    }
    it->second.intervals.push_back(
        SeriesInterval{index, at.ns(), std::move(row)});
  }
  PEERSCOPE_METRIC_INC("obs.series.intervals_recorded");
}

SeriesSnapshot TimeseriesRecorder::snapshot() const {
  SeriesSnapshot snap;
  {
    const util::MutexLock lock{mutex_};
    for (const auto& [run, data] : runs_) {
      snap.runs.emplace(run, data);
    }
  }
  // Each engine appends its own intervals in order, but a run retried
  // under the same key restarts at index 0; sorting here keeps the
  // snapshot canonical regardless of recording history.
  for (auto& [run, data] : snap.runs) {
    std::stable_sort(data.intervals.begin(), data.intervals.end(),
                     [](const SeriesInterval& a, const SeriesInterval& b) {
                       return a.index < b.index;
                     });
  }
  return snap;
}

void install_series(TimeseriesRecorder* recorder) noexcept {
  g_series.store(recorder, std::memory_order_release);
}

TimeseriesRecorder* series() noexcept {
  return g_series.load(std::memory_order_acquire);
}

// --- renderings ---

std::string deterministic_series(const SeriesSnapshot& snapshot) {
  std::string out{kSeriesSchema};
  out += '\n';
  for (const auto& [run, data] : snapshot.runs) {
    out += "run " + run + "\n";
    out += "  interval_ns " + std::to_string(data.interval_ns) + "\n";
    for (const SeriesInterval& interval : data.intervals) {
      out += "  i " + std::to_string(interval.index) + " at_ns " +
             std::to_string(interval.at_ns) + "\n";
      for (const auto& [name, value] : interval.row.counters) {
        out += "    c " + name + " " + std::to_string(value) + "\n";
      }
      for (const auto& [name, hist] : interval.row.histograms) {
        out += "    h " + name + " count " + std::to_string(hist.count()) +
               " sum " + std::to_string(hist.sum()) + " p50 " +
               std::to_string(hist.quantile(0.50)) + " p95 " +
               std::to_string(hist.quantile(0.95)) + " p99 " +
               std::to_string(hist.quantile(0.99)) + "\n";
      }
    }
  }
  return out;
}

// --- PSTS sidecar ---

namespace {

std::string encode_interval(const std::string& run,
                            std::int64_t interval_ns,
                            const SeriesInterval& interval) {
  std::string payload = "i\t" + run + "\t" + std::to_string(interval_ns) +
                        "\t" + std::to_string(interval.index) + "\t" +
                        std::to_string(interval.at_ns);
  for (const auto& [name, value] : interval.row.counters) {
    payload += "\tc:" + name + "=" + std::to_string(value);
  }
  for (const auto& [name, hist] : interval.row.histograms) {
    payload += "\th:" + name + "=" + std::to_string(hist.sum()) + "@";
    bool first = true;
    for (const auto& [index, count] : hist.nonzero()) {
      if (!first) payload += ',';
      first = false;
      payload += std::to_string(index) + ":" + std::to_string(count);
    }
  }
  return payload;
}

/// Strict whole-token u64 parse; false on any malformation.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_i64(std::string_view text, std::int64_t& out) {
  const bool negative = !text.empty() && text.front() == '-';
  if (negative) text.remove_prefix(1);
  std::uint64_t magnitude = 0;
  if (!parse_u64(text, magnitude)) return false;
  out = negative ? -static_cast<std::int64_t>(magnitude)
                 : static_cast<std::int64_t>(magnitude);
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Parses one interval payload into `snapshot`. Returns false on any
/// malformed field (the caller decides strict-throw vs salvage-skip).
[[nodiscard]] bool decode_interval(std::string_view payload,
                                   SeriesSnapshot& snapshot) {
  const auto fields = split(payload, '\t');
  if (fields.size() < 5 || fields[0] != "i") return false;
  const std::string run{fields[1]};
  std::int64_t interval_ns = 0;
  SeriesInterval interval;
  if (!parse_i64(fields[2], interval_ns) ||
      !parse_u64(fields[3], interval.index) ||
      !parse_i64(fields[4], interval.at_ns)) {
    return false;
  }
  for (std::size_t i = 5; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    if (field.rfind("c:", 0) == 0) {
      const std::size_t eq = field.find('=');
      if (eq == std::string_view::npos || eq <= 2) return false;
      std::uint64_t value = 0;
      if (!parse_u64(field.substr(eq + 1), value)) return false;
      interval.row.counters.emplace(field.substr(2, eq - 2), value);
    } else if (field.rfind("h:", 0) == 0) {
      const std::size_t eq = field.find('=');
      const std::size_t at = field.find('@');
      if (eq == std::string_view::npos || at == std::string_view::npos ||
          eq <= 2 || at < eq) {
        return false;
      }
      std::int64_t sum = 0;
      if (!parse_i64(field.substr(eq + 1, at - eq - 1), sum)) return false;
      std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
      const std::string_view pair_list = field.substr(at + 1);
      if (!pair_list.empty()) {
        for (const std::string_view pair : split(pair_list, ',')) {
          const std::size_t colon = pair.find(':');
          if (colon == std::string_view::npos) return false;
          std::uint64_t index = 0;
          std::uint64_t count = 0;
          if (!parse_u64(pair.substr(0, colon), index) ||
              !parse_u64(pair.substr(colon + 1), count) ||
              index > std::uint64_t{1} << 20) {
            return false;
          }
          buckets.emplace_back(static_cast<std::uint32_t>(index), count);
        }
      }
      interval.row.histograms.emplace(
          field.substr(2, eq - 2), LogHistogram::from_buckets(buckets, sum));
    } else {
      return false;
    }
  }
  auto [it, inserted] = snapshot.runs.try_emplace(run);
  if (inserted) {
    it->second.interval_ns = interval_ns;
  }
  it->second.intervals.push_back(std::move(interval));
  return true;
}

}  // namespace

void write_series(const std::filesystem::path& path,
                  const SeriesSnapshot& snapshot) {
  std::vector<std::string> payloads;
  payloads.emplace_back(kSeriesSchema);
  for (const auto& [run, data] : snapshot.runs) {
    for (const SeriesInterval& interval : data.intervals) {
      payloads.push_back(encode_interval(run, data.interval_ns, interval));
    }
  }
  const std::string buf = util::framing::encode_frames(
      series_format(), payloads, util::framing::kDefaultSyncInterval);
  util::write_file_atomic(path, buf);
  PEERSCOPE_METRIC_INC("obs.series.files_written");
}

SeriesSnapshot read_series(const std::filesystem::path& path) {
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_series: cannot open " + path.string());
  }
  const auto payloads =
      util::framing::decode_frames(series_format(), *buf, path.string());
  if (payloads.empty() || payloads.front() != kSeriesSchema) {
    throw std::runtime_error("read_series: missing " +
                             std::string{kSeriesSchema} + " header in " +
                             path.string());
  }
  SeriesSnapshot snapshot;
  for (std::size_t i = 1; i < payloads.size(); ++i) {
    if (!decode_interval(payloads[i], snapshot)) {
      throw std::runtime_error("read_series: corrupt interval record " +
                               std::to_string(i) + " in " + path.string());
    }
  }
  PEERSCOPE_METRIC_INC("obs.series.files_read");
  return snapshot;
}

SeriesSnapshot read_series_salvage(const std::filesystem::path& path,
                                   SeriesSalvageReport* report) {
  SeriesSalvageReport local;
  SeriesSalvageReport& rep = report ? *report : local;
  rep = SeriesSalvageReport{};
  const auto buf = util::io::read_file(path);
  if (!buf) {
    throw std::runtime_error("read_series_salvage: cannot open " +
                             path.string());
  }
  const auto payloads = util::framing::decode_frames_salvage(
      series_format(), *buf, &rep.framing);
  SeriesSnapshot snapshot;
  std::uint64_t recovered = 0;
  for (const std::string& payload : payloads) {
    if (payload == kSeriesSchema) continue;  // the header record
    if (decode_interval(payload, snapshot)) {
      ++recovered;
    } else {
      // Frame CRC held but the fields are garbage: the writer was fed
      // a bad row. The boundary survives, only this interval is lost.
      ++rep.payloads_skipped;
    }
  }
  if (obs::enabled()) {
    obs::counter("obs.series.files_read").add();
    obs::counter("obs.series.records_salvaged").add(recovered);
    obs::counter("obs.series.records_dropped")
        .add(rep.framing.records_dropped + rep.payloads_skipped);
  }
  return snapshot;
}

// --- timeline renderings ---

namespace {

std::string csv_safe(std::string text) {
  for (char& c : text) {
    if (c == ',' || c == '\n') c = ';';
  }
  return text;
}

std::string seconds_cell(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1e9);
  return buf;
}

}  // namespace

std::string render_series_csv(const SeriesSnapshot& snapshot) {
  std::string out = "run,index,at_ns,metric,value,count,sum,p50,p95,p99\n";
  for (const auto& [run, data] : snapshot.runs) {
    const std::string safe_run = csv_safe(run);
    for (const SeriesInterval& interval : data.intervals) {
      const std::string prefix = safe_run + "," +
                                 std::to_string(interval.index) + "," +
                                 std::to_string(interval.at_ns) + ",";
      for (const auto& [name, value] : interval.row.counters) {
        out += prefix + csv_safe(name) + "," + std::to_string(value) +
               ",,,,,\n";
      }
      for (const auto& [name, hist] : interval.row.histograms) {
        out += prefix + csv_safe(name) + ",," +
               std::to_string(hist.count()) + "," +
               std::to_string(hist.sum()) + "," +
               std::to_string(hist.quantile(0.50)) + "," +
               std::to_string(hist.quantile(0.95)) + "," +
               std::to_string(hist.quantile(0.99)) + "\n";
      }
    }
  }
  return out;
}

std::string render_series_markdown(const SeriesSnapshot& snapshot) {
  std::string out =
      "| run | i | t [s] | metric | value | count | p50 | p95 | p99 |\n"
      "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& [run, data] : snapshot.runs) {
    for (const SeriesInterval& interval : data.intervals) {
      const std::string prefix = "| " + run + " | " +
                                 std::to_string(interval.index) + " | " +
                                 seconds_cell(interval.at_ns) + " | ";
      for (const auto& [name, value] : interval.row.counters) {
        out += prefix + name + " | " + std::to_string(value) +
               " |  |  |  |  |\n";
      }
      for (const auto& [name, hist] : interval.row.histograms) {
        out += prefix + name + " |  | " + std::to_string(hist.count()) +
               " | " + std::to_string(hist.quantile(0.50)) + " | " +
               std::to_string(hist.quantile(0.95)) + " | " +
               std::to_string(hist.quantile(0.99)) + " |\n";
      }
    }
  }
  return out;
}

}  // namespace peerscope::obs
