#include "obs/json.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/atomic_file.hpp"

namespace peerscope::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_number(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

template <typename Map, typename Fn>
void append_object(std::string& out, const char* key, const Map& map,
                   Fn&& value_fn) {
  out += "  ";
  append_escaped(out, key);
  out += ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_escaped(out, name);
    out += ": ";
    value_fn(out, value);
  }
  if (!first) out += "\n  ";
  out += '}';
}

template <typename T>
void append_array(std::string& out, const std::vector<T>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    append_number(out, values[i]);
  }
  out += ']';
}

std::string render(const MetricsSnapshot& snapshot, bool deterministic) {
  std::string out;
  out += "{\n  \"schema\": \"peerscope.metrics/1\",\n";
  append_object(out, "counters", snapshot.counters,
                [](std::string& o, std::uint64_t v) { append_number(o, v); });
  out += ",\n";
  if (!deterministic) {
    append_object(out, "gauges", snapshot.gauges,
                  [](std::string& o, double v) { append_number(o, v); });
    out += ",\n";
  }
  append_object(
      out, "histograms", snapshot.histograms,
      [deterministic](std::string& o, const HistogramSnapshot& h) {
        if (deterministic && h.timing) {
          // Wall-clock samples: the key documents the histogram ran,
          // the contents would not be reproducible.
          o += "{\"timing\": true}";
          return;
        }
        o += "{\"bounds\": ";
        append_array(o, h.bounds);
        o += ", \"buckets\": ";
        append_array(o, h.buckets);
        o += ", \"count\": ";
        append_number(o, h.count);
        o += ", \"sum\": ";
        append_number(o, h.sum);
        if (h.timing) o += ", \"timing\": true";
        o += '}';
      });
  out += ",\n";
  append_object(out, "spans", snapshot.spans,
                [deterministic](std::string& o, const SpanStats& s) {
                  o += "{\"count\": ";
                  append_number(o, s.count);
                  if (!deterministic) {
                    o += ", \"total_ns\": ";
                    append_number(o, s.total_ns);
                    o += ", \"min_ns\": ";
                    append_number(o, s.min_ns);
                    o += ", \"max_ns\": ";
                    append_number(o, s.max_ns);
                  }
                  o += '}';
                });
  out += "\n}\n";
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  return render(snapshot, false);
}

std::string deterministic_json(const MetricsSnapshot& snapshot) {
  return render(snapshot, true);
}

void write_metrics_json(const std::filesystem::path& path,
                        const MetricsSnapshot& snapshot, bool deterministic) {
  const std::string text =
      deterministic ? deterministic_json(snapshot) : to_json(snapshot);
  // Atomic rename so a sidecar scraped mid-run (or left by a killed
  // process) is always a complete JSON document.
  util::write_file_atomic(path, text);
}

}  // namespace peerscope::obs
