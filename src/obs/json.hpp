// metrics.json export.
//
// Two renderings of one snapshot:
//   - to_json: the full sidecar (counters, gauges, histograms, spans
//     with durations) written next to experiment.meta;
//   - deterministic_json: the subset that is a pure function of
//     (seed, configuration) — counters, value histograms, and span
//     call counts. Two fixed-seed runs, at any thread-pool size,
//     produce byte-identical deterministic_json; the golden tests and
//     CI diff exactly this.
//
// Formatting is canonical: keys sorted (std::map iteration), no
// locale-dependent number formatting, '\n' line ends, two-space
// indent.
#pragma once

#include <filesystem>
#include <string>

#include "obs/metrics.hpp"

namespace peerscope::obs {

[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

[[nodiscard]] std::string deterministic_json(const MetricsSnapshot& snapshot);

/// Writes to_json (or deterministic_json when `deterministic`) to
/// `path`. Throws std::runtime_error on I/O failure.
void write_metrics_json(const std::filesystem::path& path,
                        const MetricsSnapshot& snapshot,
                        bool deterministic = false);

}  // namespace peerscope::obs
