#include "obs/span.hpp"

#include <vector>

namespace peerscope::obs {

namespace {

// Per-thread stack of open span names; path = "/"-join. A pool task
// runs on one thread start to finish and closes every span it opens,
// so the stack is empty between tasks and paths never leak across
// experiments.
thread_local std::vector<std::string> t_span_stack;

}  // namespace

Span::Span(std::string_view name) : registry_(registry()) {
  if (registry_ == nullptr) return;
  t_span_stack.emplace_back(name);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  std::string path;
  for (const std::string& name : t_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  t_span_stack.pop_back();
  registry_->record_span(path, ns);
}

}  // namespace peerscope::obs
