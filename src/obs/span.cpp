#include "obs/span.hpp"

#include <vector>

#include "obs/trace.hpp"

namespace peerscope::obs {

namespace {

// Per-thread stack of open span names; path = "/"-join. A pool task
// runs on one thread start to finish and closes every span it opens,
// so the stack is empty between tasks and paths never leak across
// experiments.
thread_local std::vector<std::string> t_span_stack;

std::string joined_path() {
  std::string path;
  for (const std::string& name : t_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  return path;
}

}  // namespace

Span::Span(std::string_view name)
    : registry_(registry()), tracer_(tracer()) {
  if (registry_ == nullptr && tracer_ == nullptr) return;
  t_span_stack.emplace_back(name);
  if (tracer_ != nullptr) tracer_->begin(joined_path());
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (registry_ == nullptr && tracer_ == nullptr) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  const std::string path = joined_path();
  t_span_stack.pop_back();
  if (registry_ != nullptr) registry_->record_span(path, ns);
  if (tracer_ != nullptr) tracer_->end(path);
}

}  // namespace peerscope::obs
