#include "obs/watchdog.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace peerscope::obs {

namespace {

std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", rate);
  return buf;
}

}  // namespace

Watchdog::Watchdog(SloSpec spec, RunProgress* progress,
                   util::CancelToken* token)
    : spec_(spec), progress_(progress), token_(token) {
  if (spec_.sustain < 1) spec_.sustain = 1;
  if (spec_.poll.count() < 1) spec_.poll = std::chrono::milliseconds{1};
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Watchdog::trip(std::string reason) {
  reason_ = std::move(reason);
  tripped_.store(true, std::memory_order_release);
  PEERSCOPE_TRACE_INSTANT("watchdog.slo_violation");
  PEERSCOPE_METRIC_INC("watchdog.trips");
  // Rings are per-thread and this thread exits with the trip: flush
  // now or the verdict never reaches the run's trace timeline.
  trace_flush();
  token_->request();
}

void Watchdog::run() {
  using Clock = std::chrono::steady_clock;

  bool watching = false;       // inside an active attempt
  bool have_window = false;    // a previous poll to delta against
  std::uint64_t prev_events = 0;
  Clock::time_point prev_at{};
  std::int64_t last_sim_ns = 0;
  Clock::time_point last_advance{};
  int rate_strikes = 0;
  int rejoin_strikes = 0;

  while (!stop_.load(std::memory_order_relaxed) &&
         !tripped_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(spec_.poll);
    if (!progress_->active.load(std::memory_order_relaxed)) {
      watching = false;
      continue;
    }
    const auto now = Clock::now();
    const std::uint64_t events =
        progress_->events.load(std::memory_order_relaxed);
    const std::int64_t sim_ns =
        progress_->sim_time_ns.load(std::memory_order_relaxed);
    if (!watching) {
      watching = true;
      have_window = false;
      prev_events = events;
      prev_at = now;
      last_sim_ns = sim_ns;
      last_advance = now;
      rate_strikes = 0;
      rejoin_strikes = 0;
      continue;
    }

    // Sim-time stall: the engine publishes progress every 256 events,
    // so sim time frozen across the window means no event is landing.
    if (sim_ns > last_sim_ns) {
      last_sim_ns = sim_ns;
      last_advance = now;
    } else if (spec_.stall_window_s > 0) {
      const double stalled_s =
          std::chrono::duration<double>(now - last_advance).count();
      if (stalled_s >= spec_.stall_window_s) {
        PEERSCOPE_METRIC_INC("watchdog.violations");
        trip("sim time stalled at " + std::to_string(last_sim_ns) +
             "ns for " + format_rate(stalled_s) + "s");
        return;
      }
    }

    // Throughput floor, on per-window deltas so a slow start does not
    // poison the whole run's average.
    const double window_s =
        std::chrono::duration<double>(now - prev_at).count();
    if (spec_.events_per_s_floor > 0 && have_window && window_s > 0) {
      const double rate =
          static_cast<double>(events - prev_events) / window_s;
      if (rate < spec_.events_per_s_floor) {
        PEERSCOPE_METRIC_INC("watchdog.violations");
        if (++rate_strikes >= spec_.sustain) {
          trip("events/s " + format_rate(rate) + " below floor " +
               format_rate(spec_.events_per_s_floor) + " for " +
               std::to_string(rate_strikes) + " windows");
          return;
        }
      } else {
        rate_strikes = 0;
      }
    }
    prev_events = events;
    prev_at = now;
    have_window = true;

    // Rejoin-latency ceiling (cumulative p99 published by the swarm's
    // sampling hook; -1 until discovery has produced a rejoin).
    const std::int64_t p99 =
        progress_->rejoin_p99_ns.load(std::memory_order_relaxed);
    if (spec_.rejoin_p99_ceiling_ns > 0 && p99 >= 0) {
      if (p99 > spec_.rejoin_p99_ceiling_ns) {
        PEERSCOPE_METRIC_INC("watchdog.violations");
        if (++rejoin_strikes >= spec_.sustain) {
          trip("discovery rejoin p99 " + std::to_string(p99) +
               "ns above ceiling " +
               std::to_string(spec_.rejoin_p99_ceiling_ns) + "ns for " +
               std::to_string(rejoin_strikes) + " windows");
          return;
        }
      } else {
        rejoin_strikes = 0;
      }
    }
  }
}

}  // namespace peerscope::obs
