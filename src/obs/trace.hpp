// Structured event tracing: *when* things happened, not just how
// much. The timeline sibling of the metrics registry (DESIGN.md §12).
//
// Each thread records into its own fixed-capacity ring buffer — no
// locks, no cross-thread writes — so tracing is safe on the hot path
// and memory is bounded by (threads × ring_capacity). When a ring
// wraps, the oldest events are overwritten (flight-recorder
// semantics) and the overwritten count is reported explicitly, never
// silently. trace_flush() moves a thread's retained events into the
// recorder's central store; exp::run_experiment flushes at run end,
// which makes event counts and drop counts a per-run property and
// therefore independent of the thread-pool size.
//
// Cost contract (same as metrics.hpp): with no recorder installed
// every hook is one relaxed load + branch and traced-off runs stay
// byte-identical. Determinism contract (§5.6): event names, counts,
// and span nesting are a pure function of (seed, configuration) at
// any pool size; only timestamps vary. deterministic_trace() renders
// exactly the reproducible subset for golden tests and CI diffs.
//
// Export is Chrome trace-event / Perfetto compatible JSON (schema
// peerscope.trace/1, one event per line) readable by about:tracing,
// ui.perfetto.dev, or `peerscope trace-summary` (trace_summary.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace peerscope::obs {

enum class TraceEventType : std::uint8_t {
  kBegin,    // span opened ("B"); name is the full "/"-joined path
  kEnd,      // span closed ("E")
  kInstant,  // point event ("i")
  kCounter,  // counter sample ("C"); value is the sampled total
};

/// One drained event. `tid` is a dense per-recorder thread index (not
/// an OS id) so renderings are stable across runs; `ts_ns` is
/// steady-clock time since the recorder's construction.
struct TraceEvent {
  std::string name;
  TraceEventType type = TraceEventType::kInstant;
  std::uint32_t tid = 0;
  std::int64_t ts_ns = 0;
  std::int64_t value = 0;
};

/// Flushed events plus the number of events overwritten by ring wraps
/// in the flushed windows. Event order is flush order (chronological
/// per tid, interleaved across tids).
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct TraceConfig {
  /// Events retained per thread between flushes. Overflow overwrites
  /// the oldest (the tail survives — it is what the flight recorder
  /// dumps) and counts into TraceSnapshot::dropped and the
  /// obs.trace_events_dropped metric.
  std::size_t ring_capacity = std::size_t{1} << 15;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Record one event on the calling thread's ring. `begin`/`end`
  /// take the full span path (Span passes its "/"-joined nesting), so
  /// every event is self-describing and summary tools never have to
  /// reconstruct partial stacks across drops.
  void begin(std::string_view path);
  void end(std::string_view path);
  void instant(std::string_view name);
  void counter(std::string_view name, std::int64_t value);

  /// Moves the calling thread's retained ring events into the central
  /// store and accounts its overwritten events (also mirrored into
  /// the obs.trace_events_dropped counter when metrics are on). The
  /// ring is empty afterwards. No-op for a thread that never
  /// recorded.
  void flush_current_thread();

  /// The newest `max_events` still in the calling thread's ring,
  /// oldest first — the flight-recorder tail for a run that just
  /// failed (exp::supervise_runs dumps this into journal.d).
  [[nodiscard]] std::vector<TraceEvent> recent_events(
      std::size_t max_events);

  /// Flushes the calling thread, then returns everything flushed so
  /// far. Rings of other threads still running are not touched; quiesce
  /// writers (or have them flush) before the final snapshot.
  [[nodiscard]] TraceSnapshot snapshot();

 private:
  struct ThreadBuffer;

  [[nodiscard]] ThreadBuffer* cached_buffer() noexcept;
  [[nodiscard]] ThreadBuffer& buffer_for_this_thread();
  [[nodiscard]] std::uint32_t intern(std::string_view name);
  void record(TraceEventType type, std::string_view name,
              std::int64_t value);

  struct Impl;
  Impl* impl_;
};

/// Installs `recorder` as the process-wide tracing target (nullptr
/// uninstalls). Same ownership contract as obs::install: the caller
/// keeps ownership, uninstalls before destroying, and quiesces
/// recording threads first.
void install_tracer(TraceRecorder* recorder) noexcept;

/// The installed recorder, or nullptr (the no-op fast path).
[[nodiscard]] TraceRecorder* tracer() noexcept;

[[nodiscard]] inline bool trace_enabled() noexcept {
  return tracer() != nullptr;
}

/// Free-function hooks: no-ops without an installed recorder.
void trace_instant(std::string_view name);
void trace_counter(std::string_view name, std::int64_t value);

/// Flushes the calling thread's ring into the installed recorder's
/// central store (see TraceRecorder::flush_current_thread). No-op
/// when tracing is off.
void trace_flush();

/// Chrome trace-event JSON (schema peerscope.trace/1). One event
/// object per line so a torn tail — a SIGKILL mid-write never
/// produces one (write_trace_json is atomic), but a crashed copy
/// might — loses lines, not the file (trace_summary.hpp salvages).
[[nodiscard]] std::string trace_json(const TraceSnapshot& snapshot);

/// The reproducible subset: per-(phase, name) event counts, counter
/// sums, and the drop count — no timestamps. Byte-identical for two
/// fixed-seed runs at any pool size; golden tests and CI diff this.
[[nodiscard]] std::string deterministic_trace(const TraceSnapshot& snapshot);

/// Writes trace_json via util::write_file_atomic. Throws
/// std::runtime_error on I/O failure.
void write_trace_json(const std::filesystem::path& path,
                      const TraceSnapshot& snapshot);

}  // namespace peerscope::obs

/// Point-event hooks through the installed recorder; a relaxed load
/// and a branch when tracing is off.
#define PEERSCOPE_TRACE_INSTANT(name)              \
  do {                                             \
    if (::peerscope::obs::trace_enabled()) {       \
      ::peerscope::obs::trace_instant(name);       \
    }                                              \
  } while (0)

#define PEERSCOPE_TRACE_COUNTER(name, value)            \
  do {                                                  \
    if (::peerscope::obs::trace_enabled()) {            \
      ::peerscope::obs::trace_counter(name, (value));   \
    }                                                   \
  } while (0)
