#include "util/io_faults.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

// The one sanctioned edge below util in the layer DAG: the fault shim
// reports injections through the obs hooks (relaxed load + branch
// when no registry is installed), which is cheaper than an spmc
// callback indirection and keeps injection counts in the same export
// as everything else. tools/layers.def deliberately omits it so any
// new util -> obs include still fails the module-layering rule.
#include "obs/metrics.hpp"  // peerscope-lint: allow(module-layering)
#include "obs/trace.hpp"    // peerscope-lint: allow(module-layering)
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::util::io {

namespace {

// Operation classes a fault kind can attach to. A fault is matched
// only against calls of its class, so `enospc:journal` never bleeds
// into a read and `short-read` never delays a rename.
enum class Op : std::uint8_t { kWrite, kFsync, kRename, kRead };

[[nodiscard]] constexpr Op op_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortWrite:
    case FaultKind::kEnospc:
    case FaultKind::kBitFlip:
      return Op::kWrite;
    case FaultKind::kFsyncFail:
      return Op::kFsync;
    case FaultKind::kRenameFail:
      return Op::kRename;
    case FaultKind::kShortRead:
      return Op::kRead;
    case FaultKind::kEintr:
      // EINTR storms hit both directions; handled specially in match.
      return Op::kWrite;
  }
  return Op::kWrite;
}

struct ArmedFault {
  FaultSpec spec;
  std::uint32_t remaining = 1;  // fires when a match drives this to 0
  bool spent = false;
};

// A path condemned by an injected ENOSPC: writes landing past `limit`
// fail for the rest of the process. A full disk does not un-fill
// because the caller retried, and write_file_atomic's retry loop
// would otherwise defeat a one-shot failure.
struct CondemnedPath {
  std::string path;
  std::uint64_t limit = 0;
};

struct State {
  Mutex mu;
  std::vector<ArmedFault> armed PS_GUARDED_BY(mu);
  std::vector<CondemnedPath> condemned PS_GUARDED_BY(mu);
  std::uint64_t rng PS_GUARDED_BY(mu) = 0;
  // storm consumed by subsequent calls
  std::uint32_t eintr_pending PS_GUARDED_BY(mu) = 0;
  FaultCounters counters PS_GUARDED_BY(mu);
};

State& state() {
  static State s;
  return s;
}

std::atomic<bool> g_enabled{false};

// splitmix64 — tiny, seedable, and plenty for picking corruption
// sites; statistical quality is irrelevant here.
std::uint64_t next_rand(State& s) PS_REQUIRES(s.mu) {
  std::uint64_t z = (s.rng += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool path_matches(const FaultSpec& spec, const std::filesystem::path& path) {
  return spec.path_substr.empty() ||
         path.native().find(spec.path_substr) != std::string::npos;
}

// Finds the first unspent fault of `kind` eligible for this call,
// honouring each candidate's #nth countdown. Returns nullptr when
// nothing fires.
ArmedFault* match(State& s, FaultKind kind,
                  const std::filesystem::path& path) PS_REQUIRES(s.mu) {
  for (ArmedFault& f : s.armed) {
    if (f.spent || f.spec.kind != kind || !path_matches(f.spec, path)) {
      continue;
    }
    if (--f.remaining > 0) {
      continue;
    }
    f.spent = true;
    return &f;
  }
  return nullptr;
}

void note_injection(State& s, const FaultSpec& spec) PS_REQUIRES(s.mu) {
  ++s.counters.injected;
  PEERSCOPE_METRIC_ADD("io.faults_injected", 1);
  PEERSCOPE_TRACE_INSTANT("io.fault_injected");
  (void)spec;
}

[[nodiscard]] std::uint64_t parse_uint(std::string_view text,
                                       std::string_view clause) {
  if (text.empty()) {
    throw std::invalid_argument("io-faults: empty number in clause '" +
                                std::string(clause) + "'");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("io-faults: bad number '" +
                                  std::string(text) + "' in clause '" +
                                  std::string(clause) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

[[nodiscard]] FaultKind parse_kind(std::string_view token,
                                   std::string_view clause) {
  if (token == "short-read") return FaultKind::kShortRead;
  if (token == "short-write") return FaultKind::kShortWrite;
  if (token == "eintr") return FaultKind::kEintr;
  if (token == "enospc") return FaultKind::kEnospc;
  if (token == "fsync-fail") return FaultKind::kFsyncFail;
  if (token == "rename-fail") return FaultKind::kRenameFail;
  if (token == "bitflip") return FaultKind::kBitFlip;
  throw std::invalid_argument("io-faults: unknown fault kind in clause '" +
                              std::string(clause) + "'");
}

[[nodiscard]] FaultSpec parse_clause(std::string_view clause) {
  FaultSpec spec;
  const std::size_t kind_end = clause.find_first_of("@#:");
  spec.kind = parse_kind(clause.substr(0, kind_end), clause);
  std::string_view rest =
      kind_end == std::string_view::npos ? std::string_view{}
                                         : clause.substr(kind_end);
  while (!rest.empty()) {
    const char tag = rest.front();
    rest.remove_prefix(1);
    if (tag == ':') {
      // Path substring is always last: it may contain any character.
      if (rest.empty()) {
        throw std::invalid_argument(
            "io-faults: empty path filter in clause '" + std::string(clause) +
            "'");
      }
      spec.path_substr = std::string(rest);
      break;
    }
    const std::size_t end = rest.find_first_of("@#:");
    const std::string_view number = rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view{}
                                         : rest.substr(end);
    if (tag == '@') {
      spec.offset = parse_uint(number, clause);
    } else {  // '#'
      const std::uint64_t nth = parse_uint(number, clause);
      if (nth == 0 || nth > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument("io-faults: #nth out of range in clause '" +
                                    std::string(clause) + "'");
      }
      spec.nth = static_cast<std::uint32_t>(nth);
    }
  }
  return spec;
}

ssize_t raw_write(int fd, const char* data, std::size_t n) {
  return ::write(fd, data, n);
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view clause = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    // Trim surrounding whitespace so "a, b" parses like "a,b".
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (!clause.empty()) {
      plan.faults.push_back(parse_clause(clause));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (plan.faults.empty()) {
    throw std::invalid_argument("io-faults: empty fault schedule");
  }
  return plan;
}

void install_faults(FaultPlan plan) {
  State& s = state();
  MutexLock lock{s.mu};
  s.armed.clear();
  for (FaultSpec& spec : plan.faults) {
    ArmedFault armed;
    armed.remaining = spec.nth;
    armed.spec = std::move(spec);
    s.armed.push_back(std::move(armed));
  }
  s.condemned.clear();
  s.rng = plan.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  s.eintr_pending = 0;
  s.counters = FaultCounters{};
  g_enabled.store(!s.armed.empty(), std::memory_order_relaxed);
}

void clear_faults() {
  State& s = state();
  MutexLock lock{s.mu};
  s.armed.clear();
  s.condemned.clear();
  s.eintr_pending = 0;
  g_enabled.store(false, std::memory_order_relaxed);
}

bool faults_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

FaultCounters fault_counters() {
  State& s = state();
  MutexLock lock{s.mu};
  return s.counters;
}

ssize_t write_some(int fd, const char* data, std::size_t n,
                   std::uint64_t file_offset,
                   const std::filesystem::path& path) {
  if (!faults_enabled()) {
    return raw_write(fd, data, n);
  }
  State& s = state();
  MutexLock lock{s.mu};

  // A pending EINTR storm swallows calls before any new fault can arm.
  if (s.eintr_pending > 0) {
    --s.eintr_pending;
    ++s.counters.eintr_retries;
    PEERSCOPE_METRIC_ADD("io.eintr_retries", 1);
    errno = EINTR;
    return -1;
  }

  // Sticky disk-full: once a path is condemned at byte L, writes
  // reaching L fail forever and writes crossing it land short.
  for (const CondemnedPath& c : s.condemned) {
    if (path.native() != c.path) {
      continue;
    }
    if (file_offset >= c.limit) {
      ++s.counters.enospc_failures;
      PEERSCOPE_METRIC_ADD("io.enospc_failures", 1);
      errno = ENOSPC;
      return -1;
    }
    if (file_offset + n > c.limit) {
      return raw_write(fd, data, static_cast<std::size_t>(c.limit - file_offset));
    }
  }

  if (ArmedFault* f = match(s, FaultKind::kEintr, path)) {
    note_injection(s, f->spec);
    // @offset doubles as the storm length; this call consumes one.
    const std::uint64_t storm = std::max<std::uint64_t>(1, f->spec.offset.value_or(3));
    s.eintr_pending = static_cast<std::uint32_t>(storm - 1);
    ++s.counters.eintr_retries;
    PEERSCOPE_METRIC_ADD("io.eintr_retries", 1);
    errno = EINTR;
    return -1;
  }

  if (ArmedFault* f = match(s, FaultKind::kEnospc, path)) {
    note_injection(s, f->spec);
    ++s.counters.enospc_failures;
    PEERSCOPE_METRIC_ADD("io.enospc_failures", 1);
    const std::uint64_t limit =
        f->spec.offset.value_or(file_offset + next_rand(s) % (n + 1));
    s.condemned.push_back({path.native(), limit});
    if (file_offset >= limit) {
      errno = ENOSPC;
      return -1;
    }
    const std::uint64_t room = limit - file_offset;
    return raw_write(fd, data, static_cast<std::size_t>(std::min<std::uint64_t>(room, n)));
  }

  if (ArmedFault* f = match(s, FaultKind::kShortWrite, path)) {
    note_injection(s, f->spec);
    ++s.counters.short_writes;
    PEERSCOPE_METRIC_ADD("io.short_writes", 1);
    const std::size_t keep = std::max<std::size_t>(
        1, f->spec.offset ? static_cast<std::size_t>(std::min<std::uint64_t>(
                                *f->spec.offset, n))
                          : n / 2);
    return raw_write(fd, data, keep);
  }

  // Bit flips stay armed until the write covering the target byte
  // arrives; an unset offset resolves to a seeded bit of this write.
  for (ArmedFault& f : s.armed) {
    if (f.spent || f.spec.kind != FaultKind::kBitFlip ||
        !path_matches(f.spec, path)) {
      continue;
    }
    if (!f.spec.offset) {
      f.spec.offset = file_offset * 8 + next_rand(s) % (n * 8);
    }
    const std::uint64_t byte = *f.spec.offset / 8;
    if (byte < file_offset || byte >= file_offset + n) {
      continue;
    }
    if (--f.remaining > 0) {
      continue;
    }
    f.spent = true;
    note_injection(s, f.spec);
    ++s.counters.bitflips;
    PEERSCOPE_METRIC_ADD("io.bitflips", 1);
    std::string corrupted(data, n);
    corrupted[static_cast<std::size_t>(byte - file_offset)] ^=
        static_cast<char>(1u << (*f.spec.offset % 8));
    return raw_write(fd, corrupted.data(), n);
  }

  return raw_write(fd, data, n);
}

int fsync_file(int fd, const std::filesystem::path& path) {
  if (faults_enabled()) {
    State& s = state();
    MutexLock lock{s.mu};
    if (ArmedFault* f = match(s, FaultKind::kFsyncFail, path)) {
      note_injection(s, f->spec);
      ++s.counters.fsync_failures;
      PEERSCOPE_METRIC_ADD("io.fsync_failures", 1);
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
}

int rename_file(const std::filesystem::path& from,
                const std::filesystem::path& to) {
  if (faults_enabled()) {
    State& s = state();
    MutexLock lock{s.mu};
    // Match on the destination — that is the name schedules know.
    if (ArmedFault* f = match(s, FaultKind::kRenameFail, to)) {
      note_injection(s, f->spec);
      ++s.counters.rename_failures;
      PEERSCOPE_METRIC_ADD("io.rename_failures", 1);
      errno = EIO;
      return -1;
    }
  }
  return ::rename(from.c_str(), to.c_str());
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return std::nullopt;
  }
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return std::nullopt;
    }
    if (got == 0) {
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);

  if (faults_enabled()) {
    State& s = state();
    MutexLock lock{s.mu};
    // An armed EINTR storm also covers reads: model the interrupted
    // retries the slurp loop above would have absorbed.
    if (ArmedFault* f = match(s, FaultKind::kEintr, path)) {
      note_injection(s, f->spec);
      const std::uint64_t storm = std::max<std::uint64_t>(1, f->spec.offset.value_or(3));
      s.counters.eintr_retries += storm;
      PEERSCOPE_METRIC_ADD("io.eintr_retries", storm);
    }
    if (ArmedFault* f = match(s, FaultKind::kShortRead, path)) {
      note_injection(s, f->spec);
      ++s.counters.short_reads;
      PEERSCOPE_METRIC_ADD("io.short_reads", 1);
      const std::uint64_t keep = f->spec.offset.value_or(buf.size() / 2);
      if (keep < buf.size()) {
        buf.resize(static_cast<std::size_t>(keep));
      }
    }
  }
  return buf;
}

}  // namespace peerscope::util::io
