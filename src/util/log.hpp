// Minimal leveled logger.
//
// Bench/example binaries log progress at Info; the library itself only
// logs at Debug so tests stay quiet. Not a general-purpose logging
// framework on purpose -- a sink function pointer keeps it injectable
// for tests without pulling in iostream formatting at call sites.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace peerscope::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log configuration. The default sink writes to stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Replaces the sink; passing nullptr restores the stderr sink.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view message);

  static void debug(std::string_view message) {
    write(LogLevel::kDebug, message);
  }
  static void info(std::string_view message) {
    write(LogLevel::kInfo, message);
  }
  static void warn(std::string_view message) {
    write(LogLevel::kWarn, message);
  }
  static void error(std::string_view message) {
    write(LogLevel::kError, message);
  }
};

[[nodiscard]] std::string_view to_string(LogLevel level);

}  // namespace peerscope::util
