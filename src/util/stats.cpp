#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace peerscope::util {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile_inplace(std::span<double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q outside [0,1]");
  }
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double percentile(std::span<const double> samples, double q) {
  std::vector<double> copy(samples.begin(), samples.end());
  return percentile_inplace(copy, q);
}

double median(std::span<const double> samples) {
  return percentile(samples, 0.5);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x, std::uint64_t weight) {
  const double scaled =
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  std::size_t bin;
  if (scaled < 0.0) {
    bin = 0;
  } else if (scaled >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(scaled);
  }
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) {
    throw std::logic_error("Histogram::quantile: empty histogram");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  }
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

double percentage(double part, double complement) {
  const double total = part + complement;
  if (total <= 0.0) return 0.0;
  return 100.0 * part / total;
}

}  // namespace peerscope::util
