#include "util/log.hpp"

#include <cstdio>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::util {

namespace {

Mutex g_mutex;
LogLevel g_level PS_GUARDED_BY(g_mutex) = LogLevel::kWarn;
Log::Sink g_sink PS_GUARDED_BY(g_mutex);

void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level).data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

void Log::set_level(LogLevel level) {
  MutexLock lock{g_mutex};
  g_level = level;
}

LogLevel Log::level() {
  MutexLock lock{g_mutex};
  return g_level;
}

void Log::set_sink(Sink sink) {
  MutexLock lock{g_mutex};
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view message) {
  Sink sink;
  {
    MutexLock lock{g_mutex};
    if (level < g_level) return;
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace peerscope::util
