#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace peerscope::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must be non-empty");
  }
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("TextTable: row wider than header");
  }
  cells.resize(header_.size());
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::set_align(std::size_t column, Align align) {
  align_.at(column) = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto emit_cells = [&](std::ostringstream& out,
                        const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| ";
      const std::size_t pad = width[c] - cells[c].size();
      if (align_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (align_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };
  auto emit_rule = [&](std::ostringstream& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << '+' << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };

  std::ostringstream out;
  emit_rule(out);
  emit_cells(out, header_);
  emit_rule(out);
  for (const auto& row : rows_) {
    if (row.rule_before) emit_rule(out);
    emit_cells(out, row.cells);
  }
  emit_rule(out);
  return out.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string TextTable::count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace peerscope::util
