#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/io_faults.hpp"

namespace peerscope::util {

namespace {

[[noreturn]] void fail(const std::string& op,
                       const std::filesystem::path& path) {
  throw std::runtime_error(op + " " + path.string() + ": " +
                           std::strerror(errno));
}

/// `base_offset` is where `contents` starts within the destination
/// file (non-zero only for appends) so the fault shim can key
/// disk-full and bit-flip schedules on absolute file position.
void write_all(int fd, std::string_view contents, std::uint64_t base_offset,
               const std::string& op, const std::filesystem::path& path) {
  const char* data = contents.data();
  std::size_t left = contents.size();
  std::size_t done = 0;
  while (left > 0) {
    const ssize_t n =
        io::write_some(fd, data, left, base_offset + done, path);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(op, path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
    done += static_cast<std::size_t>(n);
  }
}

/// fsync on the directory so the rename (or the new directory entry)
/// itself is durable, not just the file contents.
void sync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail("atomic write: cannot open directory", dir);
  const int rc = io::fsync_file(fd, dir);
  ::close(fd);
  if (rc != 0) fail("atomic write: fsync directory", dir);
}

}  // namespace

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents, bool durable) {
  // The temp name embeds the pid so concurrent writers of *different*
  // runs never collide; two writers of the same path race benignly
  // (last rename wins with a complete file either way).
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("atomic write: cannot create", tmp);
  try {
    write_all(fd, contents, 0, "atomic write: short write to", tmp);
    if (durable && io::fsync_file(fd, tmp) != 0) {
      fail("atomic write: fsync", tmp);
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic write: close", tmp);
  }
  if (io::rename_file(tmp, path) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic write: rename to", path);
  }
  if (durable) sync_parent_dir(path);
}

void append_line_durable(const std::filesystem::path& path,
                         std::string_view line) {
  const bool existed = std::filesystem::exists(path);
  std::uint64_t base = 0;
  if (existed) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) base = size;
  }
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) fail("journal append: cannot open", path);
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  try {
    write_all(fd, buf, base, "journal append: short write to", path);
    if (io::fsync_file(fd, path) != 0) fail("journal append: fsync", path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) fail("journal append: close", path);
  // A freshly created journal also needs its directory entry on disk.
  if (!existed) sync_parent_dir(path);
}

}  // namespace peerscope::util
