// Streaming and batch statistics used across trace analysis and report
// generation: online mean/variance/min/max (Welford), percentiles over
// collected samples, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace peerscope::util {

/// Welford online accumulator: numerically stable single-pass mean and
/// variance plus min/max. Merge-able, so per-shard accumulators can be
/// reduced associatively in parallel analysis.
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile with linear interpolation between closest ranks
/// (the "linear" / type-7 estimator). `q` in [0, 1]. The input span is
/// copied; use `percentile_inplace` to avoid the copy when the caller
/// owns the buffer.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// As `percentile` but sorts the given buffer in place.
[[nodiscard]] double percentile_inplace(std::span<double> samples, double q);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> samples);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Value below which fraction `q` of the (weighted) mass lies,
  /// interpolated within the containing bin.
  [[nodiscard]] double quantile(double q) const;

  /// Crude terminal rendering for reports (one line per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ratio helper: percentage a/(a+b), 0 when both are zero. Used all over
/// the preference framework (Eqs. 7-8 of the paper).
[[nodiscard]] double percentage(double part, double complement);

}  // namespace peerscope::util
