// Deterministic storage fault injection (DESIGN.md §15).
//
// Every byte peerscope persists — trace files, journals, capture
// metadata, metrics/trace/bench sidecars — funnels through the hooks
// in this header: `write_some`, `fsync_file`, `rename_file` on the
// write path (called by util::write_file_atomic) and `read_file` on
// the read path. With no fault plan installed each hook is the raw
// syscall behind a single relaxed atomic load, so clean runs are
// byte-identical to a build without the shim. With a plan installed,
// the hooks consult a seeded, schedule-driven fault table and inject
// the storage failures that are routine at the paper's >140M-packet
// capture scale: short writes, EINTR storms, disk-full at byte N,
// failed fsync/rename, short reads, and single-bit flips.
//
// Fault-schedule grammar (one spec, comma-separated faults):
//
//   fault   := kind [ '@' offset ] [ '#' nth ] [ ':' path-substr ]
//   kind    := short-read | short-write | eintr | enospc
//            | fsync-fail | rename-fail | bitflip
//
// `@offset` — byte position the fault keys on (ENOSPC: file fails at
// byte N; bitflip: bit index K within the file; eintr: storm length;
// short-read: bytes surviving). `#nth` — fire on the nth matching
// call (default 1). `:substr` — only paths containing substr are
// eligible. Each fault fires once (ENOSPC is sticky per path — a full
// disk does not un-fill because the caller retried). Unset offsets
// are drawn from the seeded RNG so chaos sweeps explore different
// corruption sites per seed while staying reproducible.
//
// Activation: `peerscope --io-faults <spec> [--io-faults-seed N]` or
// env `PEERSCOPE_IO_FAULTS` / `PEERSCOPE_IO_FAULTS_SEED`. Injections
// bump `io.*` counters and emit an `io.fault_injected` trace instant.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace peerscope::util::io {

enum class FaultKind : std::uint8_t {
  kShortRead,
  kShortWrite,
  kEintr,
  kEnospc,
  kFsyncFail,
  kRenameFail,
  kBitFlip,
};

/// One entry in a fault schedule. See the grammar above.
struct FaultSpec {
  FaultKind kind = FaultKind::kShortWrite;
  std::optional<std::uint64_t> offset;  // meaning depends on kind
  std::uint32_t nth = 1;                // fire on the nth matching call
  std::string path_substr;              // empty = any path
};

/// A parsed, seeded fault schedule.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 0;

  /// Parses the grammar above. Throws std::invalid_argument with a
  /// message naming the bad clause on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec,
                                       std::uint64_t seed = 0);
};

/// Installs `plan` process-wide; replaces any previous plan and
/// resets all armed/spent state. Thread-safe.
void install_faults(FaultPlan plan);

/// Removes the installed plan; hooks revert to raw syscalls.
void clear_faults();

/// True when a plan with at least one fault is installed. A single
/// relaxed atomic load — the whole cost of the shim on clean runs.
[[nodiscard]] bool faults_enabled();

/// Counters mirroring the io.* metrics, readable without an obs
/// registry — the chaos harness asserts on these directly.
struct FaultCounters {
  std::uint64_t injected = 0;
  std::uint64_t eintr_retries = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t enospc_failures = 0;
  std::uint64_t fsync_failures = 0;
  std::uint64_t rename_failures = 0;
  std::uint64_t bitflips = 0;
};
[[nodiscard]] FaultCounters fault_counters();

/// write(2) with injection. `file_offset` is where `data` lands in
/// the destination file (the caller's running byte count) so offset
/// faults key on file position, not call boundaries. Returns bytes
/// written (possibly short), or -1 with errno set.
[[nodiscard]] ssize_t write_some(int fd, const char* data, std::size_t n,
                                 std::uint64_t file_offset,
                                 const std::filesystem::path& path);

/// fsync(2) with injection. Returns 0 or -1 with errno set.
[[nodiscard]] int fsync_file(int fd, const std::filesystem::path& path);

/// rename(2) with injection. Returns 0 or -1 with errno set.
[[nodiscard]] int rename_file(const std::filesystem::path& from,
                              const std::filesystem::path& to);

/// Slurps `path` (the read-path hook every src/ reader routes
/// through). Returns nullopt when the file cannot be opened; injected
/// short reads truncate the returned contents.
[[nodiscard]] std::optional<std::string> read_file(
    const std::filesystem::path& path);

}  // namespace peerscope::util::io
