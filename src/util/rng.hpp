// Deterministic pseudo-random number generation.
//
// Simulation reproducibility is a hard requirement (DESIGN.md §5.1):
// the same experiment seed must give bit-identical traces on every
// platform. std::mt19937 would work but its distributions
// (std::uniform_int_distribution et al.) are implementation-defined, so
// we ship our own generator (xoshiro256**, seeded via splitmix64) and
// our own distribution transforms.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace peerscope::util {

/// splitmix64: used to expand a single 64-bit seed into generator state
/// and to derive independent child seeds (seed-tree pattern).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  /// Derives an independent generator; children with distinct tags are
  /// statistically independent of the parent and of each other.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    SplitMix64 sm{state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (tag + 1))};
    Rng child{sm.next()};
    return child;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (for std::shuffle).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponential with given mean (inverse-CDF).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method (deterministic given the
  /// stream position).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Pareto (heavy-tailed) with shape alpha and minimum xm.
  double pareto(double xm, double alpha);

  /// Log-normal parameterised by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Samples k distinct indices from [0, n) (Floyd's algorithm); order is
  /// unspecified but deterministic. If k >= n returns all of [0, n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace peerscope::util
