// Annotated mutex wrapper: the only lock type allowed outside this
// file (lock-annotation lint rule, DESIGN.md §16).
//
// util::Mutex is std::mutex carrying clang's `capability` attribute;
// util::MutexLock is the scoped acquire; util::CondVar the matching
// condition variable. The wrapper is zero-overhead and ABI-compatible
// with the std types it wraps (static-asserted in
// tests/util/mutex_test.cpp): every member forwards inline, and the
// annotations compile to nothing on non-clang compilers. What the
// wrapper buys is visibility — with every lock in the tree expressed
// through an annotated type, `-Wthread-safety -Werror` (the clang CI
// legs) can prove PS_GUARDED_BY members are never touched unlocked.
//
// Condition waits do not take a predicate on purpose: a predicate
// lambda reading guarded members cannot carry PS_REQUIRES, so callers
// write the explicit while-loop the analysis can see:
//
//   MutexLock lock{mutex_};
//   while (!ready_) cv_.wait(mutex_);
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace peerscope::util {

class PS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PS_ACQUIRE() { mu_.lock(); }
  void unlock() PS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() PS_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the std::lock_guard shape).
class PS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for Mutex. wait() releases and reacquires the
/// mutex internally; from the analysis' point of view the capability
/// is held across the call, which is exactly the caller's contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (spurious wakeups apply; loop on the
  /// condition). The std::mutex is adopted for the duration of the
  /// wait and released back to the caller's MutexLock afterwards.
  void wait(Mutex& mu) PS_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted{mu.mu_, std::adopt_lock};
    cv_.wait(adopted);
    adopted.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace peerscope::util
