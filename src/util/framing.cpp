#include "util/framing.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "util/crc32c.hpp"

namespace peerscope::util::framing {

namespace {

constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kSyncMarkerSize = 16;
constexpr std::size_t kFrameOverhead = 8;  // payload_len + payload_crc

template <typename T>
void put(std::string& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buf.append(bytes, sizeof(T));  // host is little-endian (x86/ARM64)
}

template <typename T>
T get(const char*& ptr) {
  T value;
  std::memcpy(&value, ptr, sizeof(T));
  ptr += sizeof(T);
  return value;
}

struct Header {
  std::uint64_t count = 0;
  std::uint32_t sync_interval = 0;
};

/// Parses and CRC-verifies the 24-byte header against `format`.
/// Returns the failure reason, or empty on success.
[[nodiscard]] std::string parse_header(const FrameFormat& format,
                                       std::string_view buf, Header& out) {
  if (buf.size() < kHeaderSize) {
    return "truncated header";
  }
  const char* ptr = buf.data();
  if (get<std::uint32_t>(ptr) != format.magic) {
    return "bad magic";
  }
  if (const auto version = get<std::uint16_t>(ptr);
      version != format.version) {
    return "unsupported version " + std::to_string(version);
  }
  (void)get<std::uint16_t>(ptr);  // reserved
  out.count = get<std::uint64_t>(ptr);
  out.sync_interval = get<std::uint32_t>(ptr);
  const auto stored = get<std::uint32_t>(ptr);
  if (stored != crc32c(buf.substr(0, kHeaderSize - 4))) {
    return "header checksum mismatch";
  }
  return {};
}

/// True when the 16 bytes at `p` are a CRC-valid sync marker.
[[nodiscard]] bool valid_sync_marker(std::string_view buf, std::size_t p,
                                     std::uint64_t& index_out) {
  if (buf.size() - p < kSyncMarkerSize) {
    return false;
  }
  const char* ptr = buf.data() + p;
  if (get<std::uint32_t>(ptr) != kSyncMagic) {
    return false;
  }
  const std::uint64_t index = get<std::uint64_t>(ptr);
  if (get<std::uint32_t>(ptr) != crc32c(buf.substr(p, 12))) {
    return false;
  }
  index_out = index;
  return true;
}

}  // namespace

std::string encode_frames(const FrameFormat& format,
                          const std::vector<std::string>& payloads,
                          std::uint32_t sync_interval) {
  std::string buf;
  std::size_t total = kHeaderSize;
  for (const std::string& payload : payloads) {
    total += kFrameOverhead + payload.size();
  }
  buf.reserve(total);
  put<std::uint32_t>(buf, format.magic);
  put<std::uint16_t>(buf, format.version);
  put<std::uint16_t>(buf, 0);  // reserved
  put<std::uint64_t>(buf, payloads.size());
  put<std::uint32_t>(buf, sync_interval);
  put<std::uint32_t>(buf, crc32c(buf));

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::string& payload = payloads[i];
    if (payload.size() > format.max_record_len) {
      throw std::length_error(
          "encode_frames: payload " + std::to_string(i) + " is " +
          std::to_string(payload.size()) + " bytes, limit " +
          std::to_string(format.max_record_len));
    }
    if (sync_interval > 0 && i > 0 && i % sync_interval == 0) {
      const std::size_t marker_start = buf.size();
      put<std::uint32_t>(buf, kSyncMagic);
      put<std::uint64_t>(buf, static_cast<std::uint64_t>(i));
      put<std::uint32_t>(
          buf, crc32c(std::string_view(buf).substr(marker_start, 12)));
    }
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(buf, crc32c(payload));
    buf.append(payload);
  }
  return buf;
}

std::vector<std::string> decode_frames(const FrameFormat& format,
                                       std::string_view buf,
                                       const std::string& origin) {
  Header header;
  if (const std::string err = parse_header(format, buf, header);
      !err.empty()) {
    throw std::runtime_error("decode_frames: " + err + " in " + origin);
  }
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(header.count));
  std::size_t pos = kHeaderSize;
  for (std::uint64_t i = 0; i < header.count; ++i) {
    if (header.sync_interval > 0 && i > 0 &&
        i % header.sync_interval == 0) {
      std::uint64_t index = 0;
      if (!valid_sync_marker(buf, pos, index) || index != i) {
        throw std::runtime_error(
            "decode_frames: bad sync marker before record " +
            std::to_string(i) + " in " + origin);
      }
      pos += kSyncMarkerSize;
    }
    if (buf.size() - pos < kFrameOverhead) {
      throw std::runtime_error("decode_frames: truncated at record " +
                               std::to_string(i) + " in " + origin);
    }
    const char* ptr = buf.data() + pos;
    const auto len = get<std::uint32_t>(ptr);
    const auto crc = get<std::uint32_t>(ptr);
    if (len > format.max_record_len ||
        buf.size() - pos - kFrameOverhead < len) {
      throw std::runtime_error("decode_frames: corrupt frame at record " +
                               std::to_string(i) + " in " + origin);
    }
    const std::string_view payload = buf.substr(pos + kFrameOverhead, len);
    if (crc != crc32c(payload)) {
      throw std::runtime_error(
          "decode_frames: checksum mismatch at record " + std::to_string(i) +
          " in " + origin);
    }
    payloads.emplace_back(payload);
    pos += kFrameOverhead + len;
  }
  if (pos != buf.size()) {
    throw std::runtime_error(
        "decode_frames: trailing garbage after declared records in " +
        origin);
  }
  return payloads;
}

std::vector<std::string> decode_frames_salvage(const FrameFormat& format,
                                               std::string_view buf,
                                               FrameSalvageReport* report) {
  FrameSalvageReport local;
  FrameSalvageReport& rep = report ? *report : local;
  rep = FrameSalvageReport{};

  std::vector<std::string> payloads;
  Header header;
  if (const std::string err = parse_header(format, buf, header);
      !err.empty()) {
    rep.bytes_discarded = buf.size();
    rep.note = err;
    return payloads;
  }
  rep.header_valid = true;
  payloads.reserve(static_cast<std::size_t>(header.count));

  // `seen` counts stream positions consumed (recovered or dropped);
  // the invariant recovered + dropped == declared holds on exit.
  // `marker_due` is the index of the next sync marker the writer will
  // have emitted — tracked explicitly so that resyncing *to* a marker
  // does not leave the loop expecting that same marker again.
  std::uint64_t seen = 0;
  std::uint64_t marker_due =
      header.sync_interval > 0 ? header.sync_interval : 0;
  std::size_t pos = kHeaderSize;
  bool damaged = false;  // in a poisoned region, looking for a marker

  while (seen < header.count) {
    if (damaged) {
      // Resync: scan byte-by-byte for a CRC-valid marker whose index
      // both advances the stream and lands on the writer's cadence.
      const std::size_t scan_start = pos;
      std::size_t found = std::string_view::npos;
      std::uint64_t found_index = 0;
      for (std::size_t p = pos; p + kSyncMarkerSize <= buf.size(); ++p) {
        std::uint64_t index = 0;
        if (valid_sync_marker(buf, p, index) && index > seen &&
            index <= header.count && header.sync_interval > 0 &&
            index % header.sync_interval == 0) {
          found = p;
          found_index = index;
          break;
        }
      }
      if (found == std::string_view::npos) {
        rep.bytes_discarded += buf.size() - scan_start;
        rep.records_dropped += header.count - seen;
        rep.truncated = true;
        if (rep.note.empty()) {
          rep.note = "no sync marker after corrupt frame";
        }
        seen = header.count;
        break;
      }
      rep.bytes_discarded += found - scan_start;
      rep.records_dropped += found_index - seen;
      seen = found_index;
      marker_due = found_index + header.sync_interval;
      pos = found + kSyncMarkerSize;
      damaged = false;
      continue;
    }

    if (header.sync_interval > 0 && seen > 0 && seen == marker_due) {
      std::uint64_t index = 0;
      if (!valid_sync_marker(buf, pos, index) || index != seen) {
        if (rep.note.empty()) {
          rep.note = "bad sync marker before record " + std::to_string(seen);
        }
        damaged = true;
        continue;
      }
      marker_due += header.sync_interval;
      pos += kSyncMarkerSize;
    }

    if (buf.size() - pos < kFrameOverhead) {
      rep.bytes_discarded += buf.size() - pos;
      rep.records_dropped += header.count - seen;
      rep.truncated = true;
      if (rep.note.empty()) {
        rep.note = "file ends " + std::to_string(header.count - seen) +
                   " records short of the declared count";
      }
      seen = header.count;
      break;
    }
    const char* ptr = buf.data() + pos;
    const auto len = get<std::uint32_t>(ptr);
    const auto crc = get<std::uint32_t>(ptr);
    if (len > format.max_record_len) {
      if (rep.note.empty()) {
        rep.note = "corrupt frame length at record " + std::to_string(seen);
      }
      damaged = true;
      continue;
    }
    if (buf.size() - pos - kFrameOverhead < len) {
      rep.bytes_discarded += buf.size() - pos;
      rep.records_dropped += header.count - seen;
      rep.truncated = true;
      if (rep.note.empty()) {
        rep.note = "file ends mid-record at index " + std::to_string(seen);
      }
      seen = header.count;
      break;
    }
    const std::string_view payload = buf.substr(pos + kFrameOverhead, len);
    if (crc != crc32c(payload)) {
      if (rep.note.empty()) {
        rep.note = "checksum mismatch at record " + std::to_string(seen);
      }
      damaged = true;
      continue;
    }
    payloads.emplace_back(payload);
    ++seen;
    pos += kFrameOverhead + len;
  }

  if (!rep.truncated && pos < buf.size()) {
    rep.bytes_discarded += buf.size() - pos;
    if (rep.note.empty()) {
      rep.note = "trailing garbage after declared records";
    }
  }
  rep.records_recovered = payloads.size();
  return payloads;
}

}  // namespace peerscope::util::framing
