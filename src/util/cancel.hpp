// Cooperative cancellation.
//
// A CancelToken is a shared flag plus an optional wall-clock deadline.
// Producers (the experiment supervisor, ThreadPool teardown) request
// cancellation or arm a deadline; consumers (the simulation event
// loop) poll cancelled() at a granularity they choose and unwind by
// throwing util::Cancelled. Nothing is preempted: a run that never
// polls is never interrupted, which is exactly the contract the
// deterministic simulator needs — cancellation can only land between
// events, never inside one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace peerscope::util {

/// Thrown by cancellation poll sites; the supervisor maps it to the
/// timed-out / cancelled run states rather than a generic failure.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; idempotent, callable from any thread.
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) a deadline `after` from now on the steady
  /// clock; cancelled() starts returning true once it passes.
  void set_deadline_after(std::chrono::nanoseconds after) noexcept {
    const auto at = std::chrono::steady_clock::now() + after;
    deadline_ns_.store(at.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// True once request() was called or an armed deadline has passed.
  /// A relaxed load plus (when a deadline is armed) one steady-clock
  /// read — cheap enough to poll every few hundred simulation events.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline;
  }

  /// Whether an armed deadline (rather than an explicit request)
  /// tripped the token — distinguishes "timed out" from "cancelled".
  [[nodiscard]] bool deadline_passed() const noexcept {
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::min();
  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace peerscope::util
