// Generic CRC-32C record framing with sync-marker resynchronisation.
//
// The PSBT binary trace format (trace/binary_format.hpp) proved the
// layout: every record carries its own checksum, periodic sync markers
// let a salvage reader step past damaged regions, and recovered +
// dropped always reconciles against the header's declared count. This
// header factors the *container* out of that format so other sidecars
// — first the PSTS time-series file (obs/timeseries.hpp) — get the
// same self-validating properties without re-deriving the resync
// machinery. PSBT itself keeps its bespoke encoder (its header carries
// a probe address this generic one does not).
//
// Layout (little-endian throughout):
//
//   header (24 bytes):
//     u32 magic          caller-chosen container magic
//     u16 version        caller-chosen format version
//     u16 reserved       0
//     u64 record_count
//     u32 sync_interval  records between sync markers (0 = none)
//     u32 header_crc     CRC-32C over the preceding 20 bytes
//
//   stream: records, with a sync marker before record i whenever
//   i % sync_interval == 0 (i > 0):
//     record frame:  u32 payload_len · u32 payload_crc · payload
//     sync marker:   u32 0x53594e43 "SYNC" · u64 record_index ·
//                    u32 marker_crc (CRC-32C over the preceding 12)
//
// Salvage semantics match PSBT: a frame whose length is implausible or
// whose CRC fails poisons the stream until the next verifiable sync
// marker, and the marker's record_index accounts exactly how many
// records the damaged region swallowed. These functions are
// buffer-level only — callers persist through util::write_file_atomic
// and read back through util::io::read_file so the io_faults shim
// covers every byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace peerscope::util::framing {

inline constexpr std::uint32_t kSyncMagic = 0x53594e43;  // "SYNC"
inline constexpr std::uint32_t kDefaultSyncInterval = 256;

/// Container identity + limits, fixed per format by the caller.
struct FrameFormat {
  std::uint32_t magic = 0;
  std::uint16_t version = 1;
  /// Frames longer than this are treated as corruption, not data — it
  /// keeps a flipped length bit from sending the reader gigabytes
  /// ahead.
  std::uint32_t max_record_len = 4096;
};

/// Salvage accounting: recovered + dropped reconciles against the
/// header's declared count whenever the header itself was intact.
struct FrameSalvageReport {
  bool header_valid = false;
  std::uint64_t records_recovered = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t bytes_discarded = 0;
  /// The stream ended before the declared record count was reached.
  bool truncated = false;
  /// First anomaly seen, for diagnostics; empty on a clean file.
  std::string note;
};

/// Serializes header + framed payloads. Throws std::length_error when
/// a payload exceeds format.max_record_len. `sync_interval` of 0
/// disables sync markers — legal, but a corrupt record then costs the
/// rest of the file in salvage.
[[nodiscard]] std::string encode_frames(
    const FrameFormat& format, const std::vector<std::string>& payloads,
    std::uint32_t sync_interval = kDefaultSyncInterval);

/// Strict decoder: throws std::runtime_error naming `origin` on any
/// malformation — bad magic/version/CRC, frame damage, truncation,
/// count mismatch, trailing garbage.
[[nodiscard]] std::vector<std::string> decode_frames(
    const FrameFormat& format, std::string_view buf,
    const std::string& origin);

/// Salvage decoder: recovers every payload outside damaged regions,
/// resynchronising at sync markers, and accounts each drop in
/// `report`. Never throws.
[[nodiscard]] std::vector<std::string> decode_frames_salvage(
    const FrameFormat& format, std::string_view buf,
    FrameSalvageReport* report = nullptr);

}  // namespace peerscope::util::framing
