#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 uint128;
#else
#error "peerscope requires __int128 for unbiased bounded random numbers"
#endif

namespace peerscope::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next_u64();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(below(range));
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);  // log(0) guard; uniform01() < 1 always
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_pick: weights sum to zero");
  }
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm: k iterations, no O(n) scratch.
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (std::find(out.begin(), out.end(), t) != out.end()) {
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace peerscope::util
