#include "util/thread_pool.hpp"

#include <algorithm>

namespace peerscope::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.request();
  {
    MutexLock lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock{mutex_};
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace peerscope::util
