// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78).
//
// The checksum behind every self-validating artifact in the tree: the
// binary trace format's per-record and header checksums
// (trace/binary_format.hpp) and the experiment journal's result-blob
// integrity line (exp/journal.cpp). CRC-32C is the iSCSI/ext4
// polynomial — better burst-error detection than CRC-32/zlib and the
// variant hardware crc32 instructions accelerate, should this ever
// need to go faster than the table walk below.
#pragma once

#include <cstdint>
#include <string_view>

namespace peerscope::util {

/// CRC-32C of `data`, with the conventional ~0 pre/post conditioning
/// (crc32c("") == 0, crc32c("123456789") == 0xe3069283).
[[nodiscard]] std::uint32_t crc32c(std::string_view data);

/// Streaming form: feed the previous return value back in as `seed`
/// to checksum data that arrives in pieces. Start with seed 0.
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t seed,
                                          std::string_view data);

}  // namespace peerscope::util
