// Data-parallel helpers over ThreadPool.
//
// parallel_for_chunked partitions an index range into contiguous chunks
// (cache-friendly, no false sharing on the shard outputs) and blocks
// until all chunks complete. parallel_map_reduce evaluates a mapper per
// index and folds shard-local partials with an associative combiner, so
// the result is independent of the worker count.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "util/thread_pool.hpp"

namespace peerscope::util {

/// Invokes `body(begin, end)` over disjoint sub-ranges covering
/// [0, count). Exceptions from any chunk propagate to the caller.
template <typename Body>
void parallel_for_chunked(ThreadPool& pool, std::size_t count, Body&& body,
                          std::size_t min_chunk = 64) {
  if (count == 0) return;
  const std::size_t workers = pool.worker_count();
  std::size_t chunks = workers * 4;
  std::size_t chunk = (count + chunks - 1) / chunks;
  if (chunk < min_chunk) chunk = min_chunk;
  if (chunk >= count) {
    body(std::size_t{0}, count);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count / chunk + 1);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

/// Maps each index through `mapper` (returning T), reduces with the
/// associative `combiner(T&, const T&)`, starting each shard from
/// `identity`. Reduction runs left-to-right over chunks, so combiner
/// need not be commutative.
template <typename T, typename Mapper, typename Combiner>
[[nodiscard]] T parallel_map_reduce(ThreadPool& pool, std::size_t count,
                                    T identity, Mapper&& mapper,
                                    Combiner&& combiner,
                                    std::size_t min_chunk = 64) {
  if (count == 0) return identity;
  const std::size_t workers = pool.worker_count();
  std::size_t chunks = workers * 4;
  std::size_t chunk = (count + chunks - 1) / chunks;
  if (chunk < min_chunk) chunk = min_chunk;

  struct Shard {
    std::size_t begin;
    std::size_t end;
    std::future<T> result;
  };
  std::vector<Shard> shards;
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, count);
    shards.push_back(
        {begin, end, pool.submit([&mapper, &combiner, identity, begin, end] {
           T acc = identity;
           for (std::size_t i = begin; i < end; ++i) {
             combiner(acc, mapper(i));
           }
           return acc;
         })});
  }
  T total = identity;
  for (auto& s : shards) combiner(total, s.result.get());
  return total;
}

}  // namespace peerscope::util
