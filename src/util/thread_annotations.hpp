// Clang thread-safety annotation macros (DESIGN.md §16).
//
// The ROADMAP's next step — sharding one 1M+-peer swarm across cores
// with bounded-lag synchronization — multiplies the ways a stray
// mutex breaks the §5.6 determinism contract. These macros make the
// locking discipline machine-checked: every mutex-protected member is
// declared PS_GUARDED_BY its mutex, every lock-requiring function
// PS_REQUIRES it, and the clang CI legs build with
// `-Wthread-safety -Werror`, so "accessed without the lock" is a
// compile error rather than a TSan lottery ticket.
//
// The macros expand to clang's capability attributes and to nothing
// elsewhere (gcc, msvc), so annotations are zero-cost and
// ABI-invisible on every compiler. Use them through the annotated
// util::Mutex / util::MutexLock wrappers (util/mutex.hpp) — the
// lock-annotation lint rule bans raw std::mutex outside that wrapper
// precisely so the analysis can see every lock in the tree.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PS_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in
/// diagnostics).
#define PS_CAPABILITY(x) PS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define PS_SCOPED_CAPABILITY PS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define PS_GUARDED_BY(x) PS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define PS_PT_GUARDED_BY(x) PS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry and does not
/// release it.
#define PS_REQUIRES(...) \
  PS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define PS_ACQUIRE(...) \
  PS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PS_RELEASE(...) \
  PS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the
/// return value that means success.
#define PS_TRY_ACQUIRE(...) \
  PS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability
/// (deadlock prevention: e.g. a callback-invoking function that
/// re-enters the lock).
#define PS_EXCLUDES(...) PS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering between two capabilities.
#define PS_ACQUIRED_BEFORE(...) \
  PS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PS_ACQUIRED_AFTER(...) \
  PS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define PS_RETURN_CAPABILITY(x) PS_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (for code the
/// analysis cannot follow, e.g. callbacks invoked under a lock).
#define PS_ASSERT_CAPABILITY(x) \
  PS_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables analysis of one function body. Reserve for
/// lock-juggling primitives (CondVar::wait) whose correctness is
/// argued in a comment; never use it to silence a real finding.
#define PS_NO_THREAD_SAFETY_ANALYSIS \
  PS_THREAD_ANNOTATION_(no_thread_safety_analysis)
