#include "util/crc32c.hpp"

#include <array>

namespace peerscope::util {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial,
// generated once at static-init time. The artifacts checksummed here
// are written at most once per run; the table walk is nowhere near a
// hot path.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t seed, std::string_view data) {
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<std::uint8_t>(c)) & 0xff];
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view data) {
  return crc32c_extend(0, data);
}

}  // namespace peerscope::util
