// Crash-safe file persistence.
//
// Every artifact the pipeline leaves on disk (traces, sidecars, CSV
// exports, reports, journal result blobs) goes through
// write_file_atomic: the bytes land in a sibling temp file which is
// fsync'd and renamed over the destination, so a reader — including a
// resumed run after SIGKILL — only ever sees the old complete file or
// the new complete file, never a torn one. The experiment journal uses
// append_line_durable instead: an append-only log cannot be renamed
// per entry, so each line is appended and fsync'd individually and
// readers tolerate a torn final line (DESIGN.md §10).
#pragma once

#include <filesystem>
#include <string_view>

namespace peerscope::util {

/// Writes `contents` to `path` via temp-file + fsync + atomic rename.
/// The temp file lives next to the destination (same filesystem, so
/// rename(2) is atomic) and is removed on failure. When `durable` is
/// true the data and the containing directory are fsync'd before and
/// after the rename; pass false for scratch output where tearing is
/// acceptable but a half-written visible file still is not.
/// Throws std::runtime_error on any I/O failure.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view contents, bool durable = true);

/// Appends `line` plus a trailing '\n' to `path` (creating it when
/// missing) and fsyncs before returning: once this call returns, the
/// line survives a crash of the process or the machine. `line` must
/// not itself contain '\n' — one call, one journal record.
/// Throws std::runtime_error on any I/O failure.
void append_line_durable(const std::filesystem::path& path,
                         std::string_view line);

}  // namespace peerscope::util
