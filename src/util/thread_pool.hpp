// Fixed-size worker pool with a simple shared queue.
//
// Used to run independent experiments (3 applications x seeds)
// concurrently and to shard trace analysis by probe. Results are
// combined by associative reduction so any worker count yields identical
// output (DESIGN.md §5.6).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace peerscope::util {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency() (at
  /// least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Cancellation hook for long-running tasks: requested the moment
  /// pool teardown begins, before any worker is joined. Queued tasks
  /// still run to completion (drain semantics) — a cooperative task
  /// polls this token to cut its own work short so the destructor does
  /// not wait out, say, a half-finished five-minute simulation.
  [[nodiscard]] const CancelToken& shutdown_token() const {
    return shutdown_;
  }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock{mutex_};
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ PS_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  CancelToken shutdown_;
  bool stopping_ PS_GUARDED_BY(mutex_) = false;
};

}  // namespace peerscope::util
