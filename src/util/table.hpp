// Plain-text table rendering for bench harness output.
//
// Every bench binary prints paper-style tables (Tables I-IV, Figures 1-2
// as numeric series) through this renderer so "paper vs measured" rows
// line up and can be diffed by eye.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace peerscope::util {

enum class Align { kLeft, kRight };

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a data row; short rows are padded with empty cells, long rows
  /// are an error.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Per-column alignment; defaults to left for column 0, right
  /// otherwise.
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  /// Formats a double with fixed precision (helper for cells).
  [[nodiscard]] static std::string num(double v, int precision = 1);
  /// Integer with thousands separators (140'000'000-style counts).
  [[nodiscard]] static std::string count(std::uint64_t v);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
  bool pending_rule_ = false;
};

}  // namespace peerscope::util
