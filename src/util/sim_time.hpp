// Strong-typed simulation time.
//
// All simulation timestamps and durations are 64-bit signed nanosecond
// counts. One nanosecond of resolution keeps inter-packet-gap arithmetic
// exact: a 1250-byte packet serialised at 100 Mb/s takes exactly
// 100'000 ns, at 10 Mb/s exactly 1'000'000 ns (the paper's 1 ms
// high-bandwidth threshold).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace peerscope::util {

/// A point in simulated time (nanoseconds since experiment start) or a
/// duration. A single type is used for both, mirroring std::chrono's
/// rep-level arithmetic while staying trivially copyable and hashable.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime nanos(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t v) {
    return SimTime{v * 1'000};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  /// Converts a floating-point second count, rounding to the nearest
  /// nanosecond. Used for rate-derived intervals (bytes / bandwidth).
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    ns_ -= d.ns_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ / k};
  }

 private:
  std::int64_t ns_ = 0;
};

/// Serialisation time of `bytes` at `bits_per_second`, rounded to the
/// nearest nanosecond. The building block for every link/IPG computation.
[[nodiscard]] constexpr SimTime transmission_time(std::int64_t bytes,
                                                  std::int64_t bits_per_second) {
  // bytes * 8e9 / bps fits in int64 for any realistic packet/rate:
  // bytes <= 65536 -> numerator <= 5.2e14.
  return SimTime{(bytes * 8'000'000'000LL + bits_per_second / 2) /
                 bits_per_second};
}

}  // namespace peerscope::util
