// Pluggable peer discovery: how a probe finds the swarm when the
// tracker is healthy, flapping, or gone.
//
// The clean simulator hard-codes tracker-style discovery inside the
// swarm; real deployments survive tracker outages because the clients
// carry fallback machinery — DHT lookups (Kademlia-style iterative
// routing) and gossip membership (push-pull peer exchange). This
// header extracts discovery behind a DiscoveryBackend interface and
// adds both fallbacks, a failover state machine with measured re-join
// latency, and a NAT-traversal matrix feeding the population's
// existing NAT flags.
//
// Everything defaults to disabled: a default-constructed
// DiscoverySpec leaves the swarm bit-identical to the legacy inline
// tracker path (the same contract ChurnSpec and ImpairmentSpec
// honour). Backends model control-plane behaviour abstractly — node
// ids are hashes of PeerIds and lookups consult a deterministic
// population oracle — because the paper's analysis never observes DHT
// payloads, only which peers end up exchanged with whom and how long
// a re-join takes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "p2p/population.hpp"
#include "sim/impairment.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace peerscope::p2p {

enum class DiscoveryBackendKind : std::uint8_t {
  kNone,     // legacy inline tracker path (pre-subsystem behaviour)
  kTracker,  // the extracted tracker, with outage injection
  kDht,      // Kademlia-lite iterative lookup
  kGossip,   // push-pull membership exchange
};

[[nodiscard]] const char* to_string(DiscoveryBackendKind kind);
/// Parses "tracker" | "dht" | "gossip"; nullopt on anything else.
[[nodiscard]] std::optional<DiscoveryBackendKind> parse_backend_kind(
    std::string_view text);

// ---------------------------------------------------------------------
// NAT traversal matrix

enum class NatClass : std::uint8_t { kOpen, kCone, kSymmetric };

/// Direct/relay connection success probabilities per NAT-class pair.
/// Peers without the population NAT flag are open; NAT-flagged peers
/// split deterministically (hash of seed and peer id) into cone and
/// symmetric. A failed direct attempt falls back to a relay, which
/// succeeds with its own probability and costs extra latency on every
/// handshake packet.
struct NatMatrix {
  bool enabled = false;
  /// Fraction of NAT-flagged peers whose NAT is symmetric.
  double symmetric_fraction = 0.3;
  double cone_cone = 0.90;
  double cone_symmetric = 0.40;
  double symmetric_symmetric = 0.05;
  double relay_success = 0.95;
  util::SimTime relay_penalty = util::SimTime::millis(40);
};

[[nodiscard]] NatClass classify_nat(const NatMatrix& matrix,
                                    const PeerInfo& peer,
                                    std::uint64_t seed);

struct NatOutcome {
  bool ok = false;
  bool relayed = false;
};

/// One traversal attempt between NAT classes `a` and `b`. Consumes RNG
/// draws only for pairs whose direct success is below 1 (open pairs
/// connect unconditionally and draw nothing).
[[nodiscard]] NatOutcome attempt_traversal(const NatMatrix& matrix,
                                           NatClass a, NatClass b,
                                           util::Rng& rng);

// ---------------------------------------------------------------------
// DHT building blocks (pure logic, unit-tested without a swarm)

using NodeId = std::uint32_t;

/// Hashed DHT identity of a peer; uniform over the 32-bit id space and
/// a pure function of (seed, peer).
[[nodiscard]] NodeId dht_node_id(std::uint64_t seed, PeerId peer);

[[nodiscard]] constexpr NodeId xor_distance(NodeId a, NodeId b) {
  return a ^ b;
}

struct DhtParams {
  /// Bucket capacity and lookup result width (Kademlia k).
  int k = 8;
  /// Iterative-lookup step budget; dead hops consume steps too, so a
  /// lookup across a dying overlay terminates instead of spinning.
  int max_hops = 16;
  /// Modeled wait before a query to an offline node is abandoned.
  util::SimTime hop_timeout = util::SimTime::millis(800);
  /// Bucket-refresh cadence while the DHT is the active backend.
  util::SimTime refresh_period = util::SimTime::seconds(30);
};

/// Kademlia k-bucket table over the hashed 32-bit id space: one bucket
/// per shared-prefix length, capacity k, full buckets drop newcomers
/// (the classic stale-favouring policy), and liveness failures evict.
class RoutingTable {
 public:
  RoutingTable(NodeId self, int k);

  /// False when the peer was already present or its bucket is full.
  bool insert(NodeId id, PeerId peer);
  /// Removes a peer that failed a liveness check (query timeout).
  void evict(PeerId peer);
  [[nodiscard]] bool contains(PeerId peer) const {
    return members_.contains(peer);
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// Up to `n` known peers closest to `target` in XOR distance.
  [[nodiscard]] std::vector<PeerId> closest(NodeId target,
                                            std::size_t n) const;
  /// Uniform random member; nullopt when empty.
  [[nodiscard]] std::optional<PeerId> sample(util::Rng& rng) const;

 private:
  struct Entry {
    NodeId id = 0;
    PeerId peer = 0;
  };
  [[nodiscard]] int bucket_of(NodeId id) const;

  NodeId self_ = 0;
  int k_ = 8;
  std::array<std::vector<Entry>, 32> buckets_;
  std::unordered_set<PeerId> members_;
};

// ---------------------------------------------------------------------
// Gossip building blocks

struct GossipParams {
  /// Exchange targets per round.
  int fanout = 3;
  /// Peers traded per push-pull exchange.
  int exchange_size = 8;
  /// Exchange-round cadence while gossip is the active backend.
  util::SimTime period = util::SimTime::seconds(5);
  /// Consecutive all-dead rounds before the view is declared
  /// partitioned and healed from the bootstrap set.
  int partition_after = 3;
  /// Membership view capacity (random replacement when full).
  int view_size = 32;
};

/// Bounded partial membership view: the local state of a gossip node.
class GossipView {
 public:
  explicit GossipView(std::size_t capacity) : capacity_(capacity) {}

  /// False when already present; evicts a random entry when full.
  bool add(PeerId peer, util::Rng& rng);
  void erase(PeerId peer);
  [[nodiscard]] bool contains(PeerId peer) const {
    return set_.contains(peer);
  }
  [[nodiscard]] bool empty() const { return list_.empty(); }
  [[nodiscard]] std::size_t size() const { return list_.size(); }

  /// Up to `n` distinct members, uniformly.
  [[nodiscard]] std::vector<PeerId> sample(util::Rng& rng,
                                           std::size_t n) const;

 private:
  std::size_t capacity_ = 32;
  std::vector<PeerId> list_;
  std::unordered_set<PeerId> set_;
};

// ---------------------------------------------------------------------
// Spec

struct DiscoverySpec {
  DiscoveryBackendKind primary = DiscoveryBackendKind::kNone;
  /// Backend the failover state machine switches to after
  /// `failover_after` consecutive primary failures; kNone disables
  /// failover (primary failures degrade the run instead).
  DiscoveryBackendKind fallback = DiscoveryBackendKind::kNone;

  // --- tracker failure injection ---
  /// Scheduled hard outage window [start, start + duration).
  util::SimTime tracker_outage_start = util::SimTime::zero();
  util::SimTime tracker_outage_duration = util::SimTime::zero();
  /// Mean tracker flaps per second, hash-scheduled through the same
  /// sim::in_outage machinery link outages use — deterministic and
  /// RNG-stream-free.
  double tracker_flap_per_s = 0.0;
  util::SimTime tracker_flap_duration = util::SimTime::seconds(2);

  // --- failover policy ---
  /// Consecutive failed primary join rounds before switching over.
  int failover_after = 2;
  /// How often a failed-over probe re-probes the primary for recovery.
  util::SimTime primary_retry = util::SimTime::seconds(10);
  /// A probe whose (re)join is not satisfied within this budget counts
  /// as a missed re-join; any miss degrades the run to a distinct
  /// non-zero status. zero() disables the deadline.
  util::SimTime rejoin_deadline = util::SimTime::zero();
  /// Join-retry backoff ladder (doubles per consecutive failure, with
  /// the PR 1 deterministic 75–125% jitter keyed on seed/peer/attempt).
  util::SimTime join_backoff = util::SimTime::millis(500);
  util::SimTime join_backoff_max = util::SimTime::seconds(8);

  // --- session dynamics ---
  /// Channel-zap flash crowd: at this instant every probe zaps (drops
  /// partners, keeps `zap_reuse` of its known peers, re-joins through
  /// discovery) and `flash_crowd_arrivals` correlated requester
  /// arrivals slam the probes' uplinks. zero() disables.
  util::SimTime flash_crowd_at = util::SimTime::zero();
  int flash_crowd_arrivals = 0;
  /// Cross-channel peer reuse: fraction of the known set that survives
  /// the zap (commercial clients cache peers across channels).
  double zap_reuse = 0.3;
  /// Pareto shape for session lengths (probe sessions and requester
  /// lifetimes), mean-preserving against the exponential baseline;
  /// 0 keeps the exponential draws, values > 1 give the heavy tail the
  /// session-level trace studies report.
  double session_tail_alpha = 0.0;

  DhtParams dht;
  GossipParams gossip;
  NatMatrix nat;

  [[nodiscard]] bool backend_active() const {
    return primary != DiscoveryBackendKind::kNone;
  }
  [[nodiscard]] bool tracker_outages() const {
    return tracker_outage_duration > util::SimTime::zero() ||
           tracker_flap_per_s > 0.0;
  }
  [[nodiscard]] bool flash_crowd() const {
    return flash_crowd_at > util::SimTime::zero() &&
           flash_crowd_arrivals > 0;
  }
  [[nodiscard]] bool heavy_tail() const { return session_tail_alpha > 1.0; }
  [[nodiscard]] bool enabled() const {
    return backend_active() || nat.enabled || flash_crowd() || heavy_tail();
  }
};

// ---------------------------------------------------------------------
// Counters (ground truth for validation, journaled when discovery is
// active, published as p2p.discovery.* when the obs registry is on)

struct DiscoveryCounters {
  std::uint64_t tracker_queries = 0;
  std::uint64_t tracker_failures = 0;  // queries during an outage
  std::uint64_t dht_lookups = 0;
  std::uint64_t dht_hops = 0;
  std::uint64_t dht_hop_timeouts = 0;
  std::uint64_t dht_evictions = 0;
  std::uint64_t gossip_exchanges = 0;
  std::uint64_t gossip_partitions = 0;
  std::uint64_t failovers = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t joins_ok = 0;
  std::uint64_t join_retries = 0;
  std::uint64_t nat_direct = 0;
  std::uint64_t nat_relayed = 0;
  std::uint64_t nat_blocked = 0;
  std::uint64_t flash_arrivals = 0;

  [[nodiscard]] bool any() const {
    return (tracker_queries | tracker_failures | dht_lookups | dht_hops |
            dht_hop_timeouts | dht_evictions | gossip_exchanges |
            gossip_partitions | failovers | recoveries | joins_ok |
            join_retries | nat_direct | nat_relayed | nat_blocked |
            flash_arrivals) != 0;
  }
};

// ---------------------------------------------------------------------
// Backend interface

/// What a backend needs from the swarm: population facts, liveness,
/// and path delays. The swarm implements this privately; tests stub it.
class DiscoveryHost {
 public:
  virtual ~DiscoveryHost() = default;
  [[nodiscard]] virtual const Population& population() const = 0;
  /// Whether a control-plane message to `id` would be answered now.
  [[nodiscard]] virtual bool peer_reachable(PeerId id,
                                            util::SimTime now) const = 0;
  /// Round-trip path delay between two peers (control-plane latency).
  [[nodiscard]] virtual util::SimTime round_trip(PeerId a, PeerId b) const = 0;
  /// The legacy tracker draw for `self`, stable/AS/PEX biases intact.
  [[nodiscard]] virtual PeerId tracker_sample(PeerId self) = 0;
  /// Peers `self` already knows — warm-start material for DHT and
  /// gossip bootstrap (cached peer lists survive a tracker death).
  [[nodiscard]] virtual std::span<const PeerId> known_peers(
      PeerId self) const = 0;
};

/// One join round's outcome: candidate peers to contact, plus the
/// modeled control-plane latency before those contacts can fire.
struct JoinResult {
  std::vector<PeerId> peers;
  util::SimTime latency = util::SimTime::zero();
  bool ok = false;
};

class DiscoveryBackend {
 public:
  virtual ~DiscoveryBackend() = default;
  [[nodiscard]] virtual DiscoveryBackendKind kind() const = 0;
  /// One join/refresh round for `self`: up to `want` candidates.
  [[nodiscard]] virtual JoinResult join(PeerId self, std::size_t want,
                                        util::SimTime now,
                                        util::Rng& rng) = 0;
  /// One cheap steady-state candidate (no full lookup); nullopt when
  /// the backend has nothing to offer right now.
  [[nodiscard]] virtual std::optional<PeerId> sample(PeerId self,
                                                     util::SimTime now,
                                                     util::Rng& rng) = 0;
  /// Liveness feedback from the swarm's actual handshakes.
  virtual void contact_result(PeerId self, PeerId peer, bool ok);
};

// ---------------------------------------------------------------------
// Service: backend ownership + failover state machine + re-join SLO

class DiscoveryService {
 public:
  DiscoveryService(const DiscoverySpec& spec, DiscoveryHost& host,
                   std::uint64_t seed);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  [[nodiscard]] const DiscoverySpec& spec() const { return spec_; }
  [[nodiscard]] bool tracker_available(util::SimTime now) const;

  /// Marks the start of a (re)join episode for re-join latency
  /// accounting; idempotent while an episode is open, so the earliest
  /// trigger (crash rejoin, zap) anchors the measurement.
  void begin_join(PeerId self, util::SimTime now);
  /// One failover-aware join round: tries the active backend, switches
  /// to the fallback after `failover_after` consecutive primary
  /// failures, and periodically re-probes a failed primary to recover.
  [[nodiscard]] JoinResult join_round(PeerId self, std::size_t want,
                                      util::SimTime now, util::Rng& rng);
  /// Closes the episode when contacts from a join round landed.
  void finish_join(PeerId self, util::SimTime now, bool ok);
  [[nodiscard]] bool join_pending(PeerId self) const;
  /// Jittered exponential backoff before the next join retry; advances
  /// the per-probe attempt counter. Deterministic per
  /// (seed, peer, attempt) — the PR 1 jitter policy, no stream draws.
  [[nodiscard]] util::SimTime next_join_backoff(PeerId self);

  /// Steady-state candidate from the active backend.
  [[nodiscard]] std::optional<PeerId> sample(PeerId self, util::SimTime now,
                                             util::Rng& rng);
  /// Whether the active backend's periodic maintenance (DHT bucket
  /// refresh, gossip exchange round) is due.
  [[nodiscard]] bool maintenance_due(PeerId self, util::SimTime now) const;
  void contact_result(PeerId self, PeerId peer, bool ok);

  [[nodiscard]] DiscoveryCounters& counters() { return counters_; }
  [[nodiscard]] const DiscoveryCounters& counters() const {
    return counters_;
  }
  /// Completed re-join episode latencies, in episode-completion order.
  [[nodiscard]] const std::vector<util::SimTime>& rejoin_latencies() const {
    return rejoin_latencies_;
  }
  /// Episodes that blew `deadline`: completed slower than it, or still
  /// open at `end` with the deadline already elapsed.
  [[nodiscard]] std::size_t rejoins_missed(util::SimTime deadline,
                                           util::SimTime end) const;

 private:
  struct ProbeJoinState {
    bool on_fallback = false;
    int primary_failures = 0;
    int attempt = 0;  // consecutive failed join rounds
    bool pending = false;
    bool satisfied = true;
    util::SimTime started = util::SimTime::zero();
    util::SimTime next_primary_probe = util::SimTime::zero();
    util::SimTime next_maintenance = util::SimTime::max();
  };

  [[nodiscard]] std::unique_ptr<DiscoveryBackend> make_backend(
      DiscoveryBackendKind kind);
  [[nodiscard]] DiscoveryBackend* active_backend(const ProbeJoinState& st);
  void schedule_maintenance(ProbeJoinState& st, util::SimTime now);

  DiscoverySpec spec_;
  DiscoveryHost& host_;
  std::uint64_t seed_ = 0;
  sim::ImpairmentSpec flap_spec_;  // tracker flaps via sim::in_outage
  std::unique_ptr<DiscoveryBackend> primary_;
  std::unique_ptr<DiscoveryBackend> fallback_;
  std::unordered_map<PeerId, ProbeJoinState> states_;
  DiscoveryCounters counters_;
  std::vector<util::SimTime> rejoin_latencies_;
};

}  // namespace peerscope::p2p
