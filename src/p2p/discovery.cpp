#include "p2p/discovery.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace peerscope::p2p {

using util::SimTime;

const char* to_string(DiscoveryBackendKind kind) {
  switch (kind) {
    case DiscoveryBackendKind::kNone:
      return "none";
    case DiscoveryBackendKind::kTracker:
      return "tracker";
    case DiscoveryBackendKind::kDht:
      return "dht";
    case DiscoveryBackendKind::kGossip:
      return "gossip";
  }
  return "unknown";
}

std::optional<DiscoveryBackendKind> parse_backend_kind(std::string_view text) {
  if (text == "tracker") return DiscoveryBackendKind::kTracker;
  if (text == "dht") return DiscoveryBackendKind::kDht;
  if (text == "gossip") return DiscoveryBackendKind::kGossip;
  return std::nullopt;
}

// ---------------------------------------------------------------------
// NAT matrix

NatClass classify_nat(const NatMatrix& matrix, const PeerInfo& peer,
                      std::uint64_t seed) {
  if (!peer.access.nat) return NatClass::kOpen;
  // Deterministic cone/symmetric split: a pure function of
  // (seed, peer), like every other per-peer hash draw in the swarm.
  util::SplitMix64 mix{seed ^ (0x5a7c3ULL + peer.id)};
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  return u < matrix.symmetric_fraction ? NatClass::kSymmetric
                                       : NatClass::kCone;
}

NatOutcome attempt_traversal(const NatMatrix& matrix, NatClass a, NatClass b,
                             util::Rng& rng) {
  double direct = 1.0;
  if (a == NatClass::kOpen || b == NatClass::kOpen) {
    direct = 1.0;  // one open endpoint: the NAT'd side dials out
  } else if (a == NatClass::kCone && b == NatClass::kCone) {
    direct = matrix.cone_cone;
  } else if (a == NatClass::kSymmetric && b == NatClass::kSymmetric) {
    direct = matrix.symmetric_symmetric;
  } else {
    direct = matrix.cone_symmetric;
  }
  if (direct >= 1.0) return {true, false};
  if (rng.chance(direct)) return {true, false};
  if (rng.chance(matrix.relay_success)) return {true, true};
  return {false, false};
}

// ---------------------------------------------------------------------
// DHT building blocks

NodeId dht_node_id(std::uint64_t seed, PeerId peer) {
  util::SplitMix64 mix{seed ^ (0xd47a11ULL + peer)};
  return static_cast<NodeId>(mix.next() >> 32);
}

RoutingTable::RoutingTable(NodeId self, int k)
    : self_(self), k_(std::max(1, k)) {}

int RoutingTable::bucket_of(NodeId id) const {
  const NodeId d = xor_distance(self_, id);
  if (d == 0) return 0;
  return static_cast<int>(std::bit_width(d)) - 1;  // prefix bucket, 0..31
}

bool RoutingTable::insert(NodeId id, PeerId peer) {
  if (members_.contains(peer)) return false;
  auto& bucket = buckets_[static_cast<std::size_t>(bucket_of(id))];
  if (bucket.size() >= static_cast<std::size_t>(k_)) return false;
  bucket.push_back({id, peer});
  members_.insert(peer);
  return true;
}

void RoutingTable::evict(PeerId peer) {
  if (members_.erase(peer) == 0) return;
  for (auto& bucket : buckets_) {
    const auto it = std::find_if(
        bucket.begin(), bucket.end(),
        [peer](const Entry& e) { return e.peer == peer; });
    if (it != bucket.end()) {
      bucket.erase(it);
      return;
    }
  }
}

std::vector<PeerId> RoutingTable::closest(NodeId target,
                                          std::size_t n) const {
  std::vector<Entry> all;
  all.reserve(members_.size());
  for (const auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(),
            [target](const Entry& a, const Entry& b) {
              const NodeId da = xor_distance(a.id, target);
              const NodeId db = xor_distance(b.id, target);
              return da != db ? da < db : a.peer < b.peer;
            });
  if (all.size() > n) all.resize(n);
  std::vector<PeerId> out;
  out.reserve(all.size());
  for (const Entry& e : all) out.push_back(e.peer);
  return out;
}

std::optional<PeerId> RoutingTable::sample(util::Rng& rng) const {
  if (members_.empty()) return std::nullopt;
  // Buckets are scanned in order; sizes are tiny (32 * k), so a flat
  // index draw stays cheap and deterministic.
  std::uint64_t index = rng.below(members_.size());
  for (const auto& bucket : buckets_) {
    if (index < bucket.size()) return bucket[index].peer;
    index -= bucket.size();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Gossip view

bool GossipView::add(PeerId peer, util::Rng& rng) {
  if (set_.contains(peer)) return false;
  if (list_.size() >= capacity_) {
    const std::size_t victim = rng.below(list_.size());
    set_.erase(list_[victim]);
    list_[victim] = peer;
    set_.insert(peer);
    return true;
  }
  list_.push_back(peer);
  set_.insert(peer);
  return true;
}

void GossipView::erase(PeerId peer) {
  if (set_.erase(peer) == 0) return;
  list_.erase(std::find(list_.begin(), list_.end(), peer));
}

std::vector<PeerId> GossipView::sample(util::Rng& rng, std::size_t n) const {
  std::vector<PeerId> out;
  for (const std::size_t i :
       rng.sample_without_replacement(list_.size(), n)) {
    out.push_back(list_[i]);
  }
  return out;
}

// ---------------------------------------------------------------------
// Backends

void DiscoveryBackend::contact_result(PeerId /*self*/, PeerId /*peer*/,
                                      bool /*ok*/) {}

namespace {

/// Modeled tracker round trip: one HTTP-ish exchange with a
/// well-provisioned server, independent of peer topology.
constexpr SimTime kTrackerRtt = SimTime::millis(80);

class TrackerBackend final : public DiscoveryBackend {
 public:
  TrackerBackend(const DiscoveryService& service, DiscoveryHost& host,
                 DiscoveryCounters& counters)
      : service_(service), host_(host), counters_(counters) {}

  [[nodiscard]] DiscoveryBackendKind kind() const override {
    return DiscoveryBackendKind::kTracker;
  }

  JoinResult join(PeerId self, std::size_t want, SimTime now,
                  util::Rng& rng) override {
    JoinResult result;
    if (!service_.tracker_available(now)) {
      ++counters_.tracker_failures;
      return result;  // request sent, nothing comes back
    }
    ++counters_.tracker_queries;
    result.ok = true;
    result.latency = kTrackerRtt;
    result.peers.reserve(want);
    for (std::size_t i = 0; i < want; ++i) {
      result.peers.push_back(host_.tracker_sample(self));
    }
    (void)rng;
    return result;
  }

  std::optional<PeerId> sample(PeerId self, SimTime now,
                               util::Rng& /*rng*/) override {
    if (!service_.tracker_available(now)) {
      ++counters_.tracker_failures;
      return std::nullopt;
    }
    ++counters_.tracker_queries;
    return host_.tracker_sample(self);
  }

 private:
  const DiscoveryService& service_;
  DiscoveryHost& host_;
  DiscoveryCounters& counters_;
};

class DhtBackend final : public DiscoveryBackend {
 public:
  DhtBackend(const DhtParams& params, DiscoveryHost& host,
             DiscoveryCounters& counters, std::uint64_t seed)
      : params_(params), host_(host), counters_(counters), seed_(seed) {
    // Global id index: the oracle standing in for every remote node's
    // routing table. Sorted by node id so closest-to-target queries
    // are a window scan around the insertion point.
    const auto& pop = host_.population();
    index_.reserve(pop.size());
    for (PeerId id = 0; id < pop.size(); ++id) {
      index_.push_back({dht_node_id(seed_, id), id});
    }
    std::sort(index_.begin(), index_.end());
  }

  [[nodiscard]] DiscoveryBackendKind kind() const override {
    return DiscoveryBackendKind::kDht;
  }

  JoinResult join(PeerId self, std::size_t want, SimTime now,
                  util::Rng& rng) override {
    ++counters_.dht_lookups;
    RoutingTable& table = table_for(self);
    seed_table(self, table);

    // Random lookup target: joins land near the swarm key's
    // neighbourhood, refreshes exercise a random bucket — both reduce
    // to "walk toward a uniform id".
    const NodeId target = static_cast<NodeId>(rng.next_u64() >> 32);
    JoinResult result;
    std::unordered_set<PeerId> queried{self};
    std::size_t answered = 0;
    for (int hop = 0; hop < params_.max_hops; ++hop) {
      const auto next = closest_unqueried(table, target, queried);
      if (!next) break;  // shortlist exhausted
      queried.insert(*next);
      ++counters_.dht_hops;
      if (!host_.peer_reachable(*next, now)) {
        // Liveness failure: pay the per-hop timeout, evict, move on to
        // the next-closest alternate (the hop budget bounds the walk).
        result.latency += params_.hop_timeout;
        table.evict(*next);
        ++counters_.dht_hop_timeouts;
        ++counters_.dht_evictions;
        continue;
      }
      result.latency += host_.round_trip(self, *next);
      ++answered;
      // The queried node answers with its k closest to the target —
      // oracle-served, since background nodes keep no real tables.
      for (const PeerId neighbour : oracle_closest(target, self)) {
        table.insert(dht_node_id(seed_, neighbour), neighbour);
      }
      if (answered >= want) break;
    }
    for (const PeerId peer : table.closest(target, want)) {
      if (peer != self &&
          std::find(result.peers.begin(), result.peers.end(), peer) ==
              result.peers.end()) {
        result.peers.push_back(peer);
      }
    }
    result.ok = answered > 0 && !result.peers.empty();
    return result;
  }

  std::optional<PeerId> sample(PeerId self, SimTime /*now*/,
                               util::Rng& rng) override {
    RoutingTable& table = table_for(self);
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto pick = table.sample(rng);
      if (!pick) return std::nullopt;
      if (*pick != self) return pick;
    }
    return std::nullopt;
  }

  void contact_result(PeerId self, PeerId peer, bool ok) override {
    if (ok) return;
    table_for(self).evict(peer);
    ++counters_.dht_evictions;
  }

 private:
  RoutingTable& table_for(PeerId self) {
    auto it = tables_.find(self);
    if (it == tables_.end()) {
      it = tables_
               .emplace(self,
                        RoutingTable{dht_node_id(seed_, self), params_.k})
               .first;
    }
    return it->second;
  }

  void seed_table(PeerId self, RoutingTable& table) {
    if (table.size() > 0) return;
    // Bootstrap nodes: the probe cloud (well-known stable hosts) plus
    // whatever the client already knew — its cached peer list.
    for (const PeerId id : host_.population().probe_ids()) {
      if (id != self) table.insert(dht_node_id(seed_, id), id);
    }
    for (const PeerId id : host_.known_peers(self)) {
      if (id != self) table.insert(dht_node_id(seed_, id), id);
    }
  }

  /// Closest not-yet-queried table member; nullopt when none remain.
  std::optional<PeerId> closest_unqueried(
      const RoutingTable& table, NodeId target,
      const std::unordered_set<PeerId>& queried) {
    // The range is closest()'s distance-sorted vector; `queried` only
    // sizes the request.
    for (const PeerId peer :                        // lint: ordered
         table.closest(target, queried.size() + 1)) {
      if (!queried.contains(peer)) return peer;
    }
    return std::nullopt;
  }

  /// The k globally-closest ids to `target` (excluding `self`): the
  /// answer a converged remote routing table would give.
  std::vector<PeerId> oracle_closest(NodeId target, PeerId self) {
    const auto at = std::lower_bound(
        index_.begin(), index_.end(), std::pair<NodeId, PeerId>{target, 0});
    // XOR distance is not monotone in sorted order, but the nearest
    // ids share high bits with the target, so a window around the
    // insertion point re-ranked by XOR is the standard approximation.
    const std::size_t window = static_cast<std::size_t>(params_.k) * 4;
    const std::size_t pos =
        static_cast<std::size_t>(std::distance(index_.begin(), at));
    const std::size_t lo = pos > window ? pos - window : 0;
    const std::size_t hi = std::min(index_.size(), pos + window);
    std::vector<std::pair<NodeId, PeerId>> span(
        index_.begin() + static_cast<std::ptrdiff_t>(lo),
        index_.begin() + static_cast<std::ptrdiff_t>(hi));
    std::sort(span.begin(), span.end(),
              [target](const auto& a, const auto& b) {
                const NodeId da = xor_distance(a.first, target);
                const NodeId db = xor_distance(b.first, target);
                return da != db ? da < db : a.second < b.second;
              });
    std::vector<PeerId> out;
    for (const auto& [id, peer] : span) {
      if (peer == self) continue;
      out.push_back(peer);
      if (out.size() >= static_cast<std::size_t>(params_.k)) break;
    }
    return out;
  }

  DhtParams params_;
  DiscoveryHost& host_;
  DiscoveryCounters& counters_;
  std::uint64_t seed_ = 0;
  std::vector<std::pair<NodeId, PeerId>> index_;
  std::unordered_map<PeerId, RoutingTable> tables_;
};

class GossipBackend final : public DiscoveryBackend {
 public:
  GossipBackend(const GossipParams& params, DiscoveryHost& host,
                DiscoveryCounters& counters)
      : params_(params), host_(host), counters_(counters) {}

  [[nodiscard]] DiscoveryBackendKind kind() const override {
    return DiscoveryBackendKind::kGossip;
  }

  JoinResult join(PeerId self, std::size_t want, SimTime now,
                  util::Rng& rng) override {
    GossipView& view = view_for(self);
    if (view.empty()) seed_view(self, view, rng);
    ++counters_.gossip_exchanges;

    JoinResult result;
    std::size_t alive = 0;
    for (const PeerId target :
         view.sample(rng, static_cast<std::size_t>(params_.fanout))) {
      if (!host_.peer_reachable(target, now)) {
        view.erase(target);  // dead entries age out of the view
        continue;
      }
      ++alive;
      // Exchanges run in parallel; the round's latency is the slowest.
      result.latency =
          std::max(result.latency, host_.round_trip(self, target));
      for (const PeerId traded : pull_from(target, self, rng)) {
        if (traded == self) continue;
        view.add(traded, rng);
        if (result.peers.size() < want &&
            std::find(result.peers.begin(), result.peers.end(), traded) ==
                result.peers.end()) {
          result.peers.push_back(traded);
        }
      }
    }

    auto& failed = failed_rounds_[self];
    if (alive == 0) {
      ++failed;
      if (failed >= params_.partition_after) {
        // Partition detected: every exchange target is dead. Heal by
        // reseeding from the bootstrap set, as a client re-reading its
        // rendezvous cache would.
        ++counters_.gossip_partitions;
        PEERSCOPE_TRACE_INSTANT("p2p.discovery.partition");
        failed = 0;
        seed_view(self, view, rng);
      }
    } else {
      failed = 0;
    }
    result.ok = alive > 0 && !result.peers.empty();
    return result;
  }

  std::optional<PeerId> sample(PeerId self, SimTime /*now*/,
                               util::Rng& rng) override {
    GossipView& view = view_for(self);
    if (view.empty()) return std::nullopt;
    const auto picks = view.sample(rng, 1);
    if (picks.empty() || picks.front() == self) return std::nullopt;
    return picks.front();
  }

  void contact_result(PeerId self, PeerId peer, bool ok) override {
    if (!ok) view_for(self).erase(peer);
  }

 private:
  GossipView& view_for(PeerId self) {
    auto it = views_.find(self);
    if (it == views_.end()) {
      it = views_
               .emplace(self, GossipView{static_cast<std::size_t>(
                                  params_.view_size)})
               .first;
    }
    return it->second;
  }

  void seed_view(PeerId self, GossipView& view, util::Rng& rng) {
    for (const PeerId id : host_.population().probe_ids()) {
      if (id != self) view.add(id, rng);
    }
    for (const PeerId id : host_.known_peers(self)) {
      if (id != self) view.add(id, rng);
    }
  }

  /// The partner's half of a push-pull exchange. Probe partners share
  /// their real views; background partners — whose membership state is
  /// not modelled individually — answer with a population sample.
  std::vector<PeerId> pull_from(PeerId target, PeerId self,
                                util::Rng& rng) {
    const auto n = static_cast<std::size_t>(params_.exchange_size);
    if (const auto it = views_.find(target); it != views_.end()) {
      return it->second.sample(rng, n);
    }
    std::vector<PeerId> out;
    out.reserve(n);
    const std::size_t pop = host_.population().size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto pick = static_cast<PeerId>(rng.below(pop));
      if (pick != self && pick != target) out.push_back(pick);
    }
    return out;
  }

  GossipParams params_;
  DiscoveryHost& host_;
  DiscoveryCounters& counters_;
  std::unordered_map<PeerId, GossipView> views_;
  std::unordered_map<PeerId, int> failed_rounds_;
};

}  // namespace

// ---------------------------------------------------------------------
// Service

DiscoveryService::DiscoveryService(const DiscoverySpec& spec,
                                   DiscoveryHost& host, std::uint64_t seed)
    : spec_(spec), host_(host), seed_(seed) {
  flap_spec_.outage_per_s = spec_.tracker_flap_per_s;
  flap_spec_.outage_duration = spec_.tracker_flap_duration;
  primary_ = make_backend(spec_.primary);
  if (spec_.fallback != DiscoveryBackendKind::kNone &&
      spec_.fallback != spec_.primary) {
    fallback_ = make_backend(spec_.fallback);
  }
}

DiscoveryService::~DiscoveryService() = default;

std::unique_ptr<DiscoveryBackend> DiscoveryService::make_backend(
    DiscoveryBackendKind kind) {
  switch (kind) {
    // Backend factories run at join/failover time, not per event.
    case DiscoveryBackendKind::kTracker:
      // peerscope-lint: allow(engine-hot-path)
      return std::make_unique<TrackerBackend>(*this, host_, counters_);
    case DiscoveryBackendKind::kDht:
      // peerscope-lint: allow(engine-hot-path)
      return std::make_unique<DhtBackend>(spec_.dht, host_, counters_,
                                          seed_);
    case DiscoveryBackendKind::kGossip:
      // peerscope-lint: allow(engine-hot-path)
      return std::make_unique<GossipBackend>(spec_.gossip, host_, counters_);
    case DiscoveryBackendKind::kNone:
      break;
  }
  return nullptr;
}

bool DiscoveryService::tracker_available(SimTime now) const {
  if (spec_.tracker_outage_duration > SimTime::zero() &&
      now >= spec_.tracker_outage_start &&
      now < spec_.tracker_outage_start + spec_.tracker_outage_duration) {
    return false;
  }
  if (spec_.tracker_flap_per_s > 0.0 &&
      sim::in_outage(flap_spec_, 0x7e4c4e8ULL ^ seed_, now)) {
    return false;
  }
  return true;
}

DiscoveryBackend* DiscoveryService::active_backend(
    const ProbeJoinState& st) {
  return st.on_fallback && fallback_ ? fallback_.get() : primary_.get();
}

void DiscoveryService::begin_join(PeerId self, SimTime now) {
  auto& st = states_[self];
  if (st.satisfied) {
    st.satisfied = false;
    st.started = now;
  }
}

JoinResult DiscoveryService::join_round(PeerId self, std::size_t want,
                                        SimTime now, util::Rng& rng) {
  auto& st = states_[self];
  st.pending = true;

  // Recovery probe: a failed-over probe periodically retries the
  // primary; one success moves it back.
  if (st.on_fallback && now >= st.next_primary_probe && primary_) {
    JoinResult probe = primary_->join(self, want, now, rng);
    if (probe.ok) {
      st.on_fallback = false;
      st.primary_failures = 0;
      ++counters_.recoveries;
      PEERSCOPE_TRACE_INSTANT("p2p.discovery.recovered");
      schedule_maintenance(st, now);
      return probe;
    }
    st.next_primary_probe = now + spec_.primary_retry;
  }

  DiscoveryBackend* backend = active_backend(st);
  if (backend == nullptr) return {};
  JoinResult result = backend->join(self, want, now, rng);

  if (result.ok) {
    if (!st.on_fallback) st.primary_failures = 0;
  } else if (!st.on_fallback) {
    ++st.primary_failures;
    if (fallback_ && st.primary_failures >= spec_.failover_after) {
      // Failover: the primary is gone for this probe; switch and run
      // the fallback's join in the same round so the swarm never
      // stalls a full backoff on a decided outcome.
      st.on_fallback = true;
      st.next_primary_probe = now + spec_.primary_retry;
      ++counters_.failovers;
      PEERSCOPE_TRACE_INSTANT("p2p.discovery.failover");
      result = fallback_->join(self, want, now, rng);
    }
  }
  schedule_maintenance(st, now);
  return result;
}

void DiscoveryService::schedule_maintenance(ProbeJoinState& st,
                                            SimTime now) {
  const DiscoveryBackend* backend = active_backend(st);
  if (backend == nullptr) return;
  switch (backend->kind()) {
    case DiscoveryBackendKind::kDht:
      st.next_maintenance = now + spec_.dht.refresh_period;
      break;
    case DiscoveryBackendKind::kGossip:
      st.next_maintenance = now + spec_.gossip.period;
      break;
    default:
      st.next_maintenance = SimTime::max();  // tracker needs no upkeep
      break;
  }
}

void DiscoveryService::finish_join(PeerId self, SimTime now, bool ok) {
  auto& st = states_[self];
  st.pending = false;
  if (!ok) return;
  st.attempt = 0;
  ++counters_.joins_ok;
  if (!st.satisfied) {
    st.satisfied = true;
    rejoin_latencies_.push_back(now - st.started);
  }
}

bool DiscoveryService::join_pending(PeerId self) const {
  const auto it = states_.find(self);
  return it != states_.end() && it->second.pending;
}

SimTime DiscoveryService::next_join_backoff(PeerId self) {
  auto& st = states_[self];
  ++st.attempt;
  ++counters_.join_retries;
  std::int64_t backoff_ns = spec_.join_backoff.ns();
  for (int i = 1;
       i < st.attempt && backoff_ns < spec_.join_backoff_max.ns(); ++i) {
    backoff_ns *= 2;
  }
  backoff_ns = std::min(backoff_ns, spec_.join_backoff_max.ns());
  // The PR 1 jitter policy: deterministic 75–125% keyed on
  // (seed, peer, attempt) — co-failing probes spread out without
  // touching any shared RNG stream.
  util::SplitMix64 mix{seed_ ^ (static_cast<std::uint64_t>(self) << 32) ^
                       static_cast<std::uint64_t>(st.attempt)};
  const double jitter =
      0.75 + 0.5 * (static_cast<double>(mix.next() >> 11) * 0x1.0p-53);
  return SimTime::nanos(
      static_cast<std::int64_t>(static_cast<double>(backoff_ns) * jitter));
}

std::optional<PeerId> DiscoveryService::sample(PeerId self, SimTime now,
                                               util::Rng& rng) {
  auto& st = states_[self];
  DiscoveryBackend* backend = active_backend(st);
  if (backend == nullptr) return std::nullopt;
  return backend->sample(self, now, rng);
}

bool DiscoveryService::maintenance_due(PeerId self, SimTime now) const {
  const auto it = states_.find(self);
  return it != states_.end() && !it->second.pending &&
         now >= it->second.next_maintenance;
}

void DiscoveryService::contact_result(PeerId self, PeerId peer, bool ok) {
  auto& st = states_[self];
  if (DiscoveryBackend* backend = active_backend(st)) {
    backend->contact_result(self, peer, ok);
  }
}

std::size_t DiscoveryService::rejoins_missed(SimTime deadline,
                                             SimTime end) const {
  if (deadline <= SimTime::zero()) return 0;
  std::size_t missed = 0;
  for (const SimTime latency : rejoin_latencies_) {
    if (latency > deadline) ++missed;
  }
  // Pure count over the member set: order-independent.
  for (const auto& [id, st] : states_) {  // lint: ordered
    if (!st.satisfied && end - st.started > deadline) ++missed;
  }
  return missed;
}

}  // namespace peerscope::p2p
