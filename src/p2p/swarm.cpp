#include "p2p/swarm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "p2p/selection.hpp"
#include "sim/packet.hpp"
#include "sim/train.hpp"

namespace peerscope::p2p {

using util::SimTime;

/// Adapts the swarm to the DiscoveryHost interface the backends
/// consume: population facts, liveness, path delays, and the legacy
/// tracker draw.
struct Swarm::HostImpl final : DiscoveryHost {
  explicit HostImpl(Swarm& owner) : swarm(owner) {}

  [[nodiscard]] const Population& population() const override {
    return swarm.population_;
  }
  [[nodiscard]] bool peer_reachable(PeerId id,
                                    util::SimTime now) const override {
    return swarm.peer_online(id, now);
  }
  [[nodiscard]] util::SimTime round_trip(PeerId a, PeerId b) const override {
    const auto& ea = swarm.population_.peer(a).ep;
    const auto& eb = swarm.population_.peer(b).ep;
    return swarm.topo_.path(ea, eb).one_way_delay +
           swarm.topo_.path(eb, ea).one_way_delay;
  }
  [[nodiscard]] PeerId tracker_sample(PeerId self) override {
    const ProbeState& ps =
        swarm.probes_[static_cast<std::size_t>(swarm.probe_slot_[self])];
    return swarm.sample_peer(ps, swarm.config_.profile.discovery_as_bias);
  }
  [[nodiscard]] std::span<const PeerId> known_peers(
      PeerId self) const override {
    return swarm.probes_[static_cast<std::size_t>(swarm.probe_slot_[self])]
        .known_list;
  }

  Swarm& swarm;
};

Swarm::Swarm(const net::AsTopology& topo, std::span<const ProbeSpec> probes,
             SwarmConfig config)
    : topo_(topo),
      config_(std::move(config)),
      population_(Population::build(topo, config_.profile.population, probes,
                                    config_.seed)),
      rng_(util::Rng{config_.seed}.fork(0xa11ce)),
      churn_rng_(util::Rng{config_.seed}.fork(0xc4521)),
      discovery_rng_(util::Rng{config_.seed}.fork(0xd15c0)),
      impairment_(config_.impairment.enabled()
                      ? config_.impairment
                      : sim::ImpairmentSpec::flat_loss(config_.loss_rate)),
      faults_active_(config_.churn.enabled() || config_.impairment.enabled()),
      discovery_active_(config_.discovery.enabled()),
      nat_active_(config_.discovery.nat.enabled),
      chunk_interval_(config_.profile.stream.chunk_interval()) {
  up_.resize(population_.size());
  down_.resize(population_.size());
  // SoA mirrors of the hot per-peer facts (one pass over the
  // population; see the member comments in swarm.hpp).
  peer_kind_.resize(population_.size(), kBackground);
  probe_slot_.resize(population_.size(), -1);
  lag_scale_.reserve(population_.size());
  for (const PeerInfo& peer : population_.peers()) {
    if (peer.is_probe) peer_kind_[peer.id] = kProbe;
    if (peer.is_source) peer_kind_[peer.id] = kSource;
    probe_slot_[peer.id] = peer.probe_index;
    lag_scale_.push_back(peer.lag_scale);
  }
  sinks_.reserve(population_.probe_ids().size());
  probes_.reserve(population_.probe_ids().size());
  for (const PeerId id : population_.probe_ids()) {
    const std::size_t index = probes_.size();
    // peerscope-lint: allow(engine-hot-path)
    sinks_.push_back(std::make_unique<trace::ProbeSink>(
        population_.peer(id).ep.addr, config_.keep_records));
    ProbeState ps;
    ps.id = id;
    ps.index = index;
    ps.known_bits.assign(population_.size(), false);
    probes_.push_back(std::move(ps));
  }
  if (config_.discovery.backend_active()) {
    // peerscope-lint: allow(engine-hot-path)
    discovery_host_ = std::make_unique<HostImpl>(*this);
    // peerscope-lint: allow(engine-hot-path)
    discovery_ = std::make_unique<DiscoveryService>(
        config_.discovery, *discovery_host_, config_.seed);
  }
}

Swarm::~Swarm() = default;

ChunkIndex Swarm::source_newest() const {
  return engine_.now() / chunk_interval_ - 1;
}

double Swarm::bg_lag_s(PeerId id, util::SimTime now) const {
  const auto& spec = config_.profile.population;
  // Per-peer phase so epoch boundaries are not synchronised.
  util::SplitMix64 phase_mix{config_.seed ^ (0x1a9f37ULL + id)};
  const double phase = static_cast<double>(phase_mix.next() >> 11) *
                       0x1.0p-53 * spec.lag_epoch_s;
  const auto epoch = static_cast<std::uint64_t>(
      (now.seconds() + phase) / spec.lag_epoch_s);

  // Deterministic lognormal draw keyed on (seed, peer, epoch).
  util::SplitMix64 mix{config_.seed ^ (static_cast<std::uint64_t>(id)
                                       << 32) ^ epoch};
  double u1 = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const double normal = std::sqrt(-2.0 * std::log(u1)) *
                        std::cos(2.0 * 3.14159265358979323846 * u2);
  const double sample = std::exp(spec.lag_mu + spec.lag_sigma * normal);
  return spec.lag_floor_s + sample * lag_scale_[id];
}

bool Swarm::peer_online(PeerId id, util::SimTime now) const {
  const std::uint8_t kind = peer_kind_[id];
  if (kind == kSource) return true;
  if (kind == kProbe) {
    return probes_[static_cast<std::size_t>(probe_slot_[id])].online;
  }
  if (!config_.churn.bg_churn()) return true;
  // Deterministic duty cycle with a per-peer hash phase: flapping never
  // consumes RNG draws, so the audience schedule is a pure function of
  // (seed, peer, time).
  const double cycle =
      config_.churn.bg_session_s + config_.churn.bg_downtime_s;
  util::SplitMix64 mix{config_.seed ^ (0xf1a90ULL + id)};
  const double phase =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53 * cycle;
  const double pos = std::fmod(now.seconds() + phase, cycle);
  return pos < config_.churn.bg_session_s;
}

sim::GilbertElliott* Swarm::channel_for(PeerId sender, PeerId receiver) {
  if (!(impairment_.has_loss() && impairment_.loss_burst > 1.0)) {
    return nullptr;  // memoryless loss needs no per-pair state
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(sender) << 32) | receiver;
  return &channels_[key];
}

void Swarm::on_request_failed(ProbeState& ps, ChunkIndex chunk, PeerId from) {
  const SimTime now = engine_.now();
  for (auto it = ps.partners.begin(); it != ps.partners.end(); ++it) {
    if (it->id != from) continue;
    if (it->inflight > 0) --it->inflight;
    ++it->consecutive_failures;
    if (config_.churn.blacklist_after > 0 &&
        it->consecutive_failures >= config_.churn.blacklist_after) {
      // Repeated timeouts: the peer is gone or unreachable. Drop it and
      // refuse to re-admit it for a while.
      const SimTime until = now + config_.churn.blacklist_duration;
      bool found = false;
      for (auto& [banned, t] : ps.blacklist_until) {
        if (banned == from) {
          t = until;
          found = true;
          break;
        }
      }
      if (!found) ps.blacklist_until.emplace_back(from, until);
      ps.belief_cache[from] = it->belief_mbps;
      ps.partners.erase(it);
      ++counters_.partners_blacklisted;
    }
    break;
  }
  // Exponential backoff before this chunk is retried: repeated failures
  // on the same chunk usually mean the same root cause.
  int* failures = nullptr;
  for (auto& [c, count] : ps.chunk_failures) {
    if (c == chunk) {
      failures = &count;
      break;
    }
  }
  if (failures == nullptr) {
    failures = &ps.chunk_failures.emplace_back(chunk, 0).second;
  }
  ++*failures;
  std::int64_t backoff_ns = config_.churn.retry_backoff.ns();
  for (int i = 1; i < *failures &&
                  backoff_ns < config_.churn.retry_backoff_max.ns();
       ++i) {
    backoff_ns *= 2;
  }
  backoff_ns = std::min(backoff_ns, config_.churn.retry_backoff_max.ns());
  const SimTime retry_at = now + SimTime::nanos(backoff_ns);
  bool retry_found = false;
  for (auto& [c, t] : ps.retry_after) {
    if (c == chunk) {
      t = retry_at;
      retry_found = true;
      break;
    }
  }
  if (!retry_found) ps.retry_after.emplace_back(chunk, retry_at);
  ++counters_.chunks_retried;
}

double Swarm::session_length_s(double mean_s, util::Rng& rng) {
  if (discovery_active_ && config_.discovery.heavy_tail()) {
    // Mean-preserving Pareto (xm = mean * (a-1)/a keeps E[X] = mean):
    // the heavy tail the session-level trace studies report, without
    // shifting the aggregate churn rate. Same draw count as the
    // exponential, so enabling the tail never slides other streams.
    const double a = config_.discovery.session_tail_alpha;
    return rng.pareto(mean_s * (a - 1.0) / a, a);
  }
  return rng.exponential(mean_s);
}

void Swarm::schedule_probe_crash(std::size_t probe_index) {
  const SimTime at =
      engine_.now() + SimTime::from_seconds(session_length_s(
                          config_.churn.probe_session_s, churn_rng_));
  engine_.schedule_at(at,
                      [this, probe_index] { crash_probe(probe_index); });
}

void Swarm::crash_probe(std::size_t probe_index) {
  if (engine_.now() >= config_.duration) return;
  ProbeState& ps = probes_[probe_index];
  if (ps.online) {
    ps.online = false;
    ++counters_.probe_crashes;
    ++ps.tick_epoch;  // kills the scheduled tick chain
    for (const Partner& partner : ps.partners) {
      ps.belief_cache[partner.id] = partner.belief_mbps;
    }
    ps.partners.clear();
    ps.inflight.clear();
    ps.chunk_failures.clear();
    ps.retry_after.clear();
  }
  const SimTime back =
      engine_.now() + SimTime::from_seconds(churn_rng_.exponential(
                          config_.churn.probe_downtime_s));
  engine_.schedule_at(back,
                      [this, probe_index] { rejoin_probe(probe_index); });
}

void Swarm::rejoin_probe(std::size_t probe_index) {
  if (engine_.now() >= config_.duration) return;
  ProbeState& ps = probes_[probe_index];
  ps.online = true;
  ps.bootstrapped = false;  // restart from tracker, as a fresh client
  // Re-join latency is measured from the instant the client is back
  // online and searching, across whatever backends it takes.
  if (discovery_) discovery_->begin_join(ps.id, engine_.now());
  const std::uint64_t epoch = ps.tick_epoch;
  engine_.schedule_after(SimTime::millis(50), [this, probe_index, epoch] {
    if (probes_[probe_index].tick_epoch == epoch) {
      tick(probes_[probe_index]);
    }
  });
  schedule_probe_crash(probe_index);
}

bool Swarm::peer_has_chunk(PeerId id, ChunkIndex chunk) const {
  if (chunk < 0) return false;
  const std::uint8_t kind = peer_kind_[id];
  if (kind == kSource) return chunk <= source_newest();
  if (kind == kProbe) {
    return probes_[static_cast<std::size_t>(probe_slot_[id])].buffer.has(
        chunk);
  }
  // Background peer: the chunk reached it its current lag after the
  // source finished emitting it.
  const SimTime now = engine_.now();
  const SimTime available = chunk_interval_ * (chunk + 1) +
                            SimTime::from_seconds(bg_lag_s(id, now));
  return now >= available;
}

double Swarm::cached_belief(const ProbeState& ps, PeerId id) const {
  if (const auto it = ps.belief_cache.find(id); it != ps.belief_cache.end()) {
    return it->second;
  }
  return 1.0;  // neutral prior, DSL-ish
}

void Swarm::note_known(ProbeState& ps, PeerId id) {
  if (id == ps.id) return;
  if (!ps.known_bits[id]) {
    ps.known_bits[id] = true;
    ps.known_list.push_back(id);
  }
}

PeerId Swarm::sample_peer(const ProbeState& ps, double as_bias) {
  const PeerInfo& self = population_.peer(ps.id);
  // Stable-peer overweighting: long-session peers accumulate presence
  // in tracker responses and gossip caches.
  const double stable_bias = config_.profile.discovery_stable_bias;
  if (stable_bias > 0.0 && rng_.chance(stable_bias)) {
    const auto probes = population_.probe_ids();
    for (int attempt = 0; attempt < 4; ++attempt) {
      const PeerId pick = probes[rng_.below(probes.size())];
      if (pick != ps.id) return pick;
    }
  }
  if (as_bias > 0.0 && rng_.chance(as_bias)) {
    const auto same_as = population_.peers_in_as(self.ep.as);
    if (same_as.size() > 1) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const PeerId pick = same_as[rng_.below(same_as.size())];
        if (pick != ps.id) return pick;
      }
    }
  }
  // Peer exchange: ask one of our partners for one of *its* partners.
  // Only fully-simulated peers expose a partner list; routing through
  // a probe partner preferentially surfaces the other probes, which is
  // how the real stable/high-capacity probe clouds got so strongly
  // interconnected (Table III).
  if (!ps.partners.empty() &&
      rng_.chance(config_.profile.signaling.pex_fraction)) {
    const Partner& via = ps.partners[rng_.below(ps.partners.size())];
    if (probe_slot_[via.id] >= 0) {
      const ProbeState& qs =
          probes_[static_cast<std::size_t>(probe_slot_[via.id])];
      if (!qs.partners.empty()) {
        const PeerId pick = qs.partners[rng_.below(qs.partners.size())].id;
        if (pick != ps.id) return pick;
      }
    }
  }
  for (;;) {
    const auto pick =
        static_cast<PeerId>(rng_.below(population_.size()));
    if (pick != ps.id) return pick;
  }
}

bool Swarm::contact(ProbeState& ps, PeerId target) {
  const PeerInfo& self = population_.peer(ps.id);
  const PeerInfo& other = population_.peer(target);
  const auto fwd = topo_.path(self.ep, other.ep);
  const auto rev = topo_.path(other.ep, self.ep);
  const SimTime now = engine_.now();
  const auto bytes = config_.profile.signaling.handshake_bytes;
  trace::ProbeSink& sink = *sinks_[ps.index];

  // Relay detour latency when NAT traversal falls back to a relay;
  // zero on every other path, so the clean handshake bytes are
  // untouched.
  SimTime nat_extra = SimTime::zero();
  if (faults_active_ || nat_active_) {
    // A handshake to an offline peer — or one whose NAT/firewall
    // traversal fails — goes out and is never answered: the sniffer
    // records only our TX packets.
    double fail_p = 0.0;
    if (faults_active_ && config_.churn.connect_failures()) {
      if (other.access.nat) fail_p += config_.churn.nat_connect_failure;
      if (other.access.firewall) {
        fail_p += config_.churn.firewall_connect_failure;
      }
    }
    bool refused =
        (faults_active_ && !peer_online(target, now)) ||
        (fail_p > 0.0 && rng_.chance(std::min(fail_p, 1.0)));
    if (!refused && nat_active_) {
      const auto& matrix = config_.discovery.nat;
      const NatOutcome outcome = attempt_traversal(
          matrix, classify_nat(matrix, self, config_.seed),
          classify_nat(matrix, other, config_.seed), rng_);
      if (!outcome.ok) {
        refused = true;
        ++counters_.discovery.nat_blocked;
      } else if (outcome.relayed) {
        nat_extra = matrix.relay_penalty;
        ++counters_.discovery.nat_relayed;
      } else {
        ++counters_.discovery.nat_direct;
      }
    }
    if (refused) {
      for (int i = 0; i < config_.profile.signaling.handshake_packets; ++i) {
        sink.signaling_tx(other.ep.addr, now + SimTime::millis(i), bytes);
      }
      ++counters_.contact_failures;
      if (discovery_) discovery_->contact_result(ps.id, target, false);
      return false;
    }
  }

  for (int i = 0; i < config_.profile.signaling.handshake_packets; ++i) {
    const SimTime tx = now + SimTime::millis(i);
    const SimTime rx = tx + fwd.one_way_delay + rev.one_way_delay +
                       SimTime::millis(2) + nat_extra;
    sink.signaling_tx(other.ep.addr, tx, bytes);
    sink.signaling_rx(other.ep.addr, rx, bytes, sim::ttl_after(rev.hops));
    if (probe_slot_[target] >= 0) {
      const auto slot = static_cast<std::size_t>(probe_slot_[target]);
      trace::ProbeSink& peer_sink = *sinks_[slot];
      peer_sink.signaling_rx(self.ep.addr,
                             tx + fwd.one_way_delay + nat_extra, bytes,
                             sim::ttl_after(fwd.hops));
      peer_sink.signaling_tx(
          self.ep.addr,
          tx + fwd.one_way_delay + nat_extra + SimTime::millis(2), bytes);
      note_known(probes_[slot], ps.id);
    }
  }
  note_known(ps, target);
  ++counters_.contacts;
  if (discovery_) discovery_->contact_result(ps.id, target, true);
  return true;
}

void Swarm::bootstrap(ProbeState& ps) {
  ps.bootstrapped = true;
  const ChunkIndex newest = source_newest();
  ps.next_request =
      std::max<ChunkIndex>(0, newest - config_.profile.sched.window_chunks +
                                  config_.profile.sched.safety_chunks);
  // PPLive-style local discovery: same-/24 neighbours are found
  // immediately.
  if (config_.profile.lan_discovery) {
    const PeerInfo& self = population_.peer(ps.id);
    for (const PeerId other : population_.probe_ids()) {
      if (other != ps.id &&
          net::same_subnet24(self.ep.addr,
                             population_.peer(other).ep.addr)) {
        contact(ps, other);
      }
    }
  }
  const std::size_t initial = std::min<std::size_t>(
      40, population_.size() > 1 ? population_.size() - 1 : 0);
  if (discovery_) {
    // Pluggable path: the initial batch comes from the configured
    // backend, with failover and modeled control-plane latency.
    discovery_->begin_join(ps.id, engine_.now());
    discovery_join(ps);
  } else {
    // Tracker response: an initial batch of random peers.
    for (std::size_t i = 0; i < initial; ++i) {
      contact(ps, sample_peer(ps, config_.profile.discovery_as_bias));
    }
  }
  maintain_partners(ps);
}

void Swarm::run_discovery(ProbeState& ps) {
  const double period_s = config_.profile.sched.period.seconds();
  ps.discovery_credit +=
      config_.profile.signaling.contact_rate_per_s * period_s;
  if (discovery_) {
    const SimTime now = engine_.now();
    // Periodic backend upkeep: DHT bucket refresh / gossip exchange.
    if (discovery_->maintenance_due(ps.id, now)) discovery_join(ps);
    while (ps.discovery_credit >= 1.0) {
      ps.discovery_credit -= 1.0;
      const auto pick = discovery_->sample(ps.id, now, rng_);
      if (pick) {
        contact(ps, *pick);
      } else if (!discovery_->join_pending(ps.id)) {
        // The active backend has nothing to offer (tracker down, table
        // drained): run a failover-capable join round instead of
        // burning the remaining credit on misses.
        discovery_->begin_join(ps.id, now);
        discovery_join(ps);
        break;
      } else {
        break;  // join chain already in flight; wait for it
      }
    }
    return;
  }
  while (ps.discovery_credit >= 1.0) {
    ps.discovery_credit -= 1.0;
    contact(ps, sample_peer(ps, config_.profile.discovery_as_bias));
  }
}

void Swarm::discovery_join(ProbeState& ps) {
  PEERSCOPE_SPAN("discovery");
  const SimTime now = engine_.now();
  const std::size_t want = std::min<std::size_t>(
      40, population_.size() > 1 ? population_.size() - 1 : 0);
  JoinResult round = discovery_->join_round(ps.id, want, now, rng_);
  if (!round.ok || round.peers.empty()) {
    schedule_join_retry(ps);
    return;
  }
  // The candidate contacts land after the backend's modeled lookup
  // latency — that is what makes re-join latency measurable.
  const std::size_t index = ps.index;
  const std::uint64_t epoch = ps.tick_epoch;
  engine_.schedule_at(
      now + round.latency,
      [this, index, epoch, peers = std::move(round.peers)] {
        ProbeState& p = probes_[index];
        if (p.tick_epoch != epoch) return;  // crashed since scheduling
        if (faults_active_ && !p.online) return;
        discovery_join_landed(p, peers);
      });
}

void Swarm::discovery_join_landed(ProbeState& ps,
                                  std::span<const PeerId> peers) {
  bool any = false;
  for (const PeerId target : peers) {
    if (target == ps.id) continue;
    any = contact(ps, target) || any;
  }
  discovery_->finish_join(ps.id, engine_.now(), any);
  if (!any) {
    schedule_join_retry(ps);
    return;
  }
  maintain_partners(ps);
}

void Swarm::schedule_join_retry(ProbeState& ps) {
  const SimTime now = engine_.now();
  const SimTime delay = discovery_->next_join_backoff(ps.id);
  if (now + delay >= config_.duration) {
    // No attempt can land before the run ends; the open episode is
    // what rejoins_missed reports against the deadline.
    discovery_->finish_join(ps.id, now, false);
    return;
  }
  const std::size_t index = ps.index;
  const std::uint64_t epoch = ps.tick_epoch;
  engine_.schedule_at(now + delay, [this, index, epoch] {
    ProbeState& p = probes_[index];
    if (p.tick_epoch != epoch) return;
    if (faults_active_ && !p.online) return;
    discovery_join(p);
  });
}

void Swarm::send_keepalives(ProbeState& ps) {
  const PeerInfo& self = population_.peer(ps.id);
  const auto& sig = config_.profile.signaling;
  const double p_send = sig.keepalive_per_s *
                        config_.profile.sched.period.seconds();
  trace::ProbeSink& sink = *sinks_[ps.index];
  const SimTime now = engine_.now();
  for (const Partner& partner : ps.partners) {
    if (!rng_.chance(p_send)) continue;
    const PeerInfo& other = population_.peer(partner.id);
    const auto fwd = topo_.path(self.ep, other.ep);
    const auto rev = topo_.path(other.ep, self.ep);
    const SimTime rx =
        now + fwd.one_way_delay + rev.one_way_delay + SimTime::millis(1);
    sink.signaling_tx(other.ep.addr, now, sig.keepalive_bytes);
    sink.signaling_rx(other.ep.addr, rx, sig.keepalive_bytes,
                      sim::ttl_after(rev.hops));
    if (probe_slot_[partner.id] >= 0) {
      trace::ProbeSink& peer_sink =
          *sinks_[static_cast<std::size_t>(probe_slot_[partner.id])];
      peer_sink.signaling_rx(self.ep.addr, now + fwd.one_way_delay,
                             sig.keepalive_bytes, sim::ttl_after(fwd.hops));
      peer_sink.signaling_tx(self.ep.addr,
                             now + fwd.one_way_delay + SimTime::millis(1),
                             sig.keepalive_bytes);
    }
  }
}

void Swarm::maintain_partners(ProbeState& ps) {
  const auto& sched = config_.profile.sched;
  // Scale the partner set to what the uplink can sustain signaling for:
  // home-DSL probes keep fewer partners, as the real clients do.
  const auto up_bps =
      static_cast<double>(population_.peer(ps.id).access.up_bps);
  const int target = std::max(
      8, static_cast<int>(sched.partner_target *
                          std::min(1.0, up_bps / 2'500'000.0)));

  // Drop the worst-performing partners (by bytes since last round).
  if (static_cast<int>(ps.partners.size()) >= target) {
    auto drop_count = static_cast<std::size_t>(
        static_cast<double>(ps.partners.size()) * sched.drop_fraction);
    drop_count = std::max<std::size_t>(drop_count, 1);
    std::sort(ps.partners.begin(), ps.partners.end(),
              [](const Partner& a, const Partner& b) {
                return a.bytes_delivered < b.bytes_delivered;
              });
    std::size_t dropped = 0;
    for (auto it = ps.partners.begin();
         it != ps.partners.end() && dropped < drop_count;) {
      if (it->inflight > 0) {
        ++it;
        continue;
      }
      ps.belief_cache[it->id] = it->belief_mbps;
      it = ps.partners.erase(it);
      ++dropped;
    }
  }
  // Exogenous churn: some partners leave no matter how well they serve.
  for (int k = 0; k < sched.random_drops && !ps.partners.empty(); ++k) {
    const std::size_t victim = rng_.below(ps.partners.size());
    if (ps.partners[victim].inflight > 0) continue;
    ps.belief_cache[ps.partners[victim].id] = ps.partners[victim].belief_mbps;
    ps.partners.erase(ps.partners.begin() +
                      static_cast<std::ptrdiff_t>(victim));
  }

  for (Partner& partner : ps.partners) partner.bytes_delivered = 0;

  // Refill from the known set. Admission is *uniform* over known peers:
  // selection biases act in discovery (which peers become known) and in
  // chunk scheduling (who gets asked), matching the per-system designs.
  if (ps.known_list.empty()) return;
  int deficit = target - static_cast<int>(ps.partners.size());
  int attempts = deficit * 8;
  while (deficit > 0 && attempts-- > 0) {
    const PeerId pick = ps.known_list[rng_.below(ps.known_list.size())];
    if (pick == ps.id || population_.peer(pick).is_source) continue;
    if (faults_active_ && ps.blacklisted(pick)) continue;
    const bool already =
        std::any_of(ps.partners.begin(), ps.partners.end(),
                    [pick](const Partner& p) { return p.id == pick; });
    if (already) continue;
    // Peers that served us well before are re-admitted preferentially
    // (rejection sampling on the cached belief); unknown peers keep a
    // solid floor so the pool never stops being explored.
    const double belief = cached_belief(ps, pick);
    const double accept = 0.15 + 0.85 * std::min(belief, 20.0) / 20.0;
    if (!rng_.chance(accept)) continue;
    ps.partners.push_back({pick, belief, 0, 0});
    --deficit;
  }
}

void Swarm::schedule_requests(ProbeState& ps) {
  const auto& sched = config_.profile.sched;
  const ChunkIndex newest = source_newest();
  const ChunkIndex lo =
      std::max(ps.next_request, newest - sched.window_chunks);
  const ChunkIndex hi = newest - sched.safety_chunks;
  ps.next_request = std::max(ps.next_request, lo);

  // Expire timed-out requests so the chunk can be retried elsewhere.
  const SimTime now = engine_.now();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < ps.inflight.size(); ++i) {
    const ProbeState::Inflight entry = ps.inflight[i];
    if (entry.deadline < now) {
      ++counters_.timeouts;
      if (faults_active_) {
        on_request_failed(ps, entry.chunk, entry.from);
      }
    } else {
      ps.inflight[kept++] = entry;
    }
  }
  ps.inflight.resize(kept);
  if (faults_active_) {
    // Garbage-collect recovery state that slid out of the window and
    // blacklist entries that served their sentence.
    std::erase_if(ps.chunk_failures,
                  [lo](const auto& kv) { return kv.first < lo; });
    std::erase_if(ps.retry_after,
                  [lo](const auto& kv) { return kv.first < lo; });
    std::erase_if(ps.blacklist_until,
                  [now](const auto& kv) { return kv.second <= now; });
  }

  if (ps.partners.empty()) return;
  thread_local std::vector<Candidate> candidates;
  thread_local std::vector<std::size_t> candidate_slot;

  const PeerInfo& self = population_.peer(ps.id);
  for (ChunkIndex c = lo; c <= hi; ++c) {
    if (static_cast<int>(ps.inflight.size()) >= sched.max_inflight) break;
    if (ps.buffer.has(c) || ps.inflight_contains(c)) continue;
    // Two-speed scheduling: chunks still young are pulled
    // opportunistically, overdue ones urgently.
    const bool urgent = newest - c >= sched.due_chunks;
    if (faults_active_) {
      // Honour the retry backoff set when this chunk last timed out.
      const auto it = std::find_if(
          ps.retry_after.begin(), ps.retry_after.end(),
          [c](const auto& kv) { return kv.first == c; });
      if (it != ps.retry_after.end() && now < it->second) continue;
    }
    if (!urgent && !rng_.chance(sched.eager_prob)) continue;

    candidates.clear();
    candidate_slot.clear();
    const bool wants_rtt = config_.profile.select.low_rtt > 0.0;
    for (std::size_t slot = 0; slot < ps.partners.size(); ++slot) {
      Partner& partner = ps.partners[slot];
      if (partner.inflight >= 3) continue;
      if (faults_active_ &&
          (!peer_online(partner.id, now) || ps.blacklisted(partner.id))) {
        continue;
      }
      if (!peer_has_chunk(partner.id, c)) continue;
      const PeerInfo& other = population_.peer(partner.id);
      Candidate candidate{partner.id, partner.belief_mbps,
                          other.ep.as == self.ep.as,
                          other.ep.country == self.ep.country, 0.0};
      if (wants_rtt) {
        // Next-gen policies probe RTT actively (paper §III: "it is
        // straightforward to actively measure RTT").
        candidate.rtt_ms = (topo_.path(self.ep, other.ep).one_way_delay +
                            topo_.path(other.ep, self.ep).one_way_delay)
                               .millis();
      }
      candidates.push_back(candidate);
      candidate_slot.push_back(slot);
    }
    if (candidates.empty()) continue;
    const std::size_t pick =
        pick_candidate(candidates, config_.profile.select, rng_);
    request_chunk(ps, ps.partners[candidate_slot[pick]], c);
  }
}

void Swarm::request_chunk(ProbeState& ps, Partner& partner, ChunkIndex chunk) {
  const auto& stream = config_.profile.stream;
  const PeerInfo& self = population_.peer(ps.id);
  const PeerInfo& other = population_.peer(partner.id);
  const auto fwd = topo_.path(self.ep, other.ep);   // request direction
  const auto rev = topo_.path(other.ep, self.ep);   // video direction
  const SimTime now = engine_.now();
  trace::ProbeSink& sink = *sinks_[ps.index];

  sink.signaling_tx(other.ep.addr, now, config_.profile.signaling.request_bytes);

  if (faults_active_ && !peer_online(partner.id, now)) {
    // Dead request: the partner crashed or flapped offline since it was
    // admitted. The request packet is spent, nothing comes back, and
    // the timeout path turns this into a retry.
    ps.inflight.push_back(
        {chunk, partner.id, now + config_.profile.sched.request_timeout});
    ++partner.inflight;
    return;
  }

  const SimTime service_start =
      now + fwd.one_way_delay + SimTime::millis(2);
  sim::TrainSpec spec;
  spec.start = service_start;
  spec.packet_count = stream.packets_per_chunk();
  spec.packet_bytes = stream.packet_bytes;
  spec.impairment = impairment_;
  spec.link_key = ps.id;  // outage schedule keyed on the receiver link
  const sim::TrainResult train = sim::transmit_train(
      spec, other.access, up_[partner.id], self.access, down_[ps.id], rev,
      rng_, channel_for(partner.id, ps.id));

  sink.video_train_rx(other.ep.addr, train.arrivals, stream.packet_bytes,
                      sim::ttl_after(rev.hops));
  if (probe_slot_[partner.id] >= 0) {
    trace::ProbeSink& peer_sink =
        *sinks_[static_cast<std::size_t>(probe_slot_[partner.id])];
    peer_sink.signaling_rx(self.ep.addr, now + fwd.one_way_delay,
                           config_.profile.signaling.request_bytes,
                           sim::ttl_after(fwd.hops));
    peer_sink.video_train_tx(self.ep.addr, train.departures,
                             stream.packet_bytes);
  }

  // Burst throughput observed by the downloader — the bandwidth signal
  // the application's own selection feeds on (RTT-independent, like a
  // sustained pipelined transfer).
  double rate_mbps = 1.0;
  if (train.arrivals.size() >= 2) {
    const double span =
        (train.arrivals.back() - train.arrivals.front()).seconds();
    if (span > 0) {
      rate_mbps = static_cast<double>(train.arrivals.size() - 1) *
                  static_cast<double>(stream.packet_bytes) * 8.0 / span / 1e6;
    }
  }

  ps.inflight.push_back(
      {chunk, partner.id, now + config_.profile.sched.request_timeout});
  ++partner.inflight;
  const PeerId from = partner.id;
  const auto bytes = static_cast<std::uint64_t>(train.arrivals.size()) *
                     static_cast<std::uint64_t>(stream.packet_bytes);
  // A fully-lost train never completes: the timeout path retries it.
  if (train.arrivals.empty()) return;
  const std::size_t probe_index = ps.index;
  engine_.schedule_at(train.completed(), [this, probe_index, from, chunk, now,
                                          rate_mbps, bytes] {
    complete_chunk(probes_[probe_index], from, chunk, now, rate_mbps, bytes);
  });
}

void Swarm::complete_chunk(ProbeState& ps, PeerId from, ChunkIndex chunk,
                           util::SimTime /*requested*/, double train_rate_mbps,
                           std::uint64_t bytes) {
  if (faults_active_ && !ps.online) return;  // crashed mid-delivery
  const auto it = std::find_if(
      ps.inflight.begin(), ps.inflight.end(),
      [chunk](const ProbeState::Inflight& f) { return f.chunk == chunk; });
  if (it != ps.inflight.end() && it->from == from) {
    ps.inflight.erase(it);
  }
  if (faults_active_) {
    std::erase_if(ps.chunk_failures,
                  [chunk](const auto& kv) { return kv.first == chunk; });
    std::erase_if(ps.retry_after,
                  [chunk](const auto& kv) { return kv.first == chunk; });
  }
  if (ps.buffer.mark(chunk)) {
    ++counters_.chunks_delivered;
  } else {
    ++counters_.chunks_duplicate;
  }
  for (Partner& partner : ps.partners) {
    if (partner.id != from) continue;
    partner.belief_mbps = 0.7 * partner.belief_mbps + 0.3 * train_rate_mbps;
    partner.bytes_delivered += bytes;
    if (partner.inflight > 0) --partner.inflight;
    partner.consecutive_failures = 0;
    return;
  }
  // Partner was dropped while the chunk was in flight; remember what we
  // learned about it anyway.
  ps.belief_cache[from] = 0.7 * cached_belief(ps, from) + 0.3 * train_rate_mbps;
}

void Swarm::try_spawn_requester(ProbeState& ps) {
  const auto& upload = config_.profile.upload;
  const PeerInfo& self = population_.peer(ps.id);

  const bool accepting = !faults_active_ || ps.online;
  if (accepting && ps.active_requesters < upload.max_requesters) {
    // Find a background peer that discovered this probe.
    PeerId pick = 0;
    bool found = false;
    for (int attempt = 0; attempt < 8 && !found; ++attempt) {
      pick = sample_peer(ps, config_.profile.discovery_as_bias);
      const PeerInfo& cand = population_.peer(pick);
      if (!cand.is_probe && !cand.is_source) found = true;
    }
    if (found) {
      const PeerInfo& cand = population_.peer(pick);
      // A Requester lives for the probe's whole partnership with
      // this peer, not per event.
      // peerscope-lint: allow(engine-hot-path)
      auto req = std::make_shared<Requester>();
      req->id = pick;
      req->stream_share =
          cand.access.is_high_bandwidth()
              ? rng_.uniform(upload.share_hi_lo, upload.share_hi_hi)
              : rng_.uniform(upload.share_lo_lo, upload.share_lo_hi);
      // Local (same-AS) downloader sessions are markedly more stable
      // than long-haul ones — they hold their supplier far longer.
      const double lifetime =
          upload.requester_lifetime_s *
          (cand.ep.as == self.ep.as ? 2.5 : 1.0);
      req->leaves = engine_.now() +
                    SimTime::from_seconds(session_length_s(lifetime, rng_));
      ++ps.active_requesters;
      note_known(ps, pick);
      const std::size_t probe_index = ps.index;
      engine_.schedule_after(SimTime::millis(5), [this, probe_index, req] {
        requester_loop(probes_[probe_index], req);
      });
    }
  }
}

void Swarm::spawn_requester(ProbeState& ps) {
  const auto& upload = config_.profile.upload;
  const PeerInfo& self = population_.peer(ps.id);
  try_spawn_requester(ps);

  // Next arrival (NAT/firewall suppress inbound connections).
  double rate = upload.requester_arrival_per_s;
  if (self.access.firewall) rate *= 0.25;
  if (self.access.nat) rate *= 0.6;
  const std::size_t probe_index = ps.index;
  engine_.schedule_after(
      SimTime::from_seconds(rng_.exponential(1.0 / rate)),
      [this, probe_index] { spawn_requester(probes_[probe_index]); });
}

void Swarm::requester_loop(ProbeState& ps, std::shared_ptr<Requester> req) {
  const SimTime now = engine_.now();
  if (now >= req->leaves || now >= config_.duration) {
    --ps.active_requesters;
    return;
  }
  if (faults_active_ && !ps.online) {
    // Supplier crashed: the downloader's session is over.
    --ps.active_requesters;
    return;
  }
  const auto& stream = config_.profile.stream;
  const auto& upload = config_.profile.upload;
  const PeerInfo& self = population_.peer(ps.id);
  const PeerInfo& other = population_.peer(req->id);

  const SimTime next_period = SimTime::from_seconds(
      chunk_interval_.seconds() / req->stream_share *
      rng_.uniform(0.85, 1.15));
  const std::size_t probe_index = ps.index;
  engine_.schedule_after(next_period, [this, probe_index, req] {
    requester_loop(probes_[probe_index], req);
  });

  if (faults_active_ && !peer_online(req->id, now)) {
    return;  // downloader flapped offline; it may resume next period
  }
  if (up_[ps.id].backlog(now) > upload.backlog_limit) {
    ++counters_.requests_refused;
    return;
  }
  const ChunkIndex newest = ps.buffer.newest();
  if (newest < 0) return;
  ChunkIndex chunk = newest - static_cast<ChunkIndex>(rng_.below(
                                  static_cast<std::uint64_t>(
                                      config_.profile.sched.window_chunks) /
                                  2 +
                                  1));
  if (!ps.buffer.has(chunk)) chunk = newest;
  if (!ps.buffer.has(chunk)) return;

  const auto fwd = topo_.path(other.ep, self.ep);  // request direction
  const auto rev = topo_.path(self.ep, other.ep);  // video direction
  trace::ProbeSink& sink = *sinks_[ps.index];
  sink.signaling_rx(other.ep.addr, now, config_.profile.signaling.request_bytes,
                    sim::ttl_after(fwd.hops));

  sim::TrainSpec spec;
  spec.start = now + SimTime::millis(1);
  spec.packet_count = stream.packets_per_chunk();
  spec.packet_bytes = stream.packet_bytes;
  spec.impairment = impairment_;
  spec.link_key = req->id;
  const sim::TrainResult train = sim::transmit_train(
      spec, self.access, up_[ps.id], other.access, down_[req->id], rev, rng_,
      channel_for(ps.id, req->id));
  sink.video_train_tx(other.ep.addr, train.departures, stream.packet_bytes);
  ++counters_.chunks_uploaded;
}

void Swarm::zap_probe(ProbeState& ps) {
  // Channel zap: the client drops its partners and in-flight work, but
  // keeps a zap_reuse fraction of its known peers — the cross-channel
  // cache commercial clients carry between channels.
  for (const Partner& partner : ps.partners) {
    ps.belief_cache[partner.id] = partner.belief_mbps;
  }
  ps.partners.clear();
  ps.inflight.clear();
  if (faults_active_) {
    ps.chunk_failures.clear();
    ps.retry_after.clear();
  }
  const double reuse = config_.discovery.zap_reuse;
  std::vector<PeerId> kept;
  kept.reserve(ps.known_list.size());
  for (const PeerId id : ps.known_list) {
    if (discovery_rng_.chance(reuse)) kept.push_back(id);
  }
  ps.known_list = std::move(kept);
  std::fill(ps.known_bits.begin(), ps.known_bits.end(), false);
  for (const PeerId id : ps.known_list) ps.known_bits[id] = true;
  ps.bootstrapped = false;  // the next tick re-joins through discovery
  if (discovery_) discovery_->begin_join(ps.id, engine_.now());
}

void Swarm::flash_crowd() {
  const SimTime now = engine_.now();
  if (now >= config_.duration) return;
  PEERSCOPE_TRACE_INSTANT("p2p.discovery.flash_crowd");
  for (ProbeState& ps : probes_) {
    if (faults_active_ && !ps.online) continue;
    zap_probe(ps);
  }
  // Correlated arrival burst: the zapped channel's new audience hits
  // the probes' uplinks within a couple of seconds, not as a Poisson
  // trickle. Arrivals round-robin the probes with exponential gaps.
  const int arrivals = config_.discovery.flash_crowd_arrivals;
  for (int i = 0; i < arrivals; ++i) {
    const std::size_t index = static_cast<std::size_t>(i) % probes_.size();
    const SimTime at =
        now + SimTime::from_seconds(discovery_rng_.exponential(0.5));
    engine_.schedule_at(at, [this, index] {
      ProbeState& ps = probes_[index];
      if (engine_.now() >= config_.duration) return;
      if (faults_active_ && !ps.online) return;
      ++counters_.discovery.flash_arrivals;
      try_spawn_requester(ps);
    });
  }
}

Swarm::DiscoveryReport Swarm::discovery_report() const {
  DiscoveryReport report;
  if (!discovery_) return report;
  report.rejoins_missed = discovery_->rejoins_missed(
      config_.discovery.rejoin_deadline, config_.duration);
  report.rejoin_latencies_s.reserve(discovery_->rejoin_latencies().size());
  for (const SimTime latency : discovery_->rejoin_latencies()) {
    report.rejoin_latencies_s.push_back(latency.seconds());
  }
  return report;
}

void Swarm::tick(ProbeState& ps) {
  const SimTime now = engine_.now();
  if (now >= config_.duration) return;
  if (faults_active_ && !ps.online) return;  // chain dies until rejoin
  if (!ps.bootstrapped) bootstrap(ps);

  run_discovery(ps);
  schedule_requests(ps);
  send_keepalives(ps);

  const std::size_t probe_index = ps.index;
  const std::uint64_t epoch = ps.tick_epoch;
  engine_.schedule_after(config_.profile.sched.period,
                         [this, probe_index, epoch] {
    ProbeState& next = probes_[probe_index];
    if (next.tick_epoch != epoch) return;  // crashed since scheduling
    tick(next);
  });
}

void Swarm::run() {
  if (ran_) throw std::logic_error("Swarm::run called twice");
  ran_ = true;
  PEERSCOPE_SPAN("swarm_run");
  engine_.set_cancel(config_.cancel);
  engine_.set_progress(config_.progress);

  // Arm the sim-time sampling grid only when someone is listening —
  // with neither a series recorder nor a progress sink the engine's
  // per-event cost (and therefore the run's byte-level output) is
  // unchanged. The grid spacing comes from the recorder so every
  // run's series shares it; SLO-only runs sample each sim-second.
  const bool series_on = obs::series_enabled();
  if (series_on || config_.progress != nullptr) {
    const SimTime grid = series_on ? obs::series()->interval()
                                   : SimTime::seconds(1);
    engine_.set_sampler(grid, [this, series_on](std::uint64_t index,
                                                SimTime at) {
      sample_interval(series_on, index, at);
    });
  }

  // Channel-zap flash crowd, if one is scheduled for this run.
  if (discovery_active_ && config_.discovery.flash_crowd()) {
    engine_.schedule_at(config_.discovery.flash_crowd_at,
                        [this] { flash_crowd(); });
  }

  for (const ProbeState& ps : probes_) {
    const std::size_t probe_index = ps.index;
    // Staggered joins within the first two seconds.
    const SimTime start =
        SimTime::from_seconds(0.1 + rng_.uniform01() * 2.0);
    engine_.schedule_at(start,
                        [this, probe_index] { tick(probes_[probe_index]); });

    // Probe crash/rejoin process rides alongside the protocol.
    if (config_.churn.probe_churn()) {
      schedule_probe_crash(probe_index);
    }

    // Partner maintenance on its own slower cadence.
    struct Maintenance {
      static void fire(Swarm* swarm, std::size_t index) {
        if (swarm->engine_.now() >= swarm->config_.duration) return;
        if (swarm->faults_active_ && !swarm->probes_[index].online) {
          // Crashed: keep the cadence alive, skip the work.
          swarm->engine_.schedule_after(
              swarm->config_.profile.sched.maintenance_period,
              [swarm, index] { Maintenance::fire(swarm, index); });
          return;
        }
        swarm->maintain_partners(swarm->probes_[index]);
        swarm->engine_.schedule_after(
            swarm->config_.profile.sched.maintenance_period,
            [swarm, index] { Maintenance::fire(swarm, index); });
      }
    };
    engine_.schedule_at(
        start + config_.profile.sched.maintenance_period,
        [this, probe_index] { Maintenance::fire(this, probe_index); });

    // Background demand for this probe's upload capacity.
    engine_.schedule_at(
        start + SimTime::from_seconds(
                    rng_.exponential(
                        1.0 / config_.profile.upload.requester_arrival_per_s)),
        [this, probe_index] { spawn_requester(probes_[probe_index]); });
  }

  engine_.run_until(config_.duration);

  if (discovery_) {
    // Merge the service-owned control-plane counters; the NAT and
    // flash-crowd fields are incremented directly by the swarm (they
    // also fire when no backend is configured) and must survive.
    const DiscoveryCounters& dc = discovery_->counters();
    auto& out = counters_.discovery;
    out.tracker_queries = dc.tracker_queries;
    out.tracker_failures = dc.tracker_failures;
    out.dht_lookups = dc.dht_lookups;
    out.dht_hops = dc.dht_hops;
    out.dht_hop_timeouts = dc.dht_hop_timeouts;
    out.dht_evictions = dc.dht_evictions;
    out.gossip_exchanges = dc.gossip_exchanges;
    out.gossip_partitions = dc.gossip_partitions;
    out.failovers = dc.failovers;
    out.recoveries = dc.recoveries;
    out.joins_ok = dc.joins_ok;
    out.join_retries = dc.join_retries;
  }

  // Timeline marker for the drained swarm: the chunk total is ground
  // truth at this point, so the sample is deterministic per seed.
  PEERSCOPE_TRACE_INSTANT("p2p.swarm_complete");
  PEERSCOPE_TRACE_COUNTER(
      "p2p.chunks_delivered",
      static_cast<std::int64_t>(counters_.chunks_delivered));

  // Publish the run's ground-truth counters once, after the event loop
  // drains — the protocol steps themselves stay metrics-free.
  if (obs::enabled()) {
    obs::counter("p2p.swarms_run").add();
    obs::counter("p2p.chunks_delivered").add(counters_.chunks_delivered);
    obs::counter("p2p.chunks_duplicate").add(counters_.chunks_duplicate);
    obs::counter("p2p.chunks_uploaded").add(counters_.chunks_uploaded);
    obs::counter("p2p.chunks_retried").add(counters_.chunks_retried);
    obs::counter("p2p.requests_refused").add(counters_.requests_refused);
    obs::counter("p2p.contacts").add(counters_.contacts);
    obs::counter("p2p.contact_failures").add(counters_.contact_failures);
    obs::counter("p2p.timeouts").add(counters_.timeouts);
    obs::counter("p2p.churn_probe_crashes").add(counters_.probe_crashes);
    obs::counter("p2p.partners_blacklisted")
        .add(counters_.partners_blacklisted);
    if (discovery_active_) {
      // Registered only when the subsystem ran, so clean-run
      // metrics.json stays byte-identical (the trace_events_dropped
      // pattern).
      const auto& dc = counters_.discovery;
      obs::counter("p2p.discovery.tracker_queries").add(dc.tracker_queries);
      obs::counter("p2p.discovery.tracker_failures")
          .add(dc.tracker_failures);
      obs::counter("p2p.discovery.dht_lookups").add(dc.dht_lookups);
      obs::counter("p2p.discovery.dht_hops").add(dc.dht_hops);
      obs::counter("p2p.discovery.dht_hop_timeouts")
          .add(dc.dht_hop_timeouts);
      obs::counter("p2p.discovery.dht_evictions").add(dc.dht_evictions);
      obs::counter("p2p.discovery.gossip_exchanges")
          .add(dc.gossip_exchanges);
      obs::counter("p2p.discovery.gossip_partitions")
          .add(dc.gossip_partitions);
      obs::counter("p2p.discovery.failovers").add(dc.failovers);
      obs::counter("p2p.discovery.recoveries").add(dc.recoveries);
      obs::counter("p2p.discovery.joins_ok").add(dc.joins_ok);
      obs::counter("p2p.discovery.join_retries").add(dc.join_retries);
      obs::counter("p2p.discovery.nat_direct").add(dc.nat_direct);
      obs::counter("p2p.discovery.nat_relayed").add(dc.nat_relayed);
      obs::counter("p2p.discovery.nat_blocked").add(dc.nat_blocked);
      obs::counter("p2p.discovery.flash_arrivals").add(dc.flash_arrivals);
      if (discovery_) {
        obs::Histogram rejoin = obs::histogram(
            "p2p.discovery.rejoin_latency_ns", obs::timing_bounds(), true);
        for (const SimTime latency : discovery_->rejoin_latencies()) {
          rejoin.observe(latency.ns());
        }
        obs::counter("p2p.discovery.rejoins_missed")
            .add(discovery_->rejoins_missed(config_.discovery.rejoin_deadline,
                                            config_.duration));
      }
    }
    std::uint64_t captured_pkts = 0, captured_bytes = 0;
    for (const auto& sink : sinks_) {
      captured_pkts +=
          sink->flows().total_rx_pkts() + sink->flows().total_tx_pkts();
      captured_bytes +=
          sink->flows().total_rx_bytes() + sink->flows().total_tx_bytes();
    }
    obs::counter("trace.packets_captured").add(captured_pkts);
    obs::counter("trace.bytes_captured").add(captured_bytes);
  }
}

void Swarm::sample_interval(bool series_on, std::uint64_t index,
                            SimTime at) {
  // Fold the rejoin latencies that completed since the previous grid
  // point into (a) this interval's histogram and (b) the cumulative
  // one whose p99 the SLO watchdog compares against its ceiling.
  obs::LogHistogram rejoins;
  if (discovery_) {
    const auto& latencies = discovery_->rejoin_latencies();
    for (std::size_t i = sample_.rejoins_seen; i < latencies.size(); ++i) {
      rejoins.record(latencies[i].ns());
    }
    sample_.rejoins_seen = latencies.size();
    if (rejoins.count() > 0) {
      sample_.rejoin_cumulative.merge(rejoins);
      if (config_.progress != nullptr) {
        config_.progress->rejoin_p99_ns.store(
            sample_.rejoin_cumulative.quantile(0.99),
            std::memory_order_relaxed);
      }
    }
  }
  if (!series_on) return;

  obs::SeriesRow row;
  // Engine throughput always lands (a zero marks an idle interval);
  // protocol counters land only when they moved, keeping rows sparse.
  row.counters.emplace("sim.events_executed",
                       engine_.executed() - sample_.prev_events);
  sample_.prev_events = engine_.executed();
  const auto delta = [&row](const char* name, std::uint64_t now_value,
                            std::uint64_t& prev_value) {
    if (now_value != prev_value) {
      row.counters.emplace(name, now_value - prev_value);
      prev_value = now_value;
    }
  };
  Counters& prev = sample_.prev;
  delta("p2p.chunks_delivered", counters_.chunks_delivered,
        prev.chunks_delivered);
  delta("p2p.chunks_duplicate", counters_.chunks_duplicate,
        prev.chunks_duplicate);
  delta("p2p.chunks_uploaded", counters_.chunks_uploaded,
        prev.chunks_uploaded);
  delta("p2p.chunks_retried", counters_.chunks_retried,
        prev.chunks_retried);
  delta("p2p.requests_refused", counters_.requests_refused,
        prev.requests_refused);
  delta("p2p.contacts", counters_.contacts, prev.contacts);
  delta("p2p.contact_failures", counters_.contact_failures,
        prev.contact_failures);
  delta("p2p.timeouts", counters_.timeouts, prev.timeouts);
  delta("p2p.churn_probe_crashes", counters_.probe_crashes,
        prev.probe_crashes);
  delta("p2p.partners_blacklisted", counters_.partners_blacklisted,
        prev.partners_blacklisted);
  if (discovery_) {
    // Control-plane counters live in the service until run() merges
    // them; sample them live.
    const DiscoveryCounters& dc = discovery_->counters();
    DiscoveryCounters& pdc = sample_.prev_discovery;
    delta("p2p.discovery.joins_ok", dc.joins_ok, pdc.joins_ok);
    delta("p2p.discovery.join_retries", dc.join_retries, pdc.join_retries);
    delta("p2p.discovery.failovers", dc.failovers, pdc.failovers);
    delta("p2p.discovery.recoveries", dc.recoveries, pdc.recoveries);
    delta("p2p.discovery.tracker_queries", dc.tracker_queries,
          pdc.tracker_queries);
    delta("p2p.discovery.dht_lookups", dc.dht_lookups, pdc.dht_lookups);
    delta("p2p.discovery.gossip_exchanges", dc.gossip_exchanges,
          pdc.gossip_exchanges);
  }
  if (rejoins.count() > 0) {
    row.histograms.emplace("p2p.discovery.rejoin_latency_ns",
                           std::move(rejoins));
  }
  const std::string& key = config_.series_key.empty()
                               ? config_.profile.name
                               : config_.series_key;
  obs::series()->record(key, index, at, std::move(row));
}

}  // namespace peerscope::p2p
