// Peer churn and connection-failure injection for the swarm.
//
// The paper's captures were taken on the real Internet: probes crashed
// and rejoined, the audience flapped in and out in minutes, NAT and
// firewall traversal failed outright. The clean simulator made all of
// that impossible; ChurnSpec turns each failure mode on explicitly.
// Everything defaults to disabled — a default-constructed spec leaves
// the swarm bit-identical to the un-impaired simulator.
//
// Recovery machinery (chunk-request retry with exponential backoff,
// per-partner failure scoring, blacklisting after repeated timeouts)
// activates whenever any fault injection — churn or link impairment —
// is enabled, mirroring how the commercial clients must cope with the
// same conditions.
#pragma once

#include "util/sim_time.hpp"

namespace peerscope::p2p {

struct ChurnSpec {
  /// Mean probe online-session length in seconds (exponential); 0
  /// disables probe crashes. A crashed probe drops its partners and
  /// in-flight requests, then rejoins and re-bootstraps.
  double probe_session_s = 0.0;
  /// Mean probe downtime between crash and rejoin.
  double probe_downtime_s = 5.0;
  /// Mean background-peer online session in seconds; 0 keeps the
  /// audience permanently online. Flapping is a deterministic per-peer
  /// duty cycle (hash-phased), so it never perturbs the RNG stream:
  /// requests sent to an offline peer simply never complete.
  double bg_session_s = 0.0;
  /// Mean background-peer downtime per flap.
  double bg_downtime_s = 10.0;
  /// Probability a discovery contact to a NAT'd peer fails outright
  /// (the handshake goes out, nothing comes back).
  double nat_connect_failure = 0.0;
  /// Same for firewalled peers (additive when both apply).
  double firewall_connect_failure = 0.0;

  // --- recovery machinery (active whenever faults are injected) ---
  /// Base retry backoff after a chunk-request timeout; doubles per
  /// consecutive failure of the same chunk.
  util::SimTime retry_backoff = util::SimTime::millis(400);
  util::SimTime retry_backoff_max = util::SimTime::seconds(5);
  /// Consecutive timeouts from one partner before it is blacklisted;
  /// <= 0 disables blacklisting.
  int blacklist_after = 4;
  util::SimTime blacklist_duration = util::SimTime::seconds(30);

  [[nodiscard]] bool probe_churn() const { return probe_session_s > 0.0; }
  [[nodiscard]] bool bg_churn() const { return bg_session_s > 0.0; }
  [[nodiscard]] bool connect_failures() const {
    return nat_connect_failure > 0.0 || firewall_connect_failure > 0.0;
  }
  [[nodiscard]] bool enabled() const {
    return probe_churn() || bg_churn() || connect_failures();
  }
};

}  // namespace peerscope::p2p
