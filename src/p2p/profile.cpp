#include "p2p/profile.hpp"

namespace peerscope::p2p {

// Calibration note. The numbers below were tuned so the *shape* of the
// paper's Tables II-IV and Figures 1-2 is reproduced at 1/12 duration
// and ~1/12 swarm scale (DESIGN.md §6); EXPERIMENTS.md records the
// paper-vs-measured comparison for every statistic.

SystemProfile SystemProfile::pplive() {
  SystemProfile p;
  p.name = "PPLive";

  // PPLive contacted 23k peers/hour per probe: by far the chattiest
  // system, which inflates its RX rate with signaling overhead.
  p.signaling.contact_rate_per_s = 6.5;
  p.signaling.keepalive_per_s = 1.3;
  p.signaling.keepalive_bytes = 260;

  p.sched.partner_target = 45;
  p.sched.max_inflight = 10;
  p.sched.window_chunks = 14;

  // No explicit locality rule: PPLive follows bandwidth alone. Its
  // measured AS byte-bias (B'/P' ~ 10, Table IV) emerges because the
  // same-AS (NREN campus) peers are the best-provisioned, lowest-lag
  // suppliers in the swarm -- locality by infrastructure correlation,
  // not by policy. This is also what keeps its probe-pair exchange
  // AS-neutral (Fig. 2's R ~ 1) despite the strong same-LAN traffic.
  p.select = {.random = 0.05, .bandwidth = 1.0, .same_as = 0.0, .same_cc = 0.0};
  p.discovery_as_bias = 0.0;
  p.discovery_stable_bias = 0.0008;
  p.lan_discovery = true;
  p.sched.due_chunks = 9;
  p.sched.eager_prob = 0.5;
  p.sched.safety_chunks = 2;

  // Aggressive upload exploitation: probe TX averaged ~3.4 Mb/s, i.e.
  // ~8 stream copies, with peaks near 12 Mb/s on LAN probes.
  p.upload.requester_arrival_per_s = 0.55;
  p.upload.requester_lifetime_s = 35.0;
  p.upload.max_requesters = 32;

  p.population.background_peers = 15'000;
  p.population.campus_lag_scale = 0.3;
  p.population.eu_fraction = 0.10;
  p.population.cn_fraction = 0.76;
  p.population.inst_as_fraction = 0.30;
  p.population.depth_shift = 1;
  return p;
}

SystemProfile SystemProfile::sopcast() {
  SystemProfile p;
  p.name = "SopCast";

  p.signaling.contact_rate_per_s = 2.2;
  p.signaling.keepalive_per_s = 0.9;
  p.signaling.keepalive_bytes = 180;

  p.sched.partner_target = 30;
  p.sched.max_inflight = 8;
  p.sched.eager_prob = 0.32;
  p.population.lag_floor_s = 0.55;
  p.population.lag_mu = 1.1;

  // Location-blind: bandwidth is the only non-random signal.
  p.select = {.random = 0.05, .bandwidth = 1.0, .same_as = 0.0, .same_cc = 0.0};
  p.discovery_as_bias = 0.0;

  // TX below RX (293 vs 449 kb/s in Table II).
  p.upload.requester_arrival_per_s = 0.10;
  p.upload.requester_lifetime_s = 25.0;
  p.upload.max_requesters = 8;
  p.upload.share_hi_lo = 0.3;
  p.upload.share_hi_hi = 0.9;
  p.upload.share_lo_lo = 0.08;
  p.upload.share_lo_hi = 0.3;

  p.population.background_peers = 2'000;
  p.population.eu_fraction = 0.12;
  p.population.cn_fraction = 0.74;
  p.population.inst_as_fraction = 0.35;
  // SopCast's audience sat deepest in the access networks (its HOP
  // byte-preference is the lowest of the three: B' ~ 29%).
  p.population.depth_shift = 1;
  return p;
}

SystemProfile SystemProfile::tvants() {
  SystemProfile p;
  p.name = "TVAnts";

  p.signaling.contact_rate_per_s = 1.0;
  p.signaling.keepalive_per_s = 1.0;
  p.signaling.keepalive_bytes = 200;

  p.sched.partner_target = 18;
  p.sched.max_inflight = 8;
  p.sched.eager_prob = 0.8;  // races the live edge harder than the rest
  p.sched.safety_chunks = 1;
  // TVAnts' observed swarm sat farther from the source than the probes:
  // its background peers lag more, so the probe cloud exchanges most of
  // the fresh stream internally (Table III: 56% of bytes).
  p.population.lag_floor_s = 0.9;
  p.population.lag_mu = 1.45;
  p.population.campus_lag_scale = 0.4;

  // AS-aware in both discovery (finds same-AS peers far above the base
  // rate: P' 3.3% vs PPLive's 0.6%) and scheduling (B'/P' ~ 2).
  p.select = {.random = 0.05, .bandwidth = 1.0, .same_as = 3.5, .same_cc = 0.0};
  p.discovery_as_bias = 0.02;

  // TX slightly above RX (464 vs 419 kb/s); most probe upload goes to
  // the probe cloud itself, background demand stays moderate.
  p.upload.requester_arrival_per_s = 0.07;
  p.upload.requester_lifetime_s = 22.0;
  p.upload.max_requesters = 8;
  p.upload.share_hi_lo = 0.4;
  p.upload.share_hi_hi = 1.3;  // campus downloaders re-distribute locally
  p.upload.share_lo_lo = 0.08;
  p.upload.share_lo_hi = 0.3;

  p.population.background_peers = 520;
  // The small TVAnts swarm the paper observed was relatively richer in
  // European peers, mostly on campus networks (institution ASes).
  p.population.cn_fraction = 0.73;
  p.population.eu_fraction = 0.15;
  p.population.row_fraction = 0.12;
  p.population.inst_as_fraction = 0.40;
  return p;
}

SystemProfile SystemProfile::pplive_popular() {
  SystemProfile p = pplive();
  p.name = "PPLive-Popular";
  // A popular channel draws a much larger European audience, including
  // on-campus viewers; locality becomes visible mostly as hop-0
  // (same-LAN) traffic — the effect Figure 2's discussion singles out.
  p.population.background_peers = 20'000;
  p.population.cn_fraction = 0.55;
  p.population.eu_fraction = 0.30;
  p.population.row_fraction = 0.15;
  p.population.inst_as_fraction = 0.35;
  p.select.same_as = 6.0;
  p.discovery_as_bias = 0.02;
  return p;
}

SystemProfile SystemProfile::napawine_prototype() {
  // Start from the location-blind baseline and add exactly the
  // awareness the paper's conclusion calls for.
  SystemProfile p = sopcast();
  p.name = "NAPA-WINE-proto";
  p.select.same_as = 2.5;      // AS-level traffic localisation
  p.select.same_cc = 0.5;      // country fallback when no same-AS supplier
  p.select.low_rtt = 1.0;      // prefer shorter paths
  p.discovery_as_bias = 0.10;  // topology-aware peer discovery
  p.lan_discovery = true;
  return p;
}

}  // namespace peerscope::p2p
