#include "p2p/population.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace peerscope::p2p {

using net::AccessLink;
using net::AsId;

std::vector<ProbeSpec> table1_probes() {
  using namespace net::refas;
  std::vector<ProbeSpec> out;

  auto lan_hosts = [&out](const std::string& site, AsId as, int first,
                          int last, int lan_group, AccessLink access) {
    for (int h = first; h <= last; ++h) {
      out.push_back({site, h, as, lan_group, access});
    }
  };
  auto home_host = [&out](const std::string& site, int number, AsId as,
                          int lan_group, AccessLink access) {
    out.push_back({site, number, as, lan_group, access});
  };

  const AsId home_bme{kHomeIspFirst.value() + 0};
  const AsId home_polito_a{kHomeIspFirst.value() + 1};
  const AsId home_polito_b{kHomeIspFirst.value() + 2};
  const AsId home_enst{kHomeIspFirst.value() + 3};
  const AsId home_unitn{kHomeIspFirst.value() + 4};
  const AsId home_wut{kHomeIspFirst.value() + 5};

  // Table I, row by row. The printed table sums to 46 hosts (39
  // institution + 7 home) although the paper's text says 44/37; we
  // reproduce the table as published (see EXPERIMENTS.md note).
  lan_hosts("BME", kAs1, 1, 4, 0, AccessLink::lan100());
  home_host("BME", 5, home_bme, -1, AccessLink::dsl(6, 0.512));

  lan_hosts("PoliTO", kAs2, 1, 9, 0, AccessLink::lan100());
  home_host("PoliTO", 10, home_polito_a, -1, AccessLink::dsl(4, 0.384));
  // Hosts 11-12 share one NATed home LAN on the same ISP.
  home_host("PoliTO", 11, home_polito_b, 2,
            AccessLink::dsl(8, 0.384, /*nat=*/true));
  home_host("PoliTO", 12, home_polito_b, 2,
            AccessLink::dsl(8, 0.384, /*nat=*/true));

  lan_hosts("MT", kAs3, 1, 4, 0, AccessLink::lan100());

  lan_hosts("FFT", kAs5, 1, 3, 0, AccessLink::lan100());

  {
    AccessLink fw = AccessLink::lan100();
    fw.firewall = true;
    lan_hosts("ENST", kAs4, 1, 4, 0, fw);
  }
  home_host("ENST", 5, home_enst, -1,
            AccessLink::dsl(22, 1.8, /*nat=*/true));

  lan_hosts("UniTN", kAs2, 1, 5, 0, AccessLink::lan100());
  {
    AccessLink nat = AccessLink::lan100();
    nat.nat = true;
    lan_hosts("UniTN", kAs2, 6, 7, 1, nat);
  }
  home_host("UniTN", 8, home_unitn, -1,
            AccessLink::dsl(2.5, 0.384, /*nat=*/true, /*firewall=*/true));

  lan_hosts("WUT", kAs6, 1, 8, 0, AccessLink::lan100());
  home_host("WUT", 9, home_wut, -1, AccessLink::catv(6, 0.512));

  return out;
}

namespace {

// Background high-bandwidth access variants: campus/fiber links, all
// with uplink > 10 Mb/s so the ground-truth class is unambiguous.
AccessLink random_highbw_access(util::Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return AccessLink::lan100();
    case 1:
      return {net::AccessKind::kLan, 100'000'000, 20'000'000,
              100'000'000, false, false};
    default:
      return {net::AccessKind::kLan, 20'000'000, 20'000'000, 20'000'000,
              false, false};
  }
}

// Low-bandwidth variants: the DSL/CATV plans of the era, uplink well
// below 10 Mb/s.
AccessLink random_lowbw_access(util::Rng& rng) {
  switch (rng.below(5)) {
    case 0:
      return AccessLink::dsl(2, 0.256, rng.chance(0.5));
    case 1:
      return AccessLink::dsl(4, 0.384, rng.chance(0.5));
    case 2:
      return AccessLink::dsl(8, 0.512, rng.chance(0.5));
    case 3:
      return AccessLink::dsl(16, 1.0, rng.chance(0.5));
    default:
      return AccessLink::catv(6, 0.512, rng.chance(0.3));
  }
}

}  // namespace

Population Population::build(const net::AsTopology& topo,
                             const PopulationSpec& spec,
                             std::span<const ProbeSpec> probes,
                             std::uint64_t seed) {
  using namespace net::refas;
  Population pop;
  util::Rng rng{seed};

  for (const AsId as : topo.as_ids()) {
    pop.allocator_.register_as(as, topo.country_of_as(as));
  }

  auto add_peer = [&pop](PeerInfo info) -> PeerId {
    info.id = static_cast<PeerId>(pop.peers_.size());
    pop.by_as_[info.ep.as].push_back(info.id);
    pop.by_addr_.emplace(info.ep.addr, info.id);
    pop.peers_.push_back(info);
    return info.id;
  };

  // --- Probes. LAN groups share a carved /24; home hosts scatter.
  std::map<std::tuple<std::string, std::uint32_t, int>, net::Ipv4Prefix> lans;
  for (const ProbeSpec& ps : probes) {
    net::Ipv4Addr addr;
    if (ps.lan_group >= 0) {
      const auto key = std::make_tuple(ps.site, ps.as.value(), ps.lan_group);
      auto it = lans.find(key);
      if (it == lans.end()) {
        it = lans.emplace(key, pop.allocator_.new_subnet(ps.as)).first;
      }
      addr = pop.allocator_.new_host_in_subnet(it->second);
    } else {
      addr = pop.allocator_.new_host(ps.as);
    }
    PeerInfo info;
    info.ep = {addr, ps.as, topo.country_of_as(ps.as),
               topo.region_of_as(ps.as),
               ps.access.kind == net::AccessKind::kLan ? 2 : 4};
    info.access = ps.access;
    info.is_probe = true;
    info.probe_index = static_cast<std::int32_t>(pop.probe_specs_.size());
    const PeerId id = add_peer(info);
    pop.probe_ids_.push_back(id);
    pop.probe_specs_.push_back(ps);
    pop.probe_addrs_.insert(addr);
  }

  // --- The source: a well-provisioned host in China feeding the swarm.
  {
    const AsId as{kCnIspFirst.value()};
    PeerInfo info;
    info.ep = {pop.allocator_.new_host(as), as, topo.country_of_as(as),
               topo.region_of_as(as), 2};
    info.access = {net::AccessKind::kLan, 100'000'000, 100'000'000,
                   100'000'000, false, false};
    info.is_source = true;
    info.lag_s = 0.0;
    pop.source_ = add_peer(info);
  }

  // --- Background audience.
  std::vector<AsId> cn_ases, row_ases, eu_eyeball_ases, inst_ases;
  for (std::uint32_t i = 0; i < kCnIspCount; ++i) {
    cn_ases.push_back(AsId{kCnIspFirst.value() + i});
  }
  for (std::uint32_t i = 0; i < kRowIspCount; ++i) {
    row_ases.push_back(AsId{kRowIspFirst.value() + i});
  }
  for (std::uint32_t i = 0; i < kEuIspCount; ++i) {
    eu_eyeball_ases.push_back(AsId{kEuIspFirst.value() + i});
  }
  inst_ases = {kAs1, kAs2, kAs3, kAs4, kAs5, kAs6};

  const double region_weights[3] = {spec.cn_fraction, spec.eu_fraction,
                                    spec.row_fraction};
  for (std::size_t i = 0; i < spec.background_peers; ++i) {
    const std::size_t bucket = rng.weighted_pick(region_weights);
    AsId as;
    double highbw_fraction;
    bool campus = false;
    if (bucket == 0) {
      as = cn_ases[rng.below(cn_ases.size())];
      highbw_fraction = spec.cn_highbw;
    } else if (bucket == 1) {
      if (rng.chance(spec.inst_as_fraction)) {
        as = inst_ases[rng.below(inst_ases.size())];
        // Institution-AS viewers sit on campus LANs almost by
        // definition — the same-AS peer pool is bandwidth-correlated.
        highbw_fraction = 0.85;
        campus = true;
      } else {
        as = eu_eyeball_ases[rng.below(eu_eyeball_ases.size())];
        highbw_fraction = spec.eu_highbw;
      }
    } else {
      as = row_ases[rng.below(row_ases.size())];
      highbw_fraction = spec.row_highbw;
    }

    PeerInfo info;
    const bool highbw = rng.chance(highbw_fraction);
    // Campus viewers sit directly on 100 Mb/s department LANs; other
    // high-bandwidth peers get the mixed fiber/ethernet plans.
    info.access = !highbw          ? random_lowbw_access(rng)
                  : campus         ? AccessLink::lan100()
                                   : random_highbw_access(rng);
    const int depth =
        spec.depth_shift +
        (info.access.kind == net::AccessKind::kLan
             ? static_cast<int>(2 + rng.below(2))    // 2-3
             : static_cast<int>(3 + rng.below(4)));  // 3-6
    info.ep = {pop.allocator_.new_host(as), as, topo.country_of_as(as),
               topo.region_of_as(as), depth};
    info.lag_scale = !highbw ? spec.lowbw_lag_scale
                     : campus ? spec.campus_lag_scale
                              : spec.highbw_lag_scale;
    info.lag_s = spec.lag_floor_s +
                 rng.lognormal(spec.lag_mu, spec.lag_sigma) * info.lag_scale;
    add_peer(info);
  }

  return pop;
}

std::span<const PeerId> Population::peers_in_as(net::AsId as) const {
  if (const auto it = by_as_.find(as); it != by_as_.end()) {
    return it->second;
  }
  return empty_;
}

std::optional<PeerId> Population::find(net::Ipv4Addr addr) const {
  if (const auto it = by_addr_.find(addr); it != by_addr_.end()) {
    return it->second;
  }
  return std::nullopt;
}

}  // namespace peerscope::p2p
