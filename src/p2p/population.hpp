// Swarm population: the NAPA-WINE probes plus the background audience.
//
// Builds every host taking part in an experiment — address, AS,
// country, access link, router depth — and announces all prefixes in a
// NetRegistry so the analysis pipeline can do the same IP -> AS/CC
// lookups the paper performs against whois/geo databases.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/access.hpp"
#include "net/allocator.hpp"
#include "net/registry.hpp"
#include "net/topology.hpp"
#include "p2p/profile.hpp"

namespace peerscope::p2p {

using PeerId = std::uint32_t;

/// One NAPA-WINE vantage point, as a row of Table I describes it.
struct ProbeSpec {
  std::string site;        // "BME", "PoliTO", ...
  int host_number = 1;     // 1-based within the site
  net::AsId as;            // institution AS or home ISP AS
  /// Probes with the same (site, lan_group >= 0) share a /24 LAN;
  /// lan_group = -1 means a scattered (home) host.
  int lan_group = 0;
  net::AccessLink access;

  [[nodiscard]] std::string label() const {
    return site + "-" + std::to_string(host_number);
  }
};

/// One participating host (probe, background peer, or the source).
struct PeerInfo {
  PeerId id = 0;
  net::Endpoint ep;
  net::AccessLink access;
  bool is_probe = false;
  bool is_source = false;
  std::int32_t probe_index = -1;  // into Population::probe_specs()
  /// Background peers have the stream at source-time + lag seconds
  /// (initial draw; the swarm redraws per lag epoch with `lag_scale`).
  double lag_s = 0.0;
  /// Class multiplier applied to every lag draw for this peer.
  double lag_scale = 1.0;
};

class Population {
 public:
  /// Deterministic construction from a finalized topology, the
  /// profile's population spec, and the probe list. The same inputs
  /// and seed always yield the same peers and addresses.
  [[nodiscard]] static Population build(const net::AsTopology& topo,
                                        const PopulationSpec& spec,
                                        std::span<const ProbeSpec> probes,
                                        std::uint64_t seed);

  [[nodiscard]] const std::vector<PeerInfo>& peers() const { return peers_; }
  [[nodiscard]] const PeerInfo& peer(PeerId id) const { return peers_[id]; }
  [[nodiscard]] std::size_t size() const { return peers_.size(); }

  [[nodiscard]] std::span<const PeerId> probe_ids() const {
    return probe_ids_;
  }
  [[nodiscard]] const std::vector<ProbeSpec>& probe_specs() const {
    return probe_specs_;
  }
  [[nodiscard]] PeerId source() const { return source_; }

  [[nodiscard]] const net::NetRegistry& registry() const { return registry_; }

  /// Peers homed in a given AS (probes included); empty if none.
  [[nodiscard]] std::span<const PeerId> peers_in_as(net::AsId as) const;

  [[nodiscard]] std::optional<PeerId> find(net::Ipv4Addr addr) const;
  [[nodiscard]] bool is_probe_addr(net::Ipv4Addr addr) const {
    return probe_addrs_.contains(addr);
  }
  /// The probe address set W of the paper's framework.
  [[nodiscard]] const std::unordered_set<net::Ipv4Addr>& probe_addrs() const {
    return probe_addrs_;
  }

 private:
  Population() : registry_(), allocator_(registry_) {}

  net::NetRegistry registry_;
  net::AddressAllocator allocator_;
  std::vector<PeerInfo> peers_;
  std::vector<PeerId> probe_ids_;
  std::vector<ProbeSpec> probe_specs_;
  std::unordered_map<net::AsId, std::vector<PeerId>> by_as_;
  std::unordered_map<net::Ipv4Addr, PeerId> by_addr_;
  std::unordered_set<net::Ipv4Addr> probe_addrs_;
  PeerId source_ = 0;
  std::vector<PeerId> empty_;
};

/// Builds the 44-probe testbed of Table I against the reference
/// topology's AS numbering (exp::Testbed wraps this with site-level
/// reporting; the raw list lives here so p2p has no dependency on exp).
[[nodiscard]] std::vector<ProbeSpec> table1_probes();

}  // namespace peerscope::p2p
