// Supplier scoring and sampling — the planted peer-selection policy.
//
// score(e) = random + bandwidth * min(belief, 20 Mb/s)/20 + same_as +
// same_cc; a supplier is drawn with probability proportional to its
// score. The aware:: pipeline must later *recover* these biases from
// traffic alone.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "p2p/population.hpp"
#include "p2p/profile.hpp"
#include "util/rng.hpp"

namespace peerscope::p2p {

struct Candidate {
  PeerId id = 0;
  double belief_mbps = 1.0;  // requester's throughput estimate of this peer
  bool same_as = false;
  bool same_cc = false;
  /// Measured round-trip time (applications can probe this actively,
  /// as the paper's §III notes). Used only when the policy has a
  /// low_rtt weight — none of the 2008 systems did; the NAPA-WINE
  /// prototype profile does.
  double rtt_ms = 0.0;
};

/// Normalisation ceiling for the bandwidth belief term.
inline constexpr double kBeliefCapMbps = 50.0;

[[nodiscard]] inline double selection_score(const Candidate& c,
                                            const SelectionWeights& w) {
  const double bw = c.belief_mbps < kBeliefCapMbps ? c.belief_mbps
                                                   : kBeliefCapMbps;
  // Square-root compression of the belief term: real clients react to
  // throughput differences but not proportionally (a 50x faster peer is
  // not asked for 50x the chunks when slower peers still deliver).
  double score = w.random + w.bandwidth * std::sqrt(bw / kBeliefCapMbps);
  if (c.same_as) score += w.same_as;
  if (c.same_cc) score += w.same_cc;
  if (w.low_rtt > 0.0) {
    // Linear proximity bonus, saturating at 300 ms RTT (beyond which
    // everything is "far").
    const double proximity = 1.0 - std::min(c.rtt_ms, 300.0) / 300.0;
    score += w.low_rtt * proximity;
  }
  return score;
}

/// Samples one candidate index: with probability `w.explore` uniformly
/// (slow-start trial), otherwise proportionally to score. Candidates
/// must be non-empty.
[[nodiscard]] inline std::size_t pick_candidate(
    std::span<const Candidate> candidates, const SelectionWeights& w,
    util::Rng& rng) {
  if (w.explore > 0.0 && rng.chance(w.explore)) {
    return static_cast<std::size_t>(rng.below(candidates.size()));
  }
  thread_local std::vector<double> scores;
  scores.clear();
  scores.reserve(candidates.size());
  for (const auto& c : candidates) scores.push_back(selection_score(c, w));
  return rng.weighted_pick(scores);
}

}  // namespace peerscope::p2p
