// Application profiles: the behavioural knobs that stand in for the
// three proprietary P2P-TV clients.
//
// The paper treats PPLive, SopCast and TVAnts as black boxes and infers
// their behaviour from traffic. Here the behaviours are *planted*
// (ground truth), so the black-box pipeline can be validated: it must
// recover exactly the biases encoded below. Factory functions encode
// the per-system knobs the paper's findings imply; every number is a
// tunable, not a constant of nature — bench_ablation_selection sweeps
// them.
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace peerscope::p2p {

/// Video stream parameters. All three systems streamed the same
/// CCTV-1 channel at a nominal 384 kb/s (paper §II).
struct StreamModel {
  std::int64_t stream_bps = 384'000;
  std::int32_t chunk_bytes = 16'000;   // ~1/3 s of video per chunk
  std::int32_t packet_bytes = 1'250;   // paper's reference packet size

  [[nodiscard]] util::SimTime chunk_interval() const {
    return util::transmission_time(chunk_bytes, stream_bps);
  }
  [[nodiscard]] int packets_per_chunk() const {
    return (chunk_bytes + packet_bytes - 1) / packet_bytes;
  }
};

/// How a peer scores a candidate supplier when choosing whom to
/// download a chunk from, and whom to admit as a partner.
/// score = random + bandwidth * belief/20Mbps + same_as + same_cc.
struct SelectionWeights {
  double random = 0.05;     // score floor (every candidate > 0)
  double bandwidth = 1.0;   // weight on the throughput belief
  double same_as = 0.0;     // additive bonus for same Autonomous System
  double same_cc = 0.0;     // additive bonus for same country
  double low_rtt = 0.0;     // proximity bonus (next-gen designs only)
  /// Probability that a chunk request ignores scores entirely and
  /// probes a uniformly-random holder — the slow-start trial every
  /// real client gives new partners. Keeps the contributor set churning
  /// without moving much volume.
  double explore = 0.07;
};

/// Control-plane traffic model.
struct SignalingModel {
  double contact_rate_per_s = 2.0;   // new peers contacted per second
  /// Fraction of discovery contacts found through peer exchange
  /// (asking a partner for *its* partners) rather than the tracker.
  /// PEX makes stable, well-connected peers — the probe clouds above
  /// all — spread preferentially through the swarm.
  double pex_fraction = 0.4;
  int handshake_packets = 2;         // packets each way on first contact
  double keepalive_per_s = 1.0;      // buffer-map rate per active partner
  std::int32_t keepalive_bytes = 200;
  std::int32_t request_bytes = 120;
  std::int32_t handshake_bytes = 120;
};

/// Chunk scheduler parameters.
struct ScheduleModel {
  util::SimTime period = util::SimTime::millis(300);
  int window_chunks = 12;       // how far back from the source edge to pull
  int safety_chunks = 2;        // freshest chunks not yet requested
  /// Chunks younger than this (in chunk slots behind the edge) are
  /// requested opportunistically with probability `eager_prob` per
  /// tick; older chunks are requested urgently. Early requests hit the
  /// thin set of near-edge holders (probe cascade); late requests see
  /// many holders and let the score biases act.
  int due_chunks = 6;
  double eager_prob = 0.35;
  int max_inflight = 8;
  util::SimTime request_timeout = util::SimTime::seconds(3);
  int partner_target = 30;      // active download partners
  util::SimTime maintenance_period = util::SimTime::seconds(4);
  double drop_fraction = 0.20;  // worst partners dropped per maintenance
  /// Additionally drop this many random partners per round: the remote
  /// side churns too, good partners included.
  int random_drops = 1;
};

/// Upload side: background-peer demand for the probe's upload capacity.
struct UploadModel {
  double requester_arrival_per_s = 0.2;  // new downloader arrivals per probe
  double requester_lifetime_s = 60.0;    // mean attachment time
  int max_requesters = 16;               // concurrent downloader cap
  /// Requests are refused while uplink backlog exceeds this.
  util::SimTime backlog_limit = util::SimTime::millis(400);
  /// Desired stream share pulled by a high-bandwidth requester,
  /// uniform in [hi_lo, hi_hi]; DSL requesters pull [lo_lo, lo_hi].
  /// Well-connected downloaders can pull above 1.0 (re-distribution).
  double share_hi_lo = 0.6, share_hi_hi = 1.6;
  double share_lo_lo = 0.1, share_lo_hi = 0.4;
};

/// Swarm composition (background population).
struct PopulationSpec {
  std::size_t background_peers = 2000;
  // Region mix (fractions of background peers; must sum to ~1).
  double cn_fraction = 0.72;
  double eu_fraction = 0.14;
  double row_fraction = 0.14;
  // High-bandwidth (>10 Mb/s uplink) share inside each region group.
  // P2P-TV's 2008 audience skewed heavily toward campus/fiber users —
  // the paper finds 83-86% of *contributors* are high-bandwidth.
  double cn_highbw = 0.50;
  double eu_highbw = 0.50;
  double row_highbw = 0.45;
  /// Fraction of European background peers homed in the *institution*
  /// ASes of Table I (students on campus nets — the non-NAPA same-AS
  /// peer pool the AS preference statistics need).
  double inst_as_fraction = 0.25;
  // Chunk availability lag of background peers relative to the source:
  // lag = floor + lognormal(mu, sigma) * class_scale. The floor keeps
  // probes (which pull within `safety_chunks` of the live edge) ahead
  // of the bulk of the swarm, so fresh chunks cascade probe-to-probe —
  // the NAPA-cloud effect of Table III. High-bandwidth peers receive
  // the stream earlier than DSL peers (their own download is faster).
  double lag_floor_s = 0.6;
  double lag_mu = 1.25;     // exp(1.25) ~ 3.5 s median scale
  double lag_sigma = 0.8;   // heavy tail: a few near-edge peers, most far
  double highbw_lag_scale = 0.6;
  double lowbw_lag_scale = 1.3;
  /// Institution-AS (campus) viewers sit on NREN-grade paths and get
  /// the stream earlier still — they compete with the probe clouds at
  /// the live edge.
  double campus_lag_scale = 0.6;
  /// Background peers' playback offsets drift as their own suppliers
  /// change: each peer's lag is redrawn on this period (with a per-peer
  /// phase), so *which* peers sit near the live edge rotates over the
  /// experiment — that churn is what accumulates distinct contributors
  /// over an hour-long capture.
  double lag_epoch_s = 25.0;
  /// Added to every background peer's router depth: shifts the whole
  /// hop-count distribution. The three systems attracted measurably
  /// different audiences (the paper's HOP medians span 18-20).
  int depth_shift = 0;
};

/// One P2P-TV application, fully specified.
struct SystemProfile {
  std::string name;
  StreamModel stream;
  SelectionWeights select;
  SignalingModel signaling;
  ScheduleModel sched;
  UploadModel upload;
  PopulationSpec population;
  /// Probability that a discovery contact is drawn from the probe's
  /// own AS when such peers exist (gossip locality; TVAnts-style).
  double discovery_as_bias = 0.0;
  /// Whether the client discovers same-subnet peers immediately
  /// (PPLive's documented local peer discovery; the source of its
  /// outsized same-LAN download share in Table IV's NET row).
  bool lan_discovery = false;
  /// Probability that a discovery contact targets one of the swarm's
  /// *stable* long-session peers (the testbed probes are the extreme
  /// case: hour-long sessions while the audience churns in minutes).
  /// Trackers and gossip caches overweight stable peers — see the
  /// "stable peers" line of work the paper cites ([8]).
  double discovery_stable_bias = 0.0;

  /// PPLive: huge contacted-peer population, aggressive upload usage,
  /// local (same-subnet) peer discovery; its AS byte-bias is emergent
  /// (bandwidth-following on a campus-rich same-AS supplier pool), not
  /// an explicit rule — see profile.cpp and DESIGN.md §7.
  [[nodiscard]] static SystemProfile pplive();
  /// SopCast: mid-size swarm, completely location-blind selection.
  [[nodiscard]] static SystemProfile sopcast();
  /// TVAnts: small swarm, AS-aware discovery *and* scheduling.
  [[nodiscard]] static SystemProfile tvants();
  /// PPLive tuned to a popular channel: denser European presence and
  /// stronger locality, used by the Figure 2 discussion.
  [[nodiscard]] static SystemProfile pplive_popular();
  /// The paper's concluding recommendation, made concrete: a
  /// next-generation client that adds explicit AS locality and RTT
  /// awareness on top of the bandwidth preference ("better localizing
  /// the traffic ... seeking shorter paths, exploiting topology
  /// knowledge"). Used by the examples/nextgen study.
  [[nodiscard]] static SystemProfile napawine_prototype();
};

}  // namespace peerscope::p2p
