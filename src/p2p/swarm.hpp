// The experiment swarm: probes running the full mesh-pull protocol,
// background peers as reactive capacity-constrained agents, and a
// per-probe capture sink — one object per (application, run).
//
// Hybrid fidelity (DESIGN.md §2): everything a probe's sniffer could
// observe is simulated at packet granularity (trains with physical
// inter-packet gaps, TTL decay, path asymmetry); background-to-
// background traffic, which no vantage point can see, is not generated
// at all.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "obs/timeseries.hpp"
#include "p2p/buffer.hpp"
#include "p2p/churn.hpp"
#include "p2p/discovery.hpp"
#include "p2p/population.hpp"
#include "p2p/profile.hpp"
#include "sim/engine.hpp"
#include "sim/impairment.hpp"
#include "sim/link.hpp"
#include "trace/sink.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace peerscope::obs {
struct RunProgress;
}  // namespace peerscope::obs

namespace peerscope::p2p {

struct SwarmConfig {
  SystemProfile profile;
  std::uint64_t seed = 1;
  util::SimTime duration = util::SimTime::seconds(300);
  /// Keep raw packet records in the sinks (needed for trace-file
  /// export and the offline analysis path; costs memory).
  bool keep_records = false;
  /// Per-packet loss probability applied to every video train
  /// (failure injection; 0 reproduces the paper's lossless-enough
  /// campus captures). Legacy flat-loss knob: equivalent to
  /// `impairment = sim::ImpairmentSpec::flat_loss(loss_rate)` but does
  /// NOT arm the recovery machinery, preserving the seed behaviour.
  double loss_rate = 0.0;
  /// Full per-link impairment model (bursty loss, capture reordering
  /// and duplication, transient outages). When enabled it supersedes
  /// `loss_rate` and arms the swarm's failure-recovery machinery.
  sim::ImpairmentSpec impairment;
  /// Peer churn and connection-failure injection.
  ChurnSpec churn;
  /// Pluggable discovery: backend selection, tracker outage injection,
  /// failover policy, NAT traversal, and session dynamics. Disabled by
  /// default — the legacy inline tracker path stays byte-identical.
  DiscoverySpec discovery;
  /// Cooperative cancellation: polled between simulation events (see
  /// sim::Engine::set_cancel); Swarm::run throws util::Cancelled when
  /// it trips. nullptr = uncancellable (the default fast path). The
  /// token must outlive the run.
  const util::CancelToken* cancel = nullptr;
  /// Time-series identity: the run key interval rows are recorded
  /// under when a TimeseriesRecorder is installed (obs::install_series).
  /// Empty falls back to the profile name.
  std::string series_key;
  /// Live progress sink for the status reporter / SLO watchdog (see
  /// obs/watchdog.hpp); nullptr (the default) publishes nothing. The
  /// sink must outlive the run.
  obs::RunProgress* progress = nullptr;
};

class Swarm {
 public:
  Swarm(const net::AsTopology& topo, std::span<const ProbeSpec> probes,
        SwarmConfig config);
  ~Swarm();

  /// Runs the experiment to `config.duration`. Call once.
  void run();

  [[nodiscard]] const Population& population() const { return population_; }
  [[nodiscard]] const SystemProfile& profile() const {
    return config_.profile;
  }
  [[nodiscard]] util::SimTime duration() const { return config_.duration; }

  [[nodiscard]] std::size_t probe_count() const { return probes_.size(); }
  [[nodiscard]] const trace::ProbeSink& sink(std::size_t probe_index) const {
    return *sinks_[probe_index];
  }

  /// Ground-truth counters for validation and reporting.
  struct Counters {
    std::uint64_t chunks_delivered = 0;  // to probes
    std::uint64_t chunks_duplicate = 0;
    std::uint64_t chunks_uploaded = 0;   // from probes
    std::uint64_t requests_refused = 0;  // uplink backlog refusals
    std::uint64_t contacts = 0;          // discovery handshakes
    std::uint64_t timeouts = 0;
    // --- fault-injection outcomes (all zero when faults disabled) ---
    std::uint64_t contact_failures = 0;  // NAT/FW/offline handshakes lost
    std::uint64_t probe_crashes = 0;
    std::uint64_t chunks_retried = 0;    // re-requested after a timeout
    std::uint64_t partners_blacklisted = 0;
    /// Discovery-subsystem outcomes (all zero when discovery disabled).
    DiscoveryCounters discovery;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Re-join SLO outcome when a discovery backend ran; all-zero
  /// otherwise. `rejoins_missed` > 0 with a configured deadline means
  /// the run degraded (exp::run_experiment turns that into a distinct
  /// failure status).
  struct DiscoveryReport {
    std::size_t rejoins_missed = 0;
    std::vector<double> rejoin_latencies_s;
  };
  [[nodiscard]] DiscoveryReport discovery_report() const;

 private:
  struct Partner {
    PeerId id = 0;
    double belief_mbps = 1.0;
    std::uint64_t bytes_delivered = 0;
    int inflight = 0;
    /// Consecutive request timeouts; reset on any completed chunk.
    int consecutive_failures = 0;
  };

  struct Requester {
    PeerId id = 0;
    double stream_share = 0.5;
    util::SimTime leaves{0};
  };

  /// Per-probe protocol state, laid out flat (DESIGN.md §14): the
  /// request-window maps of the first implementation (inflight, retry
  /// bookkeeping, blacklist) are small dense vectors scanned linearly —
  /// their population is bounded by the scheduling window, so a scan
  /// beats hashing and the per-event node allocations it came with.
  /// Membership in the (population-sized) known set is one bit per
  /// peer. `belief_cache` stays a hash map: its domain is the whole
  /// population but its occupancy is sparse, and it is only ever
  /// point-queried.
  struct ProbeState {
    PeerId id = 0;
    std::size_t index = 0;  // into probes_/sinks_
    std::vector<bool> known_bits;  // sized population; mirrors known_list
    std::vector<PeerId> known_list;
    std::vector<Partner> partners;
    std::unordered_map<PeerId, double> belief_cache;
    ChunkBuffer buffer{256};
    ChunkIndex next_request = 0;  // earliest chunk worth requesting
    struct Inflight {
      ChunkIndex chunk = 0;
      PeerId from = 0;
      util::SimTime deadline{0};
    };
    std::vector<Inflight> inflight;  // unique chunks, insertion order
    int active_requesters = 0;
    double discovery_credit = 0.0;
    bool bootstrapped = false;
    // --- fault-recovery state (inert unless faults are active) ---
    bool online = true;
    /// Incremented on every crash; scheduled tick chains capture the
    /// epoch at schedule time and die when it no longer matches, so a
    /// rejoin never double-ticks.
    std::uint64_t tick_epoch = 0;
    // Window-bounded: entries below the request window are GC'd every
    // tick, so linear scans stay O(window).
    std::vector<std::pair<ChunkIndex, int>> chunk_failures;
    std::vector<std::pair<ChunkIndex, util::SimTime>> retry_after;
    std::vector<std::pair<PeerId, util::SimTime>> blacklist_until;

    [[nodiscard]] bool inflight_contains(ChunkIndex chunk) const {
      for (const Inflight& f : inflight) {
        if (f.chunk == chunk) return true;
      }
      return false;
    }
    [[nodiscard]] bool blacklisted(PeerId peer) const {
      for (const auto& [banned, until] : blacklist_until) {
        if (banned == peer) return true;
      }
      return false;
    }
  };

  // --- protocol steps (each runs at engine-now) ---
  void bootstrap(ProbeState& ps);
  void tick(ProbeState& ps);                 // scheduler period
  void maintain_partners(ProbeState& ps);    // partner churn
  void run_discovery(ProbeState& ps);        // contact new peers
  void send_keepalives(ProbeState& ps);
  void schedule_requests(ProbeState& ps);
  void request_chunk(ProbeState& ps, Partner& partner, ChunkIndex chunk);
  void complete_chunk(ProbeState& ps, PeerId from, ChunkIndex chunk,
                      util::SimTime requested, double train_rate_mbps,
                      std::uint64_t bytes);
  void spawn_requester(ProbeState& ps);
  /// The accept half of spawn_requester (shared with flash-crowd
  /// arrivals, which inject sessions without rescheduling the process).
  void try_spawn_requester(ProbeState& ps);
  void requester_loop(ProbeState& ps, std::shared_ptr<Requester> req);

  // --- discovery subsystem (only called when a backend is active) ---
  /// One failover-aware join round; schedules the resulting contact
  /// batch after the backend's modeled latency, or a jittered retry.
  void discovery_join(ProbeState& ps);
  void discovery_join_landed(ProbeState& ps, std::span<const PeerId> peers);
  void schedule_join_retry(ProbeState& ps);
  /// Channel-zap flash crowd: every probe zaps and re-joins, and a
  /// burst of correlated requester arrivals hits the probes' uplinks.
  void flash_crowd();
  void zap_probe(ProbeState& ps);
  [[nodiscard]] double session_length_s(double mean_s, util::Rng& rng);

  // --- fault injection (only called when faults_active_) ---
  [[nodiscard]] bool peer_online(PeerId id, util::SimTime now) const;
  void on_request_failed(ProbeState& ps, ChunkIndex chunk, PeerId from);
  void crash_probe(std::size_t probe_index);
  void rejoin_probe(std::size_t probe_index);
  void schedule_probe_crash(std::size_t probe_index);
  [[nodiscard]] sim::GilbertElliott* channel_for(PeerId sender,
                                                PeerId receiver);

  // --- time-series sampling (engine grid hook; armed only when a
  // series recorder or progress sink is installed) ---
  void sample_interval(bool series_on, std::uint64_t index,
                       util::SimTime at);

  // --- helpers ---
  [[nodiscard]] ChunkIndex source_newest() const;
  [[nodiscard]] double bg_lag_s(PeerId id, util::SimTime now) const;
  [[nodiscard]] bool peer_has_chunk(PeerId id, ChunkIndex chunk) const;
  [[nodiscard]] PeerId sample_peer(const ProbeState& ps, double as_bias);
  /// Discovery handshake; false when it was refused (offline peer,
  /// NAT/firewall failure, blocked traversal).
  bool contact(ProbeState& ps, PeerId target);
  void note_known(ProbeState& ps, PeerId id);
  [[nodiscard]] double cached_belief(const ProbeState& ps, PeerId id) const;

  const net::AsTopology& topo_;
  SwarmConfig config_;
  Population population_;
  sim::Engine engine_;
  util::Rng rng_;
  /// Separate stream for churn event scheduling so enabling churn does
  /// not shift the protocol's own draws.
  util::Rng churn_rng_;
  /// Separate stream for discovery control-plane draws (DHT lookup
  /// targets, gossip sampling, zap pruning) for the same reason.
  util::Rng discovery_rng_;
  /// Effective per-train impairment: `config_.impairment` when enabled,
  /// otherwise the legacy flat-loss mapping of `config_.loss_rate`.
  sim::ImpairmentSpec impairment_;
  /// True when churn or the full impairment model is on; every piece of
  /// recovery machinery is gated on this so the default configuration
  /// stays bit-identical to the clean simulator.
  bool faults_active_ = false;
  /// Same contract for the discovery subsystem: false keeps every code
  /// path (and RNG draw) identical to the legacy inline tracker.
  bool discovery_active_ = false;
  /// NAT-traversal matrix armed (a subset of discovery_active_).
  bool nat_active_ = false;
  /// Gilbert–Elliott burst state per directed (sender, receiver) pair.
  std::unordered_map<std::uint64_t, sim::GilbertElliott> channels_;
  std::vector<sim::LinkCursor> up_;
  std::vector<sim::LinkCursor> down_;
  std::vector<std::unique_ptr<trace::ProbeSink>> sinks_;
  std::vector<ProbeState> probes_;
  /// Struct-of-arrays mirrors of the per-peer facts the inner loops
  /// touch (DESIGN.md §14): peer_has_chunk / peer_online test these
  /// for every candidate partner per scheduled chunk, and indexing a
  /// byte (or an int) beats dragging the full PeerInfo cache line in.
  enum PeerKind : std::uint8_t { kBackground = 0, kProbe = 1, kSource = 2 };
  std::vector<std::uint8_t> peer_kind_;
  std::vector<std::int32_t> probe_slot_;  // dense probe index, -1 = none
  std::vector<double> lag_scale_;
  /// Discovery backends + failover state machine; null unless a
  /// backend is configured. HostImpl adapts this swarm to the
  /// DiscoveryHost interface (defined in swarm.cpp).
  struct HostImpl;
  std::unique_ptr<HostImpl> discovery_host_;
  std::unique_ptr<DiscoveryService> discovery_;
  Counters counters_;
  /// Delta baselines for the sim-time sampling grid: the previous grid
  /// point's counters, plus the rejoin-latency samples already folded
  /// into per-interval histograms and the cumulative one whose p99
  /// feeds the watchdog.
  struct SampleState {
    Counters prev;
    DiscoveryCounters prev_discovery;
    std::uint64_t prev_events = 0;
    std::size_t rejoins_seen = 0;
    obs::LogHistogram rejoin_cumulative;
  };
  SampleState sample_;
  util::SimTime chunk_interval_{0};
  bool ran_ = false;
};

}  // namespace peerscope::p2p
