// Sliding chunk buffer of a fully-simulated (probe) peer.
//
// Live streaming: the window trails the source edge; chunks older than
// the retention window are evicted and can no longer be served. A
// missed chunk is lost playback quality, not a permanent re-request —
// exactly how mesh-pull P2P-TV clients behave.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

namespace peerscope::p2p {

using ChunkIndex = std::int64_t;

class ChunkBuffer {
 public:
  /// `retention` = number of trailing chunks kept servable.
  explicit ChunkBuffer(ChunkIndex retention) : retention_(retention) {
    if (retention <= 0) {
      throw std::invalid_argument("ChunkBuffer: retention must be positive");
    }
  }

  /// True if the chunk was received and is still retained.
  [[nodiscard]] bool has(ChunkIndex c) const {
    if (c < base_ || c >= base_ + static_cast<ChunkIndex>(have_.size())) {
      return false;
    }
    return have_[static_cast<std::size_t>(c - base_)];
  }

  /// Records receipt of chunk `c`; returns false if it was a duplicate
  /// or already evicted (too old to matter).
  bool mark(ChunkIndex c) {
    if (c < base_) return false;
    while (c >= base_ + static_cast<ChunkIndex>(have_.size())) {
      have_.push_back(false);
    }
    // Evict beyond the retention window.
    while (static_cast<ChunkIndex>(have_.size()) > retention_) {
      have_.pop_front();
      ++base_;
    }
    if (c < base_) return false;
    auto slot = static_cast<std::size_t>(c - base_);
    if (have_[slot]) return false;
    have_[slot] = true;
    if (c > newest_) newest_ = c;
    ++count_;
    return true;
  }

  /// Highest chunk ever marked; -1 when empty.
  [[nodiscard]] ChunkIndex newest() const { return newest_; }
  [[nodiscard]] std::uint64_t received_count() const { return count_; }
  [[nodiscard]] ChunkIndex window_base() const { return base_; }

 private:
  ChunkIndex retention_;
  ChunkIndex base_ = 0;
  ChunkIndex newest_ = -1;
  std::uint64_t count_ = 0;
  std::deque<bool> have_;
};

}  // namespace peerscope::p2p
