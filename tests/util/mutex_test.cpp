// util::Mutex / MutexLock / CondVar (util/mutex.hpp): the annotated
// wrapper must be a zero-cost veneer over the std primitives — same
// size and alignment as std::mutex, no extra state — and must behave
// correctly under real contention. The suite rides the test_util
// label into the tsan-concurrency preset, so the contended cases run
// under ThreadSanitizer in CI and any lock the wrapper failed to
// forward would surface as a data race there.

#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace peerscope::util {
namespace {

// ABI parity with the wrapped primitive: the wrapper adds only
// compile-time attributes, never bytes. A size change would also
// break layouts that embed a Mutex next to hot fields.
static_assert(sizeof(Mutex) == sizeof(std::mutex));
static_assert(alignof(Mutex) == alignof(std::mutex));

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.lock();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.lock();
  bool acquired = true;
  std::thread probe{[&] { acquired = mu.try_lock(); }};
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
}

TEST(MutexTest, ContendedCounterStaysExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  Mutex mu;
  long long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock{mu};
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotifyWithPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  long long observed = -1;
  std::thread waiter{[&] {
    mu.lock();
    while (!ready) cv.wait(mu);
    observed = 42;
    mu.unlock();
  }};
  {
    const MutexLock lock{mu};
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  constexpr int kWaiters = 4;
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      mu.lock();
      while (!go) cv.wait(mu);
      ++woke;
      mu.unlock();
    });
  }
  {
    const MutexLock lock{mu};
    go = true;
  }
  cv.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace peerscope::util
