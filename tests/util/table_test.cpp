#include "util/table.hpp"

#include <gtest/gtest.h>

namespace peerscope::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t{{"a", "b", "c"}};
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW((void)t.render());
}

TEST(TextTable, RejectsWideRows) {
  TextTable t{{"a"}};
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW((TextTable{{}}), std::invalid_argument);
}

TEST(TextTable, AlignmentLeftAndRight) {
  TextTable t{{"label", "n"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "100"});
  const std::string out = t.render();
  // Right-aligned numeric column: "  1" appears padded on the left.
  EXPECT_NE(out.find("  1 "), std::string::npos);
  // Left-aligned label column: "x" is followed by padding.
  EXPECT_NE(out.find("x     "), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t{{"a"}};
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + top + bottom + the explicit one = 4 separator lines.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(5.0, 0), "5");
  EXPECT_EQ(TextTable::num(-1.05, 1), "-1.1");
}

TEST(TextTable, CountInsertsSeparators) {
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(999), "999");
  EXPECT_EQ(TextTable::count(1000), "1,000");
  EXPECT_EQ(TextTable::count(140'000'000), "140,000,000");
  EXPECT_EQ(TextTable::count(1'234'567), "1,234,567");
}

TEST(TextTable, SetAlignValidatesColumn) {
  TextTable t{{"a", "b"}};
  EXPECT_NO_THROW(t.set_align(1, Align::kLeft));
  EXPECT_THROW(t.set_align(2, Align::kLeft), std::out_of_range);
}

}  // namespace
}  // namespace peerscope::util
