#include "util/framing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace peerscope::util::framing {
namespace {

constexpr FrameFormat kFmt{0x54534554 /* "TEST" */, 3, 4096};

std::vector<std::string> numbered_payloads(std::size_t n) {
  std::vector<std::string> payloads;
  payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    payloads.push_back("record-" + std::to_string(i));
  }
  return payloads;
}

TEST(Framing, RoundTripsEmptyAndMany) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{3}, std::size_t{1000}}) {
    const auto payloads = numbered_payloads(n);
    const std::string buf = encode_frames(kFmt, payloads);
    EXPECT_EQ(decode_frames(kFmt, buf, "test"), payloads) << n;
  }
}

TEST(Framing, RoundTripsBinaryPayloadsWithEmbeddedNulAndSyncMagic) {
  std::vector<std::string> payloads;
  payloads.push_back(std::string("\0\x01\x02", 3));
  payloads.push_back("SYNC");  // payload bytes must not fool the resync scan
  payloads.push_back({});      // zero-length record is legal
  const std::string buf = encode_frames(kFmt, payloads, 2);
  EXPECT_EQ(decode_frames(kFmt, buf, "test"), payloads);
}

TEST(Framing, EncodeRejectsOversizedPayload) {
  FrameFormat tight = kFmt;
  tight.max_record_len = 8;
  EXPECT_THROW((void)encode_frames(tight, {std::string(9, 'x')}),
               std::length_error);
}

TEST(Framing, StrictDecodeRejectsForeignMagicAndVersion) {
  const std::string buf = encode_frames(kFmt, numbered_payloads(2));
  FrameFormat wrong_magic = kFmt;
  wrong_magic.magic = 0x12345678;
  EXPECT_THROW((void)decode_frames(wrong_magic, buf, "test"),
               std::runtime_error);
  FrameFormat wrong_version = kFmt;
  wrong_version.version = 4;
  EXPECT_THROW((void)decode_frames(wrong_version, buf, "test"),
               std::runtime_error);
}

TEST(Framing, StrictDecodeRejectsFlippedPayloadByte) {
  std::string buf = encode_frames(kFmt, numbered_payloads(4));
  buf[buf.size() - 1] ^= 0x01;
  EXPECT_THROW((void)decode_frames(kFmt, buf, "test"), std::runtime_error);
}

TEST(Framing, StrictDecodeRejectsTruncationAndTrailingGarbage) {
  const std::string buf = encode_frames(kFmt, numbered_payloads(4));
  EXPECT_THROW(
      (void)decode_frames(kFmt, std::string_view{buf}.substr(0, 30), "test"),
      std::runtime_error);
  EXPECT_THROW((void)decode_frames(kFmt, buf + "tail", "test"),
               std::runtime_error);
}

TEST(Framing, SalvageRecoversCleanFileExactly) {
  const auto payloads = numbered_payloads(100);
  const std::string buf = encode_frames(kFmt, payloads, 16);
  FrameSalvageReport report;
  EXPECT_EQ(decode_frames_salvage(kFmt, buf, &report), payloads);
  EXPECT_TRUE(report.header_valid);
  EXPECT_EQ(report.records_recovered, 100u);
  EXPECT_EQ(report.records_dropped, 0u);
  EXPECT_EQ(report.bytes_discarded, 0u);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.note.empty());
}

TEST(Framing, SalvageResyncsAtMarkerAndAccountsEveryRecord) {
  const auto payloads = numbered_payloads(100);
  std::string buf = encode_frames(kFmt, payloads, 16);
  // Flip one byte inside the payload region after the header: the
  // damaged record poisons its 16-record group up to the next marker.
  buf[40] ^= 0xff;
  FrameSalvageReport report;
  const auto recovered = decode_frames_salvage(kFmt, buf, &report);
  EXPECT_TRUE(report.header_valid);
  EXPECT_GT(report.records_dropped, 0u);
  EXPECT_LE(report.records_dropped, 16u);
  EXPECT_EQ(report.records_recovered + report.records_dropped, 100u);
  EXPECT_GT(report.bytes_discarded, 0u);
  EXPECT_FALSE(report.note.empty());
  // Everything after the first resync marker survives verbatim.
  EXPECT_EQ(recovered.back(), payloads.back());
  for (const std::string& payload : recovered) {
    EXPECT_NE(std::find(payloads.begin(), payloads.end(), payload),
              payloads.end());
  }
}

TEST(Framing, SalvageWithoutMarkersDropsTheRestOfTheStream) {
  const auto payloads = numbered_payloads(10);
  std::string buf = encode_frames(kFmt, payloads, /*sync_interval=*/0);
  buf[30] ^= 0xff;  // inside an early record
  FrameSalvageReport report;
  const auto recovered = decode_frames_salvage(kFmt, buf, &report);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.records_recovered + report.records_dropped, 10u);
  EXPECT_EQ(recovered.size(), report.records_recovered);
}

TEST(Framing, SalvageTruncatedTailReconcilesAgainstDeclaredCount) {
  const std::string buf = encode_frames(kFmt, numbered_payloads(50), 16);
  FrameSalvageReport report;
  const auto recovered = decode_frames_salvage(
      kFmt, std::string_view{buf}.substr(0, buf.size() - 5), &report);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(recovered.size() + report.records_dropped, 50u);
}

TEST(Framing, SalvageBadHeaderRecoversNothing) {
  std::string buf = encode_frames(kFmt, numbered_payloads(5));
  buf[0] ^= 0xff;  // magic
  FrameSalvageReport report;
  EXPECT_TRUE(decode_frames_salvage(kFmt, buf, &report).empty());
  EXPECT_FALSE(report.header_valid);
  EXPECT_EQ(report.bytes_discarded, buf.size());
  EXPECT_FALSE(report.note.empty());
}

}  // namespace
}  // namespace peerscope::util::framing
