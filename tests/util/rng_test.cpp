#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace peerscope::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent{77};
  Rng child1 = parent.fork(5);
  // Forking does not consume parent state, and the same tag gives the
  // same child.
  Rng child2 = parent.fork(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkDifferentTagsDiverge) {
  Rng parent{77};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{9};
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{9};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng{4};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{5};
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{6};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{7};
  double sum = 0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng{8};
  const int n = 30'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{10};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{12};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.5, 1.0), 0.0);
  }
}

TEST(Rng, WeightedPickHonorsWeights) {
  Rng rng{13};
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedPickThrowsOnZeroTotal) {
  Rng rng{14};
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_pick(weights), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{15};
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng{16};
  const auto sample = rng.sample_without_replacement(5, 9);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<std::size_t>{0, 1, 2, 3, 4}));
}

// Property sweep: below() is unbiased enough that each residue of a
// small modulus appears with roughly equal frequency.
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, ResiduesRoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng{bound * 31 + 1};
  std::vector<int> counts(bound, 0);
  const int n = 12'000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(bound)];
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace peerscope::util
