#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace peerscope::util {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(SimTime::nanos(7).ns(), 7);
  EXPECT_EQ(SimTime::micros(3).ns(), 3'000);
  EXPECT_EQ(SimTime::millis(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(5).ns(), 5'000'000'000);
}

TEST(SimTime, UnitAccessors) {
  const SimTime t = SimTime::millis(1500);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.micros(), 1'500'000.0);
}

TEST(SimTime, FromSecondsRoundsToNearest) {
  EXPECT_EQ(SimTime::from_seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::from_seconds(0.5e-9).ns(), 1);   // rounds up
  EXPECT_EQ(SimTime::from_seconds(0.4e-9).ns(), 0);   // rounds down
  EXPECT_EQ(SimTime::from_seconds(-1.0).ns(), -1'000'000'000);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(2);
  const SimTime b = SimTime::millis(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  EXPECT_EQ((b * 4).ns(), 2'000'000'000);
  EXPECT_EQ((4 * b).ns(), 2'000'000'000);
  EXPECT_EQ(a / b, 4);
  EXPECT_EQ((a / 2).ns(), 1'000'000'000);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::seconds(1);
  t += SimTime::millis(250);
  EXPECT_EQ(t.ns(), 1'250'000'000);
  t -= SimTime::millis(250);
  EXPECT_EQ(t.ns(), 1'000'000'000);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1'000'000));
}

TEST(TransmissionTime, ExactReferenceValues) {
  // The paper's threshold case: 1250 bytes at 10 Mb/s is exactly 1 ms.
  EXPECT_EQ(transmission_time(1250, 10'000'000).ns(), 1'000'000);
  // 1250 bytes at 100 Mb/s is exactly 100 us.
  EXPECT_EQ(transmission_time(1250, 100'000'000).ns(), 100'000);
  // 1250 bytes at 384 kb/s (DSL uplink) ~ 26.04 ms.
  EXPECT_EQ(transmission_time(1250, 384'000).ns(), 26'041'667);
}

TEST(TransmissionTime, RoundsToNearestNanosecond) {
  // 1 byte at 3 b/s = 8/3 s = 2.666..s -> 2666666667 ns.
  EXPECT_EQ(transmission_time(1, 3).ns(), 2'666'666'667);
}

TEST(TransmissionTime, ScalesLinearlyInBytes) {
  const auto one = transmission_time(1250, 20'000'000);
  const auto ten = transmission_time(12'500, 20'000'000);
  EXPECT_EQ(ten.ns(), one.ns() * 10);
}

}  // namespace
}  // namespace peerscope::util
