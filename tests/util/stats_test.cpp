#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace peerscope::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.sum(), 42.0);
}

TEST(OnlineStats, KnownSeries) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the series is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng{3};
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.normal(5, 3));

  OnlineStats whole;
  for (const double v : values) whole.add(v);

  for (const std::size_t split : {0u, 1u, 100u, 250u, 499u, 500u}) {
    OnlineStats left, right;
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i < split ? left : right).add(values[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
  }
}

TEST(OnlineStats, MergeWithEmptyIsNoop) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(Percentile, Median) {
  const std::vector<double> odd{5, 1, 3};
  EXPECT_EQ(median(odd), 3.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_EQ(median(even), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0.0), 10.0);
  EXPECT_EQ(percentile(v, 1.0), 40.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.1), std::invalid_argument);
}

TEST(Percentile, DoesNotMutateInput) {
  const std::vector<double> v{3, 1, 2};
  (void)percentile(v, 0.5);
  EXPECT_EQ(v, (std::vector<double>{3, 1, 2}));
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(-100);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(100);    // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 4.0, 4};
  h.add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) / 10.0);  // uniform over [0, 10)
  }
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.quantile(0.1), 1.0, 0.5);
}

TEST(Histogram, Merge) {
  Histogram a{0.0, 10.0, 5};
  Histogram b{0.0, 10.0, 5};
  a.add(1.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(4), 1u);
}

TEST(Histogram, MergeShapeMismatchThrows) {
  Histogram a{0.0, 10.0, 5};
  Histogram b{0.0, 10.0, 6};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 5}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 5}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(Histogram, EmptyQuantileThrows) {
  Histogram h{0.0, 1.0, 2};
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(1.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Percentage, Basics) {
  EXPECT_DOUBLE_EQ(percentage(1, 3), 25.0);
  EXPECT_DOUBLE_EQ(percentage(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(percentage(5, 0), 100.0);
  EXPECT_DOUBLE_EQ(percentage(0, 0), 0.0);
}

}  // namespace
}  // namespace peerscope::util
