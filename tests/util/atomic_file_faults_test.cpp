// write_file_atomic under injected storage faults (satellite of the
// fault-injection layer): whatever fails — disk full, fsync, rename —
// the temp file is cleaned up and the destination is never partial:
// it either keeps its previous contents or does not exist.
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "util/io_faults.hpp"

namespace peerscope::util {
namespace {

class AtomicFileFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_atomic_faults_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    io::clear_faults();
    std::filesystem::remove_all(dir_);
  }

  std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// The invariant every test asserts: no `.tmp.` litter in the
  /// directory, and the destination — if it exists — holds exactly
  /// `expected`.
  void expect_intact(const std::filesystem::path& dest,
                     const std::string* expected) {
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                std::string::npos)
          << "leaked temp file: " << entry.path();
    }
    if (expected == nullptr) {
      EXPECT_FALSE(std::filesystem::exists(dest));
    } else {
      ASSERT_TRUE(std::filesystem::exists(dest));
      EXPECT_EQ(slurp(dest), *expected);
    }
  }

  std::filesystem::path dir_;
};

TEST_F(AtomicFileFaultsTest, EnospcLeavesNoDestinationAndNoTemp) {
  io::install_faults(io::FaultPlan::parse("enospc@100:out.bin"));
  const auto dest = dir_ / "out.bin";
  EXPECT_THROW(write_file_atomic(dest, std::string(4096, 'x')),
               std::runtime_error);
  expect_intact(dest, nullptr);
}

TEST_F(AtomicFileFaultsTest, EnospcPreservesThePreviousVersion) {
  const auto dest = dir_ / "out.bin";
  const std::string v1 = "version one\n";
  write_file_atomic(dest, v1);
  io::install_faults(io::FaultPlan::parse("enospc@8:out.bin"));
  EXPECT_THROW(write_file_atomic(dest, std::string(4096, 'y')),
               std::runtime_error);
  expect_intact(dest, &v1);
}

TEST_F(AtomicFileFaultsTest, FsyncFailureAbortsBeforeRename) {
  const auto dest = dir_ / "out.bin";
  const std::string v1 = "survives\n";
  write_file_atomic(dest, v1);
  io::install_faults(io::FaultPlan::parse("fsync-fail:out.bin"));
  EXPECT_THROW(write_file_atomic(dest, "replacement"),
               std::runtime_error);
  expect_intact(dest, &v1);
}

TEST_F(AtomicFileFaultsTest, RenameFailureCleansTheTemp) {
  const auto dest = dir_ / "out.bin";
  io::install_faults(io::FaultPlan::parse("rename-fail:out.bin"));
  EXPECT_THROW(write_file_atomic(dest, "never lands"),
               std::runtime_error);
  expect_intact(dest, nullptr);
}

TEST_F(AtomicFileFaultsTest, TransientFaultsAreAbsorbedSilently) {
  // EINTR storms and one-shot short writes are retryable: the write
  // completes and the destination is byte-exact.
  io::install_faults(
      io::FaultPlan::parse("eintr@4:out.bin,short-write@7:out.bin"));
  const auto dest = dir_ / "out.bin";
  const std::string payload(513, 'z');
  write_file_atomic(dest, payload);
  expect_intact(dest, &payload);
  const auto counters = io::fault_counters();
  EXPECT_EQ(counters.eintr_retries, 4u);
  EXPECT_EQ(counters.short_writes, 1u);
}

TEST_F(AtomicFileFaultsTest, NonDurableSkipsFsyncEntirely) {
  // With durable=false the armed fsync fault never matches a call, so
  // the write must succeed and the fault stays unspent.
  io::install_faults(io::FaultPlan::parse("fsync-fail:out.bin"));
  const auto dest = dir_ / "out.bin";
  write_file_atomic(dest, "quick", /*durable=*/false);
  const std::string expected = "quick";
  expect_intact(dest, &expected);
  EXPECT_EQ(io::fault_counters().fsync_failures, 0u);
}

TEST_F(AtomicFileFaultsTest, AppendSurvivesTransientsAndKeepsPrefix) {
  const auto dest = dir_ / "journal.log";
  append_line_durable(dest, "first");
  io::install_faults(io::FaultPlan::parse("eintr@2:journal.log"));
  append_line_durable(dest, "second");
  const std::string expected = "first\nsecond\n";
  expect_intact(dest, &expected);
}

}  // namespace
}  // namespace peerscope::util
