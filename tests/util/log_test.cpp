#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace peerscope::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string{message});
    });
    Log::set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, CapturesMessages) {
  Log::info("hello");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello");
}

TEST_F(LogTest, LevelFiltersLowerSeverities) {
  Log::set_level(LogLevel::kWarn);
  Log::debug("d");
  Log::info("i");
  Log::warn("w");
  Log::error("e");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LogTest, LevelAccessorRoundTrips) {
  Log::set_level(LogLevel::kError);
  EXPECT_EQ(Log::level(), LogLevel::kError);
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "debug");
  EXPECT_EQ(to_string(LogLevel::kInfo), "info");
  EXPECT_EQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_EQ(to_string(LogLevel::kError), "error");
}

}  // namespace
}  // namespace peerscope::util
