#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace peerscope::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool{1};
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 32; ++i) {
      // Futures deliberately dropped: teardown alone must run the
      // whole queue (drain semantics), not just the in-flight task.
      (void)pool.submit([&completed] { ++completed; });
    }
  }
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPool, TasksThrowingDuringTeardownAreContained) {
  std::atomic<int> started{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 16; ++i) {
      (void)pool.submit([&started]() {
        ++started;
        throw std::runtime_error("boom during drain");
      });
    }
    // Destructor begins with most tasks still queued; each exception
    // is swallowed by its abandoned future rather than terminating.
  }
  EXPECT_EQ(started.load(), 16);
}

TEST(ThreadPool, ShutdownTokenRequestedAtTeardown) {
  std::atomic<bool> observed_shutdown{false};
  {
    ThreadPool pool{1};
    EXPECT_FALSE(pool.shutdown_token().cancelled());
    (void)pool.submit([&pool, &observed_shutdown] {
      // Cooperative long-runner: spins until teardown requests the
      // shutdown token, which must happen before workers are joined —
      // otherwise this destructor would deadlock.
      while (!pool.shutdown_token().cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
      }
      observed_shutdown = true;
    });
  }
  EXPECT_TRUE(observed_shutdown.load());
}

TEST(ThreadPool, TasksReturningValuesKeepOrderPerFuture) {
  ThreadPool pool{3};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(pool, n, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool{2};
  bool called = false;
  parallel_for_chunked(pool, 0, [&called](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallCountRunsInline) {
  ThreadPool pool{4};
  std::vector<int> hits(10, 0);
  parallel_for_chunked(
      pool, hits.size(),
      [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      /*min_chunk=*/64);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelMapReduce, MatchesSerialSum) {
  ThreadPool pool{4};
  const std::size_t n = 5'000;
  const auto total = parallel_map_reduce<std::uint64_t>(
      pool, n, 0,
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t& acc, std::uint64_t v) { acc += v; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelMapReduce, IdenticalAcrossWorkerCounts) {
  const std::size_t n = 3'000;
  auto run = [n](std::size_t workers) {
    ThreadPool pool{workers};
    return parallel_map_reduce<double>(
        pool, n, 0.0,
        [](std::size_t i) { return static_cast<double>(i) * 0.5; },
        [](double& acc, double v) { acc += v; }, /*min_chunk=*/16);
  };
  // Chunk layout is fixed by worker count, so compare to serial total
  // with exact arithmetic expectations at small magnitudes.
  const double serial = run(1);
  EXPECT_DOUBLE_EQ(run(2), serial);
  EXPECT_DOUBLE_EQ(run(7), serial);
}

TEST(ParallelMapReduce, EmptyReturnsIdentity) {
  ThreadPool pool{2};
  const int result = parallel_map_reduce<int>(
      pool, 0, 41, [](std::size_t) { return 1; },
      [](int& acc, int v) { acc += v; });
  EXPECT_EQ(result, 41);
}

}  // namespace
}  // namespace peerscope::util
