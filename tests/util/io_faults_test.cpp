// Fault-schedule grammar and hook semantics for the storage
// fault-injection shim (util/io_faults.hpp). The shim is process
// state, so every test installs its own plan and the fixture clears
// it again — an escaped plan would corrupt unrelated suites.
#include "util/io_faults.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace peerscope::util::io {
namespace {

class IoFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_io_faults_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    clear_faults();
    std::filesystem::remove_all(dir_);
  }

  /// Writes `data` through the shim into a fresh file, retrying
  /// EINTR/short results the way every real caller does, and returns
  /// false on a hard error (leaving errno intact).
  bool shim_write(const std::filesystem::path& path,
                  const std::string& data) {
    const int fd =
        // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = write_some(fd, data.data() + done,
                                   data.size() - done, done, path);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return false;
      }
      done += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return true;
  }

  std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::filesystem::path dir_;
};

// --- grammar ----------------------------------------------------------

TEST_F(IoFaultsTest, ParsesEveryKind) {
  const auto plan = FaultPlan::parse(
      "short-read,short-write,eintr,enospc,fsync-fail,rename-fail,"
      "bitflip");
  ASSERT_EQ(plan.faults.size(), 7u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kShortRead);
  EXPECT_EQ(plan.faults[6].kind, FaultKind::kBitFlip);
}

TEST_F(IoFaultsTest, ParsesOffsetNthAndPathTags) {
  const auto plan = FaultPlan::parse("enospc@4096#3:journal.d/r7");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kEnospc);
  ASSERT_TRUE(plan.faults[0].offset.has_value());
  EXPECT_EQ(*plan.faults[0].offset, 4096u);
  EXPECT_EQ(plan.faults[0].nth, 3u);
  EXPECT_EQ(plan.faults[0].path_substr, "journal.d/r7");
}

TEST_F(IoFaultsTest, PathSubstrConsumesTheRestOfTheClause) {
  // Paths may contain @ and # — the ':' tag must not re-tokenise.
  const auto plan = FaultPlan::parse("bitflip:odd@name#1");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].path_substr, "odd@name#1");
  EXPECT_FALSE(plan.faults[0].offset.has_value());
}

TEST_F(IoFaultsTest, TrimsWhitespaceBetweenClauses) {
  const auto plan = FaultPlan::parse(" eintr@5 , short-write ");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kEintr);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kShortWrite);
}

TEST_F(IoFaultsTest, RejectsMalformedSchedules) {
  EXPECT_THROW((void)FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(" , "), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("enospc@12x"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("enospc@"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("short-write#0"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bitflip:"),
               std::invalid_argument);
}

// --- activation -------------------------------------------------------

TEST_F(IoFaultsTest, DisabledByDefaultAndAfterClear) {
  EXPECT_FALSE(faults_enabled());
  install_faults(FaultPlan::parse("short-write"));
  EXPECT_TRUE(faults_enabled());
  clear_faults();
  EXPECT_FALSE(faults_enabled());
  // Hooks revert to raw syscalls: a full write goes through.
  const auto path = dir_ / "clean.bin";
  EXPECT_TRUE(shim_write(path, "hello"));
  EXPECT_EQ(slurp(path), "hello");
}

// --- write-path faults ------------------------------------------------

TEST_F(IoFaultsTest, ShortWriteTruncatesOneCall) {
  install_faults(FaultPlan::parse("short-write@3"));
  const auto path = dir_ / "short.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  const ssize_t n = write_some(fd, "0123456789", 10, 0, path);
  EXPECT_EQ(n, 3);
  // The fault is spent; the retry completes.
  EXPECT_EQ(write_some(fd, "3456789", 7, 3, path), 7);
  ::close(fd);
  EXPECT_EQ(slurp(path), "0123456789");
  EXPECT_EQ(fault_counters().short_writes, 1u);
}

TEST_F(IoFaultsTest, EintrStormFailsTheConfiguredNumberOfCalls) {
  install_faults(FaultPlan::parse("eintr@3"));
  const auto path = dir_ / "eintr.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(write_some(fd, "x", 1, 0, path), -1);
    EXPECT_EQ(errno, EINTR);
  }
  EXPECT_EQ(write_some(fd, "x", 1, 0, path), 1);
  ::close(fd);
  EXPECT_EQ(fault_counters().eintr_retries, 3u);
}

TEST_F(IoFaultsTest, EnospcIsStickyPerPath) {
  install_faults(FaultPlan::parse("enospc@4:full.bin"));
  const auto path = dir_ / "full.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  // The write crossing byte 4 lands short...
  EXPECT_EQ(write_some(fd, "0123456789", 10, 0, path), 4);
  // ...and every retry at or past the limit fails forever.
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(write_some(fd, "456789", 6, 4, path), -1);
    EXPECT_EQ(errno, ENOSPC);
  }
  ::close(fd);
  // A different path is unaffected.
  const auto other = dir_ / "elsewhere.bin";
  EXPECT_TRUE(shim_write(other, "unaffected"));
  EXPECT_EQ(slurp(other), "unaffected");
  EXPECT_GE(fault_counters().enospc_failures, 3u);
}

TEST_F(IoFaultsTest, BitflipFlipsExactlyTheAddressedBit) {
  // Bit 17 = byte 2, bit 1: 'c' (0x63) becomes 'a' (0x61).
  install_faults(FaultPlan::parse("bitflip@17"));
  const auto path = dir_ / "flip.bin";
  EXPECT_TRUE(shim_write(path, "abcdef"));
  EXPECT_EQ(slurp(path), "abadef");
  EXPECT_EQ(fault_counters().bitflips, 1u);
}

TEST_F(IoFaultsTest, BitflipWaitsForTheWriteCoveringItsByte) {
  install_faults(FaultPlan::parse("bitflip@64"));  // byte 8
  const auto path = dir_ / "later.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_some(fd, "01234567", 8, 0, path), 8);  // bytes 0-7
  EXPECT_EQ(fault_counters().bitflips, 0u);
  EXPECT_EQ(write_some(fd, "89ab", 4, 8, path), 4);  // covers byte 8
  ::close(fd);
  EXPECT_EQ(fault_counters().bitflips, 1u);
  EXPECT_EQ(slurp(path), "01234567" + std::string{char('8' ^ 1)} + "9ab");
}

TEST_F(IoFaultsTest, UnseededOffsetsAreDeterministicPerSeed) {
  auto corrupt_with_seed = [&](std::uint64_t seed) {
    install_faults(FaultPlan::parse("bitflip", seed));
    const auto path = dir_ / ("seed_" + std::to_string(seed) + ".bin");
    EXPECT_TRUE(shim_write(path, std::string(256, 'A')));
    return slurp(path);
  };
  const auto a = corrupt_with_seed(7);
  const auto b = corrupt_with_seed(7);
  EXPECT_EQ(a, b);  // same seed, same corruption site
  EXPECT_NE(a, std::string(256, 'A'));
}

TEST_F(IoFaultsTest, NthDelaysTheFault) {
  install_faults(FaultPlan::parse("short-write@1#2"));
  const auto path = dir_ / "nth.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_some(fd, "aa", 2, 0, path), 2);  // first call: clean
  EXPECT_EQ(write_some(fd, "bb", 2, 2, path), 1);  // second: short
  ::close(fd);
}

TEST_F(IoFaultsTest, PathFilterScopesTheFault) {
  install_faults(FaultPlan::parse("short-write:target.bin"));
  const auto other = dir_ / "other.bin";
  const int fd = ::open(other.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_some(fd, "full", 4, 0, other), 4);
  ::close(fd);
  EXPECT_EQ(fault_counters().short_writes, 0u);
}

// --- fsync / rename ---------------------------------------------------

TEST_F(IoFaultsTest, FsyncFailReturnsEioOnce) {
  install_faults(FaultPlan::parse("fsync-fail"));
  const auto path = dir_ / "sync.bin";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(fsync_file(fd, path), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(fsync_file(fd, path), 0);  // spent
  ::close(fd);
  EXPECT_EQ(fault_counters().fsync_failures, 1u);
}

TEST_F(IoFaultsTest, RenameFailMatchesOnTheDestination) {
  install_faults(FaultPlan::parse("rename-fail:dest.bin"));
  const auto src = dir_ / "src.bin";
  EXPECT_TRUE(shim_write(src, "payload"));
  errno = 0;
  EXPECT_EQ(rename_file(src, dir_ / "dest.bin"), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_TRUE(std::filesystem::exists(src));  // nothing moved
  // A rename to a non-matching destination goes through.
  EXPECT_EQ(rename_file(src, dir_ / "elsewhere.bin"), 0);
  EXPECT_EQ(fault_counters().rename_failures, 1u);
}

// --- read path --------------------------------------------------------

TEST_F(IoFaultsTest, ReadFileSlurpsAndReturnsNulloptOnMissing) {
  const auto path = dir_ / "data.bin";
  const std::string payload{"exact\0bytes\n", 12};
  EXPECT_TRUE(shim_write(path, payload));
  const auto got = read_file(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(read_file(dir_ / "no_such_file").has_value());
}

TEST_F(IoFaultsTest, ShortReadTruncatesAtTheOffset) {
  const auto path = dir_ / "truncated.bin";
  EXPECT_TRUE(shim_write(path, "0123456789"));
  install_faults(FaultPlan::parse("short-read@4"));
  const auto got = read_file(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "0123");
  // Spent: the next read is whole.
  EXPECT_EQ(read_file(path)->size(), 10u);
  EXPECT_EQ(fault_counters().short_reads, 1u);
}

TEST_F(IoFaultsTest, ShortReadDefaultsToHalfTheFile) {
  const auto path = dir_ / "half.bin";
  EXPECT_TRUE(shim_write(path, "0123456789"));
  install_faults(FaultPlan::parse("short-read"));
  EXPECT_EQ(read_file(path)->size(), 5u);
}

TEST_F(IoFaultsTest, CountersAggregateAcrossFaults) {
  install_faults(FaultPlan::parse("short-write@1,fsync-fail"));
  const auto path = dir_ / "counted.bin";
  EXPECT_TRUE(shim_write(path, "abcdef"));
  const int fd = ::open(path.c_str(), O_RDONLY);  // peerscope-lint: allow(no-raw-artifact-io): exercising the shim on a raw fd
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fsync_file(fd, path), -1);
  ::close(fd);
  const auto counters = fault_counters();
  EXPECT_EQ(counters.injected, 2u);
  EXPECT_EQ(counters.short_writes, 1u);
  EXPECT_EQ(counters.fsync_failures, 1u);
}

}  // namespace
}  // namespace peerscope::util::io
