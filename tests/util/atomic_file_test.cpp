#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

namespace peerscope::util {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_atomic_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WritesExactBytes) {
  const auto path = dir_ / "out.bin";
  const std::string payload = std::string{"binary\0data\n"} +
                              std::string(3, '\xff');
  write_file_atomic(path, payload);
  EXPECT_EQ(slurp(path), payload);
}

TEST_F(AtomicFileTest, ReplacesExistingFileWholesale) {
  const auto path = dir_ / "out.txt";
  write_file_atomic(path, "a much longer first version of the file\n");
  write_file_atomic(path, "v2\n");
  EXPECT_EQ(slurp(path), "v2\n");
}

TEST_F(AtomicFileTest, LeavesNoTempFileBehind) {
  write_file_atomic(dir_ / "out.txt", "payload");
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "out.txt");
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFileTest, MissingParentDirectoryThrows) {
  EXPECT_THROW(
      write_file_atomic(dir_ / "no_such_subdir" / "out.txt", "payload"),
      std::runtime_error);
}

TEST_F(AtomicFileTest, NonDurableModeStillWrites) {
  const auto path = dir_ / "scratch.txt";
  write_file_atomic(path, "scratch", /*durable=*/false);
  EXPECT_EQ(slurp(path), "scratch");
}

TEST_F(AtomicFileTest, AppendLineCreatesFileAndAppends) {
  const auto path = dir_ / "journal.log";
  append_line_durable(path, "first");
  append_line_durable(path, "second");
  EXPECT_EQ(slurp(path), "first\nsecond\n");
}

TEST_F(AtomicFileTest, AppendLinePreservesExistingContent) {
  const auto path = dir_ / "journal.log";
  write_file_atomic(path, "header\n");
  append_line_durable(path, "entry");
  EXPECT_EQ(slurp(path), "header\nentry\n");
}

}  // namespace
}  // namespace peerscope::util
