#include "p2p/swarm.hpp"

#include <gtest/gtest.h>

#include <span>

namespace peerscope::p2p {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

// A small, fast profile: full protocol, tiny swarm.
SystemProfile tiny_profile() {
  SystemProfile p = SystemProfile::tvants();
  p.name = "Tiny";
  p.population.background_peers = 120;
  return p;
}

SwarmConfig tiny_config(std::uint64_t seed = 1,
                        SimTime duration = SimTime::seconds(30)) {
  SwarmConfig cfg;
  cfg.profile = tiny_profile();
  cfg.seed = seed;
  cfg.duration = duration;
  return cfg;
}

TEST(Swarm, RunsAndDeliversStream) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  EXPECT_GT(swarm.counters().chunks_delivered, 1000u);
  EXPECT_GT(swarm.counters().contacts, 100u);
}

TEST(Swarm, ProbesReceiveRoughlyStreamRate) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  // Every probe's RX should be in the vicinity of the 384 kb/s video
  // rate plus signaling (wide tolerance: short run, staggered joins).
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const double kbps =
        static_cast<double>(swarm.sink(i).flows().total_rx_bytes()) * 8.0 /
        swarm.duration().seconds() / 1e3;
    EXPECT_GT(kbps, 250.0) << "probe " << i;
    EXPECT_LT(kbps, 900.0) << "probe " << i;
  }
}

TEST(Swarm, DeterministicForSameSeed) {
  const auto probes = table1_probes();
  Swarm a{topo(), probes, tiny_config(7)};
  Swarm b{topo(), probes, tiny_config(7)};
  a.run();
  b.run();
  ASSERT_EQ(a.probe_count(), b.probe_count());
  EXPECT_EQ(a.counters().chunks_delivered, b.counters().chunks_delivered);
  EXPECT_EQ(a.counters().chunks_uploaded, b.counters().chunks_uploaded);
  for (std::size_t i = 0; i < a.probe_count(); ++i) {
    EXPECT_EQ(a.sink(i).flows().total_rx_bytes(),
              b.sink(i).flows().total_rx_bytes());
    EXPECT_EQ(a.sink(i).flows().total_tx_bytes(),
              b.sink(i).flows().total_tx_bytes());
    EXPECT_EQ(a.sink(i).flows().flow_count(), b.sink(i).flows().flow_count());
  }
}

TEST(Swarm, DifferentSeedsDiverge) {
  const auto probes = table1_probes();
  Swarm a{topo(), probes, tiny_config(7)};
  Swarm b{topo(), probes, tiny_config(8)};
  a.run();
  b.run();
  EXPECT_NE(a.sink(0).flows().total_rx_bytes(),
            b.sink(0).flows().total_rx_bytes());
}

TEST(Swarm, RunTwiceThrows) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  EXPECT_THROW(swarm.run(), std::logic_error);
}

TEST(Swarm, ProbesUploadToRequesters) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  EXPECT_GT(swarm.counters().chunks_uploaded, 100u);
  std::uint64_t tx_total = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    tx_total += swarm.sink(i).flows().total_tx_bytes();
  }
  EXPECT_GT(tx_total, 0u);
}

TEST(Swarm, ProbesExchangeWithEachOther) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  const auto& pop = swarm.population();
  std::uint64_t probe_to_probe_bytes = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    for (const auto& [remote, flow] : swarm.sink(i).flows().flows()) {
      if (pop.is_probe_addr(remote)) {
        probe_to_probe_bytes += flow.rx_video_bytes;
      }
    }
  }
  EXPECT_GT(probe_to_probe_bytes, 0u);
}

TEST(Swarm, KeepRecordsStoresRawPackets) {
  const auto probes = table1_probes();
  SwarmConfig cfg = tiny_config(3, SimTime::seconds(10));
  cfg.keep_records = true;
  Swarm swarm{topo(), probes, cfg};
  swarm.run();
  EXPECT_FALSE(swarm.sink(0).records().empty());
  // Raw records rebuild into the same flow table (offline == online).
  const auto rebuilt = trace::FlowTable::from_records(
      swarm.sink(0).probe(), swarm.sink(0).records());
  EXPECT_EQ(rebuilt.total_rx_bytes(), swarm.sink(0).flows().total_rx_bytes());
  EXPECT_EQ(rebuilt.flow_count(), swarm.sink(0).flows().flow_count());
}

TEST(Swarm, RecordsHaveValidTimestampsAndTtls) {
  const auto probes = table1_probes();
  SwarmConfig cfg = tiny_config(3, SimTime::seconds(10));
  cfg.keep_records = true;
  Swarm swarm{topo(), probes, cfg};
  swarm.run();
  for (const auto& record : swarm.sink(5).records()) {
    EXPECT_GE(record.ts, SimTime::zero());
    EXPECT_GE(record.ttl, 1);
    EXPECT_LE(record.ttl, sim::kInitialTtl);
    EXPECT_GT(record.bytes, 0);
  }
}

TEST(Swarm, NoTrafficBeyondDurationPlusDrain) {
  const auto probes = table1_probes();
  SwarmConfig cfg = tiny_config(4, SimTime::seconds(10));
  cfg.keep_records = true;
  Swarm swarm{topo(), probes, cfg};
  swarm.run();
  // Trains issued before the horizon may finish shortly after it, but
  // nothing should be stamped far beyond (a chunk takes < 2 s even on
  // slow links; delays < 0.5 s).
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    for (const auto& record : swarm.sink(i).records()) {
      EXPECT_LT(record.ts, cfg.duration + SimTime::seconds(30));
    }
  }
}

TEST(Swarm, DuplicateRateIsLow) {
  const auto probes = table1_probes();
  Swarm swarm{topo(), probes, tiny_config()};
  swarm.run();
  const auto& counters = swarm.counters();
  EXPECT_LT(counters.chunks_duplicate,
            counters.chunks_delivered / 10 + 10);
}

TEST(Swarm, SubsetOfProbesWorks) {
  const auto all = table1_probes();
  const std::span<const ProbeSpec> first_five{all.data(), 5};
  Swarm swarm{topo(), first_five, tiny_config(5, SimTime::seconds(15))};
  swarm.run();
  EXPECT_EQ(swarm.probe_count(), 5u);
  EXPECT_GT(swarm.counters().chunks_delivered, 50u);
}

TEST(Swarm, FirewalledProbeAttractsFewerRequesters) {
  // ENST 1-4 are firewalled LAN hosts; BME 1-4 are open LAN hosts.
  // Over the run, open probes should serve more upload.
  const auto probes = table1_probes();
  SwarmConfig cfg = tiny_config(11, SimTime::seconds(40));
  cfg.profile.upload.requester_arrival_per_s = 1.0;
  Swarm swarm{topo(), probes, cfg};
  swarm.run();

  auto tx_of_site = [&](const std::string& site) {
    std::uint64_t total = 0;
    int hosts = 0;
    const auto& specs = swarm.population().probe_specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].site == site &&
          specs[i].access.kind == net::AccessKind::kLan) {
        total += swarm.sink(i).flows().total_tx_bytes();
        ++hosts;
      }
    }
    return static_cast<double>(total) / hosts;
  };
  EXPECT_GT(tx_of_site("BME"), tx_of_site("ENST"));
}

}  // namespace
}  // namespace peerscope::p2p
