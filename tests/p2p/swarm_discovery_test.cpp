// Swarm-level discovery tests: the pluggable backends, tracker-outage
// failover, NAT traversal, flash crowds and heavy-tailed sessions must
// leave the swarm functional and deterministic, a default-constructed
// DiscoverySpec must stay bit-identical to the legacy inline tracker
// path, and a fallback-less outage with a re-join deadline must show
// up as missed re-joins (the degraded-run signal).
#include <gtest/gtest.h>

#include "p2p/swarm.hpp"

namespace peerscope::p2p {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

SwarmConfig base_config() {
  SwarmConfig cfg;
  cfg.profile = SystemProfile::tvants();
  cfg.profile.population.background_peers = 150;
  cfg.seed = 77;
  cfg.duration = SimTime::seconds(30);
  return cfg;
}

std::uint64_t total_rx(const Swarm& swarm) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    total += swarm.sink(i).flows().total_rx_bytes();
  }
  return total;
}

DiscoverySpec outage_spec(DiscoveryBackendKind fallback) {
  DiscoverySpec spec;
  spec.primary = DiscoveryBackendKind::kTracker;
  spec.fallback = fallback;
  spec.tracker_outage_start = SimTime::seconds(8);
  spec.tracker_outage_duration = SimTime::seconds(12);
  return spec;
}

TEST(SwarmDiscovery, DefaultSpecIsBitIdenticalToLegacy) {
  SwarmConfig plain = base_config();
  SwarmConfig with_defaults = base_config();
  with_defaults.discovery = DiscoverySpec{};
  Swarm a{topo(), table1_probes(), plain};
  Swarm b{topo(), table1_probes(), with_defaults};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
  EXPECT_EQ(a.counters().chunks_delivered, b.counters().chunks_delivered);
  EXPECT_EQ(a.counters().contacts, b.counters().contacts);
  EXPECT_FALSE(b.counters().discovery.any());
  EXPECT_EQ(b.discovery_report().rejoins_missed, 0u);
}

TEST(SwarmDiscovery, PermissiveNatMatrixIsBitIdenticalToLegacy) {
  // With every direct-traversal probability pinned to 1 the NAT gate
  // never draws from the protocol stream (open pairs and certain
  // successes consume nothing), so the run must not shift by a byte.
  SwarmConfig plain = base_config();
  SwarmConfig permissive = base_config();
  permissive.discovery.nat.enabled = true;
  permissive.discovery.nat.cone_cone = 1.0;
  permissive.discovery.nat.cone_symmetric = 1.0;
  permissive.discovery.nat.symmetric_symmetric = 1.0;
  Swarm a{topo(), table1_probes(), plain};
  Swarm b{topo(), table1_probes(), permissive};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
  EXPECT_EQ(a.counters().chunks_delivered, b.counters().chunks_delivered);
  EXPECT_EQ(b.counters().discovery.nat_relayed, 0u);
  EXPECT_EQ(b.counters().discovery.nat_blocked, 0u);
  EXPECT_GT(b.counters().discovery.nat_direct, 0u);
}

TEST(SwarmDiscovery, ExtractedTrackerKeepsProbesMeasuring) {
  SwarmConfig cfg = base_config();
  cfg.discovery.primary = DiscoveryBackendKind::kTracker;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().discovery.tracker_queries, 0u);
  EXPECT_GT(swarm.counters().discovery.joins_ok, 0u);
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    EXPECT_GT(swarm.sink(i).flows().total_rx_bytes(), 0u) << "probe " << i;
  }
}

TEST(SwarmDiscovery, TrackerOutageFailsOverToDht) {
  SwarmConfig cfg = base_config();
  cfg.discovery = outage_spec(DiscoveryBackendKind::kDht);
  cfg.discovery.rejoin_deadline = SimTime::seconds(30);
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  const auto& d = swarm.counters().discovery;
  EXPECT_GT(d.tracker_failures, 0u);
  EXPECT_GT(d.failovers, 0u);
  EXPECT_GT(d.dht_lookups, 0u);
  // Everyone re-joined inside the generous deadline.
  EXPECT_EQ(swarm.discovery_report().rejoins_missed, 0u);
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    EXPECT_GT(swarm.sink(i).flows().total_rx_bytes(), 0u) << "probe " << i;
  }
}

TEST(SwarmDiscovery, TrackerOutageFailsOverToGossip) {
  SwarmConfig cfg = base_config();
  cfg.discovery = outage_spec(DiscoveryBackendKind::kGossip);
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  const auto& d = swarm.counters().discovery;
  EXPECT_GT(d.failovers, 0u);
  EXPECT_GT(d.gossip_exchanges, 0u);
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    EXPECT_GT(swarm.sink(i).flows().total_rx_bytes(), 0u) << "probe " << i;
  }
}

TEST(SwarmDiscovery, NoFallbackOutageDegradesTheRun) {
  // Tracker dies for the rest of the run with nothing to fail over
  // to: join rounds keep failing, and with a deadline configured the
  // report must show missed re-joins — the signal exp::run_experiment
  // escalates into a distinct non-zero exit status.
  SwarmConfig cfg = base_config();
  cfg.discovery.primary = DiscoveryBackendKind::kTracker;
  cfg.discovery.tracker_outage_start = SimTime::seconds(5);
  cfg.discovery.tracker_outage_duration = SimTime::seconds(25);
  cfg.discovery.rejoin_deadline = SimTime::seconds(5);
  cfg.churn.probe_session_s = 6.0;  // crashes force re-join attempts
  cfg.churn.probe_downtime_s = 1.0;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().discovery.tracker_failures, 0u);
  EXPECT_GT(swarm.counters().discovery.join_retries, 0u);
  EXPECT_GT(swarm.discovery_report().rejoins_missed, 0u);
}

TEST(SwarmDiscovery, FlashCrowdAndHeavyTailKeepTheSwarmAlive) {
  SwarmConfig cfg = base_config();
  cfg.discovery.primary = DiscoveryBackendKind::kTracker;
  cfg.discovery.flash_crowd_at = SimTime::seconds(10);
  cfg.discovery.flash_crowd_arrivals = 40;
  cfg.discovery.zap_reuse = 0.5;
  cfg.discovery.session_tail_alpha = 1.5;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().discovery.flash_arrivals, 0u);
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    EXPECT_GT(swarm.sink(i).flows().total_rx_bytes(), 0u) << "probe " << i;
  }
}

TEST(SwarmDiscovery, OutageRunsAreDeterministicUnderFixedSeed) {
  SwarmConfig cfg = base_config();
  cfg.discovery = outage_spec(DiscoveryBackendKind::kDht);
  cfg.discovery.nat.enabled = true;
  Swarm a{topo(), table1_probes(), cfg};
  Swarm b{topo(), table1_probes(), cfg};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
  EXPECT_EQ(a.counters().discovery.failovers,
            b.counters().discovery.failovers);
  EXPECT_EQ(a.counters().discovery.dht_lookups,
            b.counters().discovery.dht_lookups);
  EXPECT_EQ(a.counters().discovery.nat_relayed,
            b.counters().discovery.nat_relayed);
  ASSERT_EQ(a.discovery_report().rejoin_latencies_s.size(),
            b.discovery_report().rejoin_latencies_s.size());
}

}  // namespace
}  // namespace peerscope::p2p
