#include "p2p/profile.hpp"

#include <gtest/gtest.h>

namespace peerscope::p2p {
namespace {

TEST(StreamModel, ChunkIntervalFromRate) {
  StreamModel stream;  // 16 kB chunks at 384 kb/s
  EXPECT_EQ(stream.chunk_interval().ns(), 333'333'333);
  EXPECT_EQ(stream.packets_per_chunk(), 13);  // ceil(16000 / 1250)
}

TEST(StreamModel, PacketsPerChunkCeils) {
  StreamModel stream;
  stream.chunk_bytes = 1250;
  EXPECT_EQ(stream.packets_per_chunk(), 1);
  stream.chunk_bytes = 1251;
  EXPECT_EQ(stream.packets_per_chunk(), 2);
}

TEST(Profiles, NamesAndStreamRate) {
  EXPECT_EQ(SystemProfile::pplive().name, "PPLive");
  EXPECT_EQ(SystemProfile::sopcast().name, "SopCast");
  EXPECT_EQ(SystemProfile::tvants().name, "TVAnts");
  EXPECT_EQ(SystemProfile::pplive_popular().name, "PPLive-Popular");
  // All systems stream the same nominal 384 kb/s channel (paper §II).
  for (const auto& p :
       {SystemProfile::pplive(), SystemProfile::sopcast(),
        SystemProfile::tvants()}) {
    EXPECT_EQ(p.stream.stream_bps, 384'000);
  }
}

TEST(Profiles, SwarmSizeOrderingMatchesPaper) {
  // Observed peers: PPLive >> SopCast >> TVAnts (181729 / 4057 / 550).
  EXPECT_GT(SystemProfile::pplive().population.background_peers,
            SystemProfile::sopcast().population.background_peers * 5);
  EXPECT_GT(SystemProfile::sopcast().population.background_peers,
            SystemProfile::tvants().population.background_peers * 2);
}

TEST(Profiles, ContactRateOrderingMatchesPaper) {
  // PPLive contacts far more peers than the others (23101 vs 776 / 229
  // per probe in Table II).
  EXPECT_GT(SystemProfile::pplive().signaling.contact_rate_per_s,
            SystemProfile::sopcast().signaling.contact_rate_per_s * 2);
  EXPECT_GT(SystemProfile::sopcast().signaling.contact_rate_per_s,
            SystemProfile::tvants().signaling.contact_rate_per_s);
}

TEST(Profiles, PlantedLocalityBiases) {
  // SopCast is location-blind. TVAnts is explicitly AS-aware in
  // discovery and scheduling. PPLive has no explicit AS rule either —
  // its AS byte-bias emerges from bandwidth-following on a swarm whose
  // same-AS (campus) peers are the best suppliers — but it does do
  // local (same-subnet) peer discovery, which the others do not.
  const auto sopcast = SystemProfile::sopcast();
  EXPECT_EQ(sopcast.select.same_as, 0.0);
  EXPECT_EQ(sopcast.discovery_as_bias, 0.0);
  EXPECT_FALSE(sopcast.lan_discovery);

  const auto tvants = SystemProfile::tvants();
  EXPECT_GT(tvants.select.same_as, 0.0);
  EXPECT_GT(tvants.discovery_as_bias, 0.0);
  EXPECT_FALSE(tvants.lan_discovery);

  const auto pplive = SystemProfile::pplive();
  EXPECT_EQ(pplive.select.same_as, 0.0);
  EXPECT_EQ(pplive.discovery_as_bias, 0.0);
  EXPECT_TRUE(pplive.lan_discovery);
  // The campus pool is pulled toward the live edge harder for PPLive
  // (the infrastructure-correlation mechanism).
  EXPECT_LT(pplive.population.campus_lag_scale,
            pplive.population.highbw_lag_scale);
}

TEST(Profiles, NoSystemUsesExplicitCountryBias) {
  // The paper concludes CC preference is induced by AS preference:
  // none of the planted policies may use the country directly.
  for (const auto& p :
       {SystemProfile::pplive(), SystemProfile::sopcast(),
        SystemProfile::tvants(), SystemProfile::pplive_popular()}) {
    EXPECT_EQ(p.select.same_cc, 0.0) << p.name;
  }
}

TEST(Profiles, AllSystemsPreferBandwidth) {
  for (const auto& p :
       {SystemProfile::pplive(), SystemProfile::sopcast(),
        SystemProfile::tvants()}) {
    EXPECT_GT(p.select.bandwidth, 0.0) << p.name;
    EXPECT_GT(p.select.random, 0.0) << p.name;
  }
}

TEST(Profiles, UploadAggressionOrdering) {
  // PPLive exploits probe upload hardest (TX 3384 kb/s vs ~300-460).
  const auto pplive = SystemProfile::pplive();
  const auto sopcast = SystemProfile::sopcast();
  EXPECT_GT(pplive.upload.requester_arrival_per_s *
                pplive.upload.requester_lifetime_s,
            3 * sopcast.upload.requester_arrival_per_s *
                sopcast.upload.requester_lifetime_s);
}

TEST(Profiles, PopulationFractionsSumToOne) {
  for (const auto& p :
       {SystemProfile::pplive(), SystemProfile::sopcast(),
        SystemProfile::tvants(), SystemProfile::pplive_popular()}) {
    const auto& pop = p.population;
    EXPECT_NEAR(pop.cn_fraction + pop.eu_fraction + pop.row_fraction, 1.0,
                1e-9)
        << p.name;
    EXPECT_GT(pop.cn_fraction, pop.eu_fraction) << p.name;  // Fig 1: CN
  }
}

TEST(Profiles, PopularVariantIsMoreEuropean) {
  const auto base = SystemProfile::pplive();
  const auto popular = SystemProfile::pplive_popular();
  EXPECT_GT(popular.population.eu_fraction, base.population.eu_fraction);
  EXPECT_GT(popular.population.background_peers,
            base.population.background_peers);
}

}  // namespace
}  // namespace peerscope::p2p
