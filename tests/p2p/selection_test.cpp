#include "p2p/selection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace peerscope::p2p {
namespace {

TEST(SelectionScore, RandomFloorAlwaysPresent) {
  SelectionWeights w;
  w.random = 0.5;
  w.bandwidth = 0.0;
  const Candidate c{1, 0.0, false, false};
  EXPECT_DOUBLE_EQ(selection_score(c, w), 0.5);
}

TEST(SelectionScore, BandwidthTermIsSqrtCompressed) {
  SelectionWeights w;
  w.random = 0.0;
  w.bandwidth = 1.0;
  const Candidate quarter{1, kBeliefCapMbps / 4.0, false, false};
  EXPECT_NEAR(selection_score(quarter, w), 0.5, 1e-12);
  const Candidate full{1, kBeliefCapMbps, false, false};
  EXPECT_NEAR(selection_score(full, w), 1.0, 1e-12);
}

TEST(SelectionScore, BeliefIsCapped) {
  SelectionWeights w;
  w.random = 0.0;
  const Candidate huge{1, 1000.0, false, false};
  EXPECT_NEAR(selection_score(huge, w), 1.0, 1e-12);
}

TEST(SelectionScore, LocalityBonusesAdd) {
  SelectionWeights w;
  w.random = 0.1;
  w.bandwidth = 0.0;
  w.same_as = 2.0;
  w.same_cc = 0.5;
  EXPECT_DOUBLE_EQ(selection_score({1, 0, true, false}, w), 2.1);
  EXPECT_DOUBLE_EQ(selection_score({1, 0, false, true}, w), 0.6);
  EXPECT_DOUBLE_EQ(selection_score({1, 0, true, true}, w), 2.6);
}

TEST(PickCandidate, HonorsScoreProportions) {
  SelectionWeights w;
  w.random = 0.0;
  w.bandwidth = 1.0;
  w.explore = 0.0;
  const std::vector<Candidate> candidates{
      {0, kBeliefCapMbps, false, false},        // score 1.0
      {1, kBeliefCapMbps / 4.0, false, false},  // score 0.5
  };
  util::Rng rng{17};
  int first = 0;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    if (pick_candidate(candidates, w, rng) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 2.0 / 3.0, 0.02);
}

TEST(PickCandidate, ExploreIsUniform) {
  SelectionWeights w;
  w.random = 0.0;
  w.bandwidth = 1.0;
  w.explore = 1.0;  // always explore
  const std::vector<Candidate> candidates{
      {0, kBeliefCapMbps, false, false},
      {1, 0.0, false, false},  // zero score, still picked half the time
  };
  util::Rng rng{18};
  int second = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (pick_candidate(candidates, w, rng) == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / n, 0.5, 0.02);
}

TEST(PickCandidate, SameAsBonusDominates) {
  SelectionWeights w;
  w.random = 0.05;
  w.bandwidth = 1.0;
  w.same_as = 10.0;
  w.explore = 0.0;
  const std::vector<Candidate> candidates{
      {0, kBeliefCapMbps, false, false},  // 1.05
      {1, kBeliefCapMbps, true, false},   // 11.05
  };
  util::Rng rng{19};
  int local = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (pick_candidate(candidates, w, rng) == 1) ++local;
  }
  EXPECT_NEAR(static_cast<double>(local) / n, 11.05 / 12.10, 0.02);
}

TEST(PickCandidate, SingleCandidateAlwaysPicked) {
  SelectionWeights w;
  const std::vector<Candidate> one{{7, 1.0, false, false}};
  util::Rng rng{20};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pick_candidate(one, w, rng), 0u);
  }
}

}  // namespace
}  // namespace peerscope::p2p
