#include "p2p/buffer.hpp"

#include <gtest/gtest.h>

namespace peerscope::p2p {
namespace {

TEST(ChunkBuffer, EmptyHasNothing) {
  ChunkBuffer buf{16};
  EXPECT_FALSE(buf.has(0));
  EXPECT_FALSE(buf.has(100));
  EXPECT_EQ(buf.newest(), -1);
  EXPECT_EQ(buf.received_count(), 0u);
}

TEST(ChunkBuffer, MarkAndQuery) {
  ChunkBuffer buf{16};
  EXPECT_TRUE(buf.mark(3));
  EXPECT_TRUE(buf.has(3));
  EXPECT_FALSE(buf.has(2));
  EXPECT_FALSE(buf.has(4));
  EXPECT_EQ(buf.newest(), 3);
  EXPECT_EQ(buf.received_count(), 1u);
}

TEST(ChunkBuffer, DuplicateMarkReturnsFalse) {
  ChunkBuffer buf{16};
  EXPECT_TRUE(buf.mark(5));
  EXPECT_FALSE(buf.mark(5));
  EXPECT_EQ(buf.received_count(), 1u);
}

TEST(ChunkBuffer, OutOfOrderMarks) {
  ChunkBuffer buf{16};
  EXPECT_TRUE(buf.mark(10));
  EXPECT_TRUE(buf.mark(7));
  EXPECT_TRUE(buf.mark(12));
  EXPECT_TRUE(buf.has(7));
  EXPECT_TRUE(buf.has(10));
  EXPECT_TRUE(buf.has(12));
  EXPECT_EQ(buf.newest(), 12);
}

TEST(ChunkBuffer, EvictsBeyondRetention) {
  ChunkBuffer buf{4};
  for (ChunkIndex c = 0; c < 10; ++c) buf.mark(c);
  // Only the trailing 4 slots remain servable.
  EXPECT_TRUE(buf.has(9));
  EXPECT_TRUE(buf.has(6));
  EXPECT_FALSE(buf.has(5));
  EXPECT_FALSE(buf.has(0));
  EXPECT_EQ(buf.newest(), 9);
  EXPECT_EQ(buf.received_count(), 10u);
}

TEST(ChunkBuffer, MarkingEvictedChunkFails) {
  ChunkBuffer buf{4};
  for (ChunkIndex c = 0; c < 10; ++c) buf.mark(c);
  EXPECT_FALSE(buf.mark(2));
  EXPECT_FALSE(buf.has(2));
}

TEST(ChunkBuffer, WindowBaseAdvances) {
  ChunkBuffer buf{4};
  buf.mark(0);
  EXPECT_EQ(buf.window_base(), 0);
  buf.mark(20);
  EXPECT_GT(buf.window_base(), 0);
  EXPECT_TRUE(buf.has(20));
}

TEST(ChunkBuffer, LargeJumpKeepsOnlyRecent) {
  ChunkBuffer buf{8};
  buf.mark(1);
  buf.mark(1'000'000);
  EXPECT_FALSE(buf.has(1));
  EXPECT_TRUE(buf.has(1'000'000));
}

TEST(ChunkBuffer, GapsStayMissing) {
  ChunkBuffer buf{16};
  buf.mark(1);
  buf.mark(3);
  EXPECT_FALSE(buf.has(2));
  EXPECT_TRUE(buf.mark(2));
  EXPECT_TRUE(buf.has(2));
}

TEST(ChunkBuffer, RejectsBadRetention) {
  EXPECT_THROW(ChunkBuffer{0}, std::invalid_argument);
  EXPECT_THROW(ChunkBuffer{-3}, std::invalid_argument);
}

// Property sweep over retention sizes: after marking [0, n), exactly
// the last min(n, retention) chunks are servable.
class BufferRetentionSweep : public ::testing::TestWithParam<ChunkIndex> {};

TEST_P(BufferRetentionSweep, TrailingWindowInvariant) {
  const ChunkIndex retention = GetParam();
  ChunkBuffer buf{retention};
  const ChunkIndex n = 100;
  for (ChunkIndex c = 0; c < n; ++c) buf.mark(c);
  for (ChunkIndex c = 0; c < n; ++c) {
    EXPECT_EQ(buf.has(c), c >= n - std::min(n, retention)) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Retentions, BufferRetentionSweep,
                         ::testing::Values(1, 2, 5, 16, 64, 99, 100, 500));

}  // namespace
}  // namespace peerscope::p2p
