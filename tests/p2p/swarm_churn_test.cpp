// Churn and fault-injection tests: crashes, flapping audiences,
// connection failures and bursty loss must leave the swarm functional
// (probes keep measuring) and deterministic (same seed, same outcome),
// while a default-constructed ChurnSpec stays bit-identical to the
// un-impaired simulator.
#include <gtest/gtest.h>

#include "exp/testbed.hpp"
#include "p2p/swarm.hpp"

namespace peerscope::p2p {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

SwarmConfig base_config() {
  SwarmConfig cfg;
  cfg.profile = SystemProfile::tvants();
  cfg.profile.population.background_peers = 150;
  cfg.seed = 77;
  cfg.duration = SimTime::seconds(30);
  return cfg;
}

std::uint64_t total_rx(const Swarm& swarm) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    total += swarm.sink(i).flows().total_rx_bytes();
  }
  return total;
}

TEST(SwarmChurn, DefaultSpecsAreBitIdenticalToLegacy) {
  SwarmConfig plain = base_config();
  SwarmConfig with_defaults = base_config();
  with_defaults.churn = ChurnSpec{};
  with_defaults.impairment = sim::ImpairmentSpec{};
  Swarm a{topo(), table1_probes(), plain};
  Swarm b{topo(), table1_probes(), with_defaults};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
  EXPECT_EQ(a.counters().chunks_delivered, b.counters().chunks_delivered);
  EXPECT_EQ(a.counters().probe_crashes, 0u);
  EXPECT_EQ(a.counters().chunks_retried, 0u);
  EXPECT_EQ(a.counters().contact_failures, 0u);
}

TEST(SwarmChurn, ProbeCrashesAndRecovers) {
  SwarmConfig cfg = base_config();
  cfg.churn.probe_session_s = 6.0;
  cfg.churn.probe_downtime_s = 1.0;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().probe_crashes, 0u);
  // Probes rejoin and keep measuring: every probe still received data.
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    EXPECT_GT(swarm.sink(i).flows().total_rx_bytes(), 0u) << "probe " << i;
  }
}

TEST(SwarmChurn, ChurnIsDeterministicUnderFixedSeed) {
  SwarmConfig cfg = base_config();
  cfg.churn.probe_session_s = 6.0;
  cfg.churn.bg_session_s = 20.0;
  Swarm a{topo(), table1_probes(), cfg};
  Swarm b{topo(), table1_probes(), cfg};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
  EXPECT_EQ(a.counters().probe_crashes, b.counters().probe_crashes);
  EXPECT_EQ(a.counters().chunks_retried, b.counters().chunks_retried);
  EXPECT_EQ(a.counters().timeouts, b.counters().timeouts);
}

TEST(SwarmChurn, FlappingAudienceStillDelivers) {
  SwarmConfig cfg = base_config();
  cfg.churn.bg_session_s = 15.0;
  cfg.churn.bg_downtime_s = 5.0;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().chunks_delivered, 0u);
  // Offline peers cost timeouts, which the retry machinery absorbs.
  EXPECT_GT(swarm.counters().chunks_delivered,
            swarm.counters().timeouts);
}

TEST(SwarmChurn, ConnectionFailuresAreCountedAndSurvivable) {
  SwarmConfig cfg = base_config();
  cfg.churn.nat_connect_failure = 0.5;
  cfg.churn.firewall_connect_failure = 0.5;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().contact_failures, 0u);
  EXPECT_GT(swarm.counters().chunks_delivered, 0u);
}

TEST(SwarmChurn, BurstyLossTriggersRetriesAndBlacklisting) {
  SwarmConfig cfg = base_config();
  cfg.duration = SimTime::seconds(20);
  cfg.impairment.loss_rate = 0.6;
  cfg.impairment.loss_burst = 10.0;
  cfg.churn.blacklist_after = 2;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().timeouts, 0u);
  EXPECT_GT(swarm.counters().chunks_retried, 0u);
  EXPECT_GT(swarm.counters().partners_blacklisted, 0u);
}

TEST(SwarmChurn, OutagesCauseTimeoutsButStreamSurvives) {
  SwarmConfig cfg = base_config();
  cfg.impairment.loss_rate = 0.01;
  cfg.impairment.outage_per_s = 0.2;  // one 200 ms outage per 5 s link
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  EXPECT_GT(swarm.counters().timeouts, 0u);
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const double kbps =
        static_cast<double>(swarm.sink(i).flows().total_rx_bytes()) * 8.0 /
        swarm.duration().seconds() / 1e3;
    EXPECT_GT(kbps, 150.0) << "probe " << i;
  }
}

TEST(SwarmChurn, EverythingAtOnceTerminatesAndMeasures) {
  // The harsh bench level in miniature: bursty loss, reordering,
  // duplication, outages, probe and audience churn, NAT failures.
  SwarmConfig cfg = base_config();
  cfg.impairment.loss_rate = 0.05;
  cfg.impairment.loss_burst = 4.0;
  cfg.impairment.reorder_rate = 0.01;
  cfg.impairment.duplicate_rate = 0.01;
  cfg.impairment.outage_per_s = 0.05;
  cfg.churn.probe_session_s = 10.0;
  cfg.churn.bg_session_s = 15.0;
  cfg.churn.nat_connect_failure = 0.3;
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();  // must not hang or throw
  EXPECT_GT(swarm.counters().chunks_delivered, 0u);
  EXPECT_GT(swarm.counters().probe_crashes, 0u);
  EXPECT_GT(total_rx(swarm), 0u);
}

}  // namespace
}  // namespace peerscope::p2p
