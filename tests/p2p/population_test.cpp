#include "p2p/population.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/prefix.hpp"

namespace peerscope::p2p {
namespace {

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

PopulationSpec small_spec() {
  PopulationSpec spec;
  spec.background_peers = 400;
  return spec;
}

TEST(Table1Probes, HostAndSiteCounts) {
  const auto probes = table1_probes();
  // The published table enumerates 46 hosts over 7 sites (see
  // EXPERIMENTS.md for the 44-vs-46 discrepancy note).
  EXPECT_EQ(probes.size(), 46u);
  std::set<std::string> sites;
  for (const auto& p : probes) sites.insert(p.site);
  EXPECT_EQ(sites.size(), 7u);
}

TEST(Table1Probes, AccessMixMatchesTable) {
  const auto probes = table1_probes();
  int lan = 0, dsl = 0, catv = 0, nat = 0, fw = 0;
  for (const auto& p : probes) {
    switch (p.access.kind) {
      case net::AccessKind::kLan: ++lan; break;
      case net::AccessKind::kDsl: ++dsl; break;
      case net::AccessKind::kCatv: ++catv; break;
    }
    if (p.access.nat) ++nat;
    if (p.access.firewall) ++fw;
  }
  EXPECT_EQ(lan, 39);
  EXPECT_EQ(dsl, 6);
  EXPECT_EQ(catv, 1);
  EXPECT_EQ(nat, 6);   // PoliTO 11-12, ENST 5, UniTN 6-8
  EXPECT_EQ(fw, 5);    // ENST 1-4, UniTN 8
}

TEST(Table1Probes, PolitoAndUnitnShareAs2) {
  const auto probes = table1_probes();
  std::set<std::uint32_t> polito_as, unitn_as;
  for (const auto& p : probes) {
    if (p.site == "PoliTO" && p.access.kind == net::AccessKind::kLan) {
      polito_as.insert(p.as.value());
    }
    if (p.site == "UniTN" && p.access.kind == net::AccessKind::kLan) {
      unitn_as.insert(p.as.value());
    }
  }
  EXPECT_EQ(polito_as, (std::set<std::uint32_t>{2}));
  EXPECT_EQ(unitn_as, (std::set<std::uint32_t>{2}));
}

TEST(Population, DeterministicForSameSeed) {
  const auto probes = table1_probes();
  const Population a = Population::build(topo(), small_spec(), probes, 7);
  const Population b = Population::build(topo(), small_spec(), probes, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<PeerId>(i);
    EXPECT_EQ(a.peer(id).ep.addr, b.peer(id).ep.addr);
    EXPECT_EQ(a.peer(id).access.up_bps, b.peer(id).access.up_bps);
    EXPECT_EQ(a.peer(id).lag_s, b.peer(id).lag_s);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  const auto probes = table1_probes();
  const Population a = Population::build(topo(), small_spec(), probes, 7);
  const Population b = Population::build(topo(), small_spec(), probes, 8);
  int differing = 0;
  for (std::size_t i = probes.size() + 1; i < a.size(); ++i) {
    const auto id = static_cast<PeerId>(i);
    if (a.peer(id).ep.as != b.peer(id).ep.as) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Population, SizeIsProbesPlusSourcePlusBackground) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 1);
  EXPECT_EQ(pop.size(), probes.size() + 1 + 400);
  EXPECT_EQ(pop.probe_ids().size(), probes.size());
  EXPECT_TRUE(pop.peer(pop.source()).is_source);
}

TEST(Population, ProbesOnSameLanShareSubnet) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 1);
  // BME hosts 1-4 (indices 0..3) share a /24; host 5 (home) does not.
  const auto& a = pop.peer(pop.probe_ids()[0]).ep.addr;
  const auto& b = pop.peer(pop.probe_ids()[3]).ep.addr;
  const auto& home = pop.peer(pop.probe_ids()[4]).ep.addr;
  EXPECT_TRUE(net::same_subnet24(a, b));
  EXPECT_FALSE(net::same_subnet24(a, home));
}

TEST(Population, PolitoAndUnitnLansDifferButShareAs) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 1);
  // PoliTO host 1 is probe index 5; UniTN host 1 is index 25.
  std::size_t polito = 0, unitn = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (probes[i].site == "PoliTO" && probes[i].host_number == 1) polito = i;
    if (probes[i].site == "UniTN" && probes[i].host_number == 1) unitn = i;
  }
  const auto& pa = pop.peer(pop.probe_ids()[polito]).ep;
  const auto& ua = pop.peer(pop.probe_ids()[unitn]).ep;
  EXPECT_EQ(pa.as, ua.as);
  EXPECT_FALSE(net::same_subnet24(pa.addr, ua.addr));
}

TEST(Population, AddressesAreUniqueAndResolvable) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 3);
  std::unordered_set<net::Ipv4Addr> seen;
  for (const auto& peer : pop.peers()) {
    EXPECT_TRUE(seen.insert(peer.ep.addr).second);
    EXPECT_EQ(pop.registry().as_of(peer.ep.addr), peer.ep.as);
    EXPECT_EQ(pop.registry().country_of(peer.ep.addr), peer.ep.country);
    const auto found = pop.find(peer.ep.addr);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, peer.id);
  }
}

TEST(Population, ProbeAddrSetMatchesProbes) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 3);
  EXPECT_EQ(pop.probe_addrs().size(), probes.size());
  for (const PeerId id : pop.probe_ids()) {
    EXPECT_TRUE(pop.is_probe_addr(pop.peer(id).ep.addr));
  }
  EXPECT_FALSE(pop.is_probe_addr(pop.peer(pop.source()).ep.addr));
}

TEST(Population, RegionMixApproximatesSpec) {
  const auto probes = table1_probes();
  PopulationSpec spec;
  spec.background_peers = 3000;
  const Population pop = Population::build(topo(), spec, probes, 5);
  int cn = 0, total = 0;
  for (const auto& peer : pop.peers()) {
    if (peer.is_probe || peer.is_source) continue;
    ++total;
    if (peer.ep.country == net::kChina) ++cn;
  }
  EXPECT_EQ(total, 3000);
  EXPECT_NEAR(static_cast<double>(cn) / total, spec.cn_fraction, 0.03);
}

TEST(Population, HighBandwidthMixApproximatesSpec) {
  const auto probes = table1_probes();
  PopulationSpec spec;
  spec.background_peers = 3000;
  spec.inst_as_fraction = 0.0;  // avoid the campus 0.85 override
  const Population pop = Population::build(topo(), spec, probes, 5);
  int hi = 0, cn = 0;
  for (const auto& peer : pop.peers()) {
    if (peer.is_probe || peer.is_source) continue;
    if (peer.ep.country != net::kChina) continue;
    ++cn;
    if (peer.access.is_high_bandwidth()) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / cn, spec.cn_highbw, 0.05);
}

TEST(Population, BackgroundLagsArePositive) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 6);
  for (const auto& peer : pop.peers()) {
    if (peer.is_probe || peer.is_source) continue;
    EXPECT_GT(peer.lag_s, 0.0);
  }
}

TEST(Population, PeersInAsIndexIsConsistent) {
  const auto probes = table1_probes();
  const Population pop = Population::build(topo(), small_spec(), probes, 6);
  std::size_t indexed = 0;
  for (const net::AsId as : topo().as_ids()) {
    for (const PeerId id : pop.peers_in_as(as)) {
      EXPECT_EQ(pop.peer(id).ep.as, as);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, pop.size());
  EXPECT_TRUE(pop.peers_in_as(net::AsId{59999}).empty());
}

TEST(Population, InstitutionAsesContainBackgroundPeers) {
  const auto probes = table1_probes();
  PopulationSpec spec;
  spec.background_peers = 2000;
  spec.inst_as_fraction = 0.5;
  const Population pop = Population::build(topo(), spec, probes, 9);
  int inst_bg = 0;
  for (const auto& peer : pop.peers()) {
    if (peer.is_probe || peer.is_source) continue;
    if (peer.ep.as.value() >= 1 && peer.ep.as.value() <= 6) ++inst_bg;
  }
  // ~ 2000 * eu_fraction * 0.5; just require a healthy pool (the
  // non-NAPA same-AS peers the AS statistics need).
  EXPECT_GT(inst_bg, 30);
}

}  // namespace
}  // namespace peerscope::p2p
