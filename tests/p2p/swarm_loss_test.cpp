// Failure injection: random packet loss must degrade volumes smoothly
// without breaking the measurement pipeline — the min-IPG classifier,
// in particular, is loss-robust by construction (a missing packet only
// widens a gap, never narrows it).
#include <gtest/gtest.h>

#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "exp/testbed.hpp"
#include "p2p/swarm.hpp"

namespace peerscope::p2p {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

SwarmConfig config_with_loss(double loss) {
  SwarmConfig cfg;
  cfg.profile = SystemProfile::tvants();
  cfg.profile.population.background_peers = 150;
  cfg.seed = 33;
  cfg.duration = SimTime::seconds(30);
  cfg.loss_rate = loss;
  return cfg;
}

std::uint64_t total_rx(const Swarm& swarm) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    total += swarm.sink(i).flows().total_rx_bytes();
  }
  return total;
}

TEST(SwarmLoss, ZeroLossIsDefaultBehaviour) {
  Swarm a{topo(), table1_probes(), config_with_loss(0.0)};
  SwarmConfig plain = config_with_loss(0.0);
  Swarm b{topo(), table1_probes(), plain};
  a.run();
  b.run();
  EXPECT_EQ(total_rx(a), total_rx(b));
}

TEST(SwarmLoss, LossReducesReceivedVolumeProportionally) {
  Swarm lossless{topo(), table1_probes(), config_with_loss(0.0)};
  Swarm lossy{topo(), table1_probes(), config_with_loss(0.10)};
  lossless.run();
  lossy.run();
  const auto clean = static_cast<double>(total_rx(lossless));
  const auto dropped = static_cast<double>(total_rx(lossy));
  // RX volume shrinks, but not catastrophically (retries + signaling
  // unaffected): expect roughly the loss rate's worth of missing video.
  EXPECT_LT(dropped, clean);
  EXPECT_GT(dropped, clean * 0.75);
}

TEST(SwarmLoss, StreamStillDeliversUnderLoss) {
  Swarm swarm{topo(), table1_probes(), config_with_loss(0.05)};
  swarm.run();
  // Probes keep receiving near the stream rate.
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const double kbps =
        static_cast<double>(swarm.sink(i).flows().total_rx_bytes()) * 8.0 /
        swarm.duration().seconds() / 1e3;
    EXPECT_GT(kbps, 200.0) << "probe " << i;
  }
}

TEST(SwarmLoss, BwClassificationSurvivesLoss) {
  // Losing packets widens gaps; it must never turn a low-bandwidth
  // path into a "high-bandwidth" classification or collapse the BW
  // preference.
  SwarmConfig cfg = config_with_loss(0.08);
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();
  aware::ExperimentObservations data;
  data.app = "lossy";
  data.duration = swarm.duration();
  const auto& pop = swarm.population();
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const auto& info = pop.peer(pop.probe_ids()[i]);
    data.probes.push_back({info.ep.addr, info.ep.as, info.ep.country,
                           info.access.is_high_bandwidth(), "p"});
    data.per_probe.push_back(aware::extract_observations(
        swarm.sink(i).flows(), pop.registry(), pop.probe_addrs()));
  }
  const auto rows = aware::awareness_table(data);
  ASSERT_TRUE(rows[0].download.b_prime_pct.has_value());
  EXPECT_GT(*rows[0].download.b_prime_pct, 85.0);
}

TEST(SwarmLoss, FullLossDeliversNothingButTerminates) {
  SwarmConfig cfg = config_with_loss(1.0);
  cfg.duration = SimTime::seconds(10);
  Swarm swarm{topo(), table1_probes(), cfg};
  swarm.run();  // must not hang or throw
  EXPECT_EQ(swarm.counters().chunks_delivered, 0u);
  EXPECT_GT(swarm.counters().timeouts, 0u);
}

}  // namespace
}  // namespace peerscope::p2p
