// Cross-sink conservation laws: when two probes exchange traffic, both
// vantage points record the same packets from opposite directions. Any
// double-count or dropped mirror in the swarm's emission paths breaks
// these identities — they pin the capture substrate end to end.
#include <gtest/gtest.h>

#include <map>

#include "p2p/swarm.hpp"

namespace peerscope::p2p {
namespace {

using util::SimTime;

class ConservationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static const net::AsTopology topo = net::make_reference_topology();
    SystemProfile profile = SystemProfile::tvants();
    profile.population.background_peers = 150;
    SwarmConfig config;
    config.profile = profile;
    config.seed = 21;
    config.duration = SimTime::seconds(40);
    swarm_ = new Swarm{topo, table1_probes(), config};
    swarm_->run();
  }
  static void TearDownTestSuite() {
    delete swarm_;
    swarm_ = nullptr;
  }
  static Swarm* swarm_;
};

Swarm* ConservationTest::swarm_ = nullptr;

TEST_F(ConservationTest, ProbePairVideoBytesMatchBothViews) {
  const auto& pop = swarm_->population();
  // For every ordered probe pair (i, j): video bytes i recorded as TX
  // toward j must equal video bytes j recorded as RX from i.
  std::size_t pairs_with_traffic = 0;
  for (std::size_t i = 0; i < swarm_->probe_count(); ++i) {
    const auto addr_i = pop.peer(pop.probe_ids()[i]).ep.addr;
    for (std::size_t j = 0; j < swarm_->probe_count(); ++j) {
      if (i == j) continue;
      const auto addr_j = pop.peer(pop.probe_ids()[j]).ep.addr;
      const auto* from_i = swarm_->sink(i).flows().find(addr_j);
      const auto* from_j = swarm_->sink(j).flows().find(addr_i);
      const std::uint64_t tx =
          from_i ? from_i->tx_video_bytes : 0;
      const std::uint64_t rx =
          from_j ? from_j->rx_video_bytes : 0;
      ASSERT_EQ(tx, rx) << "pair " << i << "->" << j;
      if (tx > 0) ++pairs_with_traffic;
    }
  }
  // TVAnts probes exchange heavily; the identity must be exercised.
  EXPECT_GT(pairs_with_traffic, 50u);
}

TEST_F(ConservationTest, ProbePairSignalingPacketsMatchBothViews) {
  const auto& pop = swarm_->population();
  for (std::size_t i = 0; i < swarm_->probe_count(); ++i) {
    const auto addr_i = pop.peer(pop.probe_ids()[i]).ep.addr;
    for (std::size_t j = i + 1; j < swarm_->probe_count(); ++j) {
      const auto addr_j = pop.peer(pop.probe_ids()[j]).ep.addr;
      const auto* at_i = swarm_->sink(i).flows().find(addr_j);
      const auto* at_j = swarm_->sink(j).flows().find(addr_i);
      const auto sig_tx_i =
          at_i ? at_i->tx_pkts - at_i->tx_video_pkts : 0;
      const auto sig_rx_j =
          at_j ? at_j->rx_pkts - at_j->rx_video_pkts : 0;
      EXPECT_EQ(sig_tx_i, sig_rx_j) << "pair " << i << "<->" << j;
    }
  }
}

TEST_F(ConservationTest, FlowExistenceIsSymmetricAmongProbes) {
  const auto& pop = swarm_->population();
  for (std::size_t i = 0; i < swarm_->probe_count(); ++i) {
    const auto addr_i = pop.peer(pop.probe_ids()[i]).ep.addr;
    for (std::size_t j = i + 1; j < swarm_->probe_count(); ++j) {
      const auto addr_j = pop.peer(pop.probe_ids()[j]).ep.addr;
      const bool i_sees_j =
          swarm_->sink(i).flows().find(addr_j) != nullptr;
      const bool j_sees_i =
          swarm_->sink(j).flows().find(addr_i) != nullptr;
      EXPECT_EQ(i_sees_j, j_sees_i);
    }
  }
}

TEST_F(ConservationTest, NoProbeRecordsTrafficWithItself) {
  const auto& pop = swarm_->population();
  for (std::size_t i = 0; i < swarm_->probe_count(); ++i) {
    const auto addr = pop.peer(pop.probe_ids()[i]).ep.addr;
    EXPECT_EQ(swarm_->sink(i).flows().find(addr), nullptr);
  }
}

TEST_F(ConservationTest, VideoByteTotalsAreChunkMultiples) {
  // Every video transfer is a whole chunk of 13 x 1250 B packets, so
  // per-flow video byte counts are multiples of the packet size.
  for (std::size_t i = 0; i < swarm_->probe_count(); ++i) {
    for (const auto& [remote, flow] : swarm_->sink(i).flows().flows()) {
      EXPECT_EQ(flow.rx_video_bytes % 1250, 0u);
      EXPECT_EQ(flow.tx_video_bytes % 1250, 0u);
      EXPECT_EQ(flow.rx_video_bytes, flow.rx_video_pkts * 1250);
    }
  }
}

}  // namespace
}  // namespace peerscope::p2p
