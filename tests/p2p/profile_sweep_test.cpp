// Cross-profile invariant sweep: every application profile — including
// the next-generation prototype — must drive a functioning swarm whose
// captures satisfy the structural invariants the analysis relies on.
#include <gtest/gtest.h>

#include "aware/observation.hpp"
#include "aware/partition.hpp"
#include "p2p/swarm.hpp"

namespace peerscope::p2p {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

class ProfileSweep : public ::testing::TestWithParam<const char*> {
 protected:
  static SystemProfile profile_for(const std::string& name) {
    if (name == "pplive") {
      auto p = SystemProfile::pplive();
      p.population.background_peers = 600;  // shrink for test speed
      return p;
    }
    if (name == "sopcast") {
      auto p = SystemProfile::sopcast();
      p.population.background_peers = 400;
      return p;
    }
    if (name == "napawine") {
      auto p = SystemProfile::napawine_prototype();
      p.population.background_peers = 400;
      return p;
    }
    auto p = SystemProfile::tvants();
    p.population.background_peers = 200;
    return p;
  }

  static const Swarm& swarm() {
    // One swarm per parameter, cached across the suite's tests.
    static std::map<std::string, std::unique_ptr<Swarm>> cache;
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string key = name.substr(name.rfind('/') + 1);
    auto& slot = cache[key];
    if (!slot) {
      SwarmConfig config;
      config.profile = profile_for(key);
      config.seed = 77;
      config.duration = SimTime::seconds(30);
      slot = std::make_unique<Swarm>(topo(), table1_probes(), config);
      slot->run();
    }
    return *slot;
  }
};

TEST_P(ProfileSweep, EveryProbeReceivesTheStream) {
  const Swarm& s = swarm();
  for (std::size_t i = 0; i < s.probe_count(); ++i) {
    const double kbps =
        static_cast<double>(s.sink(i).flows().total_rx_bytes()) * 8.0 /
        s.duration().seconds() / 1e3;
    EXPECT_GT(kbps, 200.0) << GetParam() << " probe " << i;
    EXPECT_LT(kbps, 1200.0) << GetParam() << " probe " << i;
  }
}

TEST_P(ProfileSweep, TtlsDecodeToPlausibleHops) {
  const Swarm& s = swarm();
  const auto& pop = s.population();
  for (std::size_t i = 0; i < s.probe_count(); ++i) {
    const auto obs = aware::extract_observations(
        s.sink(i).flows(), pop.registry(), pop.probe_addrs());
    for (const auto& o : obs) {
      if (o.rx_hops < 0) continue;
      EXPECT_GE(o.rx_hops, 0) << GetParam();
      EXPECT_LE(o.rx_hops, 45) << GetParam();
    }
  }
}

TEST_P(ProfileSweep, EveryRemoteResolvesInRegistry) {
  const Swarm& s = swarm();
  const auto& pop = s.population();
  for (std::size_t i = 0; i < s.probe_count(); ++i) {
    for (const auto& [remote, flow] : s.sink(i).flows().flows()) {
      EXPECT_TRUE(pop.registry().as_of(remote).known())
          << GetParam() << ' ' << remote.to_string();
      EXPECT_TRUE(pop.registry().country_of(remote).known());
    }
  }
}

TEST_P(ProfileSweep, MinIpgOnlyOnVideoFlows) {
  const Swarm& s = swarm();
  for (std::size_t i = 0; i < s.probe_count(); ++i) {
    for (const auto& [remote, flow] : s.sink(i).flows().flows()) {
      if (flow.has_min_ipg()) {
        EXPECT_GE(flow.rx_video_pkts, 2u) << GetParam();
        EXPECT_GT(flow.min_rx_video_ipg_ns, 0) << GetParam();
      }
    }
  }
}

TEST_P(ProfileSweep, ChunkAccountingConsistent) {
  const Swarm& s = swarm();
  const auto& counters = s.counters();
  EXPECT_GT(counters.chunks_delivered, 500u) << GetParam();
  EXPECT_GT(counters.contacts, 50u) << GetParam();
  // Duplicates stay a small fraction of deliveries.
  EXPECT_LT(counters.chunks_duplicate, counters.chunks_delivered / 5 + 10)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::Values("tvants", "sopcast", "pplive",
                                           "napawine"));

}  // namespace
}  // namespace peerscope::p2p
