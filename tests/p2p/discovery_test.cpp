// Unit tests for the pluggable discovery subsystem's building blocks:
// backend-kind parsing, DHT node ids and k-bucket routing tables,
// gossip membership views, the NAT-traversal matrix, and the
// DiscoveryService failover state machine driven through a stub host —
// no swarm, no event loop, just the control-plane logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "p2p/discovery.hpp"
#include "p2p/population.hpp"
#include "p2p/profile.hpp"

namespace peerscope::p2p {
namespace {

using util::Rng;
using util::SimTime;

// --------------------------------------------------------------------
// Backend kinds

TEST(DiscoveryKind, ParseAndPrintRoundTrip) {
  for (const auto kind :
       {DiscoveryBackendKind::kTracker, DiscoveryBackendKind::kDht,
        DiscoveryBackendKind::kGossip}) {
    const auto parsed = parse_backend_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(DiscoveryKind, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_backend_kind("").has_value());
  EXPECT_FALSE(parse_backend_kind("none").has_value());
  EXPECT_FALSE(parse_backend_kind("Tracker").has_value());
  EXPECT_FALSE(parse_backend_kind("multicast").has_value());
}

// --------------------------------------------------------------------
// DHT building blocks

TEST(DhtNodeId, DeterministicPerSeedAndPeer) {
  EXPECT_EQ(dht_node_id(42, 7), dht_node_id(42, 7));
  EXPECT_NE(dht_node_id(42, 7), dht_node_id(43, 7));
  EXPECT_NE(dht_node_id(42, 7), dht_node_id(42, 8));
}

TEST(RoutingTable, InsertDedupsAndEvictRemoves) {
  RoutingTable table{/*self=*/0, /*k=*/8};
  EXPECT_TRUE(table.insert(0x80000001u, 1));
  EXPECT_FALSE(table.insert(0x80000001u, 1));  // duplicate peer
  EXPECT_TRUE(table.contains(1));
  EXPECT_EQ(table.size(), 1u);
  table.evict(1);
  EXPECT_FALSE(table.contains(1));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, FullBucketDropsNewcomers) {
  // All ids with the top bit set share a zero-length prefix with
  // self=0, so they land in the same bucket; only k of them stick
  // (the classic stale-favouring Kademlia policy).
  constexpr int kK = 4;
  RoutingTable table{/*self=*/0, kK};
  for (PeerId peer = 1; peer <= 10; ++peer) {
    const NodeId id = 0x80000000u + peer;
    const bool inserted = table.insert(id, peer);
    EXPECT_EQ(inserted, peer <= kK) << "peer " << peer;
  }
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kK));
  // Eviction frees a slot for the next newcomer.
  table.evict(1);
  EXPECT_TRUE(table.insert(0x8000fffeu, 99));
}

TEST(RoutingTable, ClosestReturnsXorSortedNeighbours) {
  RoutingTable table{/*self=*/0, /*k=*/8};
  const NodeId ids[] = {0x10u, 0x20u, 0x80000000u, 0x11u, 0x7fffffffu};
  PeerId peer = 1;
  for (const NodeId id : ids) table.insert(id, peer++);

  const NodeId target = 0x10u;
  const auto got = table.closest(target, 3);
  ASSERT_EQ(got.size(), 3u);
  // Peer 1 holds id 0x10 (distance 0), peer 4 holds 0x11 (distance 1),
  // peer 2 holds 0x20 (distance 0x30).
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[1], 4u);
  EXPECT_EQ(got[2], 2u);
}

TEST(RoutingTable, SampleDrawsAMember) {
  RoutingTable table{/*self=*/0, /*k=*/8};
  Rng rng{7};
  EXPECT_FALSE(table.sample(rng).has_value());
  table.insert(0x123u, 5);
  table.insert(0x80000042u, 6);
  for (int i = 0; i < 16; ++i) {
    const auto picked = table.sample(rng);
    ASSERT_TRUE(picked.has_value());
    EXPECT_TRUE(*picked == 5u || *picked == 6u);
  }
}

// --------------------------------------------------------------------
// Gossip building blocks

TEST(GossipView, BoundedWithRandomReplacement) {
  GossipView view{/*capacity=*/8};
  Rng rng{3};
  EXPECT_TRUE(view.empty());
  for (PeerId peer = 0; peer < 20; ++peer) view.add(peer, rng);
  EXPECT_EQ(view.size(), 8u);
  EXPECT_FALSE(view.add(/*duplicate*/ 19, rng));
  EXPECT_EQ(view.size(), 8u);
}

TEST(GossipView, EraseRemovesAndSampleIsDistinct) {
  GossipView view{/*capacity=*/16};
  Rng rng{11};
  for (PeerId peer = 0; peer < 10; ++peer) view.add(peer, rng);
  view.erase(4);
  EXPECT_FALSE(view.contains(4));
  EXPECT_EQ(view.size(), 9u);

  const auto picked = view.sample(rng, 6);
  EXPECT_EQ(picked.size(), 6u);
  std::unordered_set<PeerId> distinct{picked.begin(), picked.end()};
  EXPECT_EQ(distinct.size(), picked.size());
  for (const PeerId peer : picked) EXPECT_TRUE(view.contains(peer));
}

// --------------------------------------------------------------------
// NAT matrix

PeerInfo natted_peer(PeerId id, bool nat) {
  PeerInfo peer;
  peer.id = id;
  peer.access.nat = nat;
  return peer;
}

TEST(NatMatrix, UnflaggedPeersAreOpen) {
  NatMatrix matrix;
  matrix.enabled = true;
  for (PeerId id = 0; id < 64; ++id) {
    EXPECT_EQ(classify_nat(matrix, natted_peer(id, false), 42),
              NatClass::kOpen);
  }
}

TEST(NatMatrix, SymmetricFractionPinsTheClassSplit) {
  NatMatrix all_sym;
  all_sym.enabled = true;
  all_sym.symmetric_fraction = 1.0;
  NatMatrix all_cone = all_sym;
  all_cone.symmetric_fraction = 0.0;
  for (PeerId id = 0; id < 64; ++id) {
    const PeerInfo peer = natted_peer(id, true);
    EXPECT_EQ(classify_nat(all_sym, peer, 42), NatClass::kSymmetric);
    EXPECT_EQ(classify_nat(all_cone, peer, 42), NatClass::kCone);
    // And a pure function of (seed, peer): same answer twice.
    EXPECT_EQ(classify_nat(all_sym, peer, 42),
              classify_nat(all_sym, peer, 42));
  }
}

TEST(NatMatrix, PinnedProbabilitiesForceTheOutcome) {
  NatMatrix matrix;
  matrix.enabled = true;
  Rng rng{5};

  // Direct always fails, relay always succeeds -> relayed every time.
  matrix.cone_cone = 0.0;
  matrix.relay_success = 1.0;
  for (int i = 0; i < 8; ++i) {
    const auto outcome =
        attempt_traversal(matrix, NatClass::kCone, NatClass::kCone, rng);
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.relayed);
  }

  // Both paths dead -> blocked every time.
  matrix.symmetric_symmetric = 0.0;
  matrix.relay_success = 0.0;
  for (int i = 0; i < 8; ++i) {
    const auto outcome = attempt_traversal(matrix, NatClass::kSymmetric,
                                           NatClass::kSymmetric, rng);
    EXPECT_FALSE(outcome.ok);
  }
}

TEST(NatMatrix, OpenPairsConsumeNoRandomness) {
  NatMatrix matrix;
  matrix.enabled = true;
  Rng rng{9};
  Rng untouched = rng;
  const auto outcome =
      attempt_traversal(matrix, NatClass::kOpen, NatClass::kOpen, rng);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.relayed);
  // The stream was not advanced: the byte-identity contract depends on
  // open handshakes drawing nothing.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

// --------------------------------------------------------------------
// DiscoveryService failover state machine, via a stub host

class StubHost final : public DiscoveryHost {
 public:
  explicit StubHost(const Population& pop) : pop_(pop) {}

  [[nodiscard]] const Population& population() const override { return pop_; }
  [[nodiscard]] bool peer_reachable(PeerId id, SimTime) const override {
    return !dead.contains(id);
  }
  [[nodiscard]] SimTime round_trip(PeerId, PeerId) const override {
    return SimTime::millis(20);
  }
  [[nodiscard]] PeerId tracker_sample(PeerId self) override {
    PeerId id = 0;
    do {
      id = static_cast<PeerId>(cursor_++ % pop_.size());
    } while (id == self || id == pop_.source());
    return id;
  }
  [[nodiscard]] std::span<const PeerId> known_peers(PeerId) const override {
    return known;
  }

  std::unordered_set<PeerId> dead;
  std::vector<PeerId> known;

 private:
  const Population& pop_;
  std::size_t cursor_ = 1;
};

const Population& small_population() {
  static const net::AsTopology topo = net::make_reference_topology();
  static const Population pop = [] {
    PopulationSpec spec = SystemProfile::tvants().population;
    spec.background_peers = 60;
    return Population::build(topo, spec, table1_probes(), 7);
  }();
  return pop;
}

DiscoverySpec failover_spec() {
  DiscoverySpec spec;
  spec.primary = DiscoveryBackendKind::kTracker;
  spec.fallback = DiscoveryBackendKind::kDht;
  spec.tracker_outage_start = SimTime::zero();
  spec.tracker_outage_duration = SimTime::seconds(100);
  spec.failover_after = 2;
  spec.primary_retry = SimTime::seconds(10);
  return spec;
}

TEST(DiscoveryService, TrackerAvailabilityTracksTheOutageWindow) {
  DiscoverySpec spec;
  spec.primary = DiscoveryBackendKind::kTracker;
  spec.tracker_outage_start = SimTime::seconds(10);
  spec.tracker_outage_duration = SimTime::seconds(10);
  const Population& pop = small_population();
  StubHost host{pop};
  DiscoveryService service{spec, host, 7};
  EXPECT_TRUE(service.tracker_available(SimTime::seconds(5)));
  EXPECT_FALSE(service.tracker_available(SimTime::seconds(10)));
  EXPECT_FALSE(service.tracker_available(SimTime::millis(19'999)));
  EXPECT_TRUE(service.tracker_available(SimTime::seconds(20)));
}

TEST(DiscoveryService, FailsOverAfterConsecutivePrimaryFailures) {
  const Population& pop = small_population();
  StubHost host{pop};
  DiscoveryService service{failover_spec(), host, 7};
  Rng rng{7};
  const PeerId self = pop.probe_ids()[0];

  service.begin_join(self, SimTime::zero());
  const auto first =
      service.join_round(self, 8, SimTime::seconds(1), rng);
  EXPECT_FALSE(first.ok);  // tracker down, one strike
  EXPECT_EQ(service.counters().failovers, 0u);
  EXPECT_EQ(service.counters().tracker_failures, 1u);

  const auto second =
      service.join_round(self, 8, SimTime::seconds(2), rng);
  EXPECT_TRUE(second.ok);  // second strike -> DHT answers immediately
  EXPECT_FALSE(second.peers.empty());
  EXPECT_EQ(service.counters().failovers, 1u);
  EXPECT_GT(service.counters().dht_lookups, 0u);

  service.finish_join(self, SimTime::seconds(3), true);
  ASSERT_EQ(service.rejoin_latencies().size(), 1u);
  EXPECT_EQ(service.rejoin_latencies()[0], SimTime::seconds(3));
}

TEST(DiscoveryService, RecoversOncePrimaryComesBack) {
  const Population& pop = small_population();
  StubHost host{pop};
  DiscoveryService service{failover_spec(), host, 7};
  Rng rng{7};
  const PeerId self = pop.probe_ids()[0];

  service.begin_join(self, SimTime::zero());
  (void)service.join_round(self, 8, SimTime::seconds(1), rng);
  (void)service.join_round(self, 8, SimTime::seconds(2), rng);
  ASSERT_EQ(service.counters().failovers, 1u);

  // Outage ends at t=100s; the next round past the primary-retry
  // cooldown probes the tracker, which now answers -> recovery.
  const auto recovered =
      service.join_round(self, 8, SimTime::seconds(200), rng);
  EXPECT_TRUE(recovered.ok);
  EXPECT_EQ(service.counters().recoveries, 1u);
  EXPECT_GT(service.counters().tracker_queries, 0u);
}

TEST(DiscoveryService, BackoffDoublesWithDeterministicJitter) {
  const Population& pop = small_population();
  StubHost host_a{pop};
  StubHost host_b{pop};
  DiscoverySpec spec = failover_spec();
  spec.join_backoff = SimTime::millis(500);
  spec.join_backoff_max = SimTime::seconds(8);
  DiscoveryService a{spec, host_a, 7};
  DiscoveryService b{spec, host_b, 7};
  const PeerId self = pop.probe_ids()[1];

  SimTime previous = SimTime::zero();
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const SimTime got = a.next_join_backoff(self);
    // Same (seed, peer, attempt) -> the identical delay, no stream.
    EXPECT_EQ(got, b.next_join_backoff(self)) << "attempt " << attempt;
    // Jitter stays inside the 75-125% band around the doubling ladder.
    const double ladder =
        std::min(0.5 * static_cast<double>(1 << (attempt - 1)), 8.0);
    EXPECT_GE(got.ns(), static_cast<std::int64_t>(0.75 * ladder * 1e9));
    EXPECT_LE(got.ns(), static_cast<std::int64_t>(1.25 * ladder * 1e9));
    // Strictly increasing while the ladder still doubles (0.75 * 2x
    // beats 1.25 * x); once capped at the max the jitter may invert.
    if (attempt >= 2 && attempt <= 5) {
      EXPECT_GT(got, previous) << "attempt " << attempt;
    }
    previous = got;
  }
  EXPECT_EQ(a.counters().join_retries, 8u);
}

TEST(DiscoveryService, RejoinsMissedCountsSlowAndOpenEpisodes) {
  const Population& pop = small_population();
  StubHost host{pop};
  DiscoverySpec spec;
  spec.primary = DiscoveryBackendKind::kTracker;
  DiscoveryService service{spec, host, 7};
  const auto probes = pop.probe_ids();

  service.begin_join(probes[0], SimTime::zero());
  service.finish_join(probes[0], SimTime::seconds(3), true);  // in budget
  service.begin_join(probes[1], SimTime::zero());
  service.finish_join(probes[1], SimTime::seconds(8), true);  // too slow
  service.begin_join(probes[2], SimTime::zero());             // never lands

  EXPECT_EQ(service.rejoins_missed(SimTime::seconds(5), SimTime::seconds(10)),
            2u);
  // No deadline -> nothing can be missed.
  EXPECT_EQ(service.rejoins_missed(SimTime::zero(), SimTime::seconds(10)),
            0u);
}

TEST(DiscoveryService, GossipHealsFromPartition) {
  const Population& pop = small_population();
  StubHost host{pop};
  DiscoverySpec spec;
  spec.primary = DiscoveryBackendKind::kGossip;
  spec.gossip.partition_after = 2;
  DiscoveryService service{spec, host, 7};
  Rng rng{13};
  const PeerId self = pop.probe_ids()[0];

  // Kill the whole audience: every exchange round finds only dead
  // peers, and after partition_after consecutive dead rounds the view
  // is declared partitioned and reseeded from the bootstrap set.
  for (const auto& peer : pop.peers()) {
    if (peer.id != self) host.dead.insert(peer.id);
  }
  for (int round = 0; round < 4; ++round) {
    (void)service.join_round(self, 8, SimTime::seconds(round + 1), rng);
  }
  EXPECT_GT(service.counters().gossip_partitions, 0u);

  // The audience comes back; gossip finds peers again.
  host.dead.clear();
  const auto healed = service.join_round(self, 8, SimTime::seconds(30), rng);
  EXPECT_TRUE(healed.ok);
  EXPECT_FALSE(healed.peers.empty());
}

}  // namespace
}  // namespace peerscope::p2p
