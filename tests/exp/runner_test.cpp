#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "aware/report.hpp"
#include "obs/metrics.hpp"

namespace peerscope::exp {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

RunSpec tiny_spec(std::uint64_t seed = 1) {
  RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 120;
  spec.seed = seed;
  spec.duration = SimTime::seconds(25);
  return spec;
}

TEST(Runner, ProducesObservationsForEveryProbe) {
  const RunResult result = run_experiment(topo(), tiny_spec());
  EXPECT_EQ(result.observations.app, "TVAnts");
  EXPECT_EQ(result.observations.probes.size(), 46u);
  EXPECT_EQ(result.observations.per_probe.size(), 46u);
  for (const auto& obs : result.observations.per_probe) {
    EXPECT_FALSE(obs.empty());
  }
  EXPECT_EQ(result.observations.duration, SimTime::seconds(25));
}

TEST(Runner, ProbeMetaReflectsTestbed) {
  const RunResult result = run_experiment(topo(), tiny_spec());
  const auto& probes = result.observations.probes;
  EXPECT_EQ(probes[0].label, "BME-1");
  EXPECT_TRUE(probes[0].high_bw);
  EXPECT_EQ(probes[0].as, net::refas::kAs1);
  EXPECT_EQ(probes[0].cc, net::kHungary);
  // BME-5 is the home DSL probe.
  EXPECT_EQ(probes[4].label, "BME-5");
  EXPECT_FALSE(probes[4].high_bw);
}

TEST(Runner, NapaFlagsConsistentWithProbeSet) {
  const RunResult result = run_experiment(topo(), tiny_spec());
  std::unordered_set<net::Ipv4Addr> probe_addrs;
  for (const auto& p : result.observations.probes) {
    probe_addrs.insert(p.addr);
  }
  for (const auto& per_probe : result.observations.per_probe) {
    for (const auto& obs : per_probe) {
      EXPECT_EQ(obs.remote_is_napa, probe_addrs.contains(obs.remote));
    }
  }
}

TEST(Runner, ParallelMatchesSerial) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  util::ThreadPool pool{2};
  const auto parallel = run_experiments(topo(), specs, pool);
  ASSERT_EQ(parallel.size(), 2u);

  const RunResult serial0 = run_experiment(topo(), specs[0]);
  const RunResult serial1 = run_experiment(topo(), specs[1]);

  EXPECT_EQ(parallel[0].counters.chunks_delivered,
            serial0.counters.chunks_delivered);
  EXPECT_EQ(parallel[1].counters.chunks_delivered,
            serial1.counters.chunks_delivered);

  const auto sum_rx = [](const RunResult& r) {
    std::uint64_t total = 0;
    for (const auto& per_probe : r.observations.per_probe) {
      for (const auto& obs : per_probe) total += obs.rx_bytes;
    }
    return total;
  };
  EXPECT_EQ(sum_rx(parallel[0]), sum_rx(serial0));
  EXPECT_EQ(sum_rx(parallel[1]), sum_rx(serial1));
}

TEST(Runner, PoolSizeOneAndFourAgreeOnShardedState) {
  // Four concurrent swarms — each owning its SoA peer state (slab
  // event pool, probe arrays, calendar queue) — against the same specs
  // run one-at-a-time. Identical results prove the shards share
  // nothing; under the TSan preset (which runs test_exp) this is also
  // the data-race check for the engine rework.
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2), tiny_spec(3),
                           tiny_spec(4)};
  util::ThreadPool serial_pool{1};
  util::ThreadPool wide_pool{4};
  const auto serial = run_experiments(topo(), specs, serial_pool);
  const auto wide = run_experiments(topo(), specs, wide_pool);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(wide.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(serial[i].counters.chunks_delivered,
              wide[i].counters.chunks_delivered);
    EXPECT_EQ(serial[i].counters.timeouts, wide[i].counters.timeouts);
    ASSERT_EQ(serial[i].observations.per_probe.size(),
              wide[i].observations.per_probe.size());
    for (std::size_t p = 0; p < serial[i].observations.per_probe.size();
         ++p) {
      EXPECT_EQ(serial[i].observations.per_probe[p].size(),
                wide[i].observations.per_probe[p].size());
    }
  }
}

TEST(Runner, InvalidDurationThrows) {
  RunSpec spec = tiny_spec();
  spec.duration = SimTime::zero();
  EXPECT_THROW((void)run_experiment(topo(), spec), std::invalid_argument);
}

TEST(Runner, PoisonedSpecDoesNotAbandonSiblings) {
  // Regression: run_experiments used to rethrow at the FIRST failing
  // future, leaving later specs running (or queued) with no way to
  // observe their completion. The poisoned spec sits first so the old
  // behavior would abandon the valid sibling mid-flight.
  RunSpec poison = tiny_spec(1);
  poison.duration = SimTime::zero();
  const RunSpec specs[] = {poison, tiny_spec(2)};

  obs::MetricsRegistry registry;
  obs::install(&registry);
  util::ThreadPool pool{2};
  EXPECT_THROW((void)run_experiments(topo(), specs, pool),
               std::invalid_argument);
  obs::install(nullptr);

  // All futures were drained before the rethrow, so the sibling's
  // swarm ran to completion and published its counters.
  const auto snapshot = registry.snapshot();
  const auto it = snapshot.counters.find("p2p.swarms_run");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 1u);
}

TEST(Runner, SummaryIsComputableFromResult) {
  const RunResult result = run_experiment(topo(), tiny_spec());
  const aware::ExperimentSummary summary =
      aware::summarize(result.observations);
  EXPECT_GT(summary.rx_kbps_mean, 100.0);
  EXPECT_GT(summary.all_peers_mean, 10.0);
  EXPECT_GT(summary.observed_total, 50u);
}

}  // namespace
}  // namespace peerscope::exp
