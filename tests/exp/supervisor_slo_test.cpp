// Supervisor-level SLO watchdog wiring and the §5.6 pool-size
// independence of the time-series sidecar: a sustained violation is
// terminal (no retry burn-down), dumps the flight recorder, and the
// series a batch records is byte-identical at any thread-pool width.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>

#include "exp/journal.hpp"
#include "exp/status.hpp"
#include "exp/supervisor.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_summary.hpp"
#include "util/cancel.hpp"

namespace peerscope::exp {
namespace {

using std::chrono::milliseconds;
using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

RunSpec tiny_spec(std::uint64_t seed = 1) {
  RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 120;
  spec.seed = seed;
  spec.duration = SimTime::seconds(25);
  return spec;
}

RunResult fake_result(std::uint64_t marker) {
  RunResult result;
  result.observations.app = "FakeApp";
  result.observations.duration = SimTime::seconds(1);
  result.counters.chunks_delivered = marker;
  return result;
}

/// run_fn stand-in that behaves like a starving swarm: it publishes
/// live progress far below any reasonable floor and honours the
/// cooperative cancel token, so only the watchdog can end it.
RunResult starving_run(const RunSpec& spec) {
  if (spec.progress != nullptr) {
    spec.progress->active.store(true, std::memory_order_release);
  }
  for (int i = 0; i < 4000; ++i) {
    if (spec.progress != nullptr) {
      spec.progress->events.fetch_add(10, std::memory_order_relaxed);
      spec.progress->sim_time_ns.fetch_add(1'000'000,
                                           std::memory_order_relaxed);
    }
    if (spec.cancel != nullptr && spec.cancel->cancelled()) {
      throw util::Cancelled("starving run cancelled");
    }
    std::this_thread::sleep_for(milliseconds{2});
  }
  throw std::runtime_error("watchdog never fired");
}

class SupervisorSloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_supervisor_slo_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(SupervisorSloTest, SustainedViolationIsTerminalDespiteRetries) {
  const RunSpec specs[] = {tiny_spec(1)};
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.retries = 3;  // must NOT be burned on an SLO trip
  config.slo.events_per_s_floor = 1e15;
  config.slo.poll = milliseconds{5};
  config.slo.sustain = 2;
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return starving_run(spec);
  };

  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);

  ASSERT_EQ(outcome.runs.size(), 1u);
  EXPECT_EQ(outcome.runs[0].state, RunState::kFailed);
  EXPECT_EQ(outcome.runs[0].attempts, 1);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(outcome.runs[0].error.rfind("slo violation: ", 0), 0u)
      << outcome.runs[0].error;
  EXPECT_NE(outcome.runs[0].error.find("below floor"), std::string::npos)
      << outcome.runs[0].error;
}

TEST_F(SupervisorSloTest, HealthyRunsPassUnderAnActiveWatchdog) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.slo.events_per_s_floor = 1.0;  // trivially satisfied
  config.slo.poll = milliseconds{5};
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    if (spec.progress != nullptr) {
      spec.progress->active.store(true, std::memory_order_release);
      spec.progress->events.store(1'000'000, std::memory_order_relaxed);
      spec.progress->sim_time_ns.store(SimTime::seconds(25).ns(),
                                       std::memory_order_relaxed);
    }
    return fake_result(spec.seed);
  };

  util::ThreadPool pool{2};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.runs[0].state, RunState::kOk);
  EXPECT_EQ(outcome.runs[1].state, RunState::kOk);
}

TEST_F(SupervisorSloTest, SloTripDumpsTheFlightRecorder) {
  const RunSpec specs[] = {tiny_spec(1)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.slo.events_per_s_floor = 1e15;
  config.slo.poll = milliseconds{5};
  config.slo.sustain = 2;
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    PEERSCOPE_TRACE_INSTANT("exp.run_attempt");
    return starving_run(spec);
  };

  obs::TraceRecorder recorder;
  obs::install_tracer(&recorder);
  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  const obs::TraceSnapshot timeline = recorder.snapshot();
  obs::install_tracer(nullptr);

  ASSERT_EQ(outcome.runs[0].state, RunState::kFailed);
  const auto flight = dir_ / "experiment.journal.d" /
                      spec_flight_name(spec_id(specs[0]));
  ASSERT_TRUE(std::filesystem::exists(flight));
  // The dump is the failing attempt's task-thread ring tail.
  const obs::TraceFile dump = obs::read_trace_file(flight);
  EXPECT_FALSE(dump.events.empty());
  bool dump_has_failure = false;
  for (const auto& event : dump.events) {
    if (event.name == "exp.run_failed") dump_has_failure = true;
  }
  EXPECT_TRUE(dump_has_failure);
  // The watchdog thread flushes its verdict on trip, so the batch
  // timeline records the violation even though that thread is gone.
  bool saw_violation = false;
  for (const auto& event : timeline.events) {
    if (event.name == "watchdog.slo_violation") saw_violation = true;
  }
  EXPECT_TRUE(saw_violation);
}

TEST_F(SupervisorSloTest, StatusPathPublishesTheBatchLifecycle) {
  const RunSpec specs[] = {tiny_spec(1)};
  SupervisorConfig config;
  config.status_path = dir_ / "status.json";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    return fake_result(spec.seed);
  };

  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  ASSERT_TRUE(outcome.complete());

  std::ifstream in{config.status_path, std::ios::binary};
  std::ostringstream doc;
  doc << in.rdbuf();
  const auto view = parse_status(doc.str());
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->phase, "done");
  ASSERT_EQ(view->runs.size(), 1u);
  EXPECT_EQ(view->runs[0].spec, spec_id(specs[0]));
  EXPECT_EQ(view->runs[0].state, to_string(RunState::kOk));
  EXPECT_EQ(view->runs[0].attempts, 1);
}

TEST_F(SupervisorSloTest, SeriesIsPoolSizeIndependent) {
  // §5.6 for the time-series sidecar: sampling rides each run's own
  // engine, keyed (run, interval), so a 1-thread and a 4-thread batch
  // record byte-identical series for the same specs.
  RunSpec specs[] = {tiny_spec(1), tiny_spec(2), tiny_spec(3)};
  for (RunSpec& spec : specs) spec.duration = SimTime::seconds(10);

  const auto record_with_pool = [&specs](std::size_t threads) {
    obs::TimeseriesRecorder recorder{SimTime::seconds(2)};
    obs::install_series(&recorder);
    util::ThreadPool pool{threads};
    const auto outcome = supervise_runs(topo(), specs, pool, {});
    obs::install_series(nullptr);
    EXPECT_TRUE(outcome.complete());
    return deterministic_series(recorder.snapshot());
  };

  const std::string serial = record_with_pool(1);
  const std::string wide = record_with_pool(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, wide);
  // Every spec contributed its intervals under its own key.
  for (const RunSpec& spec : specs) {
    EXPECT_NE(serial.find(spec_id(spec)), std::string::npos) << spec_id(spec);
  }
}

}  // namespace
}  // namespace peerscope::exp
