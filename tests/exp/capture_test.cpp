#include "exp/capture.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "exp/metadata.hpp"
#include "trace/io.hpp"

namespace peerscope::exp {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_capture_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ExperimentMetadata sample_meta() {
    ExperimentMetadata meta;
    meta.app = "TVAnts";
    meta.duration = util::SimTime::seconds(60);
    meta.probes.push_back({net::Ipv4Addr{20, 0, 0, 1}, net::AsId{2},
                           net::kItaly, true, "PoliTO-1"});
    meta.probes.push_back({net::Ipv4Addr{20, 1, 0, 3}, net::AsId{11},
                           net::kHungary, false, "BME-1"});
    meta.announcements.push_back({*net::Ipv4Prefix::parse("20.0.0.0/16"),
                                  net::AsId{2}, net::kItaly});
    meta.announcements.push_back({*net::Ipv4Prefix::parse("20.1.0.0/16"),
                                  net::AsId{11}, net::kHungary});
    return meta;
  }

  std::vector<trace::PacketRecord> sample_records() {
    std::vector<trace::PacketRecord> records;
    trace::PacketRecord r;
    r.ts = util::SimTime::millis(10);
    r.remote = net::Ipv4Addr{20, 1, 0, 3};
    r.bytes = 1200;
    r.dir = trace::Direction::kRx;
    r.kind = sim::PacketKind::kVideo;
    r.ttl = 60;
    records.push_back(r);
    r.ts = util::SimTime::millis(20);
    r.dir = trace::Direction::kTx;
    records.push_back(r);
    return records;
  }

  /// Writes a complete two-probe capture into dir_.
  void write_capture() {
    const auto meta = sample_meta();
    for (const auto& probe : meta.probes) {
      trace::write_trace(
          dir_ / ExperimentMetadata::trace_filename(probe.label),
          probe.addr, sample_records());
    }
    write_metadata(dir_ / "experiment.meta", meta);
  }

  std::filesystem::path dir_;
};

TEST_F(CaptureTest, LoadsCompleteCapture) {
  write_capture();
  const CaptureLoad load = load_capture(dir_, /*salvage=*/false);
  EXPECT_TRUE(load.clean());
  EXPECT_EQ(load.data.app, "TVAnts");
  ASSERT_EQ(load.data.per_probe.size(), 2u);
  EXPECT_FALSE(load.data.per_probe[0].empty());
}

TEST_F(CaptureTest, MissingDirectoryThrows) {
  EXPECT_THROW((void)load_capture(dir_ / "nope", false), CaptureError);
}

TEST_F(CaptureTest, PathThatIsAFileThrows) {
  const auto file = dir_ / "plain.txt";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(file) << "not a directory";
  EXPECT_THROW((void)load_capture(file, false), CaptureError);
}

TEST_F(CaptureTest, EmptyDirectoryThrowsWithDiagnostic) {
  try {
    (void)load_capture(dir_, false);
    FAIL() << "expected CaptureError";
  } catch (const CaptureError& error) {
    EXPECT_NE(std::string{error.what()}.find("empty"), std::string::npos);
  }
}

TEST_F(CaptureTest, NonCaptureDirectoryThrows) {
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir_ / "random.txt") << "hello";
  try {
    (void)load_capture(dir_, false);
    FAIL() << "expected CaptureError";
  } catch (const CaptureError& error) {
    EXPECT_NE(std::string{error.what()}.find("experiment.meta"),
              std::string::npos);
  }
}

TEST_F(CaptureTest, CorruptMetadataThrows) {
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir_ / "experiment.meta") << "garbage header\n";
  try {
    (void)load_capture(dir_, false);
    FAIL() << "expected CaptureError";
  } catch (const CaptureError& error) {
    EXPECT_NE(std::string{error.what()}.find("unreadable metadata"),
              std::string::npos);
  }
}

TEST_F(CaptureTest, MissingTraceThrowsAndSuggestsSalvage) {
  write_capture();
  std::filesystem::remove(dir_ /
                          ExperimentMetadata::trace_filename("BME-1"));
  try {
    (void)load_capture(dir_, false);
    FAIL() << "expected CaptureError";
  } catch (const CaptureError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("BME-1"), std::string::npos);
    EXPECT_NE(what.find("--salvage"), std::string::npos);
  }
}

TEST_F(CaptureTest, SalvageToleratesMissingTraceAndKeepsSlot) {
  write_capture();
  std::filesystem::remove(dir_ /
                          ExperimentMetadata::trace_filename("BME-1"));
  const CaptureLoad load = load_capture(dir_, /*salvage=*/true);
  EXPECT_FALSE(load.clean());
  EXPECT_EQ(load.probes_lost, 1u);
  ASSERT_EQ(load.data.per_probe.size(), 2u);  // alignment preserved
  EXPECT_FALSE(load.data.per_probe[0].empty());
  EXPECT_TRUE(load.data.per_probe[1].empty());
  ASSERT_EQ(load.notes.size(), 1u);
  EXPECT_NE(load.notes[0].find("BME-1"), std::string::npos);
}

TEST_F(CaptureTest, SalvageToleratesCorruptTrace) {
  write_capture();
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir_ / ExperimentMetadata::trace_filename("BME-1"),
                std::ios::binary | std::ios::trunc)
      << "trash bytes, not a trace";
  const CaptureLoad load = load_capture(dir_, /*salvage=*/true);
  EXPECT_EQ(load.probes_lost, 1u);  // header invalid -> probe lost
  ASSERT_EQ(load.data.per_probe.size(), 2u);
  EXPECT_TRUE(load.data.per_probe[1].empty());
  EXPECT_FALSE(load.notes.empty());
}

TEST_F(CaptureTest, CorruptTraceWithoutSalvageThrows) {
  write_capture();
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir_ / ExperimentMetadata::trace_filename("BME-1"),
                std::ios::binary | std::ios::trunc)
      << "trash bytes, not a trace";
  try {
    (void)load_capture(dir_, false);
    FAIL() << "expected CaptureError";
  } catch (const CaptureError& error) {
    EXPECT_NE(std::string{error.what()}.find("--salvage"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace peerscope::exp
