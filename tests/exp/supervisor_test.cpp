#include "exp/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unistd.h>

#include "exp/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/cancel.hpp"
#include "obs/trace.hpp"
#include "obs/trace_summary.hpp"

namespace peerscope::exp {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

RunSpec tiny_spec(std::uint64_t seed = 1) {
  RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 120;
  spec.seed = seed;
  spec.duration = SimTime::seconds(25);
  return spec;
}

/// Spec whose wall time comfortably exceeds the 20 ms deadline used by
/// the timeout tests no matter how fast the event core gets: same tiny
/// swarm, but a simulated horizon long enough to keep the engine busy
/// past the deadline on any hardware.
RunSpec deadline_spec(std::uint64_t seed = 1) {
  RunSpec spec = tiny_spec(seed);
  spec.duration = SimTime::seconds(3600);
  return spec;
}

/// Cheap stand-in result for run_fn hooks: loadable from a journal
/// blob (non-empty app, aligned probe/vantage counts) and
/// distinguishable by the marker.
RunResult fake_result(std::uint64_t marker) {
  RunResult result;
  result.observations.app = "FakeApp";
  result.observations.duration = SimTime::seconds(1);
  result.counters.chunks_delivered = marker;
  return result;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_supervisor_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SupervisorTest, FailureIsCapturedNotThrown) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2), tiny_spec(3)};
  SupervisorConfig config;
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    if (spec.seed == 2) throw std::runtime_error("injected fault");
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{2};
  const auto outcome = supervise_runs(topo(), specs, pool, config);

  ASSERT_EQ(outcome.runs.size(), 3u);
  EXPECT_EQ(outcome.runs[0].state, RunState::kOk);
  EXPECT_EQ(outcome.runs[1].state, RunState::kFailed);
  EXPECT_EQ(outcome.runs[1].error, "injected fault");
  EXPECT_FALSE(outcome.runs[1].result.has_value());
  EXPECT_EQ(outcome.runs[2].state, RunState::kOk);
  EXPECT_EQ(outcome.runs[2].result->counters.chunks_delivered, 3u);
  EXPECT_EQ(outcome.succeeded(), 2u);
  EXPECT_EQ(outcome.failed(), 1u);
  EXPECT_FALSE(outcome.complete());
}

TEST_F(SupervisorTest, RetriesUntilSuccess) {
  const RunSpec specs[] = {tiny_spec(7)};
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.retries = 3;
  config.backoff_base = std::chrono::milliseconds{1};
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    if (++calls < 3) throw std::runtime_error("transient");
    return fake_result(spec.seed);
  };

  obs::MetricsRegistry registry;
  obs::install(&registry);
  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  obs::install(nullptr);

  EXPECT_EQ(outcome.runs[0].state, RunState::kOk);
  EXPECT_EQ(outcome.runs[0].attempts, 3);
  EXPECT_TRUE(outcome.runs[0].error.empty());
  const auto counters = registry.snapshot().counters;
  EXPECT_EQ(counters.at("exp.run_retries"), 2u);
  EXPECT_EQ(counters.at("exp.runs_ok"), 1u);
  EXPECT_EQ(counters.count("exp.runs_failed"), 0u);
}

TEST_F(SupervisorTest, PermanentFailureExhaustsRetries) {
  const RunSpec specs[] = {tiny_spec(9)};
  SupervisorConfig config;
  config.retries = 2;
  config.backoff_base = std::chrono::milliseconds{1};
  config.run_fn = [](const net::AsTopology&,
                     const RunSpec&) -> RunResult {
    throw std::runtime_error("permanent");
  };

  obs::MetricsRegistry registry;
  obs::install(&registry);
  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  obs::install(nullptr);

  EXPECT_EQ(outcome.runs[0].state, RunState::kFailed);
  EXPECT_EQ(outcome.runs[0].attempts, 3);
  EXPECT_EQ(outcome.runs[0].error, "permanent");
  EXPECT_EQ(outcome.succeeded(), 0u);
  const auto counters = registry.snapshot().counters;
  EXPECT_EQ(counters.at("exp.runs_failed"), 1u);
  EXPECT_EQ(counters.at("exp.run_retries"), 2u);
}

// --- cancellation poll cadence ---------------------------------------

TEST(CancelPollStride, SupervisorConstantIsTheEngineStride) {
  // One constant, two names: the supervision-facing alias must track
  // the engine's actual poll cadence or the latency bound below lies.
  EXPECT_EQ(kCancelPollStride, sim::Engine::kCancelStride);
}

TEST(CancelPollStride, CancellationLatencyStaysBounded) {
  // An unbounded self-rescheduling event chain trips the token from
  // inside a callback; the engine must notice at the next poll
  // boundary — within kCancelPollStride executed events — no matter
  // how much work remains scheduled.
  sim::Engine engine;
  util::CancelToken token;
  engine.set_cancel(&token);
  constexpr std::uint64_t kTripAfter = 100;
  std::function<void()> tick = [&] {
    if (engine.executed() == kTripAfter) token.request();
    engine.schedule_after(SimTime::nanos(10), tick);
  };
  engine.schedule_after(SimTime::nanos(10), tick);
  EXPECT_THROW(engine.run_until(SimTime::seconds(1)), util::Cancelled);
  EXPECT_GE(engine.executed(), kTripAfter);
  EXPECT_LE(engine.executed(), kTripAfter + kCancelPollStride);
}

TEST(BackoffDelay, InjectedConstantJitterMakesDelaysExact) {
  // With a pinned multiplier the ladder is pure arithmetic: base *
  // 2^(attempt-1), capped at the 2^16 scale.
  const auto unit = [](std::uint64_t, int) { return 1.0; };
  using std::chrono::milliseconds;
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 1, unit), milliseconds{200});
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 2, unit), milliseconds{400});
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 3, unit), milliseconds{800});
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 17, unit),
            milliseconds{200LL << 16});
  // Scale saturates: attempt 18 sleeps no longer than attempt 17.
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 18, unit),
            backoff_delay(milliseconds{200}, 42, 17, unit));
  // The injected multiplier scales linearly.
  const auto half = [](std::uint64_t, int) { return 0.5; };
  EXPECT_EQ(backoff_delay(milliseconds{200}, 42, 3, half), milliseconds{400});
}

TEST(BackoffDelay, DefaultJitterIsDeterministicAndBounded) {
  using std::chrono::milliseconds;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const auto first = backoff_delay(milliseconds{200}, 77, attempt);
    const auto second = backoff_delay(milliseconds{200}, 77, attempt);
    EXPECT_EQ(first, second) << "attempt " << attempt;  // rerun-identical
    const auto ladder = 200LL << (attempt - 1);
    EXPECT_GE(first.count(), static_cast<std::int64_t>(0.75 * ladder));
    EXPECT_LE(first.count(), static_cast<std::int64_t>(1.25 * ladder));
  }
  // Different specs spread out instead of retrying in lockstep.
  EXPECT_NE(backoff_delay(milliseconds{200}, 77, 3),
            backoff_delay(milliseconds{200}, 78, 3));
}

TEST_F(SupervisorTest, BackoffJitterHookObservesEveryRetry) {
  const RunSpec specs[] = {tiny_spec(11)};
  std::atomic<int> calls{0};
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, int>> seen;
  SupervisorConfig config;
  config.retries = 3;
  config.backoff_base = std::chrono::milliseconds{1};
  config.backoff_jitter = [&](std::uint64_t seed, int attempt) {
    const std::scoped_lock lock{mu};
    seen.emplace_back(seed, attempt);
    return 0.0;  // no sleep: deterministic-retry tests stay fast
  };
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    if (++calls < 3) throw std::runtime_error("transient");
    return fake_result(spec.seed);
  };

  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(outcome.runs[0].state, RunState::kOk);
  EXPECT_EQ(outcome.runs[0].attempts, 3);
  // Two failed attempts -> two backoffs, attempts numbered from 1,
  // keyed by the spec's seed.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, int>{11u, 1}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, int>{11u, 2}));
}

TEST_F(SupervisorTest, DeadlineCutsOffRealRunWithoutRetry) {
  // A real simulation against a deadline far shorter than its runtime:
  // the engine's cancellation poll must unwind it, and a timeout must
  // NOT burn the retry budget (same spec, same deadline, same result).
  const RunSpec specs[] = {deadline_spec(1)};
  SupervisorConfig config;
  config.retries = 2;
  config.deadline_s = 0.02;

  obs::MetricsRegistry registry;
  obs::install(&registry);
  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  obs::install(nullptr);

  EXPECT_EQ(outcome.runs[0].state, RunState::kTimedOut);
  EXPECT_EQ(outcome.runs[0].attempts, 1);
  EXPECT_NE(outcome.runs[0].error.find("cancelled"), std::string::npos);
  EXPECT_EQ(registry.snapshot().counters.at("exp.runs_timed_out"), 1u);
}

TEST_F(SupervisorTest, JournalRecordsTerminalStates) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    if (spec.seed == 2) throw std::runtime_error("boom");
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{2};
  (void)supervise_runs(topo(), specs, pool, config);

  const auto entries = journal_replay(config.journal);
  ASSERT_EQ(entries.size(), 2u);
  const auto& ok = entries.at(spec_id(specs[0]));
  EXPECT_EQ(ok.state, "ok");
  EXPECT_FALSE(ok.artifact.empty());
  EXPECT_TRUE(
      std::filesystem::exists(dir_ / "experiment.journal.d" / ok.artifact));
  const auto& failed = entries.at(spec_id(specs[1]));
  EXPECT_EQ(failed.state, "failed");
  EXPECT_EQ(failed.error, "boom");
  EXPECT_TRUE(failed.artifact.empty());
}

TEST_F(SupervisorTest, FlightRecorderDumpsOnlyTheFailedRunsFinalAttempt) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.retries = 1;
  config.backoff_base = std::chrono::milliseconds{1};
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    if (spec.seed == 2) throw std::runtime_error("always fails");
    return fake_result(spec.seed);
  };

  obs::TraceRecorder recorder;
  obs::install_tracer(&recorder);
  util::ThreadPool pool{2};
  (void)supervise_runs(topo(), specs, pool, config);
  obs::install_tracer(nullptr);

  // The failed spec left its ring tail in journal.d…
  const auto flight =
      dir_ / "experiment.journal.d" / spec_flight_name(spec_id(specs[1]));
  ASSERT_TRUE(std::filesystem::exists(flight));
  const obs::TraceFile dump = obs::read_trace_file(flight);
  // …holding exactly the final attempt: the retry flushed attempt 1
  // out of the ring, so only attempt 2's marker and the failure
  // instant remain.
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].name, "exp.run_attempt");
  EXPECT_EQ(dump.events[1].name, "exp.run_failed");

  // The successful spec gets no flight dump.
  EXPECT_FALSE(std::filesystem::exists(
      dir_ / "experiment.journal.d" / spec_flight_name(spec_id(specs[0]))));
}

TEST_F(SupervisorTest, FlightRecorderCoversTimeoutsOfRealRuns) {
  // A real simulation cancelled by its deadline: the dump must exist
  // and record the timeout marker (plus whatever span/counter tail the
  // engine left in the ring).
  const RunSpec specs[] = {deadline_spec(1)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.deadline_s = 0.02;

  obs::TraceRecorder recorder;
  obs::install_tracer(&recorder);
  util::ThreadPool pool{1};
  const auto outcome = supervise_runs(topo(), specs, pool, config);
  obs::install_tracer(nullptr);

  ASSERT_EQ(outcome.runs[0].state, RunState::kTimedOut);
  const auto flight =
      dir_ / "experiment.journal.d" / spec_flight_name(spec_id(specs[0]));
  ASSERT_TRUE(std::filesystem::exists(flight));
  const obs::TraceFile dump = obs::read_trace_file(flight);
  EXPECT_EQ(dump.skipped_lines, 0u);
  bool saw_timeout = false;
  for (const auto& event : dump.events) {
    if (event.name == "exp.run_timed_out") saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST_F(SupervisorTest, NoFlightDumpWithoutATracerOrWithoutAJournal) {
  const RunSpec specs[] = {tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec&) -> RunResult {
    throw std::runtime_error("fails without tracer");
  };
  util::ThreadPool pool{1};
  (void)supervise_runs(topo(), specs, pool, config);
  EXPECT_FALSE(std::filesystem::exists(
      dir_ / "experiment.journal.d" / spec_flight_name(spec_id(specs[0]))));
}

TEST_F(SupervisorTest, ResumeSkipsFinishedSpecsWithIdenticalResults) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  std::atomic<int> calls{0};
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return fake_result(spec.seed * 100);
  };
  util::ThreadPool pool{2};
  const auto first = supervise_runs(topo(), specs, pool, config);
  ASSERT_TRUE(first.complete());
  EXPECT_EQ(calls.load(), 2);

  config.resume = true;
  const auto second = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(calls.load(), 2);  // nothing re-executed
  ASSERT_TRUE(second.complete());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(second.runs[i].state, RunState::kSkipped);
    EXPECT_EQ(second.runs[i].attempts, 0);
    ASSERT_TRUE(second.runs[i].result.has_value());
    EXPECT_EQ(second.runs[i].result->counters.chunks_delivered,
              first.runs[i].result->counters.chunks_delivered);
  }
}

TEST_F(SupervisorTest, ResumeRerunsFailedAndMissingBlobEntries) {
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    if (spec.seed == 2) throw std::runtime_error("first pass fails");
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{2};
  (void)supervise_runs(topo(), specs, pool, config);

  // Sabotage spec 1's blob: an "ok" journal line whose artifact is
  // gone must be treated as unfinished, not trusted blindly.
  const auto entries = journal_replay(config.journal);
  std::filesystem::remove(dir_ / "experiment.journal.d" /
                          entries.at(spec_id(specs[0])).artifact);

  std::atomic<int> calls{0};
  config.resume = true;
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return fake_result(spec.seed);
  };
  const auto second = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(calls.load(), 2);  // both re-executed
  EXPECT_EQ(second.runs[0].state, RunState::kOk);
  EXPECT_EQ(second.runs[1].state, RunState::kOk);
  EXPECT_TRUE(second.complete());
}

TEST_F(SupervisorTest, TornTrailingJournalLineIsIgnoredOnResume) {
  const RunSpec specs[] = {tiny_spec(1)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{1};
  (void)supervise_runs(topo(), specs, pool, config);

  {  // simulate a crash mid-append: no trailing newline, no brace
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream out(config.journal, std::ios::app);
    out << "{\"spec\":\"torn#seed";
  }

  std::atomic<int> calls{0};
  config.resume = true;
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return fake_result(spec.seed);
  };
  const auto second = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(second.runs[0].state, RunState::kSkipped);
}

TEST_F(SupervisorTest, TornFlightDumpInBlobDirDoesNotBreakResume) {
  // A SIGKILL can leave a half-copied trace.json in journal.d (the
  // atomic writer itself never tears, but crashed tooling copying one
  // can). Resume only consults the journal and .result blobs, so junk
  // trace artifacts must be ignored, never fatal.
  const RunSpec specs[] = {tiny_spec(1)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{1};
  (void)supervise_runs(topo(), specs, pool, config);

  {  // torn mid-event trace for the finished spec, plus stray junk
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream torn(dir_ / "experiment.journal.d" /
                       spec_flight_name(spec_id(specs[0])));
    torn << "{\"schema\": \"peerscope.trace/1\",\n\"traceEvents\": [\n"
         << "{\"name\": \"run.TVA";
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream junk(dir_ / "experiment.journal.d" / "junk.trace.json");
    junk << std::string{"\x01\x00\x7f not json at all", 19};
  }

  std::atomic<int> calls{0};
  config.resume = true;
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return fake_result(spec.seed);
  };
  const auto second = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(second.runs[0].state, RunState::kSkipped);
  ASSERT_TRUE(second.runs[0].result.has_value());
}

TEST(Journal, SpecFlightNameSharesTheArtifactStem) {
  const std::string id = spec_id(tiny_spec(4));
  const std::string artifact = spec_artifact_name(id);
  const std::string flight = spec_flight_name(id);
  ASSERT_NE(artifact.rfind(".result"), std::string::npos);
  ASSERT_NE(flight.rfind(".trace.json"), std::string::npos);
  EXPECT_EQ(artifact.substr(0, artifact.size() - 7),
            flight.substr(0, flight.size() - 11));
}

TEST_F(SupervisorTest, ReplayRejectsForeignFile) {
  const auto path = dir_ / "not_a_journal";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "{\"schema\":\"someone.elses/9\"}\n";
  EXPECT_THROW((void)journal_replay(path), std::runtime_error);
}

TEST_F(SupervisorTest, ReplayOfMissingJournalIsEmpty) {
  EXPECT_TRUE(journal_replay(dir_ / "absent.journal").empty());
}

TEST(Journal, SpecIdEncodesIdentityAndFaults) {
  RunSpec a = tiny_spec(3);
  const std::string base = spec_id(a);
  EXPECT_NE(base.find("TVAnts"), std::string::npos);
  EXPECT_NE(base.find("seed=3"), std::string::npos);

  RunSpec b = a;
  b.impairment.loss_rate = 0.05;
  EXPECT_NE(spec_id(b), base);
  RunSpec c = a;
  c.keep_records = true;
  EXPECT_NE(spec_id(c), base);
  EXPECT_EQ(spec_id(a), base);  // stable

  const std::string artifact = spec_artifact_name(spec_id(b));
  for (const char ch : artifact) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                ch == '-' || ch == '.')
        << "unsafe char in artifact name: " << artifact;
  }
}

TEST(Journal, RunResultBlobRoundTripsByteIdentically) {
  // Real simulation output through the blob: the reloaded result must
  // serialize to the exact same bytes, which is the property --resume
  // byte-identity rests on.
  const RunResult original = run_experiment(topo(), tiny_spec(5));
  const auto dir = std::filesystem::temp_directory_path() /
                   ("peerscope_blob_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  write_run_result(dir / "a.result", original);
  const auto reloaded = read_run_result(dir / "a.result");
  ASSERT_TRUE(reloaded.has_value());
  write_run_result(dir / "b.result", *reloaded);

  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string first = slurp(dir / "a.result");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, slurp(dir / "b.result"));

  EXPECT_EQ(reloaded->observations.probes.size(),
            original.observations.probes.size());
  EXPECT_EQ(reloaded->counters.chunks_delivered,
            original.counters.chunks_delivered);
  std::filesystem::remove_all(dir);
}

TEST(Journal, CorruptBlobReadsAsNullopt) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("peerscope_blob_corrupt_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(read_run_result(dir / "missing.result").has_value());

  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir / "bad_header.result") << "not-a-result 1\n";
  EXPECT_FALSE(read_run_result(dir / "bad_header.result").has_value());

  // Truncated: header but no "end" sentinel.
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(dir / "torn.result")
      << "peerscope-runresult 1\napp X\nduration_ns 5\n";
  EXPECT_FALSE(read_run_result(dir / "torn.result").has_value());
  std::filesystem::remove_all(dir);
}

TEST(Journal, BitRotInTheBlobFailsTheCrcCheck) {
  // Flip one digit in an otherwise perfectly parseable blob: without
  // the integrity line this would read back as silently wrong data.
  const RunResult original = run_experiment(topo(), tiny_spec(6));
  const auto dir = std::filesystem::temp_directory_path() /
                   ("peerscope_blob_crc_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = dir / "rot.result";
  write_run_result(path, original);

  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream tmp;
    tmp << in.rdbuf();
    buf = tmp.str();
  }
  const std::size_t at = buf.find("duration_ns ");
  ASSERT_NE(at, std::string::npos);
  char& digit = buf[at + std::strlen("duration_ns ")];
  digit = digit == '9' ? '8' : static_cast<char>(digit + 1);
  {
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << buf;
  }
  EXPECT_FALSE(read_run_result(path).has_value());
  std::filesystem::remove_all(dir);
}

TEST(Journal, LegacyBlobWithoutCrcLineStillParses) {
  const RunResult original = run_experiment(topo(), tiny_spec(6));
  const auto dir = std::filesystem::temp_directory_path() /
                   ("peerscope_blob_legacy_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = dir / "legacy.result";
  write_run_result(path, original);

  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream tmp;
    tmp << in.rdbuf();
    buf = tmp.str();
  }
  const std::size_t at = buf.rfind("\ncrc ");
  ASSERT_NE(at, std::string::npos);
  buf.erase(at + 1, std::strlen("crc 00000000\n"));  // drop the line
  {
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << buf;
  }
  const auto reloaded = read_run_result(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->counters.chunks_delivered,
            original.counters.chunks_delivered);
  std::filesystem::remove_all(dir);
}

TEST_F(SupervisorTest, TornResultBlobIsRerunOnResume) {
  // A blob cut mid-bytes (a crashed copy, a dying disk) must fail the
  // CRC, read as unfinished, and be re-executed — never half-trusted.
  const RunSpec specs[] = {tiny_spec(1), tiny_spec(2)};
  SupervisorConfig config;
  config.journal = dir_ / "experiment.journal";
  config.run_fn = [](const net::AsTopology&, const RunSpec& spec) {
    return fake_result(spec.seed);
  };
  util::ThreadPool pool{2};
  (void)supervise_runs(topo(), specs, pool, config);

  const auto entries = journal_replay(config.journal);
  const auto blob = dir_ / "experiment.journal.d" /
                    entries.at(spec_id(specs[0])).artifact;
  const auto size = std::filesystem::file_size(blob);
  ASSERT_GT(size, 10u);
  std::filesystem::resize_file(blob, size / 2);
  EXPECT_FALSE(read_run_result(blob).has_value());

  std::atomic<int> calls{0};
  config.resume = true;
  config.run_fn = [&calls](const net::AsTopology&, const RunSpec& spec) {
    ++calls;
    return fake_result(spec.seed);
  };
  const auto second = supervise_runs(topo(), specs, pool, config);
  EXPECT_EQ(calls.load(), 1);  // only the torn spec re-executed
  EXPECT_EQ(second.runs[0].state, RunState::kOk);
  EXPECT_EQ(second.runs[1].state, RunState::kSkipped);
  EXPECT_TRUE(second.complete());
}

}  // namespace
}  // namespace peerscope::exp
