#include "exp/testbed.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace peerscope::exp {
namespace {

TEST(Testbed, Table1Counts) {
  const Testbed tb = Testbed::table1();
  EXPECT_EQ(tb.host_count(), 46u);  // as printed in the paper's table
  EXPECT_EQ(tb.site_count(), 7u);
  EXPECT_EQ(tb.institution_as_count(), 6u);
  EXPECT_EQ(tb.home_as_count(), 6u);
  EXPECT_EQ(tb.home_host_count(), 7u);
}

TEST(Testbed, RowsGroupLikeThePaper) {
  const Testbed tb = Testbed::table1();
  const net::AsTopology topo = net::make_reference_topology();
  const auto rows = tb.rows(topo);

  // First row: BME hosts 1-4, HU, AS1, high-bw.
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].hosts, "1-4");
  EXPECT_EQ(rows[0].site, "BME");
  EXPECT_EQ(rows[0].country, "HU");
  EXPECT_EQ(rows[0].as_label, "AS1");
  EXPECT_EQ(rows[0].access, "high-bw");
  EXPECT_FALSE(rows[0].nat);
  EXPECT_FALSE(rows[0].firewall);

  // Second row: the BME home DSL host.
  EXPECT_EQ(rows[1].hosts, "5");
  EXPECT_EQ(rows[1].as_label, "ASx");
  EXPECT_EQ(rows[1].access, "DSL 6/0.512");
}

TEST(Testbed, RowsCoverAllHosts) {
  const Testbed tb = Testbed::table1();
  const net::AsTopology topo = net::make_reference_topology();
  std::size_t hosts = 0;
  for (const auto& row : tb.rows(topo)) {
    const auto dash = row.hosts.find('-');
    if (dash == std::string::npos) {
      ++hosts;
    } else {
      const int lo = std::stoi(row.hosts.substr(0, dash));
      const int hi = std::stoi(row.hosts.substr(dash + 1));
      hosts += static_cast<std::size_t>(hi - lo + 1);
    }
  }
  EXPECT_EQ(hosts, tb.host_count());
}

TEST(Testbed, EnstRowIsFirewalled) {
  const Testbed tb = Testbed::table1();
  const net::AsTopology topo = net::make_reference_topology();
  bool found = false;
  for (const auto& row : tb.rows(topo)) {
    if (row.site == "ENST" && row.access == "high-bw") {
      EXPECT_TRUE(row.firewall);
      EXPECT_EQ(row.country, "FR");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Testbed, CountriesMatchTable1) {
  const Testbed tb = Testbed::table1();
  const net::AsTopology topo = net::make_reference_topology();
  for (const auto& row : tb.rows(topo)) {
    if (row.site == "BME" || row.site == "MT") {
      EXPECT_EQ(row.country, "HU");
    }
    if (row.site == "WUT") {
      EXPECT_EQ(row.country, "PL");
    }
    if (row.site == "FFT") {
      EXPECT_EQ(row.country, "FR");
    }
  }
}

}  // namespace
}  // namespace peerscope::exp
