// StatusReporter / parse_status: the live status.json written during
// a supervised batch and read back by `peerscope watch`.
#include "exp/status.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>

#include "exp/supervisor.hpp"

namespace peerscope::exp {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

class StatusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("peerscope_status_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string read_file(const fs::path& path) const {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  fs::path dir_;
};

TEST_F(StatusTest, ReporterDocumentRoundTripsThroughParseStatus) {
  const fs::path path = dir_ / "status.json";
  StatusReporter reporter{path, milliseconds{10}};
  LiveRun& alpha = reporter.add_run("PPLive#seed=7#dur=60000000000", 60.0);
  reporter.add_run("TVAnts#seed=1#dur=25000000000", 25.0);
  reporter.start();

  alpha.state.store(LiveRun::kRunning);
  alpha.attempts.store(1);
  alpha.progress.events.store(123'456);
  alpha.progress.sim_time_ns.store(5'500'000'000);
  // Give the rewrite thread at least one tick with live numbers.
  std::this_thread::sleep_for(milliseconds{40});
  alpha.state.store(static_cast<int>(RunState::kOk));
  reporter.stop();

  const auto view = parse_status(read_file(path));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->phase, "done");
  ASSERT_EQ(view->runs.size(), 2u);
  EXPECT_EQ(view->runs[0].spec, "PPLive#seed=7#dur=60000000000");
  EXPECT_EQ(view->runs[0].state, to_string(RunState::kOk));
  EXPECT_EQ(view->runs[0].attempts, 1);
  EXPECT_EQ(view->runs[0].events, 123'456u);
  EXPECT_NEAR(view->runs[0].sim_time_s, 5.5, 1e-3);
  EXPECT_EQ(view->runs[1].state, "pending");
  EXPECT_EQ(view->runs[1].eta_s, -1);  // never ran: ETA unknown
}

TEST_F(StatusTest, StopIsIdempotentAndTheDestructorFinalises) {
  const fs::path path = dir_ / "status.json";
  {
    StatusReporter reporter{path, milliseconds{10}};
    reporter.add_run("run", 1.0);
    reporter.start();
    reporter.stop();
    reporter.stop();
  }  // destructor calls stop() again
  const auto view = parse_status(read_file(path));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->phase, "done");
}

TEST_F(StatusTest, AddRunAfterStartThrows) {
  StatusReporter reporter{dir_ / "status.json", milliseconds{10}};
  reporter.add_run("early", 1.0);
  reporter.start();
  EXPECT_THROW((void)reporter.add_run("late", 1.0), std::logic_error);
  reporter.stop();
}

TEST_F(StatusTest, BrokenStatusPathDoesNotKillTheBatch) {
  // Status is advisory: pointing it at a directory that cannot exist
  // must only warn, never throw.
  StatusReporter reporter{dir_ / "no" / "such" / "dir" / "status.json",
                          milliseconds{10}};
  reporter.add_run("run", 1.0);
  EXPECT_NO_THROW(reporter.start());
  EXPECT_NO_THROW(reporter.stop());
}

TEST(ParseStatus, ReadsAHandcraftedDocument) {
  const std::string doc =
      "{\"schema\":\"peerscope.status/1\",\"phase\":\"running\","
      "\"runs\":[{\"spec\":\"A \\\"quoted\\\" run\",\"state\":\"running\","
      "\"attempts\":2,\"events\":42,\"sim_time_s\":1.500,"
      "\"events_per_s\":7.000,\"eta_s\":12.000}]}\n";
  const auto view = parse_status(doc);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->phase, "running");
  ASSERT_EQ(view->runs.size(), 1u);
  EXPECT_EQ(view->runs[0].spec, "A \"quoted\" run");
  EXPECT_EQ(view->runs[0].state, "running");
  EXPECT_EQ(view->runs[0].attempts, 2);
  EXPECT_EQ(view->runs[0].events, 42u);
  EXPECT_NEAR(view->runs[0].sim_time_s, 1.5, 1e-9);
  EXPECT_NEAR(view->runs[0].events_per_s, 7.0, 1e-9);
  EXPECT_NEAR(view->runs[0].eta_s, 12.0, 1e-9);
}

TEST(ParseStatus, RejectsGarbageAndForeignSchemas) {
  EXPECT_FALSE(parse_status("").has_value());
  EXPECT_FALSE(parse_status("not json at all").has_value());
  EXPECT_FALSE(
      parse_status("{\"schema\":\"peerscope.metrics/1\",\"phase\":\"done\"}")
          .has_value());
  // Schema present but a run entry is missing fields.
  EXPECT_FALSE(parse_status("{\"schema\":\"peerscope.status/1\","
                            "\"phase\":\"running\","
                            "\"runs\":[{\"spec\":\"x\"}]}")
                   .has_value());
}

TEST(ParseStatus, EmptyRunListIsValid) {
  const auto view = parse_status(
      "{\"schema\":\"peerscope.status/1\",\"phase\":\"done\",\"runs\":[]}\n");
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->phase, "done");
  EXPECT_TRUE(view->runs.empty());
}

}  // namespace
}  // namespace peerscope::exp
