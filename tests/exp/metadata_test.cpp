#include "exp/metadata.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace peerscope::exp {
namespace {

class MetadataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_meta_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ExperimentMetadata sample() {
  ExperimentMetadata meta;
  meta.app = "TVAnts";
  meta.duration = util::SimTime::seconds(300);
  meta.probes.push_back({net::Ipv4Addr{20, 0, 0, 1}, net::AsId{2},
                         net::kItaly, true, "PoliTO-1"});
  meta.probes.push_back({net::Ipv4Addr{20, 1, 255, 3}, net::AsId{11},
                         net::kHungary, false, "BME-5"});
  meta.announcements.push_back(
      {*net::Ipv4Prefix::parse("20.0.0.0/16"), net::AsId{2}, net::kItaly});
  meta.announcements.push_back({*net::Ipv4Prefix::parse("20.1.0.0/16"),
                                net::AsId{11}, net::kHungary});
  return meta;
}

TEST_F(MetadataTest, RoundTrip) {
  const auto path = dir_ / "experiment.meta";
  write_metadata(path, sample());
  const ExperimentMetadata loaded = read_metadata(path);

  EXPECT_EQ(loaded.app, "TVAnts");
  EXPECT_EQ(loaded.duration, util::SimTime::seconds(300));
  ASSERT_EQ(loaded.probes.size(), 2u);
  EXPECT_EQ(loaded.probes[0].addr, (net::Ipv4Addr{20, 0, 0, 1}));
  EXPECT_EQ(loaded.probes[0].as, net::AsId{2});
  EXPECT_EQ(loaded.probes[0].cc, net::kItaly);
  EXPECT_TRUE(loaded.probes[0].high_bw);
  EXPECT_EQ(loaded.probes[0].label, "PoliTO-1");
  EXPECT_FALSE(loaded.probes[1].high_bw);
  ASSERT_EQ(loaded.announcements.size(), 2u);
  EXPECT_EQ(loaded.announcements[0].prefix.to_string(), "20.0.0.0/16");
}

TEST_F(MetadataTest, RebuiltRegistryResolves) {
  const auto path = dir_ / "experiment.meta";
  write_metadata(path, sample());
  const auto loaded = read_metadata(path);
  const auto registry = loaded.build_registry();
  EXPECT_EQ(registry.as_of(net::Ipv4Addr{20, 0, 9, 9}), net::AsId{2});
  EXPECT_EQ(registry.country_of(net::Ipv4Addr{20, 1, 0, 1}), net::kHungary);
  const auto napa = loaded.napa_set();
  EXPECT_EQ(napa.size(), 2u);
  EXPECT_TRUE(napa.contains(net::Ipv4Addr{20, 0, 0, 1}));
}

TEST_F(MetadataTest, MissingFileThrows) {
  EXPECT_THROW((void)read_metadata(dir_ / "absent.meta"),
               std::runtime_error);
}

TEST_F(MetadataTest, BadHeaderThrows) {
  const auto path = dir_ / "bad.meta";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "not-a-meta-file 9\n";
  EXPECT_THROW((void)read_metadata(path), std::runtime_error);
}

TEST_F(MetadataTest, MalformedProbeLineThrows) {
  const auto path = dir_ / "mangled.meta";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "peerscope-meta 1\napp X\nduration_ns 5\n"
                      << "probe 999.1.1.1 2 IT 1 L\n";
  EXPECT_THROW((void)read_metadata(path), std::runtime_error);
}

TEST_F(MetadataTest, UnknownKeyThrows) {
  const auto path = dir_ / "unknown.meta";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "peerscope-meta 1\nbogus value\n";
  EXPECT_THROW((void)read_metadata(path), std::runtime_error);
}

TEST_F(MetadataTest, IncompleteThrows) {
  const auto path = dir_ / "incomplete.meta";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "peerscope-meta 1\napp X\n";  // no probes
  EXPECT_THROW((void)read_metadata(path), std::runtime_error);
}

TEST(RegistryDump, RoundTripsThroughMetadata) {
  net::NetRegistry registry;
  registry.announce(*net::Ipv4Prefix::parse("30.0.0.0/16"), net::AsId{210},
                    net::kChina);
  registry.announce(*net::Ipv4Prefix::parse("20.0.0.0/16"), net::AsId{2},
                    net::kItaly);
  const auto dump = registry.dump();
  ASSERT_EQ(dump.size(), 2u);
  // Sorted by prefix base.
  EXPECT_EQ(dump[0].as, net::AsId{2});
  EXPECT_EQ(dump[1].as, net::AsId{210});
  EXPECT_EQ(dump[1].country, net::kChina);
}

}  // namespace
}  // namespace peerscope::exp
